//! Property tests of the chaining extension's architectural semantics,
//! exercised through full programs on the simulator.

use proptest::prelude::*;
use scalar_chaining::prelude::*;

/// Builds a program that pushes `values.len()` constants through chained
/// ft3 (via fmv from preset registers) and pops them into f16.., then
/// checks FIFO order end-to-end.
fn fifo_order_program(k: usize) -> Program {
    let t0 = IntReg::new(5);
    let mut b = ProgramBuilder::new();
    b.li(t0, FpReg::FT3.chain_mask_bit() as i32);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t0);
    // Interleave pushes and pops so the FIFO never exceeds the
    // pipeline-provided capacity: push_i (fmv ft3 ← f(6+i)) then pop_i
    // (fmv f(16+i) ← ft3).
    for i in 0..k {
        b.fmv_d(FpReg::FT3, FpReg::new(6 + i as u8));
        b.fmv_d(FpReg::new(16 + i as u8), FpReg::FT3);
    }
    b.csrrw(IntReg::ZERO, csr::CHAIN_MASK, IntReg::ZERO);
    b.ecall();
    b.build().expect("valid program")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pops return pushes in order, for arbitrary pushed values.
    #[test]
    fn fifo_order_preserved(values in proptest::collection::vec(-1e6f64..1e6, 1..8)) {
        let k = values.len();
        let mut sim = Simulator::new(CoreConfig::new(), fifo_order_program(k));
        for (i, v) in values.iter().enumerate() {
            sim.set_fp_reg(FpReg::new(6 + i as u8), *v);
        }
        sim.run(10_000).expect("program completes");
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(sim.fp_reg(FpReg::new(16 + i as u8)).to_bits(), v.to_bits());
        }
    }

    /// The chained vecop computes the same memory image as the baseline,
    /// for arbitrary problem sizes — chaining is a scheduling tool, not a
    /// semantic change.
    #[test]
    fn chained_equals_baseline_bitwise(quads in 1u32..24) {
        let n = quads * 4;
        let base = VecOpKernel::new(n, VecOpVariant::Baseline).build();
        let chained = VecOpKernel::new(n, VecOpVariant::Chained).build();
        // Both kernels verify against the same golden model internally;
        // their success implies bitwise-equal outputs.
        base.run(CoreConfig::new(), 10_000_000).expect("baseline verifies");
        chained.run(CoreConfig::new(), 10_000_000).expect("chained verifies");
    }

    /// Chaining never *loses* performance on the latency-bound loop, for
    /// any FPU depth, when the software pipeline is matched.
    #[test]
    fn chained_never_slower_than_unrolled(depth in 1u32..6) {
        use scalar_chaining::fpu::FpuTiming;
        let cfg = CoreConfig::new().with_fpu(FpuTiming::new().with_addmul_latency(depth));
        let u = depth + 1;
        let n = 840;
        let unrolled = VecOpKernel::with_unroll(n, VecOpVariant::Unrolled, u)
            .build()
            .run(cfg, 10_000_000)
            .expect("unrolled runs");
        let chained = VecOpKernel::with_unroll(n, VecOpVariant::Chained, u)
            .build()
            .run(cfg, 10_000_000)
            .expect("chained runs");
        prop_assert!(
            chained.measured().cycles <= unrolled.measured().cycles + 8,
            "depth {}: chained {} vs unrolled {}",
            depth,
            chained.measured().cycles,
            unrolled.measured().cycles
        );
    }
}

/// Disabling chaining mid-FIFO leaves the last value as a plain register —
/// the Fig. 1c epilogue idiom.
#[test]
fn disable_keeps_last_value_as_plain_register() {
    let t0 = IntReg::new(5);
    let mut b = ProgramBuilder::new();
    b.li(t0, FpReg::FT3.chain_mask_bit() as i32);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t0);
    b.fmv_d(FpReg::FT3, FpReg::new(6)); // push one value
    b.csrrw(IntReg::ZERO, csr::CHAIN_MASK, IntReg::ZERO); // disable (drains first)
    b.fadd_d(FpReg::new(8), FpReg::FT3, FpReg::FT3); // plain double read
    b.ecall();
    let mut sim = Simulator::new(CoreConfig::new(), b.build().unwrap());
    sim.set_fp_reg(FpReg::new(6), 2.5);
    sim.run(10_000).unwrap();
    assert_eq!(sim.fp_reg(FpReg::new(8)), 5.0);
}

/// A chained register that is never written blocks its reader forever —
/// surfaced as a cycle-budget error, not silent garbage.
#[test]
fn reading_empty_chained_register_hangs_deterministically() {
    let t0 = IntReg::new(5);
    let mut b = ProgramBuilder::new();
    b.li(t0, FpReg::FT3.chain_mask_bit() as i32);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t0);
    b.fadd_d(FpReg::new(8), FpReg::FT3, FpReg::new(6)); // pop of empty FIFO
    b.ecall();
    let mut sim = Simulator::new(CoreConfig::new(), b.build().unwrap());
    assert_eq!(
        sim.run(500).unwrap_err(),
        SimError::MaxCyclesExceeded { max_cycles: 500 }
    );
}

/// Over-deep software pipelines deadlock by design: the logical FIFO holds
/// `depth + 1` elements and the producer backpressure stalls the issue
/// stage (strictly bounded storage, as in the paper's hardware).
#[test]
fn over_deep_chained_pipeline_backpressures_forever() {
    let kernel = VecOpKernel::with_unroll(48, VecOpVariant::Chained, 6).build();
    // Default FPU depth 3 → capacity 4 < unroll 6.
    let err = kernel.run(CoreConfig::new(), 50_000).unwrap_err();
    assert!(
        matches!(err, KernelError::Sim(SimError::MaxCyclesExceeded { .. })),
        "{err}"
    );
}
