//! Top-level acceptance tests: every quantitative claim the paper makes,
//! checked end-to-end through the public facade.

use scalar_chaining::benchkit::{headline, measure, Fig3Experiment};
use scalar_chaining::prelude::*;

/// §I / Fig. 1: the baseline wastes exactly the FPU depth per iteration.
#[test]
fn claim_raw_stall_equals_pipeline_depth() {
    let kernel = VecOpKernel::new(64, VecOpVariant::Baseline).build();
    let run = kernel
        .run(CoreConfig::new(), 1_000_000)
        .expect("baseline runs");
    let m = run.measured();
    // 2 issue slots + 3 stalls per element → 40 % utilisation.
    assert!(
        (0.36..=0.44).contains(&m.fpu_utilization()),
        "{}",
        m.fpu_utilization()
    );
    assert!(m.stalls_of(StallCause::RawHazard) >= 3 * 60);
}

/// §II: chaining delivers unrolling's performance with one register.
#[test]
fn claim_chaining_matches_unrolling() {
    let unrolled = VecOpKernel::new(256, VecOpVariant::Unrolled)
        .build()
        .run(CoreConfig::new(), 1_000_000)
        .expect("unrolled runs");
    let chained = VecOpKernel::new(256, VecOpVariant::Chained)
        .build()
        .run(CoreConfig::new(), 1_000_000)
        .expect("chained runs");
    assert!(chained.measured().cycles <= unrolled.measured().cycles + 4);
    assert_eq!(VecOpVariant::Chained.extra_registers(), 0);
    assert_eq!(VecOpVariant::Unrolled.extra_registers(), 3);
}

/// §III headline: >93 % FPU utilisation, ~4 % speedup, ~10 % higher
/// energy efficiency over the optimised baselines (geomean over both
/// stencils). Bands are generous: the claim is the shape, not the digit.
#[test]
fn claim_fig3_headline_numbers() {
    let experiment = Fig3Experiment::new();
    let model = EnergyModel::new();
    let results = experiment.run(&model).expect("fig3 sweep");
    let h = headline(&results);
    assert!(
        h.best_utilization > 0.93,
        "utilisation {:.3}",
        h.best_utilization
    );
    assert!(
        (1.01..=1.10).contains(&h.speedup_vs_base),
        "speedup vs Base {:.3} (paper ~1.04)",
        h.speedup_vs_base
    );
    assert!(
        (1.05..=1.20).contains(&h.efficiency_vs_base),
        "efficiency vs Base {:.3} (paper ~1.10)",
        h.efficiency_vs_base
    );
    assert!(
        (1.03..=1.20).contains(&h.speedup_vs_base_minus),
        "speedup vs Base- {:.3} (paper ~1.08)",
        h.speedup_vs_base_minus
    );
    assert!(
        (1.02..=1.15).contains(&h.chaining_efficiency_vs_base),
        "efficiency Chaining vs Base {:.3} (paper ~1.07)",
        h.chaining_efficiency_vs_base
    );
}

/// Fig. 3 left panel: utilisation ordering across the five variants.
#[test]
fn claim_fig3_utilization_ordering() {
    let experiment = Fig3Experiment::new();
    let model = EnergyModel::new();
    let results = experiment.run(&model).expect("fig3 sweep");
    for (stencil, rows) in &results {
        let util: Vec<f64> = rows.iter().map(|m| m.utilization()).collect();
        // Variant order: Base--, Base-, Base, Chaining, Chaining+.
        assert!(
            util[0] < util[2],
            "{stencil}: Base-- {:.3} vs Base {:.3}",
            util[0],
            util[2]
        );
        assert!(util[1] < util[2], "{stencil}: Base- vs Base");
        assert!(
            util[2] < util[4],
            "{stencil}: Base {:.3} vs Chaining+ {:.3}",
            util[2],
            util[4]
        );
        assert!(
            util[3] <= util[4] + 0.01,
            "{stencil}: Chaining vs Chaining+"
        );
    }
}

/// §III: the extension's area overhead is below 2 %.
#[test]
fn claim_area_overhead_below_two_percent() {
    let area = AreaEstimate::for_config(&CoreConfig::new());
    assert!(area.chaining_overhead() < 0.02);
    assert!(area.chaining_overhead() > 0.0);
}

/// §III: power lands in the paper's ~60 mW ballpark at 1 GHz.
#[test]
fn claim_power_in_papers_ballpark() {
    let gen =
        StencilKernel::new(Stencil::box3d1r(), Grid3::new(16, 6, 4), Variant::Base).expect("valid");
    let m = measure(
        &gen.build(),
        CoreConfig::new(),
        &EnergyModel::new(),
        100_000_000,
    )
    .expect("measures");
    assert!(
        (45.0..=75.0).contains(&m.power_mw()),
        "power {:.1} mW, paper reports ≈ 60 mW",
        m.power_mw()
    );
}

/// The register-budget arithmetic behind the paper's "register-limited"
/// argument: the chained variants fit all 27 coefficients, the baselines
/// cannot.
#[test]
#[allow(clippy::assertions_on_constants)] // the claim *is* constant arithmetic
fn claim_register_budget() {
    // Chained: 3 SSR + 1 chained accumulator + 27 coefficients = 31 ≤ 32.
    assert!(3 + 1 + 27 <= 32);
    // Baselines: 3 SSR + 8 accumulators + 2 scratch + 27 coefficients > 32.
    assert!(3 + 8 + 2 + 27 > 32);
}
