//! Failure injection: strict mode must turn software misuse into
//! descriptive errors, and lenient mode must stay deterministic.

use scalar_chaining::prelude::*;
use scalar_chaining::ssr::CfgAddr as Cfg;

fn t(i: u8) -> IntReg {
    IntReg::new(i)
}

fn arm_read_stream(b: &mut ProgramBuilder, dm: u8, base: u32, n: u32) {
    let tmp = t(28);
    b.li(tmp, n as i32 - 1);
    b.scfgwi(tmp, Cfg { dm, reg: 2 }.to_imm());
    b.li(tmp, 8);
    b.scfgwi(tmp, Cfg { dm, reg: 6 }.to_imm());
    b.li(tmp, base as i32);
    b.scfgwi(tmp, Cfg { dm, reg: 24 }.to_imm());
}

#[test]
fn reading_more_than_streamed_is_an_error() {
    let mut b = ProgramBuilder::new();
    b.li(t(5), 1);
    b.csrrs(IntReg::ZERO, csr::SSR_ENABLE, t(5));
    arm_read_stream(&mut b, 0, 0x100, 2);
    // Stream holds 2 elements; read 3.
    for k in 0..3u8 {
        b.fmv_d(FpReg::new(8 + k), FpReg::FT0);
    }
    b.ecall();
    let mut sim = Simulator::new(CoreConfig::new(), b.build().unwrap());
    let err = sim.run(10_000).unwrap_err();
    assert_eq!(err, SimError::StreamReadExhausted { dm: 0 });
}

#[test]
fn ecall_with_undelivered_stream_elements_is_an_error() {
    let mut b = ProgramBuilder::new();
    b.li(t(5), 1);
    b.csrrs(IntReg::ZERO, csr::SSR_ENABLE, t(5));
    arm_read_stream(&mut b, 0, 0x100, 4);
    b.fmv_d(FpReg::new(8), FpReg::FT0); // consume only 1 of 4
    b.ecall();
    let mut sim = Simulator::new(CoreConfig::new(), b.build().unwrap());
    let err = sim.run(10_000).unwrap_err();
    assert_eq!(err, SimError::EcallWithActiveStream { dm: 0 });
}

#[test]
fn out_of_bounds_stream_is_reported_with_address_context() {
    let mut b = ProgramBuilder::new();
    b.li(t(5), 1);
    b.csrrs(IntReg::ZERO, csr::SSR_ENABLE, t(5));
    // Arm a stream that runs past the end of the TCDM.
    let size = CoreConfig::new().tcdm.size;
    arm_read_stream(&mut b, 0, size - 8, 4);
    for k in 0..4u8 {
        b.fmv_d(FpReg::new(8 + k), FpReg::FT0);
    }
    b.ecall();
    let mut sim = Simulator::new(CoreConfig::new(), b.build().unwrap());
    let err = sim.run(10_000).unwrap_err();
    // Surfaced through the stream layer with full address context.
    assert!(matches!(err, SimError::Ssr(_)), "{err}");
    assert!(err.to_string().contains("outside memory"), "{err}");
}

#[test]
fn oversized_frep_body_is_reported() {
    let mut b = ProgramBuilder::new();
    b.li(t(6), 3);
    // Body larger than the 16-entry sequence buffer.
    b.frep_o(t(6), 20, 0, 0);
    for _ in 0..20 {
        b.fadd_d(FpReg::new(8), FpReg::new(9), FpReg::new(10));
    }
    b.ecall();
    let mut sim = Simulator::new(CoreConfig::new(), b.build().unwrap());
    match sim.run(10_000).unwrap_err() {
        SimError::Seq(e) => assert!(e.to_string().contains("exceeds")),
        other => panic!("expected sequencer error, got {other}"),
    }
}

#[test]
fn misaligned_fp_access_is_reported() {
    let mut b = ProgramBuilder::new();
    b.li(t(10), 0x104); // 4-byte aligned, not 8
    b.fld(FpReg::new(8), t(10), 0);
    b.ecall();
    let mut sim = Simulator::new(CoreConfig::new(), b.build().unwrap());
    match sim.run(10_000).unwrap_err() {
        SimError::Mem(e) => assert!(e.to_string().contains("misaligned")),
        other => panic!("expected memory error, got {other}"),
    }
}

#[test]
fn fetch_past_program_end_is_reported() {
    let mut b = ProgramBuilder::new();
    b.nop(); // no ecall
    let mut sim = Simulator::new(CoreConfig::new(), b.build().unwrap());
    assert_eq!(
        sim.run(100).unwrap_err(),
        SimError::FetchOutOfProgram { pc: 4 }
    );
}

#[test]
fn rearming_active_stream_stalls_until_complete_not_corrupt() {
    // Re-arming a stream that still has elements is NOT an immediate
    // error: the pointer write waits for completion (hardware-safe
    // serialisation). With a consumer that never drains, it becomes a
    // deterministic hang.
    let mut b = ProgramBuilder::new();
    b.li(t(5), 1);
    b.csrrs(IntReg::ZERO, csr::SSR_ENABLE, t(5));
    arm_read_stream(&mut b, 0, 0x100, 8);
    b.li(t(28), 0x200_i32);
    b.scfgwi(t(28), Cfg { dm: 0, reg: 24 }.to_imm()); // re-arm while active
    b.ecall();
    let mut sim = Simulator::new(CoreConfig::new(), b.build().unwrap());
    assert_eq!(
        sim.run(1_000).unwrap_err(),
        SimError::MaxCyclesExceeded { max_cycles: 1_000 }
    );
}

#[test]
fn lenient_mode_is_available_for_bringup() {
    // The same chaining misuse that errors in strict mode proceeds (with
    // defined semantics) in lenient mode.
    let cfg = CoreConfig::new().with_chaining(false).with_strict(false);
    let mut b = ProgramBuilder::new();
    b.li(t(5), 8);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t(5)); // ignored
    b.ecall();
    let mut sim = Simulator::new(cfg, b.build().unwrap());
    sim.run(1_000)
        .expect("lenient core ignores the chaining CSR");
}
