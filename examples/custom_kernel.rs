//! Using the public API for your own workload: a chained dot-product-like
//! reduction written directly against the assembler and simulator,
//! including stream configuration — the template for porting new kernels
//! onto the chaining core.
//!
//! Computes `s[j] = Σ_i x[16 j + i] · y[16 j + i]` (blocked dot products)
//! with a chained accumulator: the four partial sums live in ONE
//! architectural register's logical FIFO and are reduced at the end.
//!
//! Run with `cargo run --release --example custom_kernel`.

use scalar_chaining::prelude::*;

const X_BASE: u32 = 0x1000;
const Y_BASE: u32 = 0x4000;
const S_BASE: u32 = 0x7000;
const BLOCKS: u32 = 8;
const BLOCK: u32 = 16;

fn build_program() -> Result<Program, Box<dyn std::error::Error>> {
    let (t0, blk, nblk, sptr) = (
        IntReg::new(5),
        IntReg::new(10),
        IntReg::new(11),
        IntReg::new(12),
    );
    let acc = FpReg::FT3; // chained accumulator
    let (r0, r1) = (FpReg::new(8), FpReg::new(9)); // reduction temporaries
    let n = BLOCKS * BLOCK;

    let mut b = ProgramBuilder::new();
    // Streams: x → ft0, y → ft1 (one arm for the whole run).
    b.li(t0, 1);
    b.csrrs(IntReg::ZERO, csr::SSR_ENABLE, t0);
    for (dm, base) in [(0u8, X_BASE), (1, Y_BASE)] {
        b.li(t0, n as i32 - 1);
        b.scfgwi(t0, CfgAddr { dm, reg: 2 }.to_imm());
        b.li(t0, 8);
        b.scfgwi(t0, CfgAddr { dm, reg: 6 }.to_imm());
        b.li(t0, base as i32);
        b.scfgwi(t0, CfgAddr { dm, reg: 24 }.to_imm());
    }
    // Chain ft3.
    b.li(t0, acc.chain_mask_bit() as i32);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t0);

    b.li(blk, 0);
    b.li(nblk, BLOCKS as i32);
    b.li(sptr, S_BASE as i32);
    b.label("block");
    // Fill the FIFO with 4 products, then accumulate 3 more rounds of 4:
    // fmadd pops partial sum i and pushes partial sum i' — a rotating
    // 4-deep accumulator bank in one register.
    for _ in 0..4 {
        b.fmul_d(acc, FpReg::FT0, FpReg::FT1);
    }
    for _ in 0..3 {
        for _ in 0..4 {
            b.fmadd_d(acc, FpReg::FT0, FpReg::FT1, acc);
        }
    }
    // Reduce the 4 partial sums. Each read of a chained register pops
    // exactly one element (a single register read, broadcast to every
    // operand position naming it), so the drain uses one fmv per element.
    b.fmv_d(r0, acc); // pop p0
    b.fmv_d(r1, acc); // pop p1
    b.fadd_d(r0, r0, r1);
    b.fmv_d(r1, acc); // pop p2
    b.fadd_d(r0, r0, r1);
    b.fmv_d(r1, acc); // pop p3
    b.fadd_d(r0, r0, r1);
    b.fsd(r0, sptr, 0);
    b.addi(sptr, sptr, 8);
    b.addi(blk, blk, 1);
    b.bne(blk, nblk, "block");

    b.csrrw(IntReg::ZERO, csr::CHAIN_MASK, IntReg::ZERO);
    b.csrrw(IntReg::ZERO, csr::SSR_ENABLE, IntReg::ZERO);
    b.ecall();
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build_program()?;
    let mut sim = Simulator::new(CoreConfig::new(), program);

    let n = (BLOCKS * BLOCK) as usize;
    let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.25).collect();
    let y: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect();
    sim.tcdm_mut().write_f64_slice(X_BASE, &x)?;
    sim.tcdm_mut().write_f64_slice(Y_BASE, &y)?;

    let summary = sim.run(1_000_000)?;

    // Check against a reference that mirrors the rotation: partial sum p
    // accumulates the elements with i ≡ p (mod 4); the drain sums the
    // four partials in pop order.
    for j in 0..BLOCKS as usize {
        let mut partial = [0.0f64; 4];
        for i in 0..BLOCK as usize {
            let idx = j * BLOCK as usize + i;
            let p = i % 4;
            partial[p] = x[idx].mul_add(y[idx], partial[p]);
        }
        let want = ((partial[0] + partial[1]) + partial[2]) + partial[3];
        let got = sim.tcdm().read_f64(S_BASE + 8 * j as u32)?;
        assert!(
            (got - want).abs() < 1e-12,
            "block {j}: got {got}, want {want}"
        );
    }
    println!(
        "8 blocked reductions verified in {} cycles (fpu util {:.1} %).",
        summary.cycles,
        summary.counters.fpu_utilization() * 100.0
    );
    println!();
    println!("Porting checklist demonstrated here:");
    println!("  1. arm read streams once when the walk is affine end-to-end;");
    println!("  2. fill the chained FIFO with `depth+1` independent products;");
    println!("  3. rotate it with pop-and-push fmadds (no WAW stalls);");
    println!("  4. drain with explicit pops before disabling the chain mask.");
    Ok(())
}
