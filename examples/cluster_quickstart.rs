//! Cluster quickstart: the paper's `Chaining+` stencil tiled across a
//! 4-core cluster sharing one banked TCDM, next to the same kernel on a
//! single core — scaling, bank conflicts and the barrier in one page.
//!
//! Run with `cargo run --release --example cluster_quickstart`.

use scalar_chaining::prelude::*;

fn main() -> Result<(), KernelError> {
    let grid = Grid3::new(16, 8, 8);
    let gen = StencilKernel::new(Stencil::box3d1r(), grid, Variant::ChainingPlus)
        .expect("box3d1r is a dense box");

    // Single core, as in PRs past.
    let single = gen.build().run(CoreConfig::new(), 100_000_000)?;
    println!(
        "1 core : {:>6} cycles, {:.1}% FPU utilisation",
        single.summary.cycles,
        single.measured().fpu_utilization() * 100.0
    );

    // Four harts over the same shared TCDM: the grid's z-planes are
    // tiled across the cluster, each hart streams its own slab, and all
    // harts rendezvous on the cluster barrier before halting.
    let clustered = gen.build_cluster(4).run(CoreConfig::new(), 100_000_000)?;
    let s = &clustered.summary;
    println!(
        "4 cores: {:>6} cycles, {:.1}% cluster utilisation, {:.2}x speedup",
        s.cycles,
        s.cluster_utilization() * 100.0,
        single.summary.cycles as f64 / s.cycles as f64
    );
    println!(
        "         {} barrier episode(s), per-core conflicts {:?}",
        s.barriers, s.core_conflicts
    );

    // Cluster-level energy/area: the shared TCDM amortises, the chaining
    // extension's area share *shrinks* at cluster level.
    let per_core: Vec<PerfCounters> = s.per_core.iter().map(|c| c.counters).collect();
    let energy = EnergyModel::new().cluster_report(&per_core, s.cycles);
    let area = ClusterAreaEstimate::for_cluster(&CoreConfig::new(), 4);
    println!(
        "         {:.1} mW cluster power, {:.1} Gflop/s/W, chaining area share {:.2}%",
        energy.power_mw,
        energy.gflops_per_w,
        area.chaining_overhead() * 100.0
    );
    Ok(())
}
