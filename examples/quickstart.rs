//! Quickstart: build a tiny chained program by hand, run it, and watch the
//! chaining extension at work — the paper's Fig. 1 idea in ~60 lines.
//!
//! Run with `cargo run --release --example quickstart`.

use scalar_chaining::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write the paper's Fig. 1c program with the builder: four fadds
    //    push into chained ft3, four fmuls pop — one temporary register
    //    instead of four, no WAW stalls.
    let t0 = IntReg::new(5);
    let b_coef = FpReg::new(4);
    let mut asm = ProgramBuilder::new();

    // Enable chaining on ft3 (the CSR at 0x7C3, mask bit 3 = 8).
    asm.li(t0, FpReg::FT3.chain_mask_bit() as i32); // li t0, 8
    asm.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t0); //   csrs 0x7C3, t0

    for _ in 0..4 {
        asm.fadd_d(FpReg::FT3, FpReg::new(6), FpReg::new(7)); // push ×4
    }
    for k in 0..4u8 {
        asm.fmul_d(FpReg::new(8 + k), FpReg::FT3, b_coef); // pop ×4
    }
    asm.csrrw(IntReg::ZERO, csr::CHAIN_MASK, IntReg::ZERO); // disable
    asm.ecall();
    let program = asm.build()?;
    println!("program:\n{program}");

    // 2. Run it on the default core (3-stage FPU, like Snitch).
    let mut sim = Simulator::new(CoreConfig::new().with_trace(true), program);
    sim.set_fp_reg(FpReg::new(6), 1.25);
    sim.set_fp_reg(FpReg::new(7), 0.75);
    sim.set_fp_reg(b_coef, 10.0);
    let summary = sim.run(1_000)?;

    // All four pops observed the same (1.25 + 0.75) value in FIFO order.
    for k in 0..4u8 {
        assert_eq!(sim.fp_reg(FpReg::new(8 + k)), 20.0);
    }
    println!("issue trace:\n{}", summary.trace.render());
    println!(
        "ran in {} cycles; the four fadds issued back-to-back (no WAW hazard \
         on ft3) and the fmuls popped their results in order.",
        summary.cycles
    );

    // 3. The same effect, production-sized: the prebuilt Fig. 1 kernels.
    for variant in VecOpVariant::ALL {
        let kernel = VecOpKernel::new(256, variant).build();
        let run = kernel.run(CoreConfig::new(), 1_000_000)?;
        let m = run.measured();
        println!(
            "{:<18} {:>6} cycles  fpu-util {:>5.1}%  extra regs {}",
            kernel.name(),
            m.cycles,
            m.fpu_utilization() * 100.0,
            variant.extra_registers()
        );
    }
    Ok(())
}
