//! The register-pressure trade-off that motivates the paper: hiding FPU
//! latency by unrolling costs one architectural register per in-flight
//! result; chaining costs one register total.
//!
//! This example sweeps both the unroll factor (at fixed FPU depth) and the
//! FPU depth (at matched unroll) and prints the utilisation/register
//! trade-off tables.
//!
//! Run with `cargo run --release --example register_pressure`.

use scalar_chaining::fpu::FpuTiming;
use scalar_chaining::prelude::*;

fn run_one(cfg: CoreConfig, variant: VecOpVariant, unroll: u32) -> f64 {
    let kernel = VecOpKernel::with_unroll(840, variant, unroll).build();
    kernel
        .run(cfg, 10_000_000)
        .unwrap_or_else(|e| panic!("{variant} unroll {unroll}: {e}"))
        .measured()
        .fpu_utilization()
}

fn main() {
    println!("── software pipelining at the default 3-stage FPU ──────────────");
    println!("{:<24} {:>9} {:>10}", "schedule", "FP regs", "fpu util");
    for unroll in [1u32, 2, 3, 4] {
        let util = run_one(CoreConfig::new(), VecOpVariant::Unrolled, unroll);
        println!(
            "{:<24} {:>9} {:>9.1}%",
            format!("unrolled ×{unroll}"),
            unroll,
            util * 100.0
        );
    }
    let chained = run_one(CoreConfig::new(), VecOpVariant::Chained, 4);
    println!("{:<24} {:>9} {:>9.1}%", "chained", 1, chained * 100.0);

    println!();
    println!("── and as the pipeline gets deeper (registers to hide latency) ──");
    println!(
        "{:<8} {:>22} {:>18}",
        "depth", "unrolled needs regs", "chained needs regs"
    );
    for depth in [2u32, 3, 4, 6, 7] {
        let cfg = CoreConfig::new().with_fpu(FpuTiming::new().with_addmul_latency(depth));
        let u = run_one(cfg, VecOpVariant::Unrolled, depth + 1);
        let c = run_one(cfg, VecOpVariant::Chained, depth + 1);
        println!(
            "{:<8} {:>12} ({:>5.1}%) {:>8} ({:>5.1}%)",
            depth,
            depth + 1,
            u * 100.0,
            1,
            c * 100.0
        );
    }
    println!();
    println!("Chaining turns the FPU's own pipeline registers into the FIFO that");
    println!("unrolling would otherwise build out of architectural registers —");
    println!("\"without incurring increased register pressure\" (paper, §IV).");
}
