//! The paper's headline experiment in miniature: run the register-limited
//! `box3d1r` stencil in all five code variants and compare runtime, FPU
//! utilisation, memory traffic and energy efficiency — then push the best
//! variant through the full memory hierarchy (tiled clusters behind a
//! *finite* shared L2) and read the cache statistics back.
//!
//! Run with `cargo run --release --example stencil_sweep`.
//! Add `--trace <path>` to record the tiled part of the run as a
//! Chrome/Perfetto timeline (open the file at <https://ui.perfetto.dev>):
//! per-hart issue/stall states, DMA bursts, L2 refill and write-back
//! channel occupancy.
//! For the full Fig. 3 (both stencils, paper-style summary) use
//! `cargo run --release -p sc-bench --bin fig3`.

use scalar_chaining::mem::{DramConfig, L2Config};
use scalar_chaining::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--trace" => Some(std::path::PathBuf::from(path)),
        _ => return Err("usage: stencil_sweep [--trace <path>]".into()),
    };
    let grid = Grid3::new(16, 8, 4);
    let model = EnergyModel::new();
    println!(
        "box3d1r on a {}×{}×{} interior tile ({} outputs, 27-point stencil)\n",
        grid.nx,
        grid.ny,
        grid.nz,
        grid.interior_len()
    );
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "variant", "cycles", "fpu-util", "tcdm reads", "power[mW]", "Gflop/s/W"
    );
    let mut base_cycles = 0u64;
    for variant in Variant::ALL {
        let generator = StencilKernel::new(Stencil::box3d1r(), grid, variant)?;
        let kernel = generator.build();
        let run = kernel.run(CoreConfig::new(), 100_000_000)?;
        let m = run.measured();
        let energy = model.report(m);
        if variant == Variant::Base {
            base_cycles = m.cycles;
        }
        println!(
            "{:<12} {:>8} {:>9.1}% {:>12} {:>12.1} {:>12.1}",
            variant.label(),
            m.cycles,
            m.fpu_utilization() * 100.0,
            m.tcdm_accesses,
            energy.power_mw,
            energy.gflops_per_w
        );
    }
    println!();
    println!("What to look for (the paper's §III story):");
    println!(" * Base streams the 27 coefficients from L1 every block — the");
    println!("   highest TCDM column — while the chained variants keep them in");
    println!("   the registers freed by the chained accumulator.");
    println!(" * Chaining+ additionally retires results through the stream the");
    println!("   coefficients no longer need, dropping the explicit stores.");
    if base_cycles > 0 {
        let chp = StencilKernel::new(Stencil::box3d1r(), grid, Variant::ChainingPlus)?
            .build()
            .run(CoreConfig::new(), 100_000_000)?;
        println!(
            " * Net effect here: {:.1} % speedup of Chaining+ over Base.",
            (base_cycles as f64 / chp.measured().cycles as f64 - 1.0) * 100.0
        );
    }

    // Part two: the same stencil through the full memory hierarchy — two
    // tiled clusters double-buffering their slabs behind a *finite*
    // shared L2 whose capacity deliberately under-fits the working set,
    // so capacity evictions and dirty write-backs appear.
    let big = Grid3::new(16, 16, 16);
    let gen = StencilKernel::new(Stencil::box3d1r(), big, Variant::ChainingPlus)?;
    let tiled = gen.build_system_tiled(2, 2, TCDM_CAP_BYTES)?;
    let ws = tiled.working_set();
    println!();
    println!(
        "Tiled m2x2 run of a {}×{}×{} grid — working set: {} B distinct",
        big.nx,
        big.ny,
        big.nz,
        ws.footprint_bytes()
    );
    println!(
        "footprint ({} lines of 256 B), {} B moved (halo revisits included).",
        ws.l2_lines(256),
        ws.traffic_bytes()
    );
    // A quarter of the footprint, rounded to whole sets of 4 × 256 B.
    let capacity = (ws.footprint_bytes() as u32 / 4) / 1024 * 1024;
    let l2 = L2Config::new()
        .with_capacity_bytes(capacity)
        .with_ways(4)
        .with_mshrs(8)
        .with_refill_channels(2)
        .with_write_back(true);
    let session = TraceSession::new(TraceConfig::new());
    let tracer = if trace_path.is_some() {
        session.tracer()
    } else {
        Tracer::off()
    };
    let run = tiled.run_traced(
        CoreConfig::new(),
        l2,
        DramConfig::new(),
        100_000_000,
        tracer,
    )?;
    let s = run.summary;
    let l2_stats = s.l2.as_ref().expect("shared L2 attached");
    let c = &l2_stats.cache;
    println!(
        "Under a {capacity} B / 4-way / 2-channel write-back L2: {} cycles,",
        s.cycles
    );
    println!(
        " * cache: {} hits, {} serviced misses, {} refilled lines,",
        c.read_hits, c.read_misses, c.refills
    );
    println!(
        " * capacity: {} evictions ({} dirty) -> {} write-back beats to Dram,",
        c.evictions, c.dirty_evictions, s.l2_writeback_beats
    );
    println!(
        " * MSHRs: {} allocations, {} same-line merges, peak occupancy {}.",
        c.mshr_allocations, c.mshr_merges, c.mshr_peak
    );
    println!("Sweep these knobs with `cargo run --release -p sc-bench --bin l2_ablation`.");
    if let Some(path) = trace_path {
        std::fs::write(&path, session.perfetto_json())?;
        println!(
            "Perfetto timeline ({} events) written to {} — open it at ui.perfetto.dev.",
            session.events_buffered(),
            path.display()
        );
    }
    Ok(())
}
