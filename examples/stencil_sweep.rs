//! The paper's headline experiment in miniature: run the register-limited
//! `box3d1r` stencil in all five code variants and compare runtime, FPU
//! utilisation, memory traffic and energy efficiency.
//!
//! Run with `cargo run --release --example stencil_sweep`.
//! For the full Fig. 3 (both stencils, paper-style summary) use
//! `cargo run --release -p sc-bench --bin fig3`.

use scalar_chaining::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid3::new(16, 8, 4);
    let model = EnergyModel::new();
    println!(
        "box3d1r on a {}×{}×{} interior tile ({} outputs, 27-point stencil)\n",
        grid.nx,
        grid.ny,
        grid.nz,
        grid.interior_len()
    );
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "variant", "cycles", "fpu-util", "tcdm reads", "power[mW]", "Gflop/s/W"
    );
    let mut base_cycles = 0u64;
    for variant in Variant::ALL {
        let generator = StencilKernel::new(Stencil::box3d1r(), grid, variant)?;
        let kernel = generator.build();
        let run = kernel.run(CoreConfig::new(), 100_000_000)?;
        let m = run.measured();
        let energy = model.report(m);
        if variant == Variant::Base {
            base_cycles = m.cycles;
        }
        println!(
            "{:<12} {:>8} {:>9.1}% {:>12} {:>12.1} {:>12.1}",
            variant.label(),
            m.cycles,
            m.fpu_utilization() * 100.0,
            m.tcdm_accesses,
            energy.power_mw,
            energy.gflops_per_w
        );
    }
    println!();
    println!("What to look for (the paper's §III story):");
    println!(" * Base streams the 27 coefficients from L1 every block — the");
    println!("   highest TCDM column — while the chained variants keep them in");
    println!("   the registers freed by the chained accumulator.");
    println!(" * Chaining+ additionally retires results through the stream the");
    println!("   coefficients no longer need, dropping the explicit stores.");
    if base_cycles > 0 {
        let chp = StencilKernel::new(Stencil::box3d1r(), grid, Variant::ChainingPlus)?
            .build()
            .run(CoreConfig::new(), 100_000_000)?;
        println!(
            " * Net effect here: {:.1} % speedup of Chaining+ over Base.",
            (base_cycles as f64 / chp.measured().cycles as f64 - 1.0) * 100.0
        );
    }
    Ok(())
}
