//! Runs the paper's Fig. 1 code listings *as printed* — fed through the
//! text assembler (`parse_asm`), executed on the simulated core, with the
//! issue traces rendered next to each other.
//!
//! Run with `cargo run --release --example paper_listings`.

use scalar_chaining::isa::parse_asm;
use scalar_chaining::prelude::*;
use scalar_chaining::ssr::CfgAddr;

/// Shared prologue: stream c into ft0, d into ft1, a out of ft2; the
/// scalar b waits in ft4 (the `%[b]` operand of the paper's listings).
fn prologue(n: u32) -> String {
    let mut s = String::from("li t2, 0x100\nfld ft4, 0(t2)\nli t0, 1\ncsrs 0x7C0, t0\n");
    for (dm, base, write) in [(0, 0x1000u32, false), (1, 0x3000, false), (2, 0x5000, true)] {
        let bound = CfgAddr { dm, reg: 2 }.to_imm();
        let stride = CfgAddr { dm, reg: 6 }.to_imm();
        let arm = CfgAddr {
            dm,
            reg: if write { 28 } else { 24 },
        }
        .to_imm();
        s.push_str(&format!(
            "li t0, {}\nscfgwi t0, {bound}\nli t0, 8\nscfgwi t0, {stride}\nli t0, {base}\nscfgwi t0, {arm}\n",
            n - 1
        ));
    }
    s
}

fn run(name: &str, body: &str, n: u32) -> Result<(), Box<dyn std::error::Error>> {
    let src = format!(
        "{}\nli a0, 0\nli a1, {}\n{body}\necall\n",
        prologue(n),
        n / 4
    );
    let program = parse_asm(&src)?;
    let mut sim = Simulator::new(CoreConfig::new().with_trace(true), program);
    sim.tcdm_mut().write_f64(0x100, 2.0)?;
    for k in 0..n {
        sim.tcdm_mut().write_f64(0x1000 + 8 * k, f64::from(k))?;
        sim.tcdm_mut().write_f64(0x3000 + 8 * k, 1.0)?;
    }
    let summary = sim.run(100_000)?;
    for k in 0..n {
        let got = sim.tcdm().read_f64(0x5000 + 8 * k)?;
        assert_eq!(got, 2.0 * (f64::from(k) + 1.0), "a[{k}]");
    }
    println!(
        "--- {name}: {} cycles, {} FP issues ---",
        summary.cycles,
        summary.trace.fp_issue_count()
    );
    let skip = summary.trace.cycles().first().map_or(0, |c| c.cycle) + 40;
    println!("{}", summary.trace.window(skip, skip + 12).render());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    // Fig. 1a — note `bneq` and the raw -12 offset, exactly as printed
    // (the loop counter counts single elements here).
    run(
        "Fig. 1a (baseline)",
        &format!(
            "li a1, {n}\nloop:\nfadd.d ft3, ft0, ft1\nfmul.d ft2, ft3, ft4\naddi a0, a0, 1\nbneq a0, a1, loop"
        ),
        n,
    )?;
    // Fig. 1b — unrolled by four (temporaries ft5..ft7 + fs0 to keep the
    // scalar in ft4).
    run(
        "Fig. 1b (unrolled)",
        "loop:
         fadd.d ft5, ft0, ft1
         fadd.d ft6, ft0, ft1
         fadd.d ft7, ft0, ft1
         fadd.d fs0, ft0, ft1
         fmul.d ft2, ft5, ft4
         fmul.d ft2, ft6, ft4
         fmul.d ft2, ft7, ft4
         fmul.d ft2, fs0, ft4
         addi a0, a0, 1
         bneq a0, a1, loop",
        n,
    )?;
    // Fig. 1c — the chaining listing: mask 8 enables FIFO semantics on
    // ft3; the four fadds share one destination with no WAW hazard.
    run(
        "Fig. 1c (chaining)",
        "li t1, 8
         csrs 0x7C3, t1
         loop:
         fadd.d ft3, ft0, ft1
         fadd.d ft3, ft0, ft1
         fadd.d ft3, ft0, ft1
         fadd.d ft3, ft0, ft1
         fmul.d ft2, ft3, ft4
         fmul.d ft2, ft3, ft4
         fmul.d ft2, ft3, ft4
         fmul.d ft2, ft3, ft4
         addi a0, a0, 1
         bneq a0, a1, loop
         csrw 0x7C3, x0",
        n,
    )?;
    println!("All three listings verified against a = b*(c+d).");
    println!("(With the branch loop, both optimised variants are integer-issue");
    println!("bound; the real kernels drive the loop with frep — see fig1_trace.)");
    Ok(())
}
