//! # sc-dma — the per-cluster DMA engine
//!
//! A cycle-stepped model of a Snitch-style cluster DMA mover: it drains a
//! FIFO of 1D/2D strided transfer descriptors, moving 64-bit beats
//! between the unbounded background memory ([`sc_mem::Dram`]) and the
//! banked TCDM. The TCDM side of every beat goes through the *same*
//! crossbar arbitration as the cores' ports ([`sc_mem::Tcdm::arbitrate`]),
//! so DMA traffic contends for banks — and shows up in the per-bank
//! conflict statistics — exactly like compute traffic does.
//!
//! ## Timing
//!
//! Each transfer pays [`sc_mem::DramConfig::latency`] cycles of startup,
//! then moves one 64-bit beat per TCDM grant, throttled to at most one
//! beat every [`sc_mem::DramConfig::cycles_per_beat`] cycles. A beat that
//! loses TCDM arbitration retries the next cycle (a bank conflict,
//! charged to the engine's port). Transfers complete strictly in FIFO
//! order; the monotonic completion counter is what programs poll through
//! the `DMA_COMPLETED` CSR to synchronise double-buffered tiles.
//!
//! ## Step protocol
//!
//! The owner (usually `sc-cluster`) drives one engine cycle as:
//! [`DmaEngine::begin_cycle`] → [`DmaEngine::request`] → (arbitrate) →
//! [`DmaEngine::apply_grant`] → [`DmaEngine::end_cycle`]. A lone engine
//! can be stepped to completion with [`DmaEngine::run_to_idle`].
//!
//! ```
//! use sc_dma::{DmaEngine, Transfer};
//! use sc_mem::{Dram, DramConfig, PortId, Tcdm, TcdmConfig};
//!
//! let mut dram = Dram::new(DramConfig::new().with_latency(4));
//! let mut tcdm = Tcdm::new(TcdmConfig::new().with_size(4096).with_banks(4));
//! dram.write_f64(0x1000, 6.25)?;
//!
//! let mut dma = DmaEngine::new(PortId(9));
//! dma.enqueue(Transfer::contiguous(0x1000, 0x100, 8, true))?;
//! dma.run_to_idle(&mut tcdm, &mut dram, 1_000)?;
//! assert_eq!(tcdm.read_f64(0x100)?, 6.25);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::fmt;

use sc_mem::{AccessKind, Dram, DramConfig, MemError, PortId, PrefetchHint, Request, Tcdm};
use sc_trace::{MetricSource, Tracer, Track};

/// Beat width in bytes: the engine moves 64-bit words, matching the TCDM
/// bank width.
pub const BEAT_BYTES: u32 = 8;

/// Undrained stride hints the engine keeps at most (oldest dropped):
/// in-tree owners drain every cycle, so the bound only protects
/// stand-alone engine users who never attach a prefetching L2.
pub const HINT_BUFFER: usize = 64;

/// A 1D/2D strided transfer descriptor.
///
/// The transfer moves `reps` rows of `row_bytes` bytes each; consecutive
/// rows start `dram_stride` / `tcdm_stride` bytes apart on their
/// respective sides. `reps == 1` with equal strides is a plain 1D copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Byte address on the background-memory side.
    pub dram_addr: u32,
    /// Byte address on the TCDM side.
    pub tcdm_addr: u32,
    /// Bytes per row (positive multiple of [`BEAT_BYTES`]).
    pub row_bytes: u32,
    /// Byte distance between consecutive row starts on the Dram side.
    pub dram_stride: u32,
    /// Byte distance between consecutive row starts on the TCDM side.
    pub tcdm_stride: u32,
    /// Row count (≥ 1).
    pub reps: u32,
    /// Direction: `true` = Dram → TCDM ("in"), `false` = TCDM → Dram.
    pub to_tcdm: bool,
}

impl Transfer {
    /// A 1D contiguous transfer of `bytes` bytes.
    #[must_use]
    pub fn contiguous(dram_addr: u32, tcdm_addr: u32, bytes: u32, to_tcdm: bool) -> Self {
        Transfer {
            dram_addr,
            tcdm_addr,
            row_bytes: bytes,
            dram_stride: bytes,
            tcdm_stride: bytes,
            reps: 1,
            to_tcdm,
        }
    }

    /// Total bytes the transfer moves.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.row_bytes) * u64::from(self.reps)
    }

    fn validate(&self) -> Result<(), DmaError> {
        if self.row_bytes == 0 || self.reps == 0 {
            return Err(DmaError::EmptyTransfer);
        }
        for (field, value) in [
            ("dram_addr", self.dram_addr),
            ("tcdm_addr", self.tcdm_addr),
            ("row_bytes", self.row_bytes),
        ] {
            if !value.is_multiple_of(BEAT_BYTES) {
                return Err(DmaError::Misaligned { field, value });
            }
        }
        if self.reps > 1 {
            for (field, value) in [
                ("dram_stride", self.dram_stride),
                ("tcdm_stride", self.tcdm_stride),
            ] {
                if !value.is_multiple_of(BEAT_BYTES) {
                    return Err(DmaError::Misaligned { field, value });
                }
            }
        }
        Ok(())
    }
}

/// Errors raised by the DMA engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// A descriptor with zero rows or zero bytes per row.
    EmptyTransfer,
    /// A descriptor field not aligned to the 8-byte beat size.
    Misaligned {
        /// Which descriptor field.
        field: &'static str,
        /// Its offending value.
        value: u32,
    },
    /// A functional memory fault while moving a beat (e.g. the TCDM side
    /// of a transfer runs off the end of the scratchpad).
    Mem(MemError),
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::EmptyTransfer => write!(f, "DMA transfer with zero rows or zero-byte rows"),
            DmaError::Misaligned { field, value } => {
                write!(
                    f,
                    "DMA descriptor field {field}={value:#x} is not a multiple of {BEAT_BYTES}"
                )
            }
            DmaError::Mem(e) => write!(f, "DMA beat faulted: {e}"),
        }
    }
}

impl std::error::Error for DmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DmaError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for DmaError {
    fn from(e: MemError) -> Self {
        DmaError::Mem(e)
    }
}

/// Cumulative DMA activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Descriptors accepted into the queue.
    pub transfers_enqueued: u64,
    /// Descriptors fully completed.
    pub transfers_completed: u64,
    /// 64-bit beats moved.
    pub beats: u64,
    /// Bytes moved Dram → TCDM.
    pub bytes_to_tcdm: u64,
    /// Bytes moved TCDM → Dram.
    pub bytes_from_tcdm: u64,
    /// Beats that lost TCDM arbitration (retried next cycle).
    pub tcdm_conflicts: u64,
    /// Busy cycles spent waiting on the background memory (startup
    /// latency + bandwidth throttling), not on the TCDM.
    pub dram_wait_cycles: u64,
    /// Beats that were ready but stalled on the background-memory side
    /// of the hierarchy — an L2 bank lost to another cluster's engine,
    /// or an L2 line still refilling from Dram. Zero when the engine
    /// moves against a private `Dram` (the single-cluster path).
    pub l2_wait_cycles: u64,
    /// The subset of [`DmaStats::l2_wait_cycles`] spent waiting for a
    /// *missing line* (an L2 refill in flight, or a full MSHR file)
    /// rather than losing bank arbitration — the engine-side view of
    /// miss-under-miss behaviour: while one engine sits out these
    /// cycles, other engines' misses to different lines keep their own
    /// MSHRs and refill channels busy.
    pub l2_miss_wait_cycles: u64,
    /// Stride hints derived from accepted Dram→TCDM descriptors at
    /// `DMA_START` — the engine knows its whole future read footprint
    /// the moment the doorbell rings, and publishes it so a prefetching
    /// shared L2 can start pulling the lines before the first beat
    /// arrives ([`DmaEngine::take_prefetch_hints`]).
    pub prefetch_hints: u64,
}

impl DmaStats {
    /// Total bytes moved in either direction.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to_tcdm + self.bytes_from_tcdm
    }
}

impl MetricSource for DmaStats {
    fn source_name(&self) -> &'static str {
        "dma"
    }

    fn visit_metrics(&self, visit: &mut dyn FnMut(&'static str, u64)) {
        visit("transfers_enqueued", self.transfers_enqueued);
        visit("transfers_completed", self.transfers_completed);
        visit("beats", self.beats);
        visit("bytes_to_tcdm", self.bytes_to_tcdm);
        visit("bytes_from_tcdm", self.bytes_from_tcdm);
        visit("tcdm_conflicts", self.tcdm_conflicts);
        visit("dram_wait_cycles", self.dram_wait_cycles);
        visit("l2_wait_cycles", self.l2_wait_cycles);
        visit("l2_miss_wait_cycles", self.l2_miss_wait_cycles);
        visit("prefetch_hints", self.prefetch_hints);
    }
}

/// Progress through the active transfer.
#[derive(Debug, Clone, Copy)]
struct Active {
    t: Transfer,
    row: u32,
    offset: u32,
    /// Cycles still owed to the background memory before the next beat
    /// may move (startup latency, then inter-beat bandwidth gaps).
    wait: u32,
}

impl Active {
    fn dram_cursor(&self) -> u32 {
        self.t
            .dram_addr
            .wrapping_add(self.row.wrapping_mul(self.t.dram_stride))
            .wrapping_add(self.offset)
    }

    fn tcdm_cursor(&self) -> u32 {
        self.t
            .tcdm_addr
            .wrapping_add(self.row.wrapping_mul(self.t.tcdm_stride))
            .wrapping_add(self.offset)
    }
}

/// The cycle-stepped DMA engine (one per cluster).
#[derive(Debug)]
pub struct DmaEngine {
    port: PortId,
    queue: VecDeque<Transfer>,
    active: Option<Active>,
    stats: DmaStats,
    completed: u32,
    /// Whether a beat moved this cycle (so the end-of-cycle wait
    /// decrement does not count the beat's own cycle as a stall).
    moved_this_cycle: bool,
    /// Stride hints published at `DMA_START` and not yet collected by
    /// the owner (the cluster drains this every cycle; hints describe
    /// Dram→TCDM read footprints only — writes allocate in the L2
    /// without a fetch, so prefetching them would be pure waste).
    hints: Vec<PrefetchHint>,
    tracer: Tracer,
    track: Track,
}

impl DmaEngine {
    /// Creates an idle engine whose TCDM requests use `port`.
    #[must_use]
    pub fn new(port: PortId) -> Self {
        DmaEngine {
            port,
            queue: VecDeque::new(),
            active: None,
            stats: DmaStats::default(),
            completed: 0,
            moved_this_cycle: false,
            hints: Vec::new(),
            tracer: Tracer::off(),
            track: Track::new(0, 0),
        }
    }

    /// The engine's TCDM crossbar port.
    #[must_use]
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Subscribes the engine to a trace sink. Burst lifetimes become
    /// spans on `track`, doorbells become instants, and the queue depth
    /// becomes a counter series.
    pub fn set_tracer(&mut self, tracer: Tracer, track: Track) {
        if tracer.is_on() {
            tracer.name_thread(track, "dma");
        }
        self.tracer = tracer;
        self.track = track;
    }

    /// Accepts a transfer descriptor into the FIFO.
    ///
    /// A Dram→TCDM descriptor also publishes its read footprint as a
    /// stride hint ([`DmaEngine::take_prefetch_hints`]). The hint buffer
    /// is bounded ([`HINT_BUFFER`], oldest dropped): an owner that never
    /// drains it — a stand-alone engine with no prefetching memory level
    /// behind it — just loses stale hints, never memory.
    ///
    /// # Errors
    ///
    /// Rejects empty or beat-misaligned descriptors; the queue is
    /// unbounded (descriptor storage is not the modelled resource).
    pub fn enqueue(&mut self, t: Transfer) -> Result<(), DmaError> {
        t.validate()?;
        // DMA_START is the one moment the whole future access pattern is
        // known: publish the Dram-side read footprint as a stride hint a
        // prefetching L2 can act on descriptors ahead of the beats.
        if t.to_tcdm {
            if self.hints.len() >= HINT_BUFFER {
                self.hints.remove(0);
            }
            self.hints.push(PrefetchHint {
                addr: t.dram_addr,
                row_bytes: t.row_bytes,
                stride: t.dram_stride,
                reps: t.reps,
                // The owner rewrites the requester to its arbitration
                // port (the engine itself does not know its cluster id).
                requester: 0,
            });
            self.stats.prefetch_hints += 1;
        }
        self.queue.push_back(t);
        self.stats.transfers_enqueued += 1;
        self.tracer.instant(self.track, "doorbell");
        self.tracer
            .counter(self.track, "dma-queue", self.queue.len() as u64);
        Ok(())
    }

    /// Collects the stride hints published since the last call — the
    /// owner forwards them (requester rewritten to the cluster's id) to
    /// the shared L2's prefetcher, or simply drops them when no
    /// prefetching memory level exists (the single-cluster path).
    pub fn take_prefetch_hints(&mut self) -> Vec<PrefetchHint> {
        std::mem::take(&mut self.hints)
    }

    /// Transfers not yet completed (queued + in flight) — the value the
    /// `DMA_STATUS` CSR reads.
    #[must_use]
    pub fn outstanding(&self) -> u32 {
        self.queue.len() as u32 + u32::from(self.active.is_some())
    }

    /// Monotonic count of completed transfers — the value the
    /// `DMA_COMPLETED` CSR reads. Programs poll it to synchronise
    /// double-buffered tiles (transfers complete strictly in FIFO order).
    ///
    /// The counter is a **wrapping** u32: on long runs it rolls over, so
    /// consumers must compare with wrapping distance
    /// (`target.wrapping_sub(completed) as i32 <= 0`), never with a raw
    /// ordered compare — see `sc-kernels`' completion-poll codegen.
    #[must_use]
    pub fn completed(&self) -> u32 {
        self.completed
    }

    /// Starts the completion counter at an arbitrary value, as if the
    /// engine had already completed `value` transfers in an earlier
    /// phase of a long run. Completion polling must keep working across
    /// the u32 wrap; tests use this to pin the near-wrap behaviour
    /// without simulating four billion transfers.
    pub fn preset_completed(&mut self, value: u32) {
        self.completed = value;
    }

    /// Whether the engine has nothing queued or in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.active.is_none() && self.queue.is_empty()
    }

    /// Whether the engine is working this cycle (valid after
    /// [`DmaEngine::begin_cycle`]).
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.active.is_some()
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> &DmaStats {
        &self.stats
    }

    /// Cycle start: pick up the next queued transfer if idle, paying the
    /// background memory's startup latency.
    pub fn begin_cycle(&mut self, timing: DramConfig) {
        if self.active.is_none() {
            if let Some(t) = self.queue.pop_front() {
                self.tracer.begin(
                    self.track,
                    if t.to_tcdm {
                        "burst-to-tcdm"
                    } else {
                        "burst-from-tcdm"
                    },
                );
                self.tracer
                    .counter(self.track, "dma-queue", self.queue.len() as u64);
                self.active = Some(Active {
                    t,
                    row: 0,
                    offset: 0,
                    wait: timing.latency,
                });
            }
        }
    }

    /// The TCDM request for this cycle's beat, if one is ready (in-flight
    /// transfer, background memory not stalling).
    #[must_use]
    pub fn request(&self) -> Option<Request> {
        let a = self.active.as_ref()?;
        if a.wait > 0 {
            return None;
        }
        Some(Request {
            port: self.port,
            addr: a.tcdm_cursor(),
            kind: if a.t.to_tcdm {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        })
    }

    /// The background-memory side of this cycle's beat, if one is ready:
    /// the byte address the beat reads (Dram→TCDM) or writes (TCDM→Dram)
    /// on the far side of the hierarchy. A system owner arbitrates these
    /// across clusters at the shared L2 *before* the TCDM pass; an
    /// engine whose beat loses there must be told via
    /// [`DmaEngine::note_l2_denied`] instead of receiving a grant.
    #[must_use]
    pub fn dram_request(&self) -> Option<(u32, AccessKind)> {
        let a = self.active.as_ref()?;
        if a.wait > 0 {
            return None;
        }
        Some((
            a.dram_cursor(),
            if a.t.to_tcdm {
                AccessKind::Read
            } else {
                AccessKind::Write
            },
        ))
    }

    /// Records that this cycle's ready beat was stalled on the
    /// background-memory side; the beat retries next cycle, exactly like
    /// a TCDM denial. `miss` distinguishes waiting out a missing line
    /// (refill in flight / MSHR file full) from losing shared-L2 bank
    /// arbitration.
    pub fn note_l2_denied(&mut self, miss: bool) {
        self.stats.l2_wait_cycles += 1;
        if miss {
            self.stats.l2_miss_wait_cycles += 1;
        }
    }

    /// Applies this cycle's arbitration outcome for the request returned
    /// by [`DmaEngine::request`]. A granted beat moves 8 bytes through
    /// the functional interfaces; a denied beat retries next cycle.
    ///
    /// # Errors
    ///
    /// Functional memory faults (misaligned/out-of-bounds TCDM cursor).
    ///
    /// # Panics
    ///
    /// Panics if called without an issuable request this cycle.
    pub fn apply_grant(
        &mut self,
        granted: bool,
        tcdm: &mut Tcdm,
        dram: &mut Dram,
        timing: DramConfig,
    ) -> Result<(), DmaError> {
        let a = self
            .active
            .as_mut()
            .filter(|a| a.wait == 0)
            .expect("apply_grant without an issuable DMA request");
        if !granted {
            self.stats.tcdm_conflicts += 1;
            return Ok(());
        }
        if a.t.to_tcdm {
            let v = dram.read_u64(a.dram_cursor())?;
            tcdm.write_u64(a.tcdm_cursor(), v)?;
            self.stats.bytes_to_tcdm += u64::from(BEAT_BYTES);
        } else {
            let v = tcdm.read_u64(a.tcdm_cursor())?;
            dram.write_u64(a.dram_cursor(), v)?;
            self.stats.bytes_from_tcdm += u64::from(BEAT_BYTES);
        }
        self.stats.beats += 1;
        self.moved_this_cycle = true;
        a.offset += BEAT_BYTES;
        if a.offset == a.t.row_bytes {
            a.offset = 0;
            a.row += 1;
        }
        if a.row == a.t.reps {
            self.active = None;
            self.completed = self.completed.wrapping_add(1);
            self.stats.transfers_completed += 1;
            self.tracer.end(self.track);
        } else {
            // Bandwidth throttle: a beat occupies the channel for
            // `cycles_per_beat` cycles including its own, so the next
            // beat may move `cycles_per_beat` cycles later.
            a.wait = timing.cycles_per_beat;
        }
        Ok(())
    }

    /// Cycles the in-flight transfer still owes the background memory
    /// before its next beat can move: `Some(wait)` when a transfer is
    /// active (0 = a beat is issuable right now), `None` when no
    /// transfer is in flight. Valid between cycles (after
    /// [`DmaEngine::end_cycle`]); an event-driven owner uses a positive
    /// value as the engine's next wake distance, because every cycle of
    /// the countdown is a closed-form no-op ([`DmaEngine::skip`]).
    #[must_use]
    pub fn stalled_for(&self) -> Option<u32> {
        self.active.as_ref().map(|a| a.wait)
    }

    /// Bulk-applies `cycles` countdown cycles to the in-flight transfer:
    /// exactly what that many dense `begin_cycle`/`end_cycle` pairs
    /// would have done while `wait > 0` — the wait shrinks and every
    /// cycle books as a background-memory stall.
    ///
    /// # Panics
    ///
    /// Panics if the engine has no in-flight transfer or the window
    /// reaches past the countdown ([`DmaEngine::stalled_for`]).
    pub fn skip(&mut self, cycles: u64) {
        let a = self
            .active
            .as_mut()
            .expect("skip on an engine with no transfer in flight");
        assert!(
            u64::from(a.wait) >= cycles,
            "skip window {cycles} overshoots the engine's {}-cycle countdown",
            a.wait
        );
        a.wait -= cycles as u32;
        self.stats.dram_wait_cycles += cycles;
    }

    /// Cycle end: background-memory wait cycles elapse.
    pub fn end_cycle(&mut self) {
        if let Some(a) = self.active.as_mut() {
            if a.wait > 0 {
                a.wait -= 1;
                if !self.moved_this_cycle {
                    self.stats.dram_wait_cycles += 1;
                }
            }
        }
        self.moved_this_cycle = false;
    }

    /// Steps the engine alone (no competing masters) until it is idle.
    /// Returns the cycles taken. Used by tests and stand-alone tools; a
    /// cluster steps the engine inside its own crossbar pass instead.
    ///
    /// # Errors
    ///
    /// Beat faults (misaligned or out-of-bounds cursors).
    ///
    /// # Panics
    ///
    /// Panics if the budget runs out before the queue drains: with no
    /// competing masters every transfer finishes in bounded cycles, so
    /// an overrun indicates a modelling bug, not a run-time condition.
    pub fn run_to_idle(
        &mut self,
        tcdm: &mut Tcdm,
        dram: &mut Dram,
        max_cycles: u64,
    ) -> Result<u64, DmaError> {
        let timing = dram.config();
        let mut cycles = 0;
        while !self.is_idle() {
            assert!(
                cycles < max_cycles,
                "DMA engine did not drain within {max_cycles} cycles"
            );
            self.begin_cycle(timing);
            if let Some(req) = self.request() {
                let grants = tcdm.arbitrate(&[req]);
                self.apply_grant(grants[0], tcdm, dram, timing)?;
            }
            self.end_cycle();
            cycles += 1;
        }
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_mem::TcdmConfig;

    fn rig() -> (Tcdm, Dram) {
        (
            Tcdm::new(TcdmConfig::new().with_size(4096).with_banks(4)),
            Dram::new(DramConfig::new().with_latency(10)),
        )
    }

    #[test]
    fn contiguous_transfer_lands_and_pays_latency() {
        let (mut tcdm, mut dram) = rig();
        for i in 0..8u32 {
            dram.write_u64(0x1000 + 8 * i, u64::from(i) * 3 + 1)
                .unwrap();
        }
        let mut dma = DmaEngine::new(PortId(4));
        dma.enqueue(Transfer::contiguous(0x1000, 0x200, 64, true))
            .unwrap();
        let cycles = dma.run_to_idle(&mut tcdm, &mut dram, 1_000).unwrap();
        for i in 0..8u32 {
            assert_eq!(tcdm.read_u64(0x200 + 8 * i).unwrap(), u64::from(i) * 3 + 1);
        }
        // 10 latency cycles + 8 beats.
        assert_eq!(cycles, 18);
        assert_eq!(dma.completed(), 1);
        assert_eq!(dma.stats().beats, 8);
        assert_eq!(dma.stats().dram_wait_cycles, 10);
    }

    #[test]
    fn strided_2d_gathers_rows() {
        let (mut tcdm, mut dram) = rig();
        // 3 rows of 16 bytes, 64 bytes apart in Dram, packed in TCDM.
        for r in 0..3u32 {
            for w in 0..2u32 {
                dram.write_u64(0x800 + r * 64 + w * 8, u64::from(r * 10 + w))
                    .unwrap();
            }
        }
        let mut dma = DmaEngine::new(PortId(4));
        dma.enqueue(Transfer {
            dram_addr: 0x800,
            tcdm_addr: 0x100,
            row_bytes: 16,
            dram_stride: 64,
            tcdm_stride: 16,
            reps: 3,
            to_tcdm: true,
        })
        .unwrap();
        dma.run_to_idle(&mut tcdm, &mut dram, 1_000).unwrap();
        for r in 0..3u32 {
            for w in 0..2u32 {
                assert_eq!(
                    tcdm.read_u64(0x100 + r * 16 + w * 8).unwrap(),
                    u64::from(r * 10 + w)
                );
            }
        }
    }

    #[test]
    fn bandwidth_throttle_slows_beats() {
        let mut tcdm = Tcdm::new(TcdmConfig::new().with_size(4096).with_banks(4));
        let mut dram = Dram::new(DramConfig::new().with_latency(0).with_cycles_per_beat(3));
        let mut dma = DmaEngine::new(PortId(4));
        dma.enqueue(Transfer::contiguous(0, 0, 64, true)).unwrap();
        let cycles = dma.run_to_idle(&mut tcdm, &mut dram, 1_000).unwrap();
        // 8 beats, 3 cycles each, minus the trailing gap after the last.
        assert_eq!(cycles, 8 * 3 - 2);
    }

    #[test]
    fn fifo_order_and_completion_counter() {
        let (mut tcdm, mut dram) = rig();
        dram.write_u64(0x0, 7).unwrap();
        let mut dma = DmaEngine::new(PortId(4));
        dma.enqueue(Transfer::contiguous(0x0, 0x100, 8, true))
            .unwrap();
        dma.enqueue(Transfer::contiguous(0x300, 0x100, 8, false))
            .unwrap();
        assert_eq!(dma.outstanding(), 2);
        dma.run_to_idle(&mut tcdm, &mut dram, 1_000).unwrap();
        assert_eq!(dma.outstanding(), 0);
        assert_eq!(dma.completed(), 2);
        // Second transfer read what the first wrote.
        assert_eq!(dram.read_u64(0x300).unwrap(), 7);
    }

    #[test]
    fn bad_descriptors_are_rejected() {
        let mut dma = DmaEngine::new(PortId(0));
        assert_eq!(
            dma.enqueue(Transfer::contiguous(0, 0, 0, true)),
            Err(DmaError::EmptyTransfer)
        );
        assert_eq!(
            dma.enqueue(Transfer::contiguous(4, 0, 8, true)),
            Err(DmaError::Misaligned {
                field: "dram_addr",
                value: 4
            })
        );
        assert_eq!(
            dma.enqueue(Transfer::contiguous(0, 0, 12, true)),
            Err(DmaError::Misaligned {
                field: "row_bytes",
                value: 12
            })
        );
        assert!(dma.is_idle());
    }

    #[test]
    fn completion_counter_wraps_and_distance_compare_survives() {
        // Long system-scaling runs roll the u32 completion counter over;
        // the counter itself must wrap silently and the wrapping-distance
        // idiom the poll loops use must stay correct across the seam —
        // where a raw ordered compare (the old `blt` codegen) breaks.
        let (mut tcdm, mut dram) = rig();
        let mut dma = DmaEngine::new(PortId(4));
        dma.preset_completed(u32::MAX - 1);
        for _ in 0..3 {
            dma.enqueue(Transfer::contiguous(0x0, 0x100, 8, true))
                .unwrap();
        }
        let target = (u32::MAX - 1).wrapping_add(3); // == 1, past the wrap
        assert!(
            (target.wrapping_sub(dma.completed()) as i32) > 0,
            "before the run the target lies ahead"
        );
        // The raw signed compare is already wrong here: completed
        // 0xFFFF_FFFE reads as -2, target 1 — "done" before any beat.
        assert!((dma.completed() as i32) < target as i32);
        dma.run_to_idle(&mut tcdm, &mut dram, 1_000).unwrap();
        assert_eq!(dma.completed(), 1, "counter wrapped through zero");
        assert!(
            (target.wrapping_sub(dma.completed()) as i32) <= 0,
            "after the run the wrapping distance reports completion"
        );
        assert_eq!(dma.stats().transfers_completed, 3);
    }

    #[test]
    fn dma_start_publishes_stride_hints_for_reads_only() {
        let mut dma = DmaEngine::new(PortId(0));
        dma.enqueue(Transfer {
            dram_addr: 0x800,
            tcdm_addr: 0x100,
            row_bytes: 16,
            dram_stride: 64,
            tcdm_stride: 16,
            reps: 3,
            to_tcdm: true,
        })
        .unwrap();
        // A TCDM→Dram write-back publishes nothing: its lines allocate
        // in the L2 without a fetch.
        dma.enqueue(Transfer::contiguous(0x0, 0x0, 32, false))
            .unwrap();
        let hints = dma.take_prefetch_hints();
        assert_eq!(hints.len(), 1, "one hint per read descriptor");
        assert_eq!(
            (
                hints[0].addr,
                hints[0].row_bytes,
                hints[0].stride,
                hints[0].reps
            ),
            (0x800, 16, 64, 3),
            "the hint mirrors the descriptor's Dram-side footprint"
        );
        assert_eq!(dma.stats().prefetch_hints, 1);
        assert!(dma.take_prefetch_hints().is_empty(), "hints drain once");
        // Rejected descriptors publish nothing.
        assert!(dma.enqueue(Transfer::contiguous(4, 0, 8, true)).is_err());
        assert!(dma.take_prefetch_hints().is_empty());
        // An owner that never drains loses old hints, never memory.
        for i in 0..(HINT_BUFFER as u32 + 16) {
            dma.enqueue(Transfer::contiguous(i * 8, 0, 8, true))
                .unwrap();
        }
        let hints = dma.take_prefetch_hints();
        assert_eq!(hints.len(), HINT_BUFFER, "hint buffer stays bounded");
        assert_eq!(hints[0].addr, 16 * 8, "oldest hints dropped first");
    }

    #[test]
    fn tcdm_overrun_is_a_beat_fault() {
        let (mut tcdm, mut dram) = rig();
        let mut dma = DmaEngine::new(PortId(4));
        // TCDM is 4096 bytes; this transfer runs off its end.
        dma.enqueue(Transfer::contiguous(0, 4096 - 8, 24, true))
            .unwrap();
        let err = dma.run_to_idle(&mut tcdm, &mut dram, 1_000).unwrap_err();
        assert!(matches!(err, DmaError::Mem(MemError::OutOfBounds { .. })));
    }
}
