//! Property pins for the DMA engine:
//!
//! * any valid 1D/2D transfer round-trips Dram → TCDM → Dram
//!   byte-identically under random strides, alignments and timing,
//! * the cycle count respects the configured latency + bandwidth floor,
//! * beats/bytes accounting matches the descriptor geometry.

use proptest::prelude::*;
use sc_dma::{DmaEngine, Transfer, BEAT_BYTES};
use sc_mem::{Dram, DramConfig, PortId, Tcdm, TcdmConfig};

const TCDM_BYTES: u32 = 16 << 10;

/// A random valid 2D geometry whose TCDM footprint fits the scratchpad
/// and whose rows never overlap (strides ≥ row length) so the
/// round-trip comparison is well defined.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    row_words: u32,
    reps: u32,
    dram_gap_words: u32,
    tcdm_gap_words: u32,
    dram_base_word: u32,
    tcdm_base_word: u32,
    latency: u32,
    cycles_per_beat: u32,
}

fn geometry() -> impl Strategy<Value = Geometry> {
    (
        (1u32..24, 1u32..6, 0u32..5, 0u32..5),
        (0u32..64, 0u32..32, 0u32..20, 1u32..4),
    )
        .prop_map(
            |(
                (row_words, reps, dram_gap_words, tcdm_gap_words),
                (dram_base_word, tcdm_base_word, latency, cycles_per_beat),
            )| Geometry {
                row_words,
                reps,
                dram_gap_words,
                tcdm_gap_words,
                dram_base_word,
                tcdm_base_word,
                latency,
                cycles_per_beat,
            },
        )
}

impl Geometry {
    fn row_bytes(&self) -> u32 {
        self.row_words * BEAT_BYTES
    }

    fn dram_stride(&self) -> u32 {
        (self.row_words + self.dram_gap_words) * BEAT_BYTES
    }

    fn tcdm_stride(&self) -> u32 {
        (self.row_words + self.tcdm_gap_words) * BEAT_BYTES
    }

    fn total_beats(&self) -> u64 {
        u64::from(self.row_words) * u64::from(self.reps)
    }
}

proptest! {
    #[test]
    fn random_2d_transfers_roundtrip_byte_identically(g in geometry()) {
        let tcdm_base = g.tcdm_base_word * BEAT_BYTES;
        // Keep the TCDM footprint inside the scratchpad.
        prop_assume!(tcdm_base + (g.reps - 1) * g.tcdm_stride() + g.row_bytes() <= TCDM_BYTES);

        let mut tcdm = Tcdm::new(TcdmConfig::new().with_size(TCDM_BYTES).with_banks(8));
        let mut dram = Dram::new(
            DramConfig::new()
                .with_latency(g.latency)
                .with_cycles_per_beat(g.cycles_per_beat),
        );
        let src_base = g.dram_base_word * BEAT_BYTES;
        // A disjoint Dram region for the write-back leg.
        let dst_base = src_base + g.reps * g.dram_stride() + 0x10_0000;

        // Deterministic payload derived from the row/word position.
        let payload = |r: u32, w: u32| -> u64 {
            0x9E37_79B9_7F4A_7C15u64
                .wrapping_mul(u64::from(r) + 1)
                .wrapping_add(u64::from(w) * 0x0101_0101)
        };
        for r in 0..g.reps {
            for w in 0..g.row_words {
                dram.write_u64(src_base + r * g.dram_stride() + w * BEAT_BYTES, payload(r, w))
                    .unwrap();
            }
        }

        let mut dma = DmaEngine::new(PortId(4));
        dma.enqueue(Transfer {
            dram_addr: src_base,
            tcdm_addr: tcdm_base,
            row_bytes: g.row_bytes(),
            dram_stride: g.dram_stride(),
            tcdm_stride: g.tcdm_stride(),
            reps: g.reps,
            to_tcdm: true,
        })
        .unwrap();
        dma.enqueue(Transfer {
            dram_addr: dst_base,
            tcdm_addr: tcdm_base,
            row_bytes: g.row_bytes(),
            dram_stride: g.dram_stride(),
            tcdm_stride: g.tcdm_stride(),
            reps: g.reps,
            to_tcdm: false,
        })
        .unwrap();
        let cycles = dma.run_to_idle(&mut tcdm, &mut dram, 10_000_000).unwrap();

        // Byte-identical round trip.
        for r in 0..g.reps {
            for w in 0..g.row_words {
                prop_assert_eq!(
                    dram.read_u64(dst_base + r * g.dram_stride() + w * BEAT_BYTES).unwrap(),
                    payload(r, w),
                    "row {} word {} corrupted in Dram->TCDM->Dram round trip", r, w
                );
            }
        }

        // Timing floor: two transfers, each paying full latency, each
        // beat holding the channel for `cycles_per_beat` cycles (minus
        // the trailing gap the engine never waits out).
        let beats = g.total_beats();
        let floor = 2 * (u64::from(g.latency) + beats * u64::from(g.cycles_per_beat)
            - u64::from(g.cycles_per_beat - 1));
        prop_assert!(cycles >= floor, "cycles {} below timing floor {}", cycles, floor);

        // Accounting matches the geometry exactly (no competing masters,
        // so no conflicts).
        prop_assert_eq!(dma.stats().beats, 2 * beats);
        prop_assert_eq!(dma.stats().bytes_to_tcdm, beats * u64::from(BEAT_BYTES));
        prop_assert_eq!(dma.stats().bytes_from_tcdm, beats * u64::from(BEAT_BYTES));
        prop_assert_eq!(dma.stats().tcdm_conflicts, 0);
        prop_assert_eq!(dma.completed(), 2);
    }
}
