//! Architectural register names for the integer and floating-point files.
//!
//! Both files have 32 registers. Integer registers use the standard RISC-V
//! ABI mnemonics (`zero`, `ra`, `sp`, ...); floating-point registers use the
//! `ft`/`fa`/`fs` ABI mnemonics. [`FpReg::FT0`]–[`FpReg::FT2`] double as the
//! stream semantic registers when streaming is enabled (see `sc-ssr`).

use std::fmt;
use std::str::FromStr;

/// Error returned when parsing a register mnemonic fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    what: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register mnemonic `{}`", self.what)
    }
}

impl std::error::Error for ParseRegError {}

/// An integer (x-file) architectural register, `x0`..`x31`.
///
/// `x0` is hard-wired to zero: writes are discarded, reads return 0.
///
/// # Examples
///
/// ```
/// use sc_isa::IntReg;
/// let sp: IntReg = "sp".parse()?;
/// assert_eq!(sp.index(), 2);
/// assert_eq!(sp.to_string(), "sp");
/// # Ok::<(), sc_isa::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

/// A floating-point (f-file) architectural register, `f0`..`f31`.
///
/// # Examples
///
/// ```
/// use sc_isa::FpReg;
/// let ft3: FpReg = "ft3".parse()?;
/// assert_eq!(ft3.index(), 3);
/// // Chaining CSR mask bit for this register:
/// assert_eq!(1u32 << ft3.index(), 8);
/// # Ok::<(), sc_isa::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

const INT_ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

const FP_ABI_NAMES: [&str; 32] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1", "fa2",
    "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9",
    "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
];

impl IntReg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: IntReg = IntReg(0);
    /// Return address register `x1`.
    pub const RA: IntReg = IntReg(1);
    /// Stack pointer `x2`.
    pub const SP: IntReg = IntReg(2);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "integer register index out of range");
        IntReg(index)
    }

    /// Creates a register from its index, returning `None` if out of range.
    #[must_use]
    pub const fn try_new(index: u8) -> Option<Self> {
        if index < 32 {
            Some(IntReg(index))
        } else {
            None
        }
    }

    /// The register's index in the file (0..32).
    #[must_use]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The standard ABI mnemonic (e.g. `"sp"` for `x2`).
    #[must_use]
    pub fn abi_name(self) -> &'static str {
        INT_ABI_NAMES[self.0 as usize]
    }

    /// Iterates over all 32 integer registers in index order.
    pub fn all() -> impl Iterator<Item = IntReg> {
        (0..32).map(IntReg)
    }
}

impl FpReg {
    /// `ft0` / `f0`: stream semantic register 0 when streaming is enabled.
    pub const FT0: FpReg = FpReg(0);
    /// `ft1` / `f1`: stream semantic register 1 when streaming is enabled.
    pub const FT1: FpReg = FpReg(1);
    /// `ft2` / `f2`: stream semantic register 2 when streaming is enabled.
    pub const FT2: FpReg = FpReg(2);
    /// `ft3` / `f3`: the chained accumulator in the paper's running example.
    pub const FT3: FpReg = FpReg(3);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "floating-point register index out of range");
        FpReg(index)
    }

    /// Creates a register from its index, returning `None` if out of range.
    #[must_use]
    pub const fn try_new(index: u8) -> Option<Self> {
        if index < 32 {
            Some(FpReg(index))
        } else {
            None
        }
    }

    /// The register's index in the file (0..32).
    #[must_use]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// The chaining-mask bit for this register (bit `index` of CSR 0x7C3).
    #[must_use]
    pub const fn chain_mask_bit(self) -> u32 {
        1u32 << self.0
    }

    /// The standard ABI mnemonic (e.g. `"ft3"` for `f3`).
    #[must_use]
    pub fn abi_name(self) -> &'static str {
        FP_ABI_NAMES[self.0 as usize]
    }

    /// Iterates over all 32 floating-point registers in index order.
    pub fn all() -> impl Iterator<Item = FpReg> {
        (0..32).map(FpReg)
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl FromStr for IntReg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(idx) = INT_ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(IntReg(idx as u8));
        }
        // Accept s0's alias fp and numeric x-names.
        if s == "fp" {
            return Ok(IntReg(8));
        }
        if let Some(num) = s.strip_prefix('x') {
            if let Ok(idx) = num.parse::<u8>() {
                if idx < 32 {
                    return Ok(IntReg(idx));
                }
            }
        }
        Err(ParseRegError { what: s.to_owned() })
    }
}

impl FromStr for FpReg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(idx) = FP_ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(FpReg(idx as u8));
        }
        if let Some(num) = s.strip_prefix('f') {
            if let Ok(idx) = num.parse::<u8>() {
                if idx < 32 {
                    return Ok(FpReg(idx));
                }
            }
        }
        Err(ParseRegError { what: s.to_owned() })
    }
}

impl From<IntReg> for u8 {
    fn from(r: IntReg) -> u8 {
        r.index()
    }
}

impl From<FpReg> for u8 {
    fn from(r: FpReg) -> u8 {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reg_roundtrips_via_abi_name() {
        for r in IntReg::all() {
            let parsed: IntReg = r.abi_name().parse().expect("abi name parses");
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn fp_reg_roundtrips_via_abi_name() {
        for r in FpReg::all() {
            let parsed: FpReg = r.abi_name().parse().expect("abi name parses");
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn numeric_names_parse() {
        assert_eq!("x0".parse::<IntReg>().unwrap(), IntReg::ZERO);
        assert_eq!("x31".parse::<IntReg>().unwrap(), IntReg::new(31));
        assert_eq!("f3".parse::<FpReg>().unwrap(), FpReg::FT3);
        assert_eq!("fp".parse::<IntReg>().unwrap(), IntReg::new(8));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!("x32".parse::<IntReg>().is_err());
        assert!("f32".parse::<FpReg>().is_err());
        assert!("bogus".parse::<IntReg>().is_err());
        assert!(IntReg::try_new(32).is_none());
        assert!(FpReg::try_new(255).is_none());
    }

    #[test]
    fn chain_mask_bit_matches_paper_example() {
        // The paper enables chaining on ft3 with mask 8 (Fig. 1c line 1).
        assert_eq!(FpReg::FT3.chain_mask_bit(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = IntReg::new(32);
    }
}
