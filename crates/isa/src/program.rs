//! Finished instruction sequences ready for execution.

use std::collections::BTreeMap;
use std::fmt;

use crate::inst::Instruction;

/// An assembled program: a flat instruction sequence plus symbols.
///
/// Instruction addresses are byte addresses starting at 0; every
/// instruction is 4 bytes (no compressed encodings in this model).
///
/// # Examples
///
/// ```
/// use sc_isa::{Program, Instruction};
/// let prog = Program::new(vec![Instruction::Ecall], Default::default());
/// assert_eq!(prog.fetch(0), Some(Instruction::Ecall));
/// assert_eq!(prog.fetch(4), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    code: Vec<Instruction>,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Creates a program from instructions and a symbol table
    /// (label → byte address).
    #[must_use]
    pub fn new(code: Vec<Instruction>, symbols: BTreeMap<String, u32>) -> Self {
        Program { code, symbols }
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Fetches the instruction at byte address `pc`, if in range.
    ///
    /// Misaligned addresses return `None`.
    #[must_use]
    pub fn fetch(&self, pc: u32) -> Option<Instruction> {
        if !pc.is_multiple_of(4) {
            return None;
        }
        self.code.get((pc / 4) as usize).copied()
    }

    /// The instructions as a slice.
    #[must_use]
    pub fn code(&self) -> &[Instruction] {
        &self.code
    }

    /// Looks up a label's byte address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Iterates over `(name, byte address)` symbol pairs.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Encodes the program to its 32-bit binary words (little-endian
    /// machine code, as a linker would emit it).
    #[must_use]
    pub fn to_words(&self) -> Vec<u32> {
        self.code.iter().map(crate::encode).collect()
    }

    /// Decodes a program from binary words (symbols are not recoverable).
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::DecodeError`] encountered.
    pub fn from_words(words: &[u32]) -> Result<Self, crate::DecodeError> {
        let code = words
            .iter()
            .map(|w| crate::decode(*w))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program {
            code,
            symbols: BTreeMap::new(),
        })
    }

    /// Renders a disassembly listing with addresses and labels.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut by_addr: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, addr) in self.symbols() {
            by_addr.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (i, inst) in self.code.iter().enumerate() {
            let addr = (i * 4) as u32;
            if let Some(labels) = by_addr.get(&addr) {
                for l in labels {
                    out.push_str(l);
                    out.push_str(":\n");
                }
            }
            out.push_str(&format!("  {addr:#06x}: {inst}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::reg::IntReg;

    #[test]
    fn fetch_rejects_misaligned() {
        let prog = Program::new(
            vec![Instruction::NOP, Instruction::Ecall],
            Default::default(),
        );
        assert!(prog.fetch(2).is_none());
        assert_eq!(prog.fetch(4), Some(Instruction::Ecall));
    }

    #[test]
    fn disassembly_includes_labels() {
        let mut b = ProgramBuilder::new();
        b.label("start");
        b.addi(IntReg::new(1), IntReg::ZERO, 42);
        b.ecall();
        let prog = b.build().unwrap();
        let text = prog.disassemble();
        assert!(text.contains("start:"));
        assert!(text.contains("addi ra, zero, 42"));
        assert_eq!(prog.symbol("start"), Some(0));
    }
}
