//! The instruction set understood by the core model.
//!
//! Covers the subset of RV32IMFD that the paper's kernels need, the CSR
//! instructions, and the custom extensions of the Snitch-like core:
//!
//! * `frep.o` / `frep.i` — floating-point repetition (hardware loop),
//! * `scfgwi` / `scfgri` — stream semantic register configuration.
//!
//! [`Instruction`] is a plain data enum; binary encodings live in
//! [`crate::encode`] / [`crate::decode`], textual assembly in [`crate::asm`].

use std::fmt;

use crate::csr::CsrOp;
use crate::reg::{FpReg, IntReg};

/// Conditional branch comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater or equal (signed).
    Ge,
    /// Branch if less than (unsigned).
    Ltu,
    /// Branch if greater or equal (unsigned).
    Geu,
}

impl BranchOp {
    /// Evaluates the branch condition on two 32-bit operands.
    #[must_use]
    pub fn evaluate(self, a: u32, b: u32) -> bool {
        match self {
            BranchOp::Eq => a == b,
            BranchOp::Ne => a != b,
            BranchOp::Lt => (a as i32) < (b as i32),
            BranchOp::Ge => (a as i32) >= (b as i32),
            BranchOp::Ltu => a < b,
            BranchOp::Geu => a >= b,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Eq => "beq",
            BranchOp::Ne => "bne",
            BranchOp::Lt => "blt",
            BranchOp::Ge => "bge",
            BranchOp::Ltu => "bltu",
            BranchOp::Geu => "bgeu",
        }
    }
}

/// Integer load widths/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load byte, sign-extended.
    Lb,
    /// Load half, sign-extended.
    Lh,
    /// Load word.
    Lw,
    /// Load byte, zero-extended.
    Lbu,
    /// Load half, zero-extended.
    Lhu,
}

impl LoadOp {
    /// Access size in bytes.
    #[must_use]
    pub fn size(self) -> u32 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw => 4,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lh => "lh",
            LoadOp::Lw => "lw",
            LoadOp::Lbu => "lbu",
            LoadOp::Lhu => "lhu",
        }
    }
}

/// Integer store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte.
    Sb,
    /// Store half.
    Sh,
    /// Store word.
    Sw,
}

impl StoreOp {
    /// Access size in bytes.
    #[must_use]
    pub fn size(self) -> u32 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
        }
    }
}

/// ALU operations shared by register-register and register-immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`sub` is only valid in the register-register form).
    Add,
    /// Subtraction (register-register only).
    Sub,
    /// Shift left logical.
    Sll,
    /// Set if less than (signed).
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

impl AluOp {
    /// Evaluates the operation on two 32-bit operands.
    #[must_use]
    pub fn evaluate(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl(b & 0x1F),
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr(b & 0x1F),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1F)) as u32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
        }
    }
}

/// RV32M multiply/divide operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of signed × signed.
    Mulh,
    /// High 32 bits of signed × unsigned.
    Mulhsu,
    /// High 32 bits of unsigned × unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

impl MulDivOp {
    /// Evaluates the operation with RISC-V division-by-zero semantics.
    #[must_use]
    pub fn evaluate(self, a: u32, b: u32) -> u32 {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            MulDivOp::Mul => a.wrapping_mul(b),
            MulDivOp::Mulh => (((sa as i64) * (sb as i64)) >> 32) as u32,
            MulDivOp::Mulhsu => (((sa as i64) * (b as u64 as i64)) >> 32) as u32,
            MulDivOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
            MulDivOp::Div => {
                if b == 0 {
                    u32::MAX
                } else if sa == i32::MIN && sb == -1 {
                    a
                } else {
                    sa.wrapping_div(sb) as u32
                }
            }
            MulDivOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            MulDivOp::Rem => {
                if b == 0 {
                    a
                } else if sa == i32::MIN && sb == -1 {
                    0
                } else {
                    sa.wrapping_rem(sb) as u32
                }
            }
            MulDivOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            MulDivOp::Mul => "mul",
            MulDivOp::Mulh => "mulh",
            MulDivOp::Mulhsu => "mulhsu",
            MulDivOp::Mulhu => "mulhu",
            MulDivOp::Div => "div",
            MulDivOp::Divu => "divu",
            MulDivOp::Rem => "rem",
            MulDivOp::Remu => "remu",
        }
    }
}

/// Floating-point operand/result format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpFormat {
    /// IEEE-754 binary32 (`.s`).
    Single,
    /// IEEE-754 binary64 (`.d`).
    Double,
}

impl FpFormat {
    /// Access size in bytes for loads/stores of this format.
    #[must_use]
    pub fn size(self) -> u32 {
        match self {
            FpFormat::Single => 4,
            FpFormat::Double => 8,
        }
    }

    /// Mnemonic suffix (`"s"` or `"d"`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            FpFormat::Single => "s",
            FpFormat::Double => "d",
        }
    }
}

/// Two-operand floating-point compute operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (iterative in hardware).
    Div,
    /// Sign injection (copy sign of rs2).
    Sgnj,
    /// Sign injection, negated.
    Sgnjn,
    /// Sign injection, xored.
    Sgnjx,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl FpBinOp {
    fn mnemonic(self) -> &'static str {
        match self {
            FpBinOp::Add => "fadd",
            FpBinOp::Sub => "fsub",
            FpBinOp::Mul => "fmul",
            FpBinOp::Div => "fdiv",
            FpBinOp::Sgnj => "fsgnj",
            FpBinOp::Sgnjn => "fsgnjn",
            FpBinOp::Sgnjx => "fsgnjx",
            FpBinOp::Min => "fmin",
            FpBinOp::Max => "fmax",
        }
    }
}

/// Fused multiply-add family: `frd = ±(frs1 × frs2) ± frs3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FmaOp {
    /// `frs1*frs2 + frs3`.
    Madd,
    /// `frs1*frs2 - frs3`.
    Msub,
    /// `-(frs1*frs2) + frs3`.
    Nmsub,
    /// `-(frs1*frs2) - frs3`.
    Nmadd,
}

impl FmaOp {
    fn mnemonic(self) -> &'static str {
        match self {
            FmaOp::Madd => "fmadd",
            FmaOp::Msub => "fmsub",
            FmaOp::Nmsub => "fnmsub",
            FmaOp::Nmadd => "fnmadd",
        }
    }
}

/// Floating-point comparisons writing an integer register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmpOp {
    /// Equal.
    Eq,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
}

impl FpCmpOp {
    fn mnemonic(self) -> &'static str {
        match self {
            FpCmpOp::Eq => "feq",
            FpCmpOp::Lt => "flt",
            FpCmpOp::Le => "fle",
        }
    }
}

/// Conversions and cross-file moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCvtOp {
    /// `fcvt.d.w`: signed 32-bit int → double.
    DFromW,
    /// `fcvt.d.wu`: unsigned 32-bit int → double.
    DFromWu,
    /// `fcvt.w.d`: double → signed 32-bit int (rtz in this model).
    WFromD,
    /// `fcvt.wu.d`: double → unsigned 32-bit int.
    WuFromD,
    /// `fcvt.d.s`: single → double.
    DFromS,
    /// `fcvt.s.d`: double → single.
    SFromD,
    /// `fmv.x.w`: bit move f → x (low 32 bits).
    MvXW,
    /// `fmv.w.x`: bit move x → f (low 32 bits).
    MvWX,
}

impl FpCvtOp {
    /// Whether the destination is an integer register.
    #[must_use]
    pub fn writes_int(self) -> bool {
        matches!(self, FpCvtOp::WFromD | FpCvtOp::WuFromD | FpCvtOp::MvXW)
    }

    /// Whether the source is an integer register.
    #[must_use]
    pub fn reads_int(self) -> bool {
        matches!(self, FpCvtOp::DFromW | FpCvtOp::DFromWu | FpCvtOp::MvWX)
    }

    fn mnemonic(self) -> &'static str {
        match self {
            FpCvtOp::DFromW => "fcvt.d.w",
            FpCvtOp::DFromWu => "fcvt.d.wu",
            FpCvtOp::WFromD => "fcvt.w.d",
            FpCvtOp::WuFromD => "fcvt.wu.d",
            FpCvtOp::DFromS => "fcvt.d.s",
            FpCvtOp::SFromD => "fcvt.s.d",
            FpCvtOp::MvXW => "fmv.x.w",
            FpCvtOp::MvWX => "fmv.w.x",
        }
    }
}

/// Source operand of a CSR instruction: a register or a 5-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrSrc {
    /// Register form (`csrrw`/`csrrs`/`csrrc`).
    Reg(IntReg),
    /// Immediate form (`csrrwi`/`csrrsi`/`csrrci`), zero-extended 5-bit.
    Imm(u8),
}

/// One decoded instruction.
///
/// Offsets are byte offsets relative to the instruction's own address
/// (branches/jumps) or to the base register (memory ops), sign-extended to
/// `i32` as in the RISC-V spec.
///
/// Field names follow the RISC-V convention (`rd`/`frd` destinations,
/// `rs*`/`frs*` sources, `imm`/`offset` immediates) and are not documented
/// individually.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `lui rd, imm20` — load upper immediate (`imm` is the final 32-bit value).
    Lui { rd: IntReg, imm: u32 },
    /// `auipc rd, imm20`.
    Auipc { rd: IntReg, imm: u32 },
    /// `jal rd, offset`.
    Jal { rd: IntReg, offset: i32 },
    /// `jalr rd, rs1, offset`.
    Jalr {
        rd: IntReg,
        rs1: IntReg,
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        op: BranchOp,
        rs1: IntReg,
        rs2: IntReg,
        offset: i32,
    },
    /// Integer load.
    Load {
        op: LoadOp,
        rd: IntReg,
        rs1: IntReg,
        offset: i32,
    },
    /// Integer store.
    Store {
        op: StoreOp,
        rs2: IntReg,
        rs1: IntReg,
        offset: i32,
    },
    /// Register-immediate ALU op (`Sub` is invalid here).
    OpImm {
        op: AluOp,
        rd: IntReg,
        rs1: IntReg,
        imm: i32,
    },
    /// Register-register ALU op.
    Op {
        op: AluOp,
        rd: IntReg,
        rs1: IntReg,
        rs2: IntReg,
    },
    /// RV32M multiply/divide.
    MulDiv {
        op: MulDivOp,
        rd: IntReg,
        rs1: IntReg,
        rs2: IntReg,
    },
    /// Memory fence (a timing no-op in this single-core model).
    Fence,
    /// Environment call: halts the simulation (used as program exit).
    Ecall,
    /// Breakpoint: halts the simulation with an error.
    Ebreak,
    /// CSR read-modify-write.
    Csr {
        op: CsrOp,
        rd: IntReg,
        csr: u16,
        src: CsrSrc,
    },
    /// FP load (`flw`/`fld`).
    FpLoad {
        fmt: FpFormat,
        frd: FpReg,
        rs1: IntReg,
        offset: i32,
    },
    /// FP store (`fsw`/`fsd`).
    FpStore {
        fmt: FpFormat,
        frs2: FpReg,
        rs1: IntReg,
        offset: i32,
    },
    /// Two-operand FP compute op.
    FpBin {
        op: FpBinOp,
        fmt: FpFormat,
        frd: FpReg,
        frs1: FpReg,
        frs2: FpReg,
    },
    /// Fused multiply-add family (three sources).
    FpFma {
        op: FmaOp,
        fmt: FpFormat,
        frd: FpReg,
        frs1: FpReg,
        frs2: FpReg,
        frs3: FpReg,
    },
    /// Square root.
    FpSqrt {
        fmt: FpFormat,
        frd: FpReg,
        frs1: FpReg,
    },
    /// FP comparison writing an integer register.
    FpCmp {
        op: FpCmpOp,
        fmt: FpFormat,
        rd: IntReg,
        frs1: FpReg,
        frs2: FpReg,
    },
    /// Conversion / cross-file move. Exactly one of the register pairs is
    /// meaningful per op; the others are ignored (see [`FpCvtOp`]).
    FpCvt {
        op: FpCvtOp,
        rd: IntReg,
        frd: FpReg,
        rs1: IntReg,
        frs1: FpReg,
    },
    /// `frep.o`/`frep.i`: repeat the next `n_instr` FP instructions
    /// `rpt(rs1) + 1` times. `is_outer` selects loop order (outer repeats the
    /// whole block; inner repeats each instruction). `stagger_max`/
    /// `stagger_mask` implement Snitch register staggering.
    Frep {
        is_outer: bool,
        max_rpt: IntReg,
        n_instr: u16,
        stagger_max: u8,
        stagger_mask: u8,
    },
    /// `scfgwi rs1, imm`: write SSR config word `imm` with the value of `rs1`.
    Scfgwi { rs1: IntReg, imm: u16 },
    /// `scfgri rd, imm`: read SSR config word `imm` into `rd`.
    Scfgri { rd: IntReg, imm: u16 },
}

impl Instruction {
    /// A canonical no-op (`addi x0, x0, 0`).
    pub const NOP: Instruction = Instruction::OpImm {
        op: AluOp::Add,
        rd: IntReg::ZERO,
        rs1: IntReg::ZERO,
        imm: 0,
    };

    /// Whether this instruction is handled by the FP subsystem (offloaded
    /// from the integer core in the pseudo dual-issue scheme). FP loads and
    /// stores are offloaded too: they execute on the FP side's LSU port.
    #[must_use]
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Instruction::FpLoad { .. }
                | Instruction::FpStore { .. }
                | Instruction::FpBin { .. }
                | Instruction::FpFma { .. }
                | Instruction::FpSqrt { .. }
                | Instruction::FpCmp { .. }
                | Instruction::FpCvt { .. }
        )
    }

    /// Whether this is a control-flow instruction (branch or jump).
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instruction::Jal { .. } | Instruction::Jalr { .. } | Instruction::Branch { .. }
        )
    }

    /// FP registers read by this instruction (excluding stream/chain
    /// reinterpretation, which the core applies on top).
    #[must_use]
    pub fn fp_sources(&self) -> Vec<FpReg> {
        match *self {
            Instruction::FpStore { frs2, .. } => vec![frs2],
            Instruction::FpBin { op, frs1, frs2, .. } => {
                // Division reads both as well; sign-injection too.
                let _ = op;
                vec![frs1, frs2]
            }
            Instruction::FpFma {
                frs1, frs2, frs3, ..
            } => vec![frs1, frs2, frs3],
            Instruction::FpSqrt { frs1, .. } => vec![frs1],
            Instruction::FpCmp { frs1, frs2, .. } => vec![frs1, frs2],
            Instruction::FpCvt { op, frs1, .. } if !op.reads_int() => vec![frs1],
            _ => Vec::new(),
        }
    }

    /// FP register written by this instruction, if any.
    #[must_use]
    pub fn fp_dest(&self) -> Option<FpReg> {
        match *self {
            Instruction::FpLoad { frd, .. }
            | Instruction::FpBin { frd, .. }
            | Instruction::FpFma { frd, .. }
            | Instruction::FpSqrt { frd, .. } => Some(frd),
            Instruction::FpCvt { op, frd, .. } if !op.writes_int() => Some(frd),
            _ => None,
        }
    }

    /// Integer registers read by this instruction.
    #[must_use]
    pub fn int_sources(&self) -> Vec<IntReg> {
        let mut v = Vec::new();
        match *self {
            Instruction::Jalr { rs1, .. }
            | Instruction::Load { rs1, .. }
            | Instruction::OpImm { rs1, .. }
            | Instruction::FpLoad { rs1, .. }
            | Instruction::FpStore { rs1, .. } => v.push(rs1),
            Instruction::Branch { rs1, rs2, .. }
            | Instruction::Store { rs2, rs1, .. }
            | Instruction::Op { rs1, rs2, .. }
            | Instruction::MulDiv { rs1, rs2, .. } => {
                v.push(rs1);
                v.push(rs2);
            }
            Instruction::Csr {
                src: CsrSrc::Reg(rs1),
                ..
            } => v.push(rs1),
            Instruction::FpCvt { op, rs1, .. } if op.reads_int() => v.push(rs1),
            Instruction::Frep { max_rpt, .. } => v.push(max_rpt),
            Instruction::Scfgwi { rs1, .. } => v.push(rs1),
            _ => {}
        }
        v.retain(|r| !r.is_zero());
        v
    }

    /// Integer register written by this instruction, if any.
    #[must_use]
    pub fn int_dest(&self) -> Option<IntReg> {
        let rd = match *self {
            Instruction::Lui { rd, .. }
            | Instruction::Auipc { rd, .. }
            | Instruction::Jal { rd, .. }
            | Instruction::Jalr { rd, .. }
            | Instruction::Load { rd, .. }
            | Instruction::OpImm { rd, .. }
            | Instruction::Op { rd, .. }
            | Instruction::MulDiv { rd, .. }
            | Instruction::Csr { rd, .. }
            | Instruction::FpCmp { rd, .. }
            | Instruction::Scfgri { rd, .. } => rd,
            Instruction::FpCvt { op, rd, .. } if op.writes_int() => rd,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm >> 12),
            Instruction::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", imm >> 12),
            Instruction::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instruction::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instruction::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                write!(f, "{} {rs1}, {rs2}, {offset}", op.mnemonic())
            }
            Instruction::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                write!(f, "{} {rd}, {offset}({rs1})", op.mnemonic())
            }
            Instruction::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                write!(f, "{} {rs2}, {offset}({rs1})", op.mnemonic())
            }
            Instruction::OpImm { op, rd, rs1, imm } => {
                let m = match op {
                    AluOp::Sll => "slli",
                    AluOp::Srl => "srli",
                    AluOp::Sra => "srai",
                    AluOp::Slt => "slti",
                    AluOp::Sltu => "sltiu",
                    _ => return write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic()),
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Instruction::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instruction::MulDiv { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instruction::Fence => f.write_str("fence"),
            Instruction::Ecall => f.write_str("ecall"),
            Instruction::Ebreak => f.write_str("ebreak"),
            Instruction::Csr { op, rd, csr, src } => match src {
                CsrSrc::Reg(rs1) => write!(f, "{op} {rd}, {csr:#x}, {rs1}"),
                CsrSrc::Imm(imm) => write!(f, "{op}i {rd}, {csr:#x}, {imm}"),
            },
            Instruction::FpLoad {
                fmt,
                frd,
                rs1,
                offset,
            } => {
                let m = if fmt == FpFormat::Double {
                    "fld"
                } else {
                    "flw"
                };
                write!(f, "{m} {frd}, {offset}({rs1})")
            }
            Instruction::FpStore {
                fmt,
                frs2,
                rs1,
                offset,
            } => {
                let m = if fmt == FpFormat::Double {
                    "fsd"
                } else {
                    "fsw"
                };
                write!(f, "{m} {frs2}, {offset}({rs1})")
            }
            Instruction::FpBin {
                op,
                fmt,
                frd,
                frs1,
                frs2,
            } => {
                write!(
                    f,
                    "{}.{} {frd}, {frs1}, {frs2}",
                    op.mnemonic(),
                    fmt.suffix()
                )
            }
            Instruction::FpFma {
                op,
                fmt,
                frd,
                frs1,
                frs2,
                frs3,
            } => write!(
                f,
                "{}.{} {frd}, {frs1}, {frs2}, {frs3}",
                op.mnemonic(),
                fmt.suffix()
            ),
            Instruction::FpSqrt { fmt, frd, frs1 } => {
                write!(f, "fsqrt.{} {frd}, {frs1}", fmt.suffix())
            }
            Instruction::FpCmp {
                op,
                fmt,
                rd,
                frs1,
                frs2,
            } => {
                write!(f, "{}.{} {rd}, {frs1}, {frs2}", op.mnemonic(), fmt.suffix())
            }
            Instruction::FpCvt {
                op,
                rd,
                frd,
                rs1,
                frs1,
            } => {
                if op.writes_int() {
                    write!(f, "{} {rd}, {frs1}", op.mnemonic())
                } else if op.reads_int() {
                    write!(f, "{} {frd}, {rs1}", op.mnemonic())
                } else {
                    write!(f, "{} {frd}, {frs1}", op.mnemonic())
                }
            }
            Instruction::Frep {
                is_outer,
                max_rpt,
                n_instr,
                stagger_max,
                stagger_mask,
            } => {
                let m = if is_outer { "frep.o" } else { "frep.i" };
                write!(f, "{m} {max_rpt}, {n_instr}, {stagger_max}, {stagger_mask}")
            }
            Instruction::Scfgwi { rs1, imm } => write!(f, "scfgwi {rs1}, {imm}"),
            Instruction::Scfgri { rd, imm } => write!(f, "scfgri {rd}, {imm}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_eval() {
        assert!(BranchOp::Eq.evaluate(5, 5));
        assert!(BranchOp::Ne.evaluate(5, 6));
        assert!(BranchOp::Lt.evaluate(-1i32 as u32, 0));
        assert!(!BranchOp::Ltu.evaluate(-1i32 as u32, 0));
        assert!(BranchOp::Ge.evaluate(0, -1i32 as u32));
        assert!(BranchOp::Geu.evaluate(u32::MAX, 1));
    }

    #[test]
    fn alu_eval() {
        assert_eq!(AluOp::Add.evaluate(2, 3), 5);
        assert_eq!(AluOp::Sub.evaluate(2, 3), u32::MAX);
        assert_eq!(AluOp::Sra.evaluate(0x8000_0000, 31), 0xFFFF_FFFF);
        assert_eq!(AluOp::Srl.evaluate(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Slt.evaluate(-5i32 as u32, 3), 1);
        assert_eq!(AluOp::Sltu.evaluate(-5i32 as u32, 3), 0);
    }

    #[test]
    fn muldiv_spec_corner_cases() {
        assert_eq!(MulDivOp::Div.evaluate(7, 0), u32::MAX);
        assert_eq!(MulDivOp::Rem.evaluate(7, 0), 7);
        assert_eq!(
            MulDivOp::Div.evaluate(i32::MIN as u32, -1i32 as u32),
            i32::MIN as u32
        );
        assert_eq!(MulDivOp::Rem.evaluate(i32::MIN as u32, -1i32 as u32), 0);
        assert_eq!(MulDivOp::Mulhu.evaluate(u32::MAX, u32::MAX), 0xFFFF_FFFE);
    }

    #[test]
    fn fp_sources_and_dest() {
        let i = Instruction::FpFma {
            op: FmaOp::Madd,
            fmt: FpFormat::Double,
            frd: FpReg::FT3,
            frs1: FpReg::FT0,
            frs2: FpReg::FT1,
            frs3: FpReg::FT3,
        };
        assert_eq!(i.fp_sources(), vec![FpReg::FT0, FpReg::FT1, FpReg::FT3]);
        assert_eq!(i.fp_dest(), Some(FpReg::FT3));
        assert!(i.is_fp());
        assert!(i.int_sources().is_empty());
    }

    #[test]
    fn int_dest_x0_is_none() {
        let i = Instruction::OpImm {
            op: AluOp::Add,
            rd: IntReg::ZERO,
            rs1: IntReg::ZERO,
            imm: 0,
        };
        assert_eq!(i.int_dest(), None);
        assert!(i.int_sources().is_empty());
    }

    #[test]
    fn display_formats() {
        let i = Instruction::FpBin {
            op: FpBinOp::Add,
            fmt: FpFormat::Double,
            frd: FpReg::FT3,
            frs1: FpReg::FT0,
            frs2: FpReg::FT1,
        };
        assert_eq!(i.to_string(), "fadd.d ft3, ft0, ft1");
        assert_eq!(Instruction::NOP.to_string(), "addi zero, zero, 0");
        let f = Instruction::Frep {
            is_outer: true,
            max_rpt: IntReg::new(5),
            n_instr: 4,
            stagger_max: 0,
            stagger_mask: 0,
        };
        assert_eq!(f.to_string(), "frep.o t0, 4, 0, 0");
    }

    #[test]
    fn fp_store_reads_base_int_reg() {
        let i = Instruction::FpStore {
            fmt: FpFormat::Double,
            frs2: FpReg::FT2,
            rs1: IntReg::new(10),
            offset: 8,
        };
        assert_eq!(i.int_sources(), vec![IntReg::new(10)]);
        assert_eq!(i.fp_sources(), vec![FpReg::FT2]);
        assert_eq!(i.fp_dest(), None);
    }
}
