//! # sc-isa — RISC-V ISA substrate for the scalar-chaining model
//!
//! This crate defines the instruction set executed by the `sc-core`
//! simulator: the RV32IMFD subset the paper's kernels need, the standard
//! CSR instructions, and the custom extensions of the Snitch-like core —
//! FP repetition (`frep`), stream configuration (`scfgwi`/`scfgri`) — plus
//! the **chaining** CSR (0x7C3) introduced by the paper.
//!
//! It provides:
//!
//! * register and CSR types ([`IntReg`], [`FpReg`], [`CsrFile`]),
//! * the [`Instruction`] enum with operand-usage queries used by the
//!   core's scoreboard,
//! * binary [`encode`]/[`decode`] (property-tested roundtrip),
//! * an assembler ([`ProgramBuilder`]) with labels, pseudo-instructions and
//!   a FREP-aware block helper, producing [`Program`]s.
//!
//! ```
//! use sc_isa::{ProgramBuilder, FpReg, IntReg, csr};
//!
//! // The paper's Fig. 1c prologue: enable chaining on ft3.
//! let mut b = ProgramBuilder::new();
//! b.li(IntReg::new(5), FpReg::FT3.chain_mask_bit() as i32);
//! b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, IntReg::new(5));
//! let prog = b.build()?;
//! assert_eq!(prog.len(), 2);
//! # Ok::<(), sc_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asm;
pub mod csr;
mod decode;
mod encode;
mod inst;
mod parse;
mod program;
mod reg;

pub use asm::{AsmError, ProgramBuilder};
pub use csr::{CsrFile, CsrOp};
pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use inst::{
    AluOp, BranchOp, CsrSrc, FmaOp, FpBinOp, FpCmpOp, FpCvtOp, FpFormat, Instruction, LoadOp,
    MulDivOp, StoreOp,
};
pub use parse::{parse_asm, ParseAsmError};
pub use program::Program;
pub use reg::{FpReg, IntReg, ParseRegError};
