//! Decoding of 32-bit instruction words back into [`Instruction`]s.
//!
//! Exact inverse of [`crate::encode`]; the crate's property tests assert the
//! roundtrip for every instruction form.

use std::fmt;

use crate::csr::CsrOp;
use crate::encode::opcode;
use crate::inst::*;
use crate::reg::{FpReg, IntReg};

/// Error returned when an instruction word cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn rd(w: u32) -> IntReg {
    IntReg::new(((w >> 7) & 0x1F) as u8)
}
fn rs1(w: u32) -> IntReg {
    IntReg::new(((w >> 15) & 0x1F) as u8)
}
fn rs2(w: u32) -> IntReg {
    IntReg::new(((w >> 20) & 0x1F) as u8)
}
fn frd(w: u32) -> FpReg {
    FpReg::new(((w >> 7) & 0x1F) as u8)
}
fn frs1(w: u32) -> FpReg {
    FpReg::new(((w >> 15) & 0x1F) as u8)
}
fn frs2(w: u32) -> FpReg {
    FpReg::new(((w >> 20) & 0x1F) as u8)
}
fn frs3(w: u32) -> FpReg {
    FpReg::new(((w >> 27) & 0x1F) as u8)
}
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
fn funct7(w: u32) -> u32 {
    (w >> 25) & 0x7F
}

fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

fn imm_s(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | (((w >> 7) & 0x1F) as i32)
}

fn imm_b(w: u32) -> i32 {
    let sign = ((w as i32) >> 31) << 12;
    let b11 = (((w >> 7) & 1) << 11) as i32;
    let b10_5 = (((w >> 25) & 0x3F) << 5) as i32;
    let b4_1 = (((w >> 8) & 0xF) << 1) as i32;
    sign | b11 | b10_5 | b4_1
}

fn imm_j(w: u32) -> i32 {
    let sign = ((w as i32) >> 31) << 20;
    let b19_12 = (w & 0x000F_F000) as i32;
    let b11 = (((w >> 20) & 1) << 11) as i32;
    let b10_1 = (((w >> 21) & 0x3FF) << 1) as i32;
    sign | b19_12 | b11 | b10_1
}

fn fmt_from_bits(bits: u32, word: u32) -> Result<FpFormat, DecodeError> {
    match bits {
        0b00 => Ok(FpFormat::Single),
        0b01 => Ok(FpFormat::Double),
        _ => Err(DecodeError { word }),
    }
}

/// Decodes one 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for words outside the supported subset.
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    let err = || DecodeError { word };
    let op = word & 0x7F;
    let inst = match op {
        opcode::LUI => Instruction::Lui {
            rd: rd(word),
            imm: word & 0xFFFF_F000,
        },
        opcode::AUIPC => Instruction::Auipc {
            rd: rd(word),
            imm: word & 0xFFFF_F000,
        },
        opcode::JAL => Instruction::Jal {
            rd: rd(word),
            offset: imm_j(word),
        },
        opcode::JALR => {
            if funct3(word) != 0 {
                return Err(err());
            }
            Instruction::Jalr {
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            }
        }
        opcode::BRANCH => {
            let bop = match funct3(word) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return Err(err()),
            };
            Instruction::Branch {
                op: bop,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            }
        }
        opcode::LOAD => {
            let lop = match funct3(word) {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                _ => return Err(err()),
            };
            Instruction::Load {
                op: lop,
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            }
        }
        opcode::STORE => {
            let sop = match funct3(word) {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                _ => return Err(err()),
            };
            Instruction::Store {
                op: sop,
                rs2: rs2(word),
                rs1: rs1(word),
                offset: imm_s(word),
            }
        }
        opcode::OP_IMM => {
            let imm = imm_i(word);
            let (aop, imm) = match funct3(word) {
                0b000 => (AluOp::Add, imm),
                0b010 => (AluOp::Slt, imm),
                0b011 => (AluOp::Sltu, imm),
                0b100 => (AluOp::Xor, imm),
                0b110 => (AluOp::Or, imm),
                0b111 => (AluOp::And, imm),
                0b001 => (AluOp::Sll, imm & 0x1F),
                0b101 => {
                    if (word >> 30) & 1 == 1 {
                        (AluOp::Sra, imm & 0x1F)
                    } else {
                        (AluOp::Srl, imm & 0x1F)
                    }
                }
                _ => unreachable!(),
            };
            Instruction::OpImm {
                op: aop,
                rd: rd(word),
                rs1: rs1(word),
                imm,
            }
        }
        opcode::OP => {
            if funct7(word) == 1 {
                let mop = match funct3(word) {
                    0b000 => MulDivOp::Mul,
                    0b001 => MulDivOp::Mulh,
                    0b010 => MulDivOp::Mulhsu,
                    0b011 => MulDivOp::Mulhu,
                    0b100 => MulDivOp::Div,
                    0b101 => MulDivOp::Divu,
                    0b110 => MulDivOp::Rem,
                    0b111 => MulDivOp::Remu,
                    _ => unreachable!(),
                };
                Instruction::MulDiv {
                    op: mop,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                }
            } else {
                let alt = funct7(word) == 0x20;
                if funct7(word) != 0 && !alt {
                    return Err(err());
                }
                let aop = match (funct3(word), alt) {
                    (0b000, false) => AluOp::Add,
                    (0b000, true) => AluOp::Sub,
                    (0b001, false) => AluOp::Sll,
                    (0b010, false) => AluOp::Slt,
                    (0b011, false) => AluOp::Sltu,
                    (0b100, false) => AluOp::Xor,
                    (0b101, false) => AluOp::Srl,
                    (0b101, true) => AluOp::Sra,
                    (0b110, false) => AluOp::Or,
                    (0b111, false) => AluOp::And,
                    _ => return Err(err()),
                };
                Instruction::Op {
                    op: aop,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                }
            }
        }
        opcode::MISC_MEM => Instruction::Fence,
        opcode::SYSTEM => match funct3(word) {
            0 => match word >> 20 {
                0 => Instruction::Ecall,
                1 => Instruction::Ebreak,
                _ => return Err(err()),
            },
            f3 => {
                let cop = match f3 & 0x3 {
                    1 => CsrOp::ReadWrite,
                    2 => CsrOp::ReadSet,
                    3 => CsrOp::ReadClear,
                    _ => return Err(err()),
                };
                let src = if f3 >= 4 {
                    CsrSrc::Imm(((word >> 15) & 0x1F) as u8)
                } else {
                    CsrSrc::Reg(rs1(word))
                };
                Instruction::Csr {
                    op: cop,
                    rd: rd(word),
                    csr: (word >> 20) as u16,
                    src,
                }
            }
        },
        opcode::LOAD_FP => {
            let fmt = match funct3(word) {
                0b010 => FpFormat::Single,
                0b011 => FpFormat::Double,
                _ => return Err(err()),
            };
            Instruction::FpLoad {
                fmt,
                frd: frd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            }
        }
        opcode::STORE_FP => {
            let fmt = match funct3(word) {
                0b010 => FpFormat::Single,
                0b011 => FpFormat::Double,
                _ => return Err(err()),
            };
            Instruction::FpStore {
                fmt,
                frs2: frs2(word),
                rs1: rs1(word),
                offset: imm_s(word),
            }
        }
        opcode::MADD | opcode::MSUB | opcode::NMSUB | opcode::NMADD => {
            let fop = match op {
                opcode::MADD => FmaOp::Madd,
                opcode::MSUB => FmaOp::Msub,
                opcode::NMSUB => FmaOp::Nmsub,
                _ => FmaOp::Nmadd,
            };
            let fmt = fmt_from_bits((word >> 25) & 0x3, word)?;
            Instruction::FpFma {
                op: fop,
                fmt,
                frd: frd(word),
                frs1: frs1(word),
                frs2: frs2(word),
                frs3: frs3(word),
            }
        }
        opcode::OP_FP => return decode_op_fp(word),
        opcode::CUSTOM0 => Instruction::Frep {
            is_outer: (word >> 7) & 1 == 1,
            max_rpt: rs1(word),
            n_instr: ((word >> 20) & 0xFFF) as u16 + 1,
            stagger_max: funct3(word) as u8,
            stagger_mask: ((word >> 8) & 0xF) as u8,
        },
        opcode::CUSTOM1 => match funct3(word) {
            0b010 => Instruction::Scfgwi {
                rs1: rs1(word),
                imm: ((word >> 20) & 0xFFF) as u16,
            },
            0b001 => Instruction::Scfgri {
                rd: rd(word),
                imm: ((word >> 20) & 0xFFF) as u16,
            },
            _ => return Err(err()),
        },
        _ => return Err(err()),
    };
    Ok(inst)
}

fn decode_op_fp(word: u32) -> Result<Instruction, DecodeError> {
    let err = || DecodeError { word };
    let f7 = funct7(word);
    let fmt = fmt_from_bits(f7 & 0x3, word)?;
    match f7 >> 2 {
        0b00000 => Ok(Instruction::FpBin {
            op: FpBinOp::Add,
            fmt,
            frd: frd(word),
            frs1: frs1(word),
            frs2: frs2(word),
        }),
        0b00001 => Ok(Instruction::FpBin {
            op: FpBinOp::Sub,
            fmt,
            frd: frd(word),
            frs1: frs1(word),
            frs2: frs2(word),
        }),
        0b00010 => Ok(Instruction::FpBin {
            op: FpBinOp::Mul,
            fmt,
            frd: frd(word),
            frs1: frs1(word),
            frs2: frs2(word),
        }),
        0b00011 => Ok(Instruction::FpBin {
            op: FpBinOp::Div,
            fmt,
            frd: frd(word),
            frs1: frs1(word),
            frs2: frs2(word),
        }),
        0b00100 => {
            let op = match funct3(word) {
                0b000 => FpBinOp::Sgnj,
                0b001 => FpBinOp::Sgnjn,
                0b010 => FpBinOp::Sgnjx,
                _ => return Err(err()),
            };
            Ok(Instruction::FpBin {
                op,
                fmt,
                frd: frd(word),
                frs1: frs1(word),
                frs2: frs2(word),
            })
        }
        0b00101 => {
            let op = match funct3(word) {
                0b000 => FpBinOp::Min,
                0b001 => FpBinOp::Max,
                _ => return Err(err()),
            };
            Ok(Instruction::FpBin {
                op,
                fmt,
                frd: frd(word),
                frs1: frs1(word),
                frs2: frs2(word),
            })
        }
        0b01011 => Ok(Instruction::FpSqrt {
            fmt,
            frd: frd(word),
            frs1: frs1(word),
        }),
        0b10100 => {
            let op = match funct3(word) {
                0b000 => FpCmpOp::Le,
                0b001 => FpCmpOp::Lt,
                0b010 => FpCmpOp::Eq,
                _ => return Err(err()),
            };
            Ok(Instruction::FpCmp {
                op,
                fmt,
                rd: rd(word),
                frs1: frs1(word),
                frs2: frs2(word),
            })
        }
        0b11010 if fmt == FpFormat::Double => {
            let op = if (word >> 20) & 0x1F == 0 {
                FpCvtOp::DFromW
            } else {
                FpCvtOp::DFromWu
            };
            Ok(cvt(op, word))
        }
        0b11000 if fmt == FpFormat::Double => {
            let op = if (word >> 20) & 0x1F == 0 {
                FpCvtOp::WFromD
            } else {
                FpCvtOp::WuFromD
            };
            Ok(cvt(op, word))
        }
        0b01000 if fmt == FpFormat::Double => Ok(cvt(FpCvtOp::DFromS, word)),
        0b01000 if fmt == FpFormat::Single => Ok(cvt(FpCvtOp::SFromD, word)),
        0b11100 if fmt == FpFormat::Single => Ok(cvt(FpCvtOp::MvXW, word)),
        0b11110 if fmt == FpFormat::Single => Ok(cvt(FpCvtOp::MvWX, word)),
        _ => Err(err()),
    }
}

fn cvt(op: FpCvtOp, word: u32) -> Instruction {
    // Only the fields meaningful for `op` are taken from the word; the
    // others are canonicalised to zero so decode(encode(i)) == i.
    let (z, fz) = (IntReg::ZERO, FpReg::new(0));
    if op.writes_int() {
        Instruction::FpCvt {
            op,
            rd: rd(word),
            frd: fz,
            rs1: z,
            frs1: frs1(word),
        }
    } else if op.reads_int() {
        Instruction::FpCvt {
            op,
            rd: z,
            frd: frd(word),
            rs1: rs1(word),
            frs1: fz,
        }
    } else {
        Instruction::FpCvt {
            op,
            rd: z,
            frd: frd(word),
            rs1: z,
            frs1: frs1(word),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0).is_err());
    }

    #[test]
    fn roundtrip_sample_instructions() {
        let samples = vec![
            Instruction::Lui {
                rd: IntReg::new(7),
                imm: 0xDEAD_B000,
            },
            Instruction::Auipc {
                rd: IntReg::new(1),
                imm: 0x1000,
            },
            Instruction::Jal {
                rd: IntReg::ZERO,
                offset: -36,
            },
            Instruction::Jalr {
                rd: IntReg::RA,
                rs1: IntReg::new(5),
                offset: 16,
            },
            Instruction::Branch {
                op: BranchOp::Ne,
                rs1: IntReg::new(9),
                rs2: IntReg::new(10),
                offset: -12,
            },
            Instruction::Load {
                op: LoadOp::Lw,
                rd: IntReg::new(6),
                rs1: IntReg::SP,
                offset: -4,
            },
            Instruction::Store {
                op: StoreOp::Sw,
                rs2: IntReg::new(6),
                rs1: IntReg::SP,
                offset: 2044,
            },
            Instruction::OpImm {
                op: AluOp::Sra,
                rd: IntReg::new(4),
                rs1: IntReg::new(4),
                imm: 7,
            },
            Instruction::MulDiv {
                op: MulDivOp::Remu,
                rd: IntReg::new(12),
                rs1: IntReg::new(13),
                rs2: IntReg::new(14),
            },
            Instruction::Csr {
                op: CsrOp::ReadWrite,
                rd: IntReg::new(3),
                csr: 0x7C3,
                src: CsrSrc::Imm(8),
            },
            Instruction::FpSqrt {
                fmt: FpFormat::Double,
                frd: FpReg::new(9),
                frs1: FpReg::new(9),
            },
            Instruction::FpCmp {
                op: FpCmpOp::Lt,
                fmt: FpFormat::Double,
                rd: IntReg::new(5),
                frs1: FpReg::new(1),
                frs2: FpReg::new(2),
            },
            Instruction::FpCvt {
                op: FpCvtOp::DFromW,
                rd: IntReg::ZERO,
                frd: FpReg::new(8),
                rs1: IntReg::new(11),
                frs1: FpReg::new(0),
            },
            Instruction::Frep {
                is_outer: true,
                max_rpt: IntReg::new(20),
                n_instr: 108,
                stagger_max: 3,
                stagger_mask: 0b1001,
            },
            Instruction::Scfgwi {
                rs1: IntReg::new(15),
                imm: 0x7A2,
            },
            Instruction::Scfgri {
                rd: IntReg::new(16),
                imm: 0x012,
            },
            Instruction::Ecall,
            Instruction::Ebreak,
            Instruction::Fence,
        ];
        for inst in samples {
            let canon = canonical(inst);
            let word = encode(&canon);
            let back = decode(word).unwrap_or_else(|e| panic!("{inst}: {e}"));
            assert_eq!(back, canon, "roundtrip failed for {inst} ({word:#010x})");
        }
    }

    /// Conversions carry don't-care register fields; zero them the way the
    /// encoding does so equality is meaningful.
    fn canonical(inst: Instruction) -> Instruction {
        match inst {
            Instruction::FpCvt {
                op,
                rd,
                frd,
                rs1,
                frs1,
            } => {
                let z = IntReg::ZERO;
                let fz = FpReg::new(0);
                match op {
                    FpCvtOp::DFromW | FpCvtOp::DFromWu | FpCvtOp::MvWX => Instruction::FpCvt {
                        op,
                        rd: z,
                        frd,
                        rs1,
                        frs1: fz,
                    },
                    FpCvtOp::WFromD | FpCvtOp::WuFromD | FpCvtOp::MvXW => Instruction::FpCvt {
                        op,
                        rd,
                        frd: fz,
                        rs1: z,
                        frs1,
                    },
                    _ => Instruction::FpCvt {
                        op,
                        rd: z,
                        frd,
                        rs1: z,
                        frs1,
                    },
                }
            }
            other => other,
        }
    }
}
