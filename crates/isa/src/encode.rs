//! Binary (32-bit) encoding of [`Instruction`]s.
//!
//! Standard instructions follow the RISC-V unprivileged spec encodings.
//! The custom extensions use the reserved *custom* opcode space:
//!
//! * `frep.o`/`frep.i` on opcode `0x0B` (custom-0), with
//!   `inst[31:20] = n_instr - 1`, `inst[19:15] = rs1` (max-repetition
//!   register), `inst[14:12] = stagger_max`, `inst[11:8] = stagger_mask`,
//!   `inst[7] = is_outer` — mirroring the Snitch FREP layout.
//! * `scfgwi`/`scfgri` on opcode `0x2B` (custom-1), funct3 2/1, I-type
//!   immediate carrying the SSR config word address.

// Binary literals here split fields the way the spec draws them
// (e.g. funct5 | fmt), not in even digit groups.
#![allow(clippy::unusual_byte_groupings)]
//!
//! These choices are internal to this model (the upstream RTL uses its own
//! encodings); [`crate::decode`] is the exact inverse, which the property
//! tests verify.

use crate::csr::CsrOp;
use crate::inst::*;
use crate::reg::{FpReg, IntReg};

/// Opcode constants (inst[6:0]).
pub(crate) mod opcode {
    pub const LUI: u32 = 0b0110111;
    pub const AUIPC: u32 = 0b0010111;
    pub const JAL: u32 = 0b1101111;
    pub const JALR: u32 = 0b1100111;
    pub const BRANCH: u32 = 0b1100011;
    pub const LOAD: u32 = 0b0000011;
    pub const STORE: u32 = 0b0100011;
    pub const OP_IMM: u32 = 0b0010011;
    pub const OP: u32 = 0b0110011;
    pub const MISC_MEM: u32 = 0b0001111;
    pub const SYSTEM: u32 = 0b1110011;
    pub const LOAD_FP: u32 = 0b0000111;
    pub const STORE_FP: u32 = 0b0100111;
    pub const OP_FP: u32 = 0b1010011;
    pub const MADD: u32 = 0b1000011;
    pub const MSUB: u32 = 0b1000111;
    pub const NMSUB: u32 = 0b1001011;
    pub const NMADD: u32 = 0b1001111;
    /// custom-0: FREP.
    pub const CUSTOM0: u32 = 0b0001011;
    /// custom-1: SSR config.
    pub const CUSTOM1: u32 = 0b0101011;
}

fn rd(r: IntReg) -> u32 {
    u32::from(r.index()) << 7
}
fn rs1(r: IntReg) -> u32 {
    u32::from(r.index()) << 15
}
fn rs2(r: IntReg) -> u32 {
    u32::from(r.index()) << 20
}
fn frd_(r: FpReg) -> u32 {
    u32::from(r.index()) << 7
}
fn frs1_(r: FpReg) -> u32 {
    u32::from(r.index()) << 15
}
fn frs2_(r: FpReg) -> u32 {
    u32::from(r.index()) << 20
}
fn frs3_(r: FpReg) -> u32 {
    u32::from(r.index()) << 27
}
fn funct3(v: u32) -> u32 {
    (v & 0x7) << 12
}
fn funct7(v: u32) -> u32 {
    (v & 0x7F) << 25
}

fn itype(op: u32, f3: u32, d: u32, s1: u32, imm: i32) -> u32 {
    op | d | funct3(f3) | s1 | (((imm as u32) & 0xFFF) << 20)
}

fn stype(op: u32, f3: u32, s1: u32, s2: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    op | ((imm & 0x1F) << 7) | funct3(f3) | s1 | s2 | (((imm >> 5) & 0x7F) << 25)
}

fn btype(op: u32, f3: u32, s1: u32, s2: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    op | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xF) << 8)
        | funct3(f3)
        | s1
        | s2
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn utype(op: u32, d: u32, imm: u32) -> u32 {
    op | d | (imm & 0xFFFF_F000)
}

fn jtype(op: u32, d: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    op | d
        | (imm & 0x000F_F000)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 20) & 1) << 31)
}

fn fmt_bits(fmt: FpFormat) -> u32 {
    match fmt {
        FpFormat::Single => 0b00,
        FpFormat::Double => 0b01,
    }
}

/// Default rounding mode field (dynamic).
const RM_DYN: u32 = 0b111;

/// Encodes an instruction to its 32-bit binary form.
///
/// # Examples
///
/// ```
/// use sc_isa::{encode, decode, Instruction};
/// let word = encode(&Instruction::Ecall);
/// assert_eq!(word, 0x0000_0073);
/// assert_eq!(decode(word)?, Instruction::Ecall);
/// # Ok::<(), sc_isa::DecodeError>(())
/// ```
#[must_use]
pub fn encode(inst: &Instruction) -> u32 {
    use opcode::*;
    match *inst {
        Instruction::Lui { rd: d, imm } => utype(LUI, rd(d), imm),
        Instruction::Auipc { rd: d, imm } => utype(AUIPC, rd(d), imm),
        Instruction::Jal { rd: d, offset } => jtype(JAL, rd(d), offset),
        Instruction::Jalr {
            rd: d,
            rs1: s1,
            offset,
        } => itype(JALR, 0, rd(d), rs1(s1), offset),
        Instruction::Branch {
            op,
            rs1: s1,
            rs2: s2,
            offset,
        } => {
            let f3 = match op {
                BranchOp::Eq => 0b000,
                BranchOp::Ne => 0b001,
                BranchOp::Lt => 0b100,
                BranchOp::Ge => 0b101,
                BranchOp::Ltu => 0b110,
                BranchOp::Geu => 0b111,
            };
            btype(BRANCH, f3, rs1(s1), rs2(s2), offset)
        }
        Instruction::Load {
            op,
            rd: d,
            rs1: s1,
            offset,
        } => {
            let f3 = match op {
                LoadOp::Lb => 0b000,
                LoadOp::Lh => 0b001,
                LoadOp::Lw => 0b010,
                LoadOp::Lbu => 0b100,
                LoadOp::Lhu => 0b101,
            };
            itype(LOAD, f3, rd(d), rs1(s1), offset)
        }
        Instruction::Store {
            op,
            rs2: s2,
            rs1: s1,
            offset,
        } => {
            let f3 = match op {
                StoreOp::Sb => 0b000,
                StoreOp::Sh => 0b001,
                StoreOp::Sw => 0b010,
            };
            stype(STORE, f3, rs1(s1), rs2(s2), offset)
        }
        Instruction::OpImm {
            op,
            rd: d,
            rs1: s1,
            imm,
        } => {
            let (f3, imm) = match op {
                AluOp::Add => (0b000, imm),
                AluOp::Slt => (0b010, imm),
                AluOp::Sltu => (0b011, imm),
                AluOp::Xor => (0b100, imm),
                AluOp::Or => (0b110, imm),
                AluOp::And => (0b111, imm),
                AluOp::Sll => (0b001, imm & 0x1F),
                AluOp::Srl => (0b101, imm & 0x1F),
                AluOp::Sra => (0b101, (imm & 0x1F) | 0x400),
                AluOp::Sub => panic!("subi does not exist in RISC-V"),
            };
            itype(OP_IMM, f3, rd(d), rs1(s1), imm)
        }
        Instruction::Op {
            op,
            rd: d,
            rs1: s1,
            rs2: s2,
        } => {
            let (f3, f7) = match op {
                AluOp::Add => (0b000, 0),
                AluOp::Sub => (0b000, 0x20),
                AluOp::Sll => (0b001, 0),
                AluOp::Slt => (0b010, 0),
                AluOp::Sltu => (0b011, 0),
                AluOp::Xor => (0b100, 0),
                AluOp::Srl => (0b101, 0),
                AluOp::Sra => (0b101, 0x20),
                AluOp::Or => (0b110, 0),
                AluOp::And => (0b111, 0),
            };
            OP | rd(d) | funct3(f3) | rs1(s1) | rs2(s2) | funct7(f7)
        }
        Instruction::MulDiv {
            op,
            rd: d,
            rs1: s1,
            rs2: s2,
        } => {
            let f3 = match op {
                MulDivOp::Mul => 0b000,
                MulDivOp::Mulh => 0b001,
                MulDivOp::Mulhsu => 0b010,
                MulDivOp::Mulhu => 0b011,
                MulDivOp::Div => 0b100,
                MulDivOp::Divu => 0b101,
                MulDivOp::Rem => 0b110,
                MulDivOp::Remu => 0b111,
            };
            OP | rd(d) | funct3(f3) | rs1(s1) | rs2(s2) | funct7(1)
        }
        Instruction::Fence => MISC_MEM,
        Instruction::Ecall => SYSTEM,
        Instruction::Ebreak => SYSTEM | (1 << 20),
        Instruction::Csr {
            op,
            rd: d,
            csr,
            src,
        } => {
            let (f3_base, s1field) = match src {
                CsrSrc::Reg(r) => (0u32, rs1(r)),
                CsrSrc::Imm(i) => (4u32, u32::from(i & 0x1F) << 15),
            };
            let f3 = f3_base
                + match op {
                    CsrOp::ReadWrite => 1,
                    CsrOp::ReadSet => 2,
                    CsrOp::ReadClear => 3,
                };
            SYSTEM | rd(d) | funct3(f3) | s1field | (u32::from(csr) << 20)
        }
        Instruction::FpLoad {
            fmt,
            frd,
            rs1: s1,
            offset,
        } => {
            let f3 = if fmt == FpFormat::Double {
                0b011
            } else {
                0b010
            };
            itype(LOAD_FP, f3, frd_(frd), rs1(s1), offset)
        }
        Instruction::FpStore {
            fmt,
            frs2,
            rs1: s1,
            offset,
        } => {
            let f3 = if fmt == FpFormat::Double {
                0b011
            } else {
                0b010
            };
            let imm = offset as u32;
            STORE_FP
                | ((imm & 0x1F) << 7)
                | funct3(f3)
                | rs1(s1)
                | frs2_(frs2)
                | (((imm >> 5) & 0x7F) << 25)
        }
        Instruction::FpBin {
            op,
            fmt,
            frd,
            frs1,
            frs2,
        } => {
            let (f7hi, f3) = match op {
                FpBinOp::Add => (0b00000_00, RM_DYN),
                FpBinOp::Sub => (0b00001_00, RM_DYN),
                FpBinOp::Mul => (0b00010_00, RM_DYN),
                FpBinOp::Div => (0b00011_00, RM_DYN),
                FpBinOp::Sgnj => (0b00100_00, 0b000),
                FpBinOp::Sgnjn => (0b00100_00, 0b001),
                FpBinOp::Sgnjx => (0b00100_00, 0b010),
                FpBinOp::Min => (0b00101_00, 0b000),
                FpBinOp::Max => (0b00101_00, 0b001),
            };
            OP_FP
                | frd_(frd)
                | funct3(f3)
                | frs1_(frs1)
                | frs2_(frs2)
                | funct7(f7hi | fmt_bits(fmt))
        }
        Instruction::FpFma {
            op,
            fmt,
            frd,
            frs1,
            frs2,
            frs3,
        } => {
            let op7 = match op {
                FmaOp::Madd => MADD,
                FmaOp::Msub => MSUB,
                FmaOp::Nmsub => NMSUB,
                FmaOp::Nmadd => NMADD,
            };
            op7 | frd_(frd)
                | funct3(RM_DYN)
                | frs1_(frs1)
                | frs2_(frs2)
                | (fmt_bits(fmt) << 25)
                | frs3_(frs3)
        }
        Instruction::FpSqrt { fmt, frd, frs1 } => {
            OP_FP | frd_(frd) | funct3(RM_DYN) | frs1_(frs1) | funct7(0b01011_00 | fmt_bits(fmt))
        }
        Instruction::FpCmp {
            op,
            fmt,
            rd: d,
            frs1,
            frs2,
        } => {
            let f3 = match op {
                FpCmpOp::Le => 0b000,
                FpCmpOp::Lt => 0b001,
                FpCmpOp::Eq => 0b010,
            };
            OP_FP
                | rd(d)
                | funct3(f3)
                | frs1_(frs1)
                | frs2_(frs2)
                | funct7(0b10100_00 | fmt_bits(fmt))
        }
        Instruction::FpCvt {
            op,
            rd: d,
            frd,
            rs1: s1,
            frs1,
        } => match op {
            FpCvtOp::DFromW => OP_FP | frd_(frd) | funct3(RM_DYN) | rs1(s1) | funct7(0b11010_01),
            FpCvtOp::DFromWu => {
                OP_FP | frd_(frd) | funct3(RM_DYN) | rs1(s1) | (1 << 20) | funct7(0b11010_01)
            }
            FpCvtOp::WFromD => OP_FP | rd(d) | funct3(0b001) | frs1_(frs1) | funct7(0b11000_01),
            FpCvtOp::WuFromD => {
                OP_FP | rd(d) | funct3(0b001) | frs1_(frs1) | (1 << 20) | funct7(0b11000_01)
            }
            FpCvtOp::DFromS => {
                OP_FP | frd_(frd) | funct3(RM_DYN) | frs1_(frs1) | funct7(0b01000_01)
            }
            FpCvtOp::SFromD => {
                OP_FP | frd_(frd) | funct3(RM_DYN) | frs1_(frs1) | (1 << 20) | funct7(0b01000_00)
            }
            FpCvtOp::MvXW => OP_FP | rd(d) | frs1_(frs1) | funct7(0b11100_00),
            FpCvtOp::MvWX => OP_FP | frd_(frd) | rs1(s1) | funct7(0b11110_00),
        },
        Instruction::Frep {
            is_outer,
            max_rpt,
            n_instr,
            stagger_max,
            stagger_mask,
        } => {
            assert!(
                n_instr >= 1,
                "frep body must contain at least one instruction"
            );
            CUSTOM0
                | (u32::from(is_outer) << 7)
                | ((u32::from(stagger_mask) & 0xF) << 8)
                | funct3(u32::from(stagger_max))
                | rs1(max_rpt)
                | ((u32::from(n_instr - 1) & 0xFFF) << 20)
        }
        Instruction::Scfgwi { rs1: s1, imm } => {
            itype(CUSTOM1, 0b010, 0, rs1(s1), i32::from(imm as i16) & 0xFFF)
        }
        Instruction::Scfgri { rd: d, imm } => {
            itype(CUSTOM1, 0b001, rd(d), 0, i32::from(imm as i16) & 0xFFF)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_golden_encodings() {
        // Cross-checked against the RISC-V spec / GNU as output.
        // addi x1, x2, 3  -> 0x00310093
        let addi = Instruction::OpImm {
            op: AluOp::Add,
            rd: IntReg::new(1),
            rs1: IntReg::new(2),
            imm: 3,
        };
        assert_eq!(encode(&addi), 0x0031_0093);
        // add x3, x4, x5 -> 0x005201b3
        let add = Instruction::Op {
            op: AluOp::Add,
            rd: IntReg::new(3),
            rs1: IntReg::new(4),
            rs2: IntReg::new(5),
        };
        assert_eq!(encode(&add), 0x0052_01B3);
        // fadd.d ft3, ft0, ft1 (rm=dyn) -> 0x021071d3
        let fadd = Instruction::FpBin {
            op: FpBinOp::Add,
            fmt: FpFormat::Double,
            frd: FpReg::FT3,
            frs1: FpReg::FT0,
            frs2: FpReg::FT1,
        };
        assert_eq!(encode(&fadd), 0x0210_71D3);
        // fld ft0, 8(x10) -> 0x00853007
        let fld = Instruction::FpLoad {
            fmt: FpFormat::Double,
            frd: FpReg::FT0,
            rs1: IntReg::new(10),
            offset: 8,
        };
        assert_eq!(encode(&fld), 0x0085_3007);
        // fsd ft2, 16(x11) -> 0x0025b827
        let fsd = Instruction::FpStore {
            fmt: FpFormat::Double,
            frs2: FpReg::FT2,
            rs1: IntReg::new(11),
            offset: 16,
        };
        assert_eq!(encode(&fsd), 0x0025_B827);
        // fmadd.d f3, f0, f1, f3 -> rs3=3 fmt=01: 0x1a1071c3
        let fma = Instruction::FpFma {
            op: FmaOp::Madd,
            fmt: FpFormat::Double,
            frd: FpReg::FT3,
            frs1: FpReg::FT0,
            frs2: FpReg::FT1,
            frs3: FpReg::FT3,
        };
        assert_eq!(encode(&fma), 0x1A10_71C3);
        // csrrs x0, 0x7C3, x5 -> 0x7c32a073
        let csrs = Instruction::Csr {
            op: CsrOp::ReadSet,
            rd: IntReg::ZERO,
            csr: 0x7C3,
            src: CsrSrc::Reg(IntReg::new(5)),
        };
        assert_eq!(encode(&csrs), 0x7C32_A073);
    }

    #[test]
    fn branch_offset_fields() {
        // beq x1, x2, -12 : checked against objdump (0xfe208ae3).
        let b = Instruction::Branch {
            op: BranchOp::Eq,
            rs1: IntReg::new(1),
            rs2: IntReg::new(2),
            offset: -12,
        };
        assert_eq!(encode(&b), 0xFE20_8AE3);
    }

    #[test]
    fn jal_offset_fields() {
        // jal x1, 2048 -> 0x001000ef ... (imm 0x800: bit11=1)
        let j = Instruction::Jal {
            rd: IntReg::RA,
            offset: 2048,
        };
        assert_eq!(encode(&j), 0x0010_00EF);
    }

    #[test]
    #[should_panic(expected = "subi")]
    fn subi_rejected() {
        let bad = Instruction::OpImm {
            op: AluOp::Sub,
            rd: IntReg::new(1),
            rs1: IntReg::new(1),
            imm: 1,
        };
        let _ = encode(&bad);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_frep_rejected() {
        let bad = Instruction::Frep {
            is_outer: true,
            max_rpt: IntReg::new(5),
            n_instr: 0,
            stagger_max: 0,
            stagger_mask: 0,
        };
        let _ = encode(&bad);
    }
}
