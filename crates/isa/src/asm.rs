//! An ergonomic assembler: [`ProgramBuilder`] emits [`Instruction`]
//! sequences with label resolution and the usual pseudo-instructions.
//!
//! # Examples
//!
//! The paper's Fig. 1a inner loop (baseline vector op `a = b*(c+d)`):
//!
//! ```
//! use sc_isa::{ProgramBuilder, FpReg, IntReg};
//!
//! let mut b = ProgramBuilder::new();
//! let (i, len, coef) = (IntReg::new(10), IntReg::new(11), FpReg::new(4));
//! b.label("loop");
//! b.fadd_d(FpReg::FT3, FpReg::FT0, FpReg::FT1);
//! b.fmul_d(FpReg::FT2, FpReg::FT3, coef);
//! b.addi(i, i, 1);
//! b.bne(i, len, "loop");
//! b.ecall();
//! let prog = b.build()?;
//! assert_eq!(prog.len(), 5);
//! # Ok::<(), sc_isa::AsmError>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::csr::CsrOp;
use crate::inst::*;
use crate::program::Program;
use crate::reg::{FpReg, IntReg};

/// Error produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch/jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch target is out of encodable range.
    OffsetOutOfRange {
        /// The label that was targeted.
        label: String,
        /// The computed byte offset.
        offset: i64,
    },
    /// A FREP body contained a non-FP instruction.
    NonFpInFrepBody {
        /// Index of the offending instruction.
        index: usize,
        /// Disassembly of the offending instruction.
        inst: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::OffsetOutOfRange { label, offset } => {
                write!(f, "branch to `{label}` out of range (offset {offset})")
            }
            AsmError::NonFpInFrepBody { index, inst } => {
                write!(
                    f,
                    "frep body instruction {index} is not an FP instruction: {inst}"
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Fixup {
    Branch { index: usize, label: String },
    Jal { index: usize, label: String },
}

/// Builds a [`Program`] instruction by instruction.
///
/// All emit methods append one instruction (pseudo-instructions may append
/// two) and return `&mut self` only implicitly — they are plain `&mut self`
/// methods so they can be called in straight-line code, which reads closest
/// to an assembly listing.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    code: Vec<Instruction>,
    labels: BTreeMap<String, usize>,
    fixups: Vec<Fixup>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Instruction) {
        self.code.push(inst);
    }

    /// Defines a label at the current position.
    ///
    /// Duplicate definitions are reported by [`ProgramBuilder::build`].
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        if self.labels.insert(name.clone(), self.code.len()).is_some() {
            // Remember the duplicate by re-inserting a sentinel fixup;
            // build() re-checks. Simplest: record via special label map.
            self.fixups.push(Fixup::Branch {
                index: usize::MAX,
                label: name,
            });
        }
    }

    /// Resolves labels and returns the finished [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on undefined/duplicate labels, out-of-range
    /// offsets, or an invalid FREP body.
    pub fn build(self) -> Result<Program, AsmError> {
        let ProgramBuilder {
            mut code,
            labels,
            fixups,
        } = self;
        for fixup in &fixups {
            let (index, label, is_jal) = match fixup {
                Fixup::Branch { index, label } => (*index, label, false),
                Fixup::Jal { index, label } => (*index, label, true),
            };
            if index == usize::MAX {
                return Err(AsmError::DuplicateLabel(label.clone()));
            }
            let target = *labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            let offset = (target as i64 - index as i64) * 4;
            let range = if is_jal {
                -(1 << 20)..(1 << 20)
            } else {
                -(1 << 12)..(1 << 12)
            };
            if !range.contains(&offset) {
                return Err(AsmError::OffsetOutOfRange {
                    label: label.clone(),
                    offset,
                });
            }
            match &mut code[index] {
                Instruction::Branch { offset: o, .. } | Instruction::Jal { offset: o, .. } => {
                    *o = offset as i32;
                }
                other => unreachable!("fixup on non-branch {other}"),
            }
        }
        validate_frep_bodies(&code)?;
        let symbols = labels
            .into_iter()
            .map(|(k, v)| (k, (v * 4) as u32))
            .collect();
        Ok(Program::new(code, symbols))
    }

    // ---- integer instructions -------------------------------------------

    /// `lui rd, imm20` (`imm` is the full 32-bit value; low 12 bits ignored).
    pub fn lui(&mut self, rd: IntReg, imm: u32) {
        self.push(Instruction::Lui {
            rd,
            imm: imm & 0xFFFF_F000,
        });
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.push(Instruction::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        });
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: IntReg, rs1: IntReg, shamt: i32) {
        self.push(Instruction::OpImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: shamt,
        });
    }

    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: IntReg, rs1: IntReg, shamt: i32) {
        self.push(Instruction::OpImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: shamt,
        });
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.push(Instruction::OpImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        });
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instruction::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        });
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instruction::Op {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instruction::MulDiv {
            op: MulDivOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }

    /// `li rd, imm` pseudo-instruction (1–2 instructions).
    pub fn li(&mut self, rd: IntReg, imm: i32) {
        if (-2048..2048).contains(&imm) {
            self.addi(rd, IntReg::ZERO, imm);
        } else {
            // lui + addi with carry correction for negative low parts.
            let low = (imm << 20) >> 20;
            let high = imm.wrapping_sub(low) as u32;
            self.lui(rd, high);
            if low != 0 {
                self.addi(rd, rd, low);
            }
        }
    }

    /// `mv rd, rs` pseudo-instruction.
    pub fn mv(&mut self, rd: IntReg, rs: IntReg) {
        self.addi(rd, rs, 0);
    }

    /// `nop` pseudo-instruction.
    pub fn nop(&mut self) {
        self.push(Instruction::NOP);
    }

    /// `lw rd, offset(rs1)`.
    pub fn lw(&mut self, rd: IntReg, rs1: IntReg, offset: i32) {
        self.push(Instruction::Load {
            op: LoadOp::Lw,
            rd,
            rs1,
            offset,
        });
    }

    /// `sw rs2, offset(rs1)`.
    pub fn sw(&mut self, rs2: IntReg, rs1: IntReg, offset: i32) {
        self.push(Instruction::Store {
            op: StoreOp::Sw,
            rs2,
            rs1,
            offset,
        });
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: IntReg, rs2: IntReg, label: impl Into<String>) {
        self.branch(BranchOp::Eq, rs1, rs2, label);
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: IntReg, rs2: IntReg, label: impl Into<String>) {
        self.branch(BranchOp::Ne, rs1, rs2, label);
    }

    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: IntReg, rs2: IntReg, label: impl Into<String>) {
        self.branch(BranchOp::Lt, rs1, rs2, label);
    }

    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: IntReg, rs2: IntReg, label: impl Into<String>) {
        self.branch(BranchOp::Ge, rs1, rs2, label);
    }

    /// Emits a conditional branch to a label.
    pub fn branch(&mut self, op: BranchOp, rs1: IntReg, rs2: IntReg, label: impl Into<String>) {
        self.fixups.push(Fixup::Branch {
            index: self.code.len(),
            label: label.into(),
        });
        self.push(Instruction::Branch {
            op,
            rs1,
            rs2,
            offset: 0,
        });
    }

    /// `j label` pseudo-instruction (`jal x0, label`).
    pub fn j(&mut self, label: impl Into<String>) {
        self.fixups.push(Fixup::Jal {
            index: self.code.len(),
            label: label.into(),
        });
        self.push(Instruction::Jal {
            rd: IntReg::ZERO,
            offset: 0,
        });
    }

    /// `ecall` — halts the simulation (program exit convention).
    pub fn ecall(&mut self) {
        self.push(Instruction::Ecall);
    }

    // ---- CSR instructions ------------------------------------------------

    /// `csrrw rd, csr, rs1`.
    pub fn csrrw(&mut self, rd: IntReg, csr: u16, rs1: IntReg) {
        self.push(Instruction::Csr {
            op: CsrOp::ReadWrite,
            rd,
            csr,
            src: CsrSrc::Reg(rs1),
        });
    }

    /// `csrrs rd, csr, rs1` (`csrs csr, rs1` when `rd` = x0).
    pub fn csrrs(&mut self, rd: IntReg, csr: u16, rs1: IntReg) {
        self.push(Instruction::Csr {
            op: CsrOp::ReadSet,
            rd,
            csr,
            src: CsrSrc::Reg(rs1),
        });
    }

    /// `csrrc rd, csr, rs1`.
    pub fn csrrc(&mut self, rd: IntReg, csr: u16, rs1: IntReg) {
        self.push(Instruction::Csr {
            op: CsrOp::ReadClear,
            rd,
            csr,
            src: CsrSrc::Reg(rs1),
        });
    }

    /// `csrrwi rd, csr, imm5`.
    pub fn csrrwi(&mut self, rd: IntReg, csr: u16, imm: u8) {
        self.push(Instruction::Csr {
            op: CsrOp::ReadWrite,
            rd,
            csr,
            src: CsrSrc::Imm(imm),
        });
    }

    /// `csrrsi rd, csr, imm5`.
    pub fn csrrsi(&mut self, rd: IntReg, csr: u16, imm: u8) {
        self.push(Instruction::Csr {
            op: CsrOp::ReadSet,
            rd,
            csr,
            src: CsrSrc::Imm(imm),
        });
    }

    // ---- FP instructions --------------------------------------------------

    /// `fld frd, offset(rs1)`.
    pub fn fld(&mut self, frd: FpReg, rs1: IntReg, offset: i32) {
        self.push(Instruction::FpLoad {
            fmt: FpFormat::Double,
            frd,
            rs1,
            offset,
        });
    }

    /// `fsd frs2, offset(rs1)`.
    pub fn fsd(&mut self, frs2: FpReg, rs1: IntReg, offset: i32) {
        self.push(Instruction::FpStore {
            fmt: FpFormat::Double,
            frs2,
            rs1,
            offset,
        });
    }

    /// `fadd.d frd, frs1, frs2`.
    pub fn fadd_d(&mut self, frd: FpReg, frs1: FpReg, frs2: FpReg) {
        self.fp_bin(FpBinOp::Add, frd, frs1, frs2);
    }

    /// `fsub.d frd, frs1, frs2`.
    pub fn fsub_d(&mut self, frd: FpReg, frs1: FpReg, frs2: FpReg) {
        self.fp_bin(FpBinOp::Sub, frd, frs1, frs2);
    }

    /// `fmul.d frd, frs1, frs2`.
    pub fn fmul_d(&mut self, frd: FpReg, frs1: FpReg, frs2: FpReg) {
        self.fp_bin(FpBinOp::Mul, frd, frs1, frs2);
    }

    /// `fdiv.d frd, frs1, frs2`.
    pub fn fdiv_d(&mut self, frd: FpReg, frs1: FpReg, frs2: FpReg) {
        self.fp_bin(FpBinOp::Div, frd, frs1, frs2);
    }

    fn fp_bin(&mut self, op: FpBinOp, frd: FpReg, frs1: FpReg, frs2: FpReg) {
        self.push(Instruction::FpBin {
            op,
            fmt: FpFormat::Double,
            frd,
            frs1,
            frs2,
        });
    }

    /// `fmadd.d frd, frs1, frs2, frs3` (`frd = frs1*frs2 + frs3`).
    pub fn fmadd_d(&mut self, frd: FpReg, frs1: FpReg, frs2: FpReg, frs3: FpReg) {
        self.push(Instruction::FpFma {
            op: FmaOp::Madd,
            fmt: FpFormat::Double,
            frd,
            frs1,
            frs2,
            frs3,
        });
    }

    /// `fmsub.d frd, frs1, frs2, frs3` (`frd = frs1*frs2 - frs3`).
    pub fn fmsub_d(&mut self, frd: FpReg, frs1: FpReg, frs2: FpReg, frs3: FpReg) {
        self.push(Instruction::FpFma {
            op: FmaOp::Msub,
            fmt: FpFormat::Double,
            frd,
            frs1,
            frs2,
            frs3,
        });
    }

    /// `fmv.d frd, frs1` pseudo-instruction (`fsgnj.d frd, frs1, frs1`).
    pub fn fmv_d(&mut self, frd: FpReg, frs1: FpReg) {
        self.fp_bin(FpBinOp::Sgnj, frd, frs1, frs1);
    }

    /// `fcvt.d.w frd, rs1`.
    pub fn fcvt_d_w(&mut self, frd: FpReg, rs1: IntReg) {
        self.push(Instruction::FpCvt {
            op: FpCvtOp::DFromW,
            rd: IntReg::ZERO,
            frd,
            rs1,
            frs1: FpReg::new(0),
        });
    }

    // ---- custom extensions -------------------------------------------------

    /// `scfgwi rs1, imm`: write an SSR configuration word.
    pub fn scfgwi(&mut self, rs1: IntReg, imm: u16) {
        self.push(Instruction::Scfgwi { rs1, imm });
    }

    /// `scfgri rd, imm`: read an SSR configuration word.
    pub fn scfgri(&mut self, rd: IntReg, imm: u16) {
        self.push(Instruction::Scfgri { rd, imm });
    }

    /// `frep.o max_rpt, n_instr, stagger_max, stagger_mask`.
    ///
    /// Prefer [`ProgramBuilder::frep_outer`], which counts the body for you.
    pub fn frep_o(&mut self, max_rpt: IntReg, n_instr: u16, stagger_max: u8, stagger_mask: u8) {
        self.push(Instruction::Frep {
            is_outer: true,
            max_rpt,
            n_instr,
            stagger_max,
            stagger_mask,
        });
    }

    /// `frep.i max_rpt, n_instr, stagger_max, stagger_mask`.
    ///
    /// Prefer [`ProgramBuilder::frep_inner`], which counts the body for you.
    pub fn frep_i(&mut self, max_rpt: IntReg, n_instr: u16, stagger_max: u8, stagger_mask: u8) {
        self.push(Instruction::Frep {
            is_outer: false,
            max_rpt,
            n_instr,
            stagger_max,
            stagger_mask,
        });
    }

    /// Emits `frep.o` around the FP instructions emitted by `body`.
    ///
    /// The repetition count is `max_rpt + 1` where `max_rpt` is read from
    /// the given register at execution time (Snitch semantics).
    ///
    /// # Panics
    ///
    /// Panics if `body` emits no instructions.
    pub fn frep_outer(&mut self, max_rpt: IntReg, body: impl FnOnce(&mut Self)) {
        self.frep(true, max_rpt, body);
    }

    /// Emits `frep.i` around the FP instructions emitted by `body`: each
    /// body instruction is repeated `max_rpt + 1` times before the next.
    ///
    /// # Panics
    ///
    /// Panics if `body` emits no instructions.
    pub fn frep_inner(&mut self, max_rpt: IntReg, body: impl FnOnce(&mut Self)) {
        self.frep(false, max_rpt, body);
    }

    fn frep(&mut self, is_outer: bool, max_rpt: IntReg, body: impl FnOnce(&mut Self)) {
        let at = self.code.len();
        self.push(Instruction::NOP); // placeholder
        body(self);
        let n = self.code.len() - at - 1;
        assert!(n > 0, "frep body must emit at least one instruction");
        self.code[at] = Instruction::Frep {
            is_outer,
            max_rpt,
            n_instr: n as u16,
            stagger_max: 0,
            stagger_mask: 0,
        };
    }
}

fn validate_frep_bodies(code: &[Instruction]) -> Result<(), AsmError> {
    for (i, inst) in code.iter().enumerate() {
        if let Instruction::Frep { n_instr, .. } = inst {
            for j in 1..=*n_instr as usize {
                match code.get(i + j) {
                    Some(body) if body.is_fp() => {}
                    Some(body) => {
                        return Err(AsmError::NonFpInFrepBody {
                            index: i + j,
                            inst: body.to_string(),
                        })
                    }
                    None => {
                        return Err(AsmError::NonFpInFrepBody {
                            index: i + j,
                            inst: "<end of program>".to_owned(),
                        })
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_branch_resolves() {
        let mut b = ProgramBuilder::new();
        let i = IntReg::new(10);
        b.label("loop");
        b.fadd_d(FpReg::FT3, FpReg::FT0, FpReg::FT1);
        b.fmul_d(FpReg::FT2, FpReg::FT3, FpReg::new(4));
        b.addi(i, i, 1);
        b.bne(i, IntReg::new(11), "loop");
        let prog = b.build().unwrap();
        match prog.fetch(12).unwrap() {
            Instruction::Branch { offset, .. } => assert_eq!(offset, -12),
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn forward_branch_resolves() {
        let mut b = ProgramBuilder::new();
        b.beq(IntReg::ZERO, IntReg::ZERO, "done");
        b.nop();
        b.nop();
        b.label("done");
        b.ecall();
        let prog = b.build().unwrap();
        match prog.fetch(0).unwrap() {
            Instruction::Branch { offset, .. } => assert_eq!(offset, 12),
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = ProgramBuilder::new();
        b.j("nowhere");
        assert_eq!(
            b.build().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.nop();
        b.label("x");
        assert_eq!(b.build().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn li_expands_large_values() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::new(5), 0x12345);
        let prog = b.build().unwrap();
        assert_eq!(prog.len(), 2);
        // And small ones stay small, including negatives.
        let mut b = ProgramBuilder::new();
        b.li(IntReg::new(5), -7);
        assert_eq!(b.build().unwrap().len(), 1);
    }

    #[test]
    fn li_negative_low_carry() {
        // 0x12FFF has low 12 bits 0xFFF = -1 sign-extended; lui must carry.
        let mut b = ProgramBuilder::new();
        b.li(IntReg::new(5), 0x12FFF);
        let prog = b.build().unwrap();
        match (prog.fetch(0).unwrap(), prog.fetch(4).unwrap()) {
            (Instruction::Lui { imm, .. }, Instruction::OpImm { imm: low, .. }) => {
                assert_eq!(imm.wrapping_add(low as u32), 0x12FFF);
            }
            other => panic!("unexpected expansion {other:?}"),
        }
    }

    #[test]
    fn frep_outer_counts_body() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::new(5), 3);
        b.frep_outer(IntReg::new(5), |b| {
            b.fadd_d(FpReg::FT3, FpReg::FT0, FpReg::FT1);
            b.fmul_d(FpReg::FT2, FpReg::FT3, FpReg::new(4));
        });
        b.ecall();
        let prog = b.build().unwrap();
        match prog.fetch(4).unwrap() {
            Instruction::Frep {
                n_instr, is_outer, ..
            } => {
                assert_eq!(n_instr, 2);
                assert!(is_outer);
            }
            other => panic!("expected frep, got {other}"),
        }
    }

    #[test]
    fn frep_body_must_be_fp() {
        let mut b = ProgramBuilder::new();
        b.frep_o(IntReg::new(5), 1, 0, 0);
        b.addi(IntReg::new(1), IntReg::new(1), 1);
        assert!(matches!(
            b.build().unwrap_err(),
            AsmError::NonFpInFrepBody { .. }
        ));
    }
}
