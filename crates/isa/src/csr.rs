//! Control and status register (CSR) addresses and a simple CSR file.
//!
//! Besides a subset of the standard machine-mode CSRs, the core uses three
//! custom CSRs in the vendor range, mirroring the Snitch conventions:
//!
//! * [`SSR_ENABLE`] (0x7C0) — bit 0 enables stream semantic registers,
//!   i.e. `ft0`–`ft2` alias the data movers.
//! * [`FPMODE`] (0x7C1) — reserved (format mode), present for layout
//!   fidelity, unused by the kernels here.
//! * [`CHAIN_MASK`] (0x7C3) — **the paper's contribution**: a 32-bit
//!   mask with one bit per architectural FP register; setting bit *i* gives
//!   register *fi* FIFO (chaining) semantics.

use std::collections::BTreeMap;
use std::fmt;

/// Machine cycle counter (read-only view in this model).
pub const MCYCLE: u16 = 0xB00;
/// Machine retired-instruction counter.
pub const MINSTRET: u16 = 0xB02;
/// Hart (hardware thread) ID — the standard machine-mode CSR. Reads the
/// core's position within its cluster; 0 on a single-core system.
pub const MHARTID: u16 = 0xF14;
/// Custom: stream semantic register enable (Snitch `ssr` CSR).
pub const SSR_ENABLE: u16 = 0x7C0;
/// Custom: FP mode register (unused placeholder, kept for layout fidelity).
pub const FPMODE: u16 = 0x7C1;
/// Custom: chaining enable mask, one bit per FP architectural register.
///
/// This is the CSR the paper places at address 0x7C3.
pub const CHAIN_MASK: u16 = 0x7C3;
/// Custom: performance-region marker. Writing a non-zero value opens a
/// measured region, zero closes it; both synchronise with the FP
/// subsystem so cycle counts are attributable (the model's analogue of
/// the `mcycle` bracketing used in RTL benchmarks).
pub const PERF_REGION: u16 = 0x7C4;
/// Custom: cluster barrier. Any write makes the hart wait (after its FP
/// subsystem drains and its streams complete) until every active hart in
/// the cluster has also written it; the read value returned on release is
/// the number of barrier episodes completed before this one. On a
/// single-core system the barrier releases immediately.
pub const CLUSTER_BARRIER: u16 = 0x7C5;
/// Custom: inter-cluster (system) barrier. Any write makes the hart wait
/// (after its FP subsystem drains and its streams complete) until every
/// active hart of every cluster in the system has also written it; the
/// read value returned on release is the number of system-barrier
/// episodes completed before this one. Outside a multi-cluster system
/// the barrier degenerates to the cluster barrier (a lone cluster is the
/// whole system) and on a single core it releases immediately.
pub const SYSTEM_BARRIER: u16 = 0x7C6;
/// Custom: kernel phase marker. Writing a value records a phase
/// boundary (by convention the tile index) in the core's profile: the
/// run summary keeps a timestamped attribution snapshot per mark, and a
/// subscribed tracer receives an instant event — the hook `sc-perf`
/// uses to segment profiles into prologue / steady-state / drain. The
/// write retires in one cycle with no synchronisation; a pure read
/// (csrrs/csrrc with a zero operand) returns the last value written.
pub const PHASE_MARK: u16 = 0x7CA;
/// Custom: this core's cluster ID within the system (read-only; 0
/// outside a multi-cluster system). The cluster-level analogue of
/// [`MHARTID`] — kernels partition grids across clusters with it the
/// same way they partition across harts.
pub const CLUSTER_ID: u16 = 0x7C7;
/// Custom: number of clusters in the system (read-only; 1 outside a
/// system).
pub const SYSTEM_NUM_CLUSTERS: u16 = 0x7C8;
/// Custom: number of cores in the cluster (read-only; 1 outside a
/// cluster).
pub const CLUSTER_NUM_CORES: u16 = 0x7C9;
/// DMA: source byte address on the background-memory (Dram) side.
pub const DMA_SRC: u16 = 0x7D0;
/// DMA: destination byte address on the TCDM side.
///
/// The src/dst naming follows the Dram→TCDM ("in") direction; for
/// TCDM→Dram transfers [`DMA_SRC`] still holds the Dram-side address and
/// [`DMA_DST`] the TCDM-side address — the direction bit of
/// [`DMA_START`] selects which side is read.
pub const DMA_DST: u16 = 0x7D1;
/// DMA: bytes per row (positive multiple of 8).
pub const DMA_LEN: u16 = 0x7D2;
/// DMA: byte stride between row starts on the Dram side (2-D transfers).
pub const DMA_SRC_STRIDE: u16 = 0x7D3;
/// DMA: byte stride between row starts on the TCDM side (2-D transfers).
pub const DMA_DST_STRIDE: u16 = 0x7D4;
/// DMA: row count; 0 and 1 both mean a plain 1-D transfer.
pub const DMA_REPS: u16 = 0x7D5;
/// DMA: doorbell. Any write snapshots the descriptor CSRs above into a
/// transfer and enqueues it on the cluster's DMA engine; operand bit 0
/// is the direction (1 = Dram → TCDM, 0 = TCDM → Dram). Transfers
/// execute in FIFO order. On a core without an attached engine (the
/// single-core `Simulator` path) the doorbell is inert.
pub const DMA_START: u16 = 0x7D6;
/// DMA: read-only count of transfers not yet completed (queued + in
/// flight), mirrored from the cluster's engine each cycle.
pub const DMA_STATUS: u16 = 0x7D7;
/// DMA: read-only monotonic count of completed transfers. Because
/// completion order is FIFO, polling `completed >= k` synchronises on a
/// specific earlier doorbell ring — the primitive double-buffered tile
/// loops use to wait for *their* input tile while later transfers
/// stream in the background.
pub const DMA_COMPLETED: u16 = 0x7D8;
/// DMA: blocking completion wait. Writing a target count parks the hart
/// (after its FP subsystem drains and its streams finish, like the
/// barrier CSRs) until the engine's wrapping completion counter reaches
/// the target — the wrap-safe condition is
/// `(completed - target) as i32 >= 0` — then the write retires with the
/// live completed count as its read value. Unlike polling
/// [`DMA_COMPLETED`] in a branch loop, a parked hart retires nothing
/// while it waits, which lets an event-driven scheduler fast-forward
/// the wait. A pure read (csrrs/csrrc with a zero operand) returns the
/// completed count without parking. On the single-core `Simulator` the
/// doorbell is inert and the wait releases immediately (like the
/// barrier CSRs); in a cluster without an attached engine it never
/// resolves — a software bug, caught by the watchdog or the cycle
/// budget, exactly like an unreachable barrier.
pub const DMA_WAIT: u16 = 0x7D9;
/// FP accrued exception flags (fcsr subset).
pub const FFLAGS: u16 = 0x001;
/// FP dynamic rounding mode (fcsr subset).
pub const FRM: u16 = 0x002;
/// FP control/status (frm+fflags).
pub const FCSR: u16 = 0x003;

/// How a CSR instruction updates the register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// `csrrw`: write the operand.
    ReadWrite,
    /// `csrrs`: set the bits of the operand.
    ReadSet,
    /// `csrrc`: clear the bits of the operand.
    ReadClear,
}

impl CsrOp {
    /// Applies the update rule to `old` with `operand`, returning the new value.
    ///
    /// Per the RISC-V spec, set/clear with a zero operand performs no write;
    /// the caller is responsible for suppressing side effects in that case —
    /// the pure value computed here is unchanged anyway.
    #[must_use]
    pub fn apply(self, old: u32, operand: u32) -> u32 {
        match self {
            CsrOp::ReadWrite => operand,
            CsrOp::ReadSet => old | operand,
            CsrOp::ReadClear => old & !operand,
        }
    }
}

impl fmt::Display for CsrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CsrOp::ReadWrite => "csrrw",
            CsrOp::ReadSet => "csrrs",
            CsrOp::ReadClear => "csrrc",
        };
        f.write_str(s)
    }
}

/// A sparse CSR file holding 32-bit values.
///
/// Unknown CSRs read as zero and accept writes (stored), which matches the
/// permissive behaviour needed by bring-up code; the core intercepts the
/// CSRs with side effects ([`CHAIN_MASK`], [`SSR_ENABLE`]).
///
/// # Examples
///
/// ```
/// use sc_isa::{CsrFile, CsrOp, csr};
/// let mut f = CsrFile::new();
/// let old = f.apply(csr::CHAIN_MASK, CsrOp::ReadSet, 0x8);
/// assert_eq!(old, 0);
/// assert_eq!(f.read(csr::CHAIN_MASK), 0x8);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrFile {
    values: BTreeMap<u16, u32>,
}

impl CsrFile {
    /// Creates an empty CSR file (all CSRs read as zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a CSR; unknown addresses read as zero.
    #[must_use]
    pub fn read(&self, addr: u16) -> u32 {
        self.values.get(&addr).copied().unwrap_or(0)
    }

    /// Writes a CSR unconditionally.
    pub fn write(&mut self, addr: u16, value: u32) {
        if value == 0 {
            self.values.remove(&addr);
        } else {
            self.values.insert(addr, value);
        }
    }

    /// Applies a CSR read-modify-write op, returning the old value.
    pub fn apply(&mut self, addr: u16, op: CsrOp, operand: u32) -> u32 {
        let old = self.read(addr);
        self.write(addr, op.apply(old, operand));
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_csrs_read_zero() {
        let f = CsrFile::new();
        assert_eq!(f.read(0x123), 0);
    }

    #[test]
    fn ops_apply_spec_semantics() {
        assert_eq!(CsrOp::ReadWrite.apply(0xFF, 0x0F), 0x0F);
        assert_eq!(CsrOp::ReadSet.apply(0xF0, 0x0F), 0xFF);
        assert_eq!(CsrOp::ReadClear.apply(0xFF, 0x0F), 0xF0);
    }

    #[test]
    fn apply_returns_old_value() {
        let mut f = CsrFile::new();
        f.write(CHAIN_MASK, 0x8);
        let old = f.apply(CHAIN_MASK, CsrOp::ReadClear, 0x8);
        assert_eq!(old, 0x8);
        assert_eq!(f.read(CHAIN_MASK), 0);
    }

    #[test]
    fn paper_fig1c_sequence() {
        // li mask, 8 ; csrs 0x7C3, mask ; ... ; csrs 0x7C3, x0
        let mut f = CsrFile::new();
        f.apply(CHAIN_MASK, CsrOp::ReadSet, 8);
        assert_eq!(f.read(CHAIN_MASK), 8);
        // csrs with x0 operand is a no-op read.
        f.apply(CHAIN_MASK, CsrOp::ReadSet, 0);
        assert_eq!(f.read(CHAIN_MASK), 8);
    }
}
