//! A textual assembler: parses RISC-V assembly source (the subset this
//! model executes, plus the custom extensions) into a [`Program`].
//!
//! Supports labels, comments (`#` and `//`), the pseudo-instructions the
//! kernels use (`li`, `mv`, `nop`, `j`, `fmv.d`, `csrr`, `csrw`, `csrs`),
//! decimal/hex immediates, and both ABI and numeric register names — so
//! the paper's listings can be fed in as written:
//!
//! ```
//! use sc_isa::parse_asm;
//! let program = parse_asm(r#"
//!     li   t0, 8          # mask for ft3
//!     csrs 0x7C3, t0      # enable chaining
//! loop:
//!     fadd.d ft3, ft0, ft1
//!     fmul.d ft2, ft3, ft4
//!     addi a0, a0, 1
//!     bne  a0, a1, loop
//!     csrw 0x7C3, x0
//!     ecall
//! "#)?;
//! assert_eq!(program.len(), 8);
//! # Ok::<(), sc_isa::ParseAsmError>(())
//! ```

use std::fmt;

use crate::asm::{AsmError, ProgramBuilder};
use crate::csr::CsrOp;
use crate::inst::*;
use crate::program::Program;
use crate::reg::{FpReg, IntReg};

/// Error produced while parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

impl From<AsmError> for ParseAsmError {
    fn from(e: AsmError) -> Self {
        ParseAsmError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Parses assembly source into a program.
///
/// # Errors
///
/// Returns [`ParseAsmError`] with the offending line on unknown mnemonics,
/// malformed operands, or unresolved labels.
pub fn parse_asm(src: &str) -> Result<Program, ParseAsmError> {
    let mut b = ProgramBuilder::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(i) = text.find('#') {
            text = &text[..i];
        }
        if let Some(i) = text.find("//") {
            text = &text[..i];
        }
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        // Labels (possibly followed by an instruction on the same line).
        let mut rest = text;
        while let Some(colon) = rest.find(':') {
            let (label, after) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            b.label(label);
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        parse_instruction(&mut b, rest, line)?;
    }
    b.build().map_err(|e| ParseAsmError {
        line: 0,
        message: e.to_string(),
    })
}

struct Operands<'a> {
    parts: Vec<&'a str>,
    line: usize,
    mnemonic: &'a str,
}

impl<'a> Operands<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseAsmError {
        ParseAsmError {
            line: self.line,
            message: format!("{}: {}", self.mnemonic, msg.into()),
        }
    }

    fn count(&self, n: usize) -> Result<(), ParseAsmError> {
        if self.parts.len() == n {
            Ok(())
        } else {
            Err(self.err(format!("expected {n} operands, found {}", self.parts.len())))
        }
    }

    fn int_reg(&self, i: usize) -> Result<IntReg, ParseAsmError> {
        self.parts[i]
            .parse()
            .map_err(|_| self.err(format!("`{}` is not an integer register", self.parts[i])))
    }

    fn fp_reg(&self, i: usize) -> Result<FpReg, ParseAsmError> {
        self.parts[i]
            .parse()
            .map_err(|_| self.err(format!("`{}` is not an FP register", self.parts[i])))
    }

    fn imm(&self, i: usize) -> Result<i64, ParseAsmError> {
        parse_imm(self.parts[i])
            .ok_or_else(|| self.err(format!("`{}` is not an immediate", self.parts[i])))
    }

    /// Parses `offset(base)` memory operands.
    fn mem(&self, i: usize) -> Result<(i32, IntReg), ParseAsmError> {
        let s = self.parts[i];
        let open = s
            .find('(')
            .ok_or_else(|| self.err(format!("`{s}` is not offset(base)")))?;
        let close = s
            .rfind(')')
            .ok_or_else(|| self.err(format!("`{s}` is not offset(base)")))?;
        let off_str = s[..open].trim();
        let offset = if off_str.is_empty() {
            0
        } else {
            parse_imm(off_str).ok_or_else(|| self.err(format!("bad offset `{off_str}`")))? as i32
        };
        let base: IntReg = s[open + 1..close]
            .trim()
            .parse()
            .map_err(|_| self.err(format!("bad base register in `{s}`")))?;
        Ok((offset, base))
    }

    fn label(&self, i: usize) -> &'a str {
        self.parts[i]
    }
}

fn parse_imm(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = s.strip_prefix("0b") {
        i64::from_str_radix(bin, 2).ok()?
    } else {
        s.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

#[allow(clippy::too_many_lines)]
fn parse_instruction(b: &mut ProgramBuilder, text: &str, line: usize) -> Result<(), ParseAsmError> {
    let (mnemonic, operand_text) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let parts: Vec<&str> = if operand_text.is_empty() {
        Vec::new()
    } else {
        operand_text.split(',').map(str::trim).collect()
    };
    let ops = Operands {
        parts,
        line,
        mnemonic,
    };

    match mnemonic {
        // ---- integer ALU ------------------------------------------------
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli" | "srai" => {
            ops.count(3)?;
            let op = match mnemonic {
                "addi" => AluOp::Add,
                "slti" => AluOp::Slt,
                "sltiu" => AluOp::Sltu,
                "xori" => AluOp::Xor,
                "ori" => AluOp::Or,
                "andi" => AluOp::And,
                "slli" => AluOp::Sll,
                "srli" => AluOp::Srl,
                _ => AluOp::Sra,
            };
            b.push(Instruction::OpImm {
                op,
                rd: ops.int_reg(0)?,
                rs1: ops.int_reg(1)?,
                imm: ops.imm(2)? as i32,
            });
        }
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" => {
            ops.count(3)?;
            let op = match mnemonic {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "sll" => AluOp::Sll,
                "slt" => AluOp::Slt,
                "sltu" => AluOp::Sltu,
                "xor" => AluOp::Xor,
                "srl" => AluOp::Srl,
                "sra" => AluOp::Sra,
                "or" => AluOp::Or,
                _ => AluOp::And,
            };
            b.push(Instruction::Op {
                op,
                rd: ops.int_reg(0)?,
                rs1: ops.int_reg(1)?,
                rs2: ops.int_reg(2)?,
            });
        }
        "mul" | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
            ops.count(3)?;
            let op = match mnemonic {
                "mul" => MulDivOp::Mul,
                "mulh" => MulDivOp::Mulh,
                "mulhsu" => MulDivOp::Mulhsu,
                "mulhu" => MulDivOp::Mulhu,
                "div" => MulDivOp::Div,
                "divu" => MulDivOp::Divu,
                "rem" => MulDivOp::Rem,
                _ => MulDivOp::Remu,
            };
            b.push(Instruction::MulDiv {
                op,
                rd: ops.int_reg(0)?,
                rs1: ops.int_reg(1)?,
                rs2: ops.int_reg(2)?,
            });
        }
        "lui" => {
            ops.count(2)?;
            b.lui(ops.int_reg(0)?, (ops.imm(1)? as u32) << 12);
        }
        "auipc" => {
            ops.count(2)?;
            b.push(Instruction::Auipc {
                rd: ops.int_reg(0)?,
                imm: (ops.imm(1)? as u32) << 12,
            });
        }
        // ---- memory -------------------------------------------------------
        "lw" | "lh" | "lb" | "lhu" | "lbu" => {
            ops.count(2)?;
            let op = match mnemonic {
                "lw" => LoadOp::Lw,
                "lh" => LoadOp::Lh,
                "lb" => LoadOp::Lb,
                "lhu" => LoadOp::Lhu,
                _ => LoadOp::Lbu,
            };
            let (offset, rs1) = ops.mem(1)?;
            b.push(Instruction::Load {
                op,
                rd: ops.int_reg(0)?,
                rs1,
                offset,
            });
        }
        "sw" | "sh" | "sb" => {
            ops.count(2)?;
            let op = match mnemonic {
                "sw" => StoreOp::Sw,
                "sh" => StoreOp::Sh,
                _ => StoreOp::Sb,
            };
            let (offset, rs1) = ops.mem(1)?;
            b.push(Instruction::Store {
                op,
                rs2: ops.int_reg(0)?,
                rs1,
                offset,
            });
        }
        "fld" | "flw" => {
            ops.count(2)?;
            let fmt = if mnemonic == "fld" {
                FpFormat::Double
            } else {
                FpFormat::Single
            };
            let (offset, rs1) = ops.mem(1)?;
            b.push(Instruction::FpLoad {
                fmt,
                frd: ops.fp_reg(0)?,
                rs1,
                offset,
            });
        }
        "fsd" | "fsw" => {
            ops.count(2)?;
            let fmt = if mnemonic == "fsd" {
                FpFormat::Double
            } else {
                FpFormat::Single
            };
            let (offset, rs1) = ops.mem(1)?;
            b.push(Instruction::FpStore {
                fmt,
                frs2: ops.fp_reg(0)?,
                rs1,
                offset,
            });
        }
        // ---- branches / jumps ---------------------------------------------
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            ops.count(3)?;
            let op = match mnemonic {
                "beq" => BranchOp::Eq,
                "bne" => BranchOp::Ne,
                "blt" => BranchOp::Lt,
                "bge" => BranchOp::Ge,
                "bltu" => BranchOp::Ltu,
                _ => BranchOp::Geu,
            };
            // Numeric offsets (as in the paper's listings) or labels.
            if let Some(off) = parse_imm(ops.label(2)) {
                b.push(Instruction::Branch {
                    op,
                    rs1: ops.int_reg(0)?,
                    rs2: ops.int_reg(1)?,
                    offset: off as i32,
                });
            } else {
                b.branch(op, ops.int_reg(0)?, ops.int_reg(1)?, ops.label(2));
            }
        }
        // The paper writes `bneq`; accept it as `bne`.
        "bneq" => {
            return parse_instruction(b, &text.replacen("bneq", "bne", 1), line);
        }
        "jal" => match ops.parts.len() {
            1 => b.j(ops.label(0)),
            2 => {
                if let Some(off) = parse_imm(ops.label(1)) {
                    b.push(Instruction::Jal {
                        rd: ops.int_reg(0)?,
                        offset: off as i32,
                    });
                } else {
                    return Err(ops.err("jal with label target supports only `jal label`"));
                }
            }
            _ => return Err(ops.err("expected 1 or 2 operands")),
        },
        "jalr" => {
            ops.count(2)?;
            let (offset, rs1) = ops.mem(1)?;
            b.push(Instruction::Jalr {
                rd: ops.int_reg(0)?,
                rs1,
                offset,
            });
        }
        "j" => {
            ops.count(1)?;
            b.j(ops.label(0));
        }
        // ---- FP compute ----------------------------------------------------
        "fadd.d" | "fsub.d" | "fmul.d" | "fdiv.d" | "fsgnj.d" | "fsgnjn.d" | "fsgnjx.d"
        | "fmin.d" | "fmax.d" | "fadd.s" | "fsub.s" | "fmul.s" | "fdiv.s" => {
            ops.count(3)?;
            let (op, fmt) = fp_bin_from_mnemonic(mnemonic).expect("matched above");
            b.push(Instruction::FpBin {
                op,
                fmt,
                frd: ops.fp_reg(0)?,
                frs1: ops.fp_reg(1)?,
                frs2: ops.fp_reg(2)?,
            });
        }
        "fmadd.d" | "fmsub.d" | "fnmsub.d" | "fnmadd.d" => {
            ops.count(4)?;
            let op = match mnemonic {
                "fmadd.d" => FmaOp::Madd,
                "fmsub.d" => FmaOp::Msub,
                "fnmsub.d" => FmaOp::Nmsub,
                _ => FmaOp::Nmadd,
            };
            b.push(Instruction::FpFma {
                op,
                fmt: FpFormat::Double,
                frd: ops.fp_reg(0)?,
                frs1: ops.fp_reg(1)?,
                frs2: ops.fp_reg(2)?,
                frs3: ops.fp_reg(3)?,
            });
        }
        "fsqrt.d" => {
            ops.count(2)?;
            b.push(Instruction::FpSqrt {
                fmt: FpFormat::Double,
                frd: ops.fp_reg(0)?,
                frs1: ops.fp_reg(1)?,
            });
        }
        "feq.d" | "flt.d" | "fle.d" => {
            ops.count(3)?;
            let op = match mnemonic {
                "feq.d" => FpCmpOp::Eq,
                "flt.d" => FpCmpOp::Lt,
                _ => FpCmpOp::Le,
            };
            b.push(Instruction::FpCmp {
                op,
                fmt: FpFormat::Double,
                rd: ops.int_reg(0)?,
                frs1: ops.fp_reg(1)?,
                frs2: ops.fp_reg(2)?,
            });
        }
        "fcvt.d.w" => {
            ops.count(2)?;
            b.fcvt_d_w(ops.fp_reg(0)?, ops.int_reg(1)?);
        }
        "fmv.d" => {
            ops.count(2)?;
            b.fmv_d(ops.fp_reg(0)?, ops.fp_reg(1)?);
        }
        // ---- CSR -----------------------------------------------------------
        "csrrw" | "csrrs" | "csrrc" => {
            ops.count(3)?;
            let op = csr_op(mnemonic);
            let csr = ops.imm(1)? as u16;
            b.push(Instruction::Csr {
                op,
                rd: ops.int_reg(0)?,
                csr,
                src: CsrSrc::Reg(ops.int_reg(2)?),
            });
        }
        "csrrwi" | "csrrsi" | "csrrci" => {
            ops.count(3)?;
            let op = csr_op(&mnemonic[..5]);
            b.push(Instruction::Csr {
                op,
                rd: ops.int_reg(0)?,
                csr: ops.imm(1)? as u16,
                src: CsrSrc::Imm(ops.imm(2)? as u8),
            });
        }
        // csrw/csrs/csrc/csrr pseudo forms: `csrs 0x7C3, t0`.
        "csrw" | "csrs" | "csrc" => {
            ops.count(2)?;
            let op = match mnemonic {
                "csrw" => CsrOp::ReadWrite,
                "csrs" => CsrOp::ReadSet,
                _ => CsrOp::ReadClear,
            };
            b.push(Instruction::Csr {
                op,
                rd: IntReg::ZERO,
                csr: ops.imm(0)? as u16,
                src: CsrSrc::Reg(ops.int_reg(1)?),
            });
        }
        "csrr" => {
            ops.count(2)?;
            b.push(Instruction::Csr {
                op: CsrOp::ReadSet,
                rd: ops.int_reg(0)?,
                csr: ops.imm(1)? as u16,
                src: CsrSrc::Reg(IntReg::ZERO),
            });
        }
        // ---- custom ----------------------------------------------------------
        "frep.o" | "frep.i" => {
            ops.count(4)?;
            b.push(Instruction::Frep {
                is_outer: mnemonic == "frep.o",
                max_rpt: ops.int_reg(0)?,
                n_instr: ops.imm(1)? as u16,
                stagger_max: ops.imm(2)? as u8,
                stagger_mask: ops.imm(3)? as u8,
            });
        }
        "scfgwi" => {
            ops.count(2)?;
            b.scfgwi(ops.int_reg(0)?, ops.imm(1)? as u16);
        }
        "scfgri" => {
            ops.count(2)?;
            b.scfgri(ops.int_reg(0)?, ops.imm(1)? as u16);
        }
        // ---- pseudo-instructions ---------------------------------------------
        "li" => {
            ops.count(2)?;
            b.li(ops.int_reg(0)?, ops.imm(1)? as i32);
        }
        "mv" => {
            ops.count(2)?;
            b.mv(ops.int_reg(0)?, ops.int_reg(1)?);
        }
        "nop" => {
            ops.count(0)?;
            b.nop();
        }
        "ecall" => {
            ops.count(0)?;
            b.ecall();
        }
        "ebreak" => {
            ops.count(0)?;
            b.push(Instruction::Ebreak);
        }
        "fence" => {
            ops.count(0)?;
            b.push(Instruction::Fence);
        }
        other => {
            return Err(ParseAsmError {
                line,
                message: format!("unknown mnemonic `{other}`"),
            })
        }
    }
    Ok(())
}

fn csr_op(mnemonic: &str) -> CsrOp {
    match mnemonic {
        "csrrw" => CsrOp::ReadWrite,
        "csrrs" => CsrOp::ReadSet,
        _ => CsrOp::ReadClear,
    }
}

fn fp_bin_from_mnemonic(m: &str) -> Option<(FpBinOp, FpFormat)> {
    let (name, fmt) = m.split_once('.')?;
    let fmt = match fmt {
        "d" => FpFormat::Double,
        "s" => FpFormat::Single,
        _ => return None,
    };
    let op = match name {
        "fadd" => FpBinOp::Add,
        "fsub" => FpBinOp::Sub,
        "fmul" => FpBinOp::Mul,
        "fdiv" => FpBinOp::Div,
        "fsgnj" => FpBinOp::Sgnj,
        "fsgnjn" => FpBinOp::Sgnjn,
        "fsgnjx" => FpBinOp::Sgnjx,
        "fmin" => FpBinOp::Min,
        "fmax" => FpBinOp::Max,
        _ => return None,
    };
    Some((op, fmt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_fig1a_listing() {
        // Verbatim from the paper (Fig. 1a), including `bneq` and the
        // numeric backward offset.
        let prog = parse_asm(
            r"
            fadd.d ft3, ft0, ft1
            fmul.d ft2, ft3, ft4
            addi   a0, a0, 1
            bneq   a0, a1, -12
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 4);
        assert!(matches!(
            prog.fetch(12).unwrap(),
            Instruction::Branch {
                op: BranchOp::Ne,
                offset: -12,
                ..
            }
        ));
    }

    #[test]
    fn parses_the_papers_fig1c_listing() {
        // Fig. 1c with labels instead of raw offsets.
        let prog = parse_asm(
            r"
                li   t0, 8
                csrs 0x7C3, t0
            loop:
                fadd.d ft3, ft0, ft1
                fadd.d ft3, ft0, ft1
                fadd.d ft3, ft0, ft1
                fadd.d ft3, ft0, ft1
                fmul.d ft2, ft3, ft4
                fmul.d ft2, ft3, ft4
                fmul.d ft2, ft3, ft4
                fmul.d ft2, ft3, ft4
                addi a0, a0, 4
                bneq a0, a1, loop
                csrw 0x7C3, x0
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 13);
        assert_eq!(prog.symbol("loop"), Some(8));
    }

    #[test]
    fn parses_memory_and_fma_forms() {
        let prog = parse_asm(
            r"
            fld    ft4, 8(a0)
            fmadd.d ft5, ft0, ft4, ft5
            fsd    ft5, -16(sp)
            lw     t1, 0(a1)
            sw     t1, 4(a1)
            ecall
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 6);
        assert!(matches!(
            prog.fetch(0).unwrap(),
            Instruction::FpLoad { offset: 8, .. }
        ));
        assert!(matches!(
            prog.fetch(8).unwrap(),
            Instruction::FpStore { offset: -16, .. }
        ));
    }

    #[test]
    fn parses_custom_extensions() {
        let prog = parse_asm(
            r"
            scfgwi t0, 66
            frep.o t1, 4, 0, 0
            fadd.d ft3, ft0, ft1
            fadd.d ft3, ft0, ft1
            fadd.d ft3, ft0, ft1
            fadd.d ft3, ft0, ft1
            ",
        )
        .unwrap();
        assert!(matches!(
            prog.fetch(4).unwrap(),
            Instruction::Frep {
                is_outer: true,
                n_instr: 4,
                ..
            }
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog = parse_asm(
            r"
            # full-line comment
            nop        // trailing comment
                       # another
            ecall
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_asm("nop\nbogus x0, x0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
        let err = parse_asm("addi t0, t1\n").unwrap_err();
        assert!(err.message.contains("expected 3 operands"));
        let err = parse_asm("lw t0, t1\n").unwrap_err();
        assert!(err.message.contains("offset(base)"));
    }

    #[test]
    fn hex_binary_and_negative_immediates() {
        let prog = parse_asm("li t0, 0x7C3\nli t1, -42\nli t2, 0b1010\necall\n").unwrap();
        assert!(prog.len() >= 4);
    }

    #[test]
    fn undefined_label_reported() {
        let err = parse_asm("j nowhere\n").unwrap_err();
        assert!(err.message.contains("nowhere"));
    }
}
