//! Property tests: binary encode/decode is a lossless roundtrip for every
//! instruction the model can represent, and the decoder never panics on
//! arbitrary 32-bit words.

use proptest::prelude::*;
use sc_isa::{
    decode, encode, AluOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpBinOp, FpCmpOp, FpCvtOp, FpFormat,
    FpReg, Instruction, IntReg, LoadOp, MulDivOp, StoreOp,
};

fn int_reg() -> impl Strategy<Value = IntReg> {
    (0u8..32).prop_map(IntReg::new)
}

fn fp_reg() -> impl Strategy<Value = FpReg> {
    (0u8..32).prop_map(FpReg::new)
}

fn imm12() -> impl Strategy<Value = i32> {
    -2048i32..2048
}

fn branch_offset() -> impl Strategy<Value = i32> {
    (-2048i32..2048).prop_map(|x| x * 2)
}

fn jal_offset() -> impl Strategy<Value = i32> {
    (-(1i32 << 19)..(1 << 19)).prop_map(|x| x * 2)
}

fn fmt() -> impl Strategy<Value = FpFormat> {
    prop_oneof![Just(FpFormat::Single), Just(FpFormat::Double)]
}

fn alu_op_imm() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        alu_op_imm(),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
    ]
}

fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (int_reg(), any::<u32>()).prop_map(|(rd, v)| Instruction::Lui {
            rd,
            imm: v & 0xFFFF_F000
        }),
        (int_reg(), any::<u32>()).prop_map(|(rd, v)| Instruction::Auipc {
            rd,
            imm: v & 0xFFFF_F000
        }),
        (int_reg(), jal_offset()).prop_map(|(rd, offset)| Instruction::Jal { rd, offset }),
        (int_reg(), int_reg(), imm12()).prop_map(|(rd, rs1, offset)| Instruction::Jalr {
            rd,
            rs1,
            offset
        }),
        (
            prop_oneof![
                Just(BranchOp::Eq),
                Just(BranchOp::Ne),
                Just(BranchOp::Lt),
                Just(BranchOp::Ge),
                Just(BranchOp::Ltu),
                Just(BranchOp::Geu)
            ],
            int_reg(),
            int_reg(),
            branch_offset()
        )
            .prop_map(|(op, rs1, rs2, offset)| Instruction::Branch {
                op,
                rs1,
                rs2,
                offset
            }),
        (
            prop_oneof![
                Just(LoadOp::Lb),
                Just(LoadOp::Lh),
                Just(LoadOp::Lw),
                Just(LoadOp::Lbu),
                Just(LoadOp::Lhu)
            ],
            int_reg(),
            int_reg(),
            imm12()
        )
            .prop_map(|(op, rd, rs1, offset)| Instruction::Load {
                op,
                rd,
                rs1,
                offset
            }),
        (
            prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)],
            int_reg(),
            int_reg(),
            imm12()
        )
            .prop_map(|(op, rs2, rs1, offset)| Instruction::Store {
                op,
                rs2,
                rs1,
                offset
            }),
        (alu_op_imm(), int_reg(), int_reg(), imm12())
            .prop_map(|(op, rd, rs1, imm)| Instruction::OpImm { op, rd, rs1, imm }),
        (
            prop_oneof![Just(AluOp::Sll), Just(AluOp::Srl), Just(AluOp::Sra)],
            int_reg(),
            int_reg(),
            0i32..32
        )
            .prop_map(|(op, rd, rs1, imm)| Instruction::OpImm { op, rd, rs1, imm }),
        (alu_op(), int_reg(), int_reg(), int_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::Op { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(MulDivOp::Mul),
                Just(MulDivOp::Mulh),
                Just(MulDivOp::Mulhsu),
                Just(MulDivOp::Mulhu),
                Just(MulDivOp::Div),
                Just(MulDivOp::Divu),
                Just(MulDivOp::Rem),
                Just(MulDivOp::Remu)
            ],
            int_reg(),
            int_reg(),
            int_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instruction::MulDiv { op, rd, rs1, rs2 }),
        Just(Instruction::Fence),
        Just(Instruction::Ecall),
        Just(Instruction::Ebreak),
        (
            prop_oneof![
                Just(CsrOp::ReadWrite),
                Just(CsrOp::ReadSet),
                Just(CsrOp::ReadClear)
            ],
            int_reg(),
            any::<u16>().prop_map(|c| c & 0xFFF),
            prop_oneof![
                int_reg().prop_map(CsrSrc::Reg),
                (0u8..32).prop_map(CsrSrc::Imm)
            ]
        )
            .prop_map(|(op, rd, csr, src)| Instruction::Csr { op, rd, csr, src }),
        (fmt(), fp_reg(), int_reg(), imm12()).prop_map(|(fmt, frd, rs1, offset)| {
            Instruction::FpLoad {
                fmt,
                frd,
                rs1,
                offset,
            }
        }),
        (fmt(), fp_reg(), int_reg(), imm12()).prop_map(|(fmt, frs2, rs1, offset)| {
            Instruction::FpStore {
                fmt,
                frs2,
                rs1,
                offset,
            }
        }),
        (
            prop_oneof![
                Just(FpBinOp::Add),
                Just(FpBinOp::Sub),
                Just(FpBinOp::Mul),
                Just(FpBinOp::Div),
                Just(FpBinOp::Sgnj),
                Just(FpBinOp::Sgnjn),
                Just(FpBinOp::Sgnjx),
                Just(FpBinOp::Min),
                Just(FpBinOp::Max)
            ],
            fmt(),
            fp_reg(),
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(op, fmt, frd, frs1, frs2)| Instruction::FpBin {
                op,
                fmt,
                frd,
                frs1,
                frs2
            }),
        (
            prop_oneof![
                Just(FmaOp::Madd),
                Just(FmaOp::Msub),
                Just(FmaOp::Nmsub),
                Just(FmaOp::Nmadd)
            ],
            fmt(),
            fp_reg(),
            fp_reg(),
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(op, fmt, frd, frs1, frs2, frs3)| Instruction::FpFma {
                op,
                fmt,
                frd,
                frs1,
                frs2,
                frs3
            }),
        (fmt(), fp_reg(), fp_reg()).prop_map(|(fmt, frd, frs1)| Instruction::FpSqrt {
            fmt,
            frd,
            frs1
        }),
        (
            prop_oneof![Just(FpCmpOp::Eq), Just(FpCmpOp::Lt), Just(FpCmpOp::Le)],
            fmt(),
            int_reg(),
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(op, fmt, rd, frs1, frs2)| Instruction::FpCmp {
                op,
                fmt,
                rd,
                frs1,
                frs2
            }),
        fp_cvt(),
        (int_reg(), 1u16..256, 0u8..8, 0u8..16).prop_map(
            |(max_rpt, n_instr, stagger_max, stagger_mask)| Instruction::Frep {
                is_outer: (n_instr & 1) == 1,
                max_rpt,
                n_instr,
                stagger_max,
                stagger_mask
            }
        ),
        (int_reg(), 0u16..0x1000).prop_map(|(rs1, imm)| Instruction::Scfgwi { rs1, imm }),
        (int_reg(), 0u16..0x1000).prop_map(|(rd, imm)| Instruction::Scfgri { rd, imm }),
    ]
}

fn fp_cvt() -> impl Strategy<Value = Instruction> {
    let op = prop_oneof![
        Just(FpCvtOp::DFromW),
        Just(FpCvtOp::DFromWu),
        Just(FpCvtOp::WFromD),
        Just(FpCvtOp::WuFromD),
        Just(FpCvtOp::DFromS),
        Just(FpCvtOp::SFromD),
        Just(FpCvtOp::MvXW),
        Just(FpCvtOp::MvWX),
    ];
    (op, int_reg(), fp_reg()).prop_map(|(op, ir, fr)| {
        let (z, fz) = (IntReg::ZERO, FpReg::new(0));
        if op.writes_int() {
            Instruction::FpCvt {
                op,
                rd: ir,
                frd: fz,
                rs1: z,
                frs1: fr,
            }
        } else if op.reads_int() {
            Instruction::FpCvt {
                op,
                rd: z,
                frd: fr,
                rs1: ir,
                frs1: fz,
            }
        } else {
            Instruction::FpCvt {
                op,
                rd: z,
                frd: fr,
                rs1: z,
                frs1: FpReg::new(ir.index()),
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_roundtrip(inst in instruction()) {
        let word = encode(&inst);
        let back = decode(word).expect("every encoded instruction decodes");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        // Either decodes or errors; must not panic.
        let _ = decode(word);
    }

    #[test]
    fn decode_reencodes_identically(word in any::<u32>()) {
        // Any word that decodes must re-encode to a word that decodes to the
        // same instruction (encodings may canonicalise don't-care bits).
        if let Ok(inst) = decode(word) {
            let word2 = encode(&inst);
            prop_assert_eq!(decode(word2).expect("canonical word decodes"), inst);
        }
    }
}
