//! # sc-perf — top-down cycle attribution
//!
//! A hierarchical cycle-accounting model in the style of top-down
//! microarchitecture analysis: every simulated core-cycle is attributed
//! to **exactly one leaf** of a fixed tree, so the leaves partition the
//! cycle count and `sum(leaves) == cycles` holds as a hard invariant
//! ([`Attribution::verify`] turns any violation into an error instead
//! of a silently-wrong profile).
//!
//! ## The tree
//!
//! ```text
//! cycles
//! ├── retired        the FP issue slot did useful work, or the int
//! │                  pipeline retired with nothing offloaded
//! ├── issue-bound    the slot was empty for a front-end/dependency reason
//! │   ├── no-instruction   nothing offloaded and sequencer empty
//! │   ├── frontend         int-side bubble (branch, offload setup)
//! │   ├── raw-hazard       plain-register RAW dependency
//! │   ├── waw-hazard       plain-register WAW dependency
//! │   ├── chain-empty      chained FIFO had no value (consumer starved)
//! │   ├── chain-full       chained FIFO backpressure (producer held)
//! │   └── unit-busy        functional unit structurally busy
//! ├── memory-bound   the slot was empty waiting on a memory resource
//! │   ├── lsu-busy         load/store unit occupied
//! │   ├── ssr-starve       SSR read stream behind (TCDM conflicts)
//! │   ├── ssr-full         SSR write stream FIFO full
//! │   ├── load-store       int core parked on an outstanding access
//! │   └── dma-wait         hart parked on DMA completion (0x7D8)
//! └── sync-bound     the cycle went to synchronisation
//!     ├── drain            FP subsystem draining for a synchronising CSR
//!     ├── barrier          parked on the cluster barrier (0x7C1)
//!     ├── system-barrier   parked on the inter-cluster barrier (0x7C6)
//!     └── park             halted / finished while the fabric ran on
//! ```
//!
//! Per hart the `park` leaf is only used for `Halting` cycles; aggregate
//! views (cluster, system) also use it to pad finished harts/clusters up
//! to the container's wall-clock so the invariant holds at every level
//! of the hierarchy against `harts × container_cycles`.
//!
//! The classification is deliberately **independent** of the existing
//! per-cause stall counters: those may legitimately record
//! two causes in one cycle (an FP-side stall *and* an int-side sync
//! retry), while attribution picks exactly one leaf per cycle.
//!
//! Alongside the core tree, [`TransferAttribution`] and
//! [`RefillOccupancy`] carry the uncore split: DMA busy cycles divide
//! into compute-overlapped vs exposed, and L2 refill traffic divides
//! into demand vs prefetch occupancy.
//!
//! [`PhaseMark`]s segment a profile along kernel phases (tile-loop
//! iteration boundaries emitted by the tiling codegen through CSR
//! `PHASE_MARK`): [`segment_phases`] turns the mark snapshots into
//! prologue / steady-state / drain attribution deltas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

/// Number of attribution leaves ([`Leaf::ALL`]'s length).
pub const LEAF_COUNT: usize = 17;

/// The four top-level groups of the attribution tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Group {
    /// Useful work: an FP op issued, or the int pipeline retired.
    Retired,
    /// The issue slot was empty for a front-end or dependency reason.
    IssueBound,
    /// The issue slot was empty waiting on a memory resource.
    MemoryBound,
    /// The cycle went to synchronisation (drains, barriers, parking).
    SyncBound,
}

impl Group {
    /// All groups, in tree order.
    pub const ALL: [Group; 4] = [
        Group::Retired,
        Group::IssueBound,
        Group::MemoryBound,
        Group::SyncBound,
    ];

    /// Human-readable group name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Group::Retired => "retired",
            Group::IssueBound => "issue-bound",
            Group::MemoryBound => "memory-bound",
            Group::SyncBound => "sync-bound",
        }
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One leaf of the attribution tree — where a cycle went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Leaf {
    /// Useful work this cycle.
    Retired,
    /// Nothing offloaded and the sequencer was empty.
    NoInst,
    /// Int-side bubble (branch redirect, offload setup) with no FP work.
    Frontend,
    /// Plain-register RAW dependency held issue.
    RawHazard,
    /// Plain-register WAW dependency held issue.
    WawHazard,
    /// Chained FIFO had no value — the consumer starved.
    ChainEmpty,
    /// Chained FIFO backpressure — the producer held in its final stage.
    ChainFull,
    /// Functional unit structurally busy.
    UnitBusy,
    /// Load/store unit occupied.
    LsuBusy,
    /// SSR read stream behind memory (TCDM conflicts upstream).
    SsrStarve,
    /// SSR write stream FIFO full (memory behind).
    SsrFull,
    /// Int core parked on an outstanding load/store.
    LoadStore,
    /// Hart parked on DMA completion (CSR 0x7D8).
    DmaWait,
    /// FP subsystem draining before a synchronising CSR write.
    Drain,
    /// Parked on the cluster barrier (CSR 0x7C1).
    Barrier,
    /// Parked on the inter-cluster barrier (CSR 0x7C6).
    SystemBarrier,
    /// Halted / finished while the surrounding fabric kept running.
    Park,
}

impl Leaf {
    /// All leaves, in tree order — the canonical serialization order for
    /// reports, the gate's required-key list, and [`Attribution`]'s
    /// storage layout, so the three can never drift apart.
    pub const ALL: [Leaf; LEAF_COUNT] = [
        Leaf::Retired,
        Leaf::NoInst,
        Leaf::Frontend,
        Leaf::RawHazard,
        Leaf::WawHazard,
        Leaf::ChainEmpty,
        Leaf::ChainFull,
        Leaf::UnitBusy,
        Leaf::LsuBusy,
        Leaf::SsrStarve,
        Leaf::SsrFull,
        Leaf::LoadStore,
        Leaf::DmaWait,
        Leaf::Drain,
        Leaf::Barrier,
        Leaf::SystemBarrier,
        Leaf::Park,
    ];

    /// Storage index inside [`Attribution`].
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|l| *l == self)
            .expect("leaf listed in ALL")
    }

    /// The group this leaf rolls up into.
    #[must_use]
    pub fn group(self) -> Group {
        match self {
            Leaf::Retired => Group::Retired,
            Leaf::NoInst
            | Leaf::Frontend
            | Leaf::RawHazard
            | Leaf::WawHazard
            | Leaf::ChainEmpty
            | Leaf::ChainFull
            | Leaf::UnitBusy => Group::IssueBound,
            Leaf::LsuBusy | Leaf::SsrStarve | Leaf::SsrFull | Leaf::LoadStore | Leaf::DmaWait => {
                Group::MemoryBound
            }
            Leaf::Drain | Leaf::Barrier | Leaf::SystemBarrier | Leaf::Park => Group::SyncBound,
        }
    }

    /// Stable snake_case key for JSON reports (group-prefixed so the
    /// flat object still reads top-down).
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            Leaf::Retired => "retired",
            Leaf::NoInst => "issue_no_inst",
            Leaf::Frontend => "issue_frontend",
            Leaf::RawHazard => "issue_raw_hazard",
            Leaf::WawHazard => "issue_waw_hazard",
            Leaf::ChainEmpty => "issue_chain_empty",
            Leaf::ChainFull => "issue_chain_full",
            Leaf::UnitBusy => "issue_unit_busy",
            Leaf::LsuBusy => "mem_lsu_busy",
            Leaf::SsrStarve => "mem_ssr_starve",
            Leaf::SsrFull => "mem_ssr_full",
            Leaf::LoadStore => "mem_load_store",
            Leaf::DmaWait => "mem_dma_wait",
            Leaf::Drain => "sync_drain",
            Leaf::Barrier => "sync_barrier",
            Leaf::SystemBarrier => "sync_system_barrier",
            Leaf::Park => "sync_park",
        }
    }

    /// Human-readable label for rendered trees.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Leaf::Retired => "retired",
            Leaf::NoInst => "no-instruction",
            Leaf::Frontend => "frontend",
            Leaf::RawHazard => "raw-hazard",
            Leaf::WawHazard => "waw-hazard",
            Leaf::ChainEmpty => "chain-empty",
            Leaf::ChainFull => "chain-full",
            Leaf::UnitBusy => "unit-busy",
            Leaf::LsuBusy => "lsu-busy",
            Leaf::SsrStarve => "ssr-starve",
            Leaf::SsrFull => "ssr-full",
            Leaf::LoadStore => "load-store",
            Leaf::DmaWait => "dma-wait",
            Leaf::Drain => "drain",
            Leaf::Barrier => "barrier",
            Leaf::SystemBarrier => "system-barrier",
            Leaf::Park => "park",
        }
    }

    /// The leaf with a given metric name, if any (report parsing).
    #[must_use]
    pub fn from_metric_name(name: &str) -> Option<Leaf> {
        Self::ALL.iter().copied().find(|l| l.metric_name() == name)
    }
}

impl fmt::Display for Leaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The invariant `sum(leaves) == cycles` was violated — a modelling bug
/// (a cycle was attributed zero or two leaves), never a tolerable drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributionError {
    /// The cycle count the leaves were expected to partition.
    pub expected: u64,
    /// What the leaves actually sum to.
    pub got: u64,
}

impl fmt::Display for AttributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attribution invariant violated: leaves sum to {} but {} cycles elapsed \
             (every cycle must land in exactly one leaf)",
            self.got, self.expected
        )
    }
}

impl std::error::Error for AttributionError {}

/// Per-leaf cycle counts. `Copy` and field-free in its API so it embeds
/// directly in `sc-core`'s `PerfCounters` (keeping that type `Copy`,
/// `Eq`, and byte-comparable — the scheduler-identity sweeps compare
/// counters wholesale, which pins dense ≡ event attribution for free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    cells: [u64; LEAF_COUNT],
}

impl Attribution {
    /// All-zero attribution.
    #[must_use]
    pub const fn new() -> Self {
        Attribution {
            cells: [0; LEAF_COUNT],
        }
    }

    /// Charges one cycle to `leaf`.
    pub fn record(&mut self, leaf: Leaf) {
        self.cells[leaf.index()] += 1;
    }

    /// Charges `n` cycles to `leaf` (bulk accounting for skipped
    /// event-mode windows, where the parked state is known closed-form).
    pub fn record_n(&mut self, leaf: Leaf, n: u64) {
        self.cells[leaf.index()] += n;
    }

    /// Cycles charged to `leaf`.
    #[must_use]
    pub fn get(&self, leaf: Leaf) -> u64 {
        self.cells[leaf.index()]
    }

    /// Sum over all leaves — must equal the elapsed cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Cycles rolled up into `group`.
    #[must_use]
    pub fn group_total(&self, group: Group) -> u64 {
        Leaf::ALL
            .iter()
            .filter(|l| l.group() == group)
            .map(|l| self.get(*l))
            .sum()
    }

    /// Element-wise sum (aggregating harts into a cluster view).
    pub fn accumulate(&mut self, other: &Attribution) {
        for (s, o) in self.cells.iter_mut().zip(other.cells.iter()) {
            *s += o;
        }
    }

    /// Element-wise difference `self - start` (region / stalled-window
    /// deltas).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any leaf of `start` exceeds `self`'s
    /// (snapshots must be taken from the same monotone counter).
    #[must_use]
    pub fn delta_since(&self, start: &Attribution) -> Attribution {
        let mut cells = [0u64; LEAF_COUNT];
        for (i, c) in cells.iter_mut().enumerate() {
            *c = self.cells[i] - start.cells[i];
        }
        Attribution { cells }
    }

    /// Enforces the partition invariant against an elapsed cycle count.
    ///
    /// # Errors
    ///
    /// [`AttributionError`] when the leaves do not sum to `cycles`.
    pub fn verify(&self, cycles: u64) -> Result<(), AttributionError> {
        let got = self.total();
        if got == cycles {
            Ok(())
        } else {
            Err(AttributionError {
                expected: cycles,
                got,
            })
        }
    }

    /// Share of the total charged to `leaf` (0 when the total is 0).
    #[must_use]
    pub fn share(&self, leaf: Leaf) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(leaf) as f64 / total as f64
        }
    }

    /// The leaf with the most cycles (ties break in tree order), or
    /// `None` for an all-zero attribution.
    #[must_use]
    pub fn dominant(&self) -> Option<Leaf> {
        Leaf::ALL
            .iter()
            .copied()
            .max_by_key(|l| (self.get(*l), std::cmp::Reverse(l.index())))
            .filter(|l| self.get(*l) > 0)
    }

    /// The canonical report keys, in [`Leaf::ALL`] order. Serializers
    /// and the perf gate's required-key list both derive from this, so
    /// they cannot drift from the model.
    #[must_use]
    pub fn metric_names() -> Vec<&'static str> {
        Leaf::ALL.iter().map(|l| l.metric_name()).collect()
    }

    /// Visits `(metric_name, cycles)` for every leaf, in tree order.
    pub fn visit(&self, visit: &mut dyn FnMut(&'static str, u64)) {
        for leaf in Leaf::ALL {
            visit(leaf.metric_name(), self.get(leaf));
        }
    }

    /// Compact one-line summary of the top `top` non-zero leaves:
    /// `"retired 61.2% | raw-hazard 20.4% | barrier 9.1%"`.
    #[must_use]
    pub fn render_compact(&self, top: usize) -> String {
        let total = self.total();
        if total == 0 {
            return "no cycles attributed".to_owned();
        }
        let mut leaves: Vec<Leaf> = Leaf::ALL
            .iter()
            .copied()
            .filter(|l| self.get(*l) > 0)
            .collect();
        leaves.sort_by_key(|l| (std::cmp::Reverse(self.get(*l)), l.index()));
        leaves
            .iter()
            .take(top)
            .map(|l| format!("{} {:.1}%", l.label(), self.share(*l) * 100.0))
            .collect::<Vec<_>>()
            .join(" | ")
    }

    /// Indented top-down tree: one line per group, one per non-zero
    /// leaf, with cycles and share of the total.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let total = self.total();
        let pct = |n: u64| {
            if total == 0 {
                0.0
            } else {
                n as f64 / total as f64 * 100.0
            }
        };
        let mut out = format!("cycles {total}\n");
        for group in Group::ALL {
            let g = self.group_total(group);
            out.push_str(&format!(
                "  {:<16} {:>12}  {:>5.1}%\n",
                group.name(),
                g,
                pct(g)
            ));
            for leaf in Leaf::ALL.iter().filter(|l| l.group() == group) {
                let n = self.get(*leaf);
                if n > 0 && *leaf != Leaf::Retired {
                    out.push_str(&format!(
                        "    {:<14} {:>12}  {:>5.1}%\n",
                        leaf.label(),
                        n,
                        pct(n)
                    ));
                }
            }
        }
        out
    }
}

/// Per-leaf share shift between two attributions, sorted by magnitude
/// (largest mover first) — the heart of `perf_report diff`: it names
/// *where* the cycles went rather than just how many there are.
#[must_use]
pub fn share_shifts(before: &Attribution, after: &Attribution) -> Vec<(Leaf, f64)> {
    let mut shifts: Vec<(Leaf, f64)> = Leaf::ALL
        .iter()
        .map(|l| (*l, after.share(*l) - before.share(*l)))
        .collect();
    shifts.sort_by(|a, b| {
        b.1.abs()
            .partial_cmp(&a.1.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.index().cmp(&b.0.index()))
    });
    shifts
}

/// A kernel phase boundary: the attribution state when a hart executed a
/// `PHASE_MARK` CSR write (the tiling codegen emits one at the top of
/// every tile stage when phase markers are enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseMark {
    /// Core cycle at which the mark retired.
    pub cycle: u64,
    /// The value written (tile index by convention).
    pub value: u32,
    /// Snapshot of the hart's attribution at the mark.
    pub attr: Attribution,
}

/// One segment of a phase-segmented profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSegment {
    /// Segment label: `prologue`, `tile<value>`, or `drain`.
    pub label: String,
    /// First cycle of the segment.
    pub start_cycle: u64,
    /// One past the last cycle of the segment.
    pub end_cycle: u64,
    /// Attribution delta over the segment.
    pub attr: Attribution,
}

/// Segments a hart's profile along its phase marks: everything before
/// the first mark is `prologue`, each mark opens a `tile<value>` segment
/// (steady state), and the final segment from the last mark to the end
/// of the run is relabelled `drain`. With no marks the whole run is one
/// `prologue` segment.
#[must_use]
pub fn segment_phases(
    marks: &[PhaseMark],
    end_cycle: u64,
    end_attr: &Attribution,
) -> Vec<PhaseSegment> {
    let mut segments = Vec::with_capacity(marks.len() + 1);
    let mut prev_cycle = 0u64;
    let mut prev_attr = Attribution::new();
    for mark in marks {
        segments.push(PhaseSegment {
            label: if segments.is_empty() {
                "prologue".to_owned()
            } else {
                format!("tile{}", marks[segments.len() - 1].value)
            },
            start_cycle: prev_cycle,
            end_cycle: mark.cycle,
            attr: mark.attr.delta_since(&prev_attr),
        });
        prev_cycle = mark.cycle;
        prev_attr = mark.attr;
    }
    segments.push(PhaseSegment {
        label: if marks.is_empty() {
            "prologue".to_owned()
        } else {
            "drain".to_owned()
        },
        start_cycle: prev_cycle,
        end_cycle,
        attr: end_attr.delta_since(&prev_attr),
    });
    segments
}

/// The uncore transfer split: of the cycles a DMA engine was busy, how
/// many overlapped with compute versus stood exposed on the critical
/// path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferAttribution {
    /// Cycles the engine had a transfer in flight.
    pub busy_cycles: u64,
    /// Busy cycles during which at least one core issued FP compute.
    pub overlap_cycles: u64,
}

impl TransferAttribution {
    /// Busy cycles *not* hidden behind compute — the exposed transfer
    /// time a faster memory system would directly recover.
    #[must_use]
    pub fn exposed_cycles(&self) -> u64 {
        self.busy_cycles.saturating_sub(self.overlap_cycles)
    }

    /// Fraction of busy cycles hidden behind compute (0 when never
    /// busy).
    #[must_use]
    pub fn overlap_fraction(&self) -> f64 {
        if self.busy_cycles == 0 {
            0.0
        } else {
            self.overlap_cycles as f64 / self.busy_cycles as f64
        }
    }
}

/// The L2 refill-path split: cycles the refill channels were occupied,
/// divided into demand-miss service vs prefetch-issued service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefillOccupancy {
    /// Channel-cycles spent servicing demand misses.
    pub demand_cycles: u64,
    /// Channel-cycles spent servicing prefetch-issued refills.
    pub prefetch_cycles: u64,
    /// Channel-cycles spent draining dirty write-backs.
    pub writeback_cycles: u64,
}

impl RefillOccupancy {
    /// Total occupied channel-cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.demand_cycles + self.prefetch_cycles + self.writeback_cycles
    }

    /// Fraction of refill occupancy that was prefetch-issued (0 when
    /// idle).
    #[must_use]
    pub fn prefetch_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.prefetch_cycles as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_partition_and_verify() {
        let mut a = Attribution::new();
        a.record(Leaf::Retired);
        a.record(Leaf::Retired);
        a.record_n(Leaf::Barrier, 3);
        assert_eq!(a.total(), 5);
        assert!(a.verify(5).is_ok());
        let err = a.verify(6).unwrap_err();
        assert_eq!(
            err,
            AttributionError {
                expected: 6,
                got: 5
            }
        );
        assert!(err.to_string().contains("exactly one leaf"));
    }

    #[test]
    fn groups_cover_every_leaf_exactly_once() {
        let mut a = Attribution::new();
        for (i, leaf) in Leaf::ALL.iter().enumerate() {
            a.record_n(*leaf, (i + 1) as u64);
        }
        let group_sum: u64 = Group::ALL.iter().map(|g| a.group_total(*g)).sum();
        assert_eq!(group_sum, a.total());
        // Distinct storage indexes.
        let mut seen = std::collections::HashSet::new();
        for l in Leaf::ALL {
            assert!(seen.insert(l.index()));
            assert_eq!(Leaf::from_metric_name(l.metric_name()), Some(l));
        }
    }

    #[test]
    fn accumulate_and_delta_are_inverse() {
        let mut a = Attribution::new();
        a.record_n(Leaf::RawHazard, 7);
        let mut b = a;
        b.record_n(Leaf::ChainFull, 2);
        b.record(Leaf::RawHazard);
        let d = b.delta_since(&a);
        assert_eq!(d.get(Leaf::ChainFull), 2);
        assert_eq!(d.get(Leaf::RawHazard), 1);
        let mut sum = a;
        sum.accumulate(&d);
        assert_eq!(sum, b);
    }

    #[test]
    fn dominant_and_compact_render() {
        let mut a = Attribution::new();
        a.record_n(Leaf::Retired, 60);
        a.record_n(Leaf::RawHazard, 30);
        a.record_n(Leaf::Barrier, 10);
        assert_eq!(a.dominant(), Some(Leaf::Retired));
        let s = a.render_compact(2);
        assert!(s.contains("retired 60.0%"), "{s}");
        assert!(s.contains("raw-hazard 30.0%"), "{s}");
        assert!(!s.contains("barrier"), "top-2 only: {s}");
        assert_eq!(Attribution::new().dominant(), None);
    }

    #[test]
    fn tree_render_shows_groups_and_leaves() {
        let mut a = Attribution::new();
        a.record_n(Leaf::Retired, 50);
        a.record_n(Leaf::ChainEmpty, 25);
        a.record_n(Leaf::DmaWait, 25);
        let t = a.render_tree();
        assert!(t.contains("cycles 100"), "{t}");
        assert!(t.contains("issue-bound"), "{t}");
        assert!(t.contains("chain-empty"), "{t}");
        assert!(t.contains("dma-wait"), "{t}");
        assert!(t.contains("25.0%"), "{t}");
    }

    #[test]
    fn share_shifts_name_the_biggest_mover() {
        let mut before = Attribution::new();
        before.record_n(Leaf::Retired, 80);
        before.record_n(Leaf::RawHazard, 20);
        let mut after = Attribution::new();
        after.record_n(Leaf::Retired, 50);
        after.record_n(Leaf::RawHazard, 20);
        after.record_n(Leaf::Barrier, 30);
        let shifts = share_shifts(&before, &after);
        let top: Vec<Leaf> = shifts.iter().take(2).map(|(l, _)| *l).collect();
        assert!(top.contains(&Leaf::Barrier), "{shifts:?}");
        assert!(top.contains(&Leaf::Retired), "{shifts:?}");
        let barrier = shifts.iter().find(|(l, _)| *l == Leaf::Barrier).unwrap();
        assert!((barrier.1 - 0.30).abs() < 1e-9);
        let retired = shifts.iter().find(|(l, _)| *l == Leaf::Retired).unwrap();
        assert!(retired.1 < 0.0);
        assert!(shifts[2].1.abs() < 1e-9, "raw-hazard share unmoved");
    }

    #[test]
    fn phase_segmentation_labels_prologue_steady_drain() {
        let mut at10 = Attribution::new();
        at10.record_n(Leaf::DmaWait, 10);
        let mut at30 = at10;
        at30.record_n(Leaf::Retired, 20);
        let mut end = at30;
        end.record_n(Leaf::Barrier, 5);
        let marks = [
            PhaseMark {
                cycle: 10,
                value: 0,
                attr: at10,
            },
            PhaseMark {
                cycle: 30,
                value: 1,
                attr: at30,
            },
        ];
        let segs = segment_phases(&marks, 35, &end);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].label, "prologue");
        assert_eq!(segs[0].attr.get(Leaf::DmaWait), 10);
        assert_eq!(segs[1].label, "tile0");
        assert_eq!(segs[1].attr.get(Leaf::Retired), 20);
        assert_eq!(segs[2].label, "drain");
        assert_eq!(segs[2].attr.get(Leaf::Barrier), 5);
        assert_eq!(segs[2].end_cycle, 35);
        // Mark-free runs are one prologue segment.
        let whole = segment_phases(&[], 35, &end);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].label, "prologue");
        assert_eq!(whole[0].attr, end);
    }

    #[test]
    fn transfer_and_refill_splits() {
        let t = TransferAttribution {
            busy_cycles: 100,
            overlap_cycles: 75,
        };
        assert_eq!(t.exposed_cycles(), 25);
        assert!((t.overlap_fraction() - 0.75).abs() < 1e-12);
        let r = RefillOccupancy {
            demand_cycles: 60,
            prefetch_cycles: 30,
            writeback_cycles: 10,
        };
        assert_eq!(r.total(), 100);
        assert!((r.prefetch_fraction() - 0.30).abs() < 1e-12);
        assert_eq!(TransferAttribution::default().overlap_fraction(), 0.0);
        assert_eq!(RefillOccupancy::default().prefetch_fraction(), 0.0);
    }
}
