//! Floating-point operations: classification, latency and functional
//! semantics.
//!
//! The FPU is modelled after FPnew as integrated in Snitch: a pipelined
//! ADDMUL path (FMA), short non-computational and conversion paths, and an
//! iterative, unpipelined divide/square-root unit. The ADDMUL latency is
//! **3 cycles** by default — the number the paper quotes for the RAW stall
//! ("three in the case of Snitch") and the source of the chained-FIFO
//! capacity (architectural register + 3 pipeline registers).

use sc_isa::{FmaOp, FpBinOp, FpCmpOp, FpCvtOp, FpFormat, Instruction};

/// Functional-unit path classes with distinct pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Pipelined add/mul/FMA path.
    AddMul,
    /// Iterative divide/sqrt (unpipelined).
    DivSqrt,
    /// Non-computational ops: sign injection, min/max, comparisons, moves.
    NonComp,
    /// Conversions.
    Conv,
}

/// Per-class latency configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpuTiming {
    /// ADDMUL pipeline depth (execute stages). Default 3, like Snitch.
    pub addmul_latency: u32,
    /// Cycles for a divide (occupies the unit exclusively).
    pub div_latency: u32,
    /// Cycles for a square root (occupies the unit exclusively).
    pub sqrt_latency: u32,
    /// Non-computational path latency.
    pub noncomp_latency: u32,
    /// Conversion path latency.
    pub conv_latency: u32,
}

impl FpuTiming {
    /// Snitch-like defaults.
    #[must_use]
    pub fn new() -> Self {
        FpuTiming {
            addmul_latency: 3,
            div_latency: 11,
            sqrt_latency: 21,
            noncomp_latency: 1,
            conv_latency: 2,
        }
    }

    /// Overrides the ADDMUL depth (used by the pipeline-depth ablation).
    #[must_use]
    pub fn with_addmul_latency(mut self, latency: u32) -> Self {
        assert!(latency >= 1, "pipeline depth must be at least 1");
        self.addmul_latency = latency;
        self
    }

    /// Execute-stage count for a class (excludes the writeback stage the
    /// core model appends).
    #[must_use]
    pub fn latency(&self, class: OpClass) -> u32 {
        match class {
            OpClass::AddMul => self.addmul_latency,
            OpClass::DivSqrt => self.div_latency, // refined per-op via `op_latency`
            OpClass::NonComp => self.noncomp_latency,
            OpClass::Conv => self.conv_latency,
        }
    }
}

impl Default for FpuTiming {
    fn default() -> Self {
        Self::new()
    }
}

/// A fully-specified FP operation ready for evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// Two-operand arithmetic / non-computational op.
    Bin(FpBinOp),
    /// Fused multiply-add family.
    Fma(FmaOp),
    /// Square root.
    Sqrt,
    /// Comparison (writes an integer register).
    Cmp(FpCmpOp),
    /// Conversion / move.
    Cvt(FpCvtOp),
}

impl FpuOp {
    /// Extracts the FPU op from an instruction, if it is an FPU compute op.
    ///
    /// FP loads/stores return `None`: they use the LSU, not the FPU.
    #[must_use]
    pub fn from_instruction(inst: &Instruction) -> Option<(FpuOp, FpFormat)> {
        match *inst {
            Instruction::FpBin { op, fmt, .. } => Some((FpuOp::Bin(op), fmt)),
            Instruction::FpFma { op, fmt, .. } => Some((FpuOp::Fma(op), fmt)),
            Instruction::FpSqrt { fmt, .. } => Some((FpuOp::Sqrt, fmt)),
            Instruction::FpCmp { op, fmt, .. } => Some((FpuOp::Cmp(op), fmt)),
            Instruction::FpCvt { op, .. } => Some((FpuOp::Cvt(op), FpFormat::Double)),
            _ => None,
        }
    }

    /// The functional-unit class this op executes on.
    #[must_use]
    pub fn class(self) -> OpClass {
        match self {
            FpuOp::Bin(FpBinOp::Add | FpBinOp::Sub | FpBinOp::Mul) => OpClass::AddMul,
            FpuOp::Fma(_) => OpClass::AddMul,
            FpuOp::Bin(FpBinOp::Div) | FpuOp::Sqrt => OpClass::DivSqrt,
            FpuOp::Bin(_) | FpuOp::Cmp(_) => OpClass::NonComp,
            FpuOp::Cvt(_) => OpClass::Conv,
        }
    }

    /// Execute latency of this op under `timing`.
    #[must_use]
    pub fn latency(self, timing: &FpuTiming) -> u32 {
        match self {
            FpuOp::Sqrt => timing.sqrt_latency,
            FpuOp::Bin(FpBinOp::Div) => timing.div_latency,
            other => timing.latency(other.class()),
        }
    }

    /// Whether this op produces an integer result.
    #[must_use]
    pub fn writes_int(self) -> bool {
        match self {
            FpuOp::Cmp(_) => true,
            FpuOp::Cvt(c) => c.writes_int(),
            _ => false,
        }
    }
}

/// Result of evaluating an [`FpuOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpuOutput {
    /// A floating-point result (bit pattern; f64 container).
    Fp(u64),
    /// An integer result.
    Int(u32),
}

impl FpuOutput {
    /// The FP bit pattern, panicking on integer results.
    ///
    /// # Panics
    ///
    /// Panics if the output is an integer.
    #[must_use]
    pub fn unwrap_fp(self) -> u64 {
        match self {
            FpuOutput::Fp(v) => v,
            FpuOutput::Int(v) => panic!("expected FP output, got integer {v}"),
        }
    }
}

/// Evaluates `op` on raw 64-bit register values.
///
/// `srcs` are the up-to-three FP source values (`[rs1, rs2, rs3]`); unused
/// entries are ignored. `int_src` is the integer source for int→fp moves
/// and conversions. Single-precision ops interpret and produce the value in
/// the low 32 bits (NaN boxing is not modelled; the kernels in this
/// repository are double-precision).
#[must_use]
pub fn evaluate(op: FpuOp, fmt: FpFormat, srcs: [u64; 3], int_src: u32) -> FpuOutput {
    match fmt {
        FpFormat::Double => evaluate_f64(op, srcs, int_src),
        FpFormat::Single => evaluate_f32(op, srcs, int_src),
    }
}

fn evaluate_f64(op: FpuOp, srcs: [u64; 3], int_src: u32) -> FpuOutput {
    let [a, b, c] = srcs.map(f64::from_bits);
    let fp = |v: f64| FpuOutput::Fp(v.to_bits());
    match op {
        FpuOp::Bin(FpBinOp::Add) => fp(a + b),
        FpuOp::Bin(FpBinOp::Sub) => fp(a - b),
        FpuOp::Bin(FpBinOp::Mul) => fp(a * b),
        FpuOp::Bin(FpBinOp::Div) => fp(a / b),
        FpuOp::Bin(FpBinOp::Min) => fp(ieee_min(a, b)),
        FpuOp::Bin(FpBinOp::Max) => fp(ieee_max(a, b)),
        FpuOp::Bin(FpBinOp::Sgnj) => fp(f64::from_bits(
            (a.to_bits() & !SIGN64) | (b.to_bits() & SIGN64),
        )),
        FpuOp::Bin(FpBinOp::Sgnjn) => fp(f64::from_bits(
            (a.to_bits() & !SIGN64) | (!b.to_bits() & SIGN64),
        )),
        FpuOp::Bin(FpBinOp::Sgnjx) => fp(f64::from_bits(a.to_bits() ^ (b.to_bits() & SIGN64))),
        FpuOp::Fma(FmaOp::Madd) => fp(a.mul_add(b, c)),
        FpuOp::Fma(FmaOp::Msub) => fp(a.mul_add(b, -c)),
        FpuOp::Fma(FmaOp::Nmsub) => fp((-a).mul_add(b, c)),
        FpuOp::Fma(FmaOp::Nmadd) => fp((-a).mul_add(b, -c)),
        FpuOp::Sqrt => fp(a.sqrt()),
        FpuOp::Cmp(FpCmpOp::Eq) => FpuOutput::Int(u32::from(a == b)),
        FpuOp::Cmp(FpCmpOp::Lt) => FpuOutput::Int(u32::from(a < b)),
        FpuOp::Cmp(FpCmpOp::Le) => FpuOutput::Int(u32::from(a <= b)),
        FpuOp::Cvt(cvt) => evaluate_cvt(cvt, srcs[0], int_src),
    }
}

fn evaluate_f32(op: FpuOp, srcs: [u64; 3], int_src: u32) -> FpuOutput {
    let [a, b, c] = srcs.map(|v| f32::from_bits(v as u32));
    let fp = |v: f32| FpuOutput::Fp(u64::from(v.to_bits()));
    match op {
        FpuOp::Bin(FpBinOp::Add) => fp(a + b),
        FpuOp::Bin(FpBinOp::Sub) => fp(a - b),
        FpuOp::Bin(FpBinOp::Mul) => fp(a * b),
        FpuOp::Bin(FpBinOp::Div) => fp(a / b),
        FpuOp::Bin(FpBinOp::Min) => fp(if a.is_nan() {
            b
        } else if b.is_nan() {
            a
        } else {
            a.min(b)
        }),
        FpuOp::Bin(FpBinOp::Max) => fp(if a.is_nan() {
            b
        } else if b.is_nan() {
            a
        } else {
            a.max(b)
        }),
        FpuOp::Bin(FpBinOp::Sgnj) => fp(f32::from_bits(
            (a.to_bits() & !SIGN32) | (b.to_bits() & SIGN32),
        )),
        FpuOp::Bin(FpBinOp::Sgnjn) => fp(f32::from_bits(
            (a.to_bits() & !SIGN32) | (!b.to_bits() & SIGN32),
        )),
        FpuOp::Bin(FpBinOp::Sgnjx) => fp(f32::from_bits(a.to_bits() ^ (b.to_bits() & SIGN32))),
        FpuOp::Fma(FmaOp::Madd) => fp(a.mul_add(b, c)),
        FpuOp::Fma(FmaOp::Msub) => fp(a.mul_add(b, -c)),
        FpuOp::Fma(FmaOp::Nmsub) => fp((-a).mul_add(b, c)),
        FpuOp::Fma(FmaOp::Nmadd) => fp((-a).mul_add(b, -c)),
        FpuOp::Sqrt => fp(a.sqrt()),
        FpuOp::Cmp(FpCmpOp::Eq) => FpuOutput::Int(u32::from(a == b)),
        FpuOp::Cmp(FpCmpOp::Lt) => FpuOutput::Int(u32::from(a < b)),
        FpuOp::Cmp(FpCmpOp::Le) => FpuOutput::Int(u32::from(a <= b)),
        FpuOp::Cvt(cvt) => evaluate_cvt(cvt, srcs[0], int_src),
    }
}

const SIGN64: u64 = 1 << 63;
const SIGN32: u32 = 1 << 31;

fn evaluate_cvt(op: FpCvtOp, fp_src: u64, int_src: u32) -> FpuOutput {
    match op {
        FpCvtOp::DFromW => FpuOutput::Fp(f64::from(int_src as i32).to_bits()),
        FpCvtOp::DFromWu => FpuOutput::Fp(f64::from(int_src).to_bits()),
        FpCvtOp::WFromD => {
            let v = f64::from_bits(fp_src);
            // Round-towards-zero with RISC-V saturation semantics.
            let clamped = if v.is_nan() || v >= f64::from(i32::MAX) {
                i32::MAX
            } else if v <= f64::from(i32::MIN) {
                i32::MIN
            } else {
                v.trunc() as i32
            };
            FpuOutput::Int(clamped as u32)
        }
        FpCvtOp::WuFromD => {
            let v = f64::from_bits(fp_src);
            let clamped = if v.is_nan() || v >= f64::from(u32::MAX) {
                u32::MAX
            } else if v <= 0.0 {
                0
            } else {
                v.trunc() as u32
            };
            FpuOutput::Int(clamped)
        }
        FpCvtOp::DFromS => FpuOutput::Fp(f64::from(f32::from_bits(fp_src as u32)).to_bits()),
        FpCvtOp::SFromD => FpuOutput::Fp(u64::from((f64::from_bits(fp_src) as f32).to_bits())),
        FpCvtOp::MvXW => FpuOutput::Int(fp_src as u32),
        FpCvtOp::MvWX => FpuOutput::Fp(u64::from(int_src)),
    }
}

fn ieee_min(a: f64, b: f64) -> f64 {
    if a.is_nan() {
        b
    } else if b.is_nan() {
        a
    } else {
        a.min(b)
    }
}

fn ieee_max(a: f64, b: f64) -> f64 {
    if a.is_nan() {
        b
    } else if b.is_nan() {
        a
    } else {
        a.max(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: f64) -> u64 {
        v.to_bits()
    }

    #[test]
    fn classes_and_latencies() {
        let t = FpuTiming::new();
        assert_eq!(FpuOp::Bin(FpBinOp::Add).class(), OpClass::AddMul);
        assert_eq!(FpuOp::Fma(FmaOp::Madd).class(), OpClass::AddMul);
        assert_eq!(FpuOp::Bin(FpBinOp::Div).class(), OpClass::DivSqrt);
        assert_eq!(FpuOp::Sqrt.class(), OpClass::DivSqrt);
        assert_eq!(FpuOp::Bin(FpBinOp::Sgnj).class(), OpClass::NonComp);
        assert_eq!(FpuOp::Cmp(FpCmpOp::Lt).class(), OpClass::NonComp);
        assert_eq!(FpuOp::Cvt(FpCvtOp::DFromW).class(), OpClass::Conv);
        assert_eq!(FpuOp::Fma(FmaOp::Madd).latency(&t), 3);
        assert_eq!(FpuOp::Bin(FpBinOp::Div).latency(&t), 11);
        assert_eq!(FpuOp::Sqrt.latency(&t), 21);
    }

    #[test]
    fn double_arithmetic() {
        let e = |op, a: f64, b: f64| evaluate(op, FpFormat::Double, [bits(a), bits(b), 0], 0);
        assert_eq!(
            e(FpuOp::Bin(FpBinOp::Add), 2.0, 0.5),
            FpuOutput::Fp(bits(2.5))
        );
        assert_eq!(
            e(FpuOp::Bin(FpBinOp::Mul), 3.0, -2.0),
            FpuOutput::Fp(bits(-6.0))
        );
        assert_eq!(
            e(FpuOp::Bin(FpBinOp::Div), 1.0, 4.0),
            FpuOutput::Fp(bits(0.25))
        );
        let fma = evaluate(
            FpuOp::Fma(FmaOp::Madd),
            FpFormat::Double,
            [bits(2.0), bits(3.0), bits(1.0)],
            0,
        );
        assert_eq!(fma, FpuOutput::Fp(bits(7.0)));
    }

    #[test]
    fn fma_is_fused() {
        // mul_add is a single rounding: (1 + 2^-52) * (1 + 2^-52) - 1 exercised
        // via values where fused vs unfused differ.
        let a = 1.0 + f64::EPSILON;
        let fused = evaluate(
            FpuOp::Fma(FmaOp::Msub),
            FpFormat::Double,
            [bits(a), bits(a), bits(a * a)],
            0,
        );
        let unfused = a * a - a * a;
        // Fused computes the exact residual, unfused is zero.
        assert_ne!(fused, FpuOutput::Fp(bits(unfused)));
    }

    #[test]
    fn sign_injection() {
        let e = |op, a: f64, b: f64| evaluate(op, FpFormat::Double, [bits(a), bits(b), 0], 0);
        assert_eq!(
            e(FpuOp::Bin(FpBinOp::Sgnj), 2.0, -1.0),
            FpuOutput::Fp(bits(-2.0))
        );
        assert_eq!(
            e(FpuOp::Bin(FpBinOp::Sgnjn), 2.0, -1.0),
            FpuOutput::Fp(bits(2.0))
        );
        assert_eq!(
            e(FpuOp::Bin(FpBinOp::Sgnjx), -2.0, -1.0),
            FpuOutput::Fp(bits(2.0))
        );
        // fmv.d is fsgnj.d rd, rs, rs
        assert_eq!(
            e(FpuOp::Bin(FpBinOp::Sgnj), -3.5, -3.5),
            FpuOutput::Fp(bits(-3.5))
        );
    }

    #[test]
    fn min_max_nan_handling() {
        let nan = f64::NAN;
        let e = |op, a: f64, b: f64| evaluate(op, FpFormat::Double, [bits(a), bits(b), 0], 0);
        assert_eq!(
            e(FpuOp::Bin(FpBinOp::Min), nan, 1.0),
            FpuOutput::Fp(bits(1.0))
        );
        assert_eq!(
            e(FpuOp::Bin(FpBinOp::Max), 2.0, nan),
            FpuOutput::Fp(bits(2.0))
        );
    }

    #[test]
    fn comparisons() {
        let e = |op, a: f64, b: f64| evaluate(op, FpFormat::Double, [bits(a), bits(b), 0], 0);
        assert_eq!(e(FpuOp::Cmp(FpCmpOp::Lt), 1.0, 2.0), FpuOutput::Int(1));
        assert_eq!(e(FpuOp::Cmp(FpCmpOp::Le), 2.0, 2.0), FpuOutput::Int(1));
        assert_eq!(
            e(FpuOp::Cmp(FpCmpOp::Eq), f64::NAN, f64::NAN),
            FpuOutput::Int(0)
        );
    }

    #[test]
    fn conversions_saturate() {
        let e = |op, v: f64| evaluate(FpuOp::Cvt(op), FpFormat::Double, [bits(v), 0, 0], 0);
        assert_eq!(e(FpCvtOp::WFromD, 3.7), FpuOutput::Int(3));
        assert_eq!(e(FpCvtOp::WFromD, -3.7), FpuOutput::Int((-3i32) as u32));
        assert_eq!(e(FpCvtOp::WFromD, 1e300), FpuOutput::Int(i32::MAX as u32));
        assert_eq!(
            e(FpCvtOp::WFromD, f64::NAN),
            FpuOutput::Int(i32::MAX as u32)
        );
        assert_eq!(e(FpCvtOp::WuFromD, -1.0), FpuOutput::Int(0));
        let from_int = evaluate(
            FpuOp::Cvt(FpCvtOp::DFromW),
            FpFormat::Double,
            [0, 0, 0],
            -7i32 as u32,
        );
        assert_eq!(from_int, FpuOutput::Fp(bits(-7.0)));
    }

    #[test]
    fn single_precision_path() {
        let a = 1.5f32;
        let b = 2.25f32;
        let out = evaluate(
            FpuOp::Bin(FpBinOp::Add),
            FpFormat::Single,
            [u64::from(a.to_bits()), u64::from(b.to_bits()), 0],
            0,
        );
        assert_eq!(out, FpuOutput::Fp(u64::from((a + b).to_bits())));
    }

    #[test]
    fn from_instruction_excludes_memory_ops() {
        use sc_isa::{FpReg, Instruction, IntReg};
        let fld = Instruction::FpLoad {
            fmt: FpFormat::Double,
            frd: FpReg::FT0,
            rs1: IntReg::ZERO,
            offset: 0,
        };
        assert!(FpuOp::from_instruction(&fld).is_none());
        let fadd = Instruction::FpBin {
            op: FpBinOp::Add,
            fmt: FpFormat::Double,
            frd: FpReg::FT3,
            frs1: FpReg::FT0,
            frs2: FpReg::FT1,
        };
        let (op, fmt) = FpuOp::from_instruction(&fadd).unwrap();
        assert_eq!(op, FpuOp::Bin(FpBinOp::Add));
        assert_eq!(fmt, FpFormat::Double);
    }
}
