//! # sc-fpu — pipelined floating-point unit model
//!
//! Models the FPU of the Snitch-like core as a set of functional-unit
//! paths, each a rigid [`Pipeline`] (or [`IterativeUnit`] for div/sqrt)
//! with a writeback slot that supports **hold-on-backpressure** — the
//! mechanism the chaining paper exploits: a completing op that cannot push
//! its result into a chained register (valid bit still set) waits in the
//! final stage, holding the whole pipeline behind it.
//!
//! The crate is deliberately split from the core:
//!
//! * [`FpuOp`]/[`evaluate`] give every FP instruction's functional
//!   semantics (IEEE-754 via Rust `f64`/`f32`, fused FMA),
//! * [`FpuTiming`] gives per-class latencies (ADDMUL = 3 like Snitch),
//! * [`Pipeline`] is generic over the payload so the core carries its own
//!   writeback bookkeeping through the stages.
//!
//! ```
//! use sc_fpu::{evaluate, FpuOp, FpuOutput, FpuTiming};
//! use sc_isa::{FpBinOp, FpFormat};
//!
//! let timing = FpuTiming::new();
//! let op = FpuOp::Bin(FpBinOp::Add);
//! assert_eq!(op.latency(&timing), 3);
//! let out = evaluate(op, FpFormat::Double, [2.0f64.to_bits(), 0.5f64.to_bits(), 0], 0);
//! assert_eq!(out, FpuOutput::Fp(2.5f64.to_bits()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod op;
mod pipeline;

pub use op::{evaluate, FpuOp, FpuOutput, FpuTiming, OpClass};
pub use pipeline::{BoundedFifo, IterativeUnit, Pipeline};
