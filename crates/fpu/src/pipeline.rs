//! A generic in-order execution pipeline with hold-on-backpressure.
//!
//! [`Pipeline`] models a rigid pipeline of `depth` execute stages followed
//! by one **writeback stage**. Ops enter stage 0 at issue and advance one
//! stage per [`Pipeline::advance`] call (one call per simulated cycle).
//! An op that reaches the writeback stage stays there until the consumer
//! retires it with [`Pipeline::take_ready`]; while it waits, the whole
//! pipeline holds — this is the backpressure mechanism the chaining
//! extension uses (the paper's per-register valid bit: a completing write
//! to an occupied chained register holds in the final stage).
//!
//! The stage registers of this pipeline are exactly the storage the paper
//! repurposes as the tail of the logical FIFO of a chained register.
//!
//! The payload type `T` is chosen by the core (destination register,
//! computed result, trace id, ...); this crate only models timing.

use std::collections::VecDeque;

/// A rigid pipeline: `depth` execute stages plus one writeback slot.
///
/// # Examples
///
/// ```
/// use sc_fpu::Pipeline;
///
/// let mut p: Pipeline<u32> = Pipeline::new(3);
/// assert!(p.can_issue());
/// p.issue(7); // issue cycle: enters stage 0 at the end of this cycle
/// for _ in 0..4 {
///     assert_eq!(p.ready(), None);
///     p.advance(); // 3 execute stages + the hop into writeback
/// }
/// assert_eq!(p.ready(), Some(&7));
/// assert_eq!(p.take_ready(), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline<T> {
    /// `stages[0]` is the first execute stage; `stages[depth-1]` the last.
    stages: Vec<Option<T>>,
    /// The writeback slot; ops wait here for retirement.
    writeback: Option<T>,
    /// Op accepted this cycle, inserted into stage 0 at `advance()`.
    pending: Option<T>,
    /// Number of cycles the writeback op has been blocked (diagnostics).
    blocked_cycles: u64,
    /// Total ops issued (utilisation accounting).
    issued: u64,
}

impl<T> Pipeline<T> {
    /// Creates a pipeline with `depth` execute stages (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: u32) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        Pipeline {
            stages: (0..depth).map(|_| None).collect(),
            writeback: None,
            pending: None,
            blocked_cycles: 0,
            issued: 0,
        }
    }

    /// Number of execute stages.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.stages.len() as u32
    }

    /// The op currently in the writeback slot, if any.
    #[must_use]
    pub fn ready(&self) -> Option<&T> {
        self.writeback.as_ref()
    }

    /// Retires the writeback-slot op, freeing the pipeline to advance.
    pub fn take_ready(&mut self) -> Option<T> {
        self.writeback.take()
    }

    /// Whether a new op can be accepted this cycle.
    ///
    /// True when stage 0 is empty or will be vacated by this cycle's
    /// `advance()` — either the writeback slot is free (the whole
    /// pipeline shifts) or a bubble somewhere ahead lets the train
    /// behind it compress forward one stage.
    #[must_use]
    pub fn can_issue(&self) -> bool {
        if self.pending.is_some() {
            return false;
        }
        if self.stages[0].is_none() {
            return true;
        }
        self.writeback.is_none() || self.stages.iter().any(Option::is_none)
    }

    /// Accepts an op; it occupies stage 0 from the next `advance()` on.
    ///
    /// # Panics
    ///
    /// Panics if [`Pipeline::can_issue`] is false.
    pub fn issue(&mut self, op: T) {
        assert!(self.can_issue(), "issue into a full pipeline");
        self.pending = Some(op);
        self.issued += 1;
    }

    /// Ends the cycle: every op with a free slot ahead moves one stage
    /// (at most one — latency is per stage, bubbles never shortcut it),
    /// and any pending issue latches into stage 0.
    ///
    /// A blocked writeback op holds only the stages *behind occupied
    /// slots*: ops still compress forward into bubbles. This matters for
    /// the chaining extension — the stage registers are the tail of a
    /// chained register's logical FIFO, and a rigid all-or-nothing hold
    /// would shrink that FIFO's usable capacity to the writeback slot
    /// alone, deadlocking a push-only producer that runs ahead of its
    /// consumer by a pipeline's worth of elements (a real wedge flushed
    /// out by DMA-timing jitter in the tiled multi-cluster runs, pinned
    /// by `sc-kernels`' backpressure tests).
    pub fn advance(&mut self) {
        let depth = self.stages.len();
        if self.writeback.is_none() {
            self.writeback = self.stages[depth - 1].take();
        } else {
            self.blocked_cycles += 1;
        }
        // Compress toward the first free slot: walking from the deep end,
        // every empty stage pulls its predecessor, so the whole train
        // behind a bubble advances one stage in one cycle.
        for i in (1..depth).rev() {
            if self.stages[i].is_none() {
                self.stages[i] = self.stages[i - 1].take();
            }
        }
        if let Some(op) = self.pending.take() {
            debug_assert!(self.stages[0].is_none(), "stage 0 must be free after shift");
            self.stages[0] = Some(op);
        }
    }

    /// Ops currently in flight (execute stages + writeback + pending).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.stages.iter().filter(|s| s.is_some()).count()
            + usize::from(self.writeback.is_some())
            + usize::from(self.pending.is_some())
    }

    /// Whether no ops are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occupancy() == 0
    }

    /// Total ops ever issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total cycles the writeback slot spent blocked.
    #[must_use]
    pub fn blocked_cycles(&self) -> u64 {
        self.blocked_cycles
    }

    /// Iterates over the in-flight payloads from oldest (writeback) to
    /// youngest (pending), exposing the "pipeline registers" that form the
    /// tail of a chained register's logical FIFO.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.writeback
            .iter()
            .chain(self.stages.iter().rev().flatten())
            .chain(self.pending.iter())
    }
}

/// An iterative, unpipelined unit (divide/sqrt): accepts one op at a time
/// and busies itself for the op's latency.
#[derive(Debug, Clone)]
pub struct IterativeUnit<T> {
    current: Option<(T, u32)>,
    done: Option<T>,
    issued: u64,
}

impl<T> IterativeUnit<T> {
    /// Creates an idle unit.
    #[must_use]
    pub fn new() -> Self {
        IterativeUnit {
            current: None,
            done: None,
            issued: 0,
        }
    }

    /// Whether the unit can accept a new op (idle and result drained).
    #[must_use]
    pub fn can_issue(&self) -> bool {
        self.current.is_none() && self.done.is_none()
    }

    /// Starts an op that takes `latency` cycles.
    ///
    /// # Panics
    ///
    /// Panics if the unit is busy.
    pub fn issue(&mut self, op: T, latency: u32) {
        assert!(self.can_issue(), "issue into a busy iterative unit");
        self.current = Some((op, latency.max(1)));
        self.issued += 1;
    }

    /// The finished op awaiting retirement, if any.
    #[must_use]
    pub fn ready(&self) -> Option<&T> {
        self.done.as_ref()
    }

    /// Retires the finished op.
    pub fn take_ready(&mut self) -> Option<T> {
        self.done.take()
    }

    /// Ends the cycle: counts down; on reaching zero the op moves to the
    /// ready slot (where it may wait indefinitely, holding the unit).
    pub fn advance(&mut self) {
        if let Some((_, cycles)) = self.current.as_mut() {
            *cycles -= 1;
            if *cycles == 0 {
                if let Some((op, _)) = self.current.take() {
                    debug_assert!(self.done.is_none());
                    self.done = Some(op);
                }
            }
        }
    }

    /// Whether any op is executing or waiting for retirement.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.current.is_some() || self.done.is_some()
    }

    /// Total ops ever issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl<T> Default for IterativeUnit<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A bounded FIFO used for offload queues and stream buffers.
///
/// A thin wrapper over [`VecDeque`] that makes the capacity explicit and
/// panics on misuse, so queue-overflow bugs surface immediately in tests.
#[derive(Debug, Clone)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_water: usize,
}

impl<T> BoundedFifo<T> {
    /// Creates a FIFO with the given capacity (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "FIFO capacity must be at least 1");
        BoundedFifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
        }
    }

    /// Maximum number of elements.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Pushes an element.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full — callers must check [`BoundedFifo::is_full`]
    /// (that check is the hardware backpressure signal).
    pub fn push(&mut self, item: T) {
        assert!(!self.is_full(), "push into a full FIFO");
        self.items.push_back(item);
        self.high_water = self.high_water.max(self.items.len());
    }

    /// Pops the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest element.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Highest occupancy ever observed (capacity-sizing diagnostics).
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_takes_depth_cycles_to_writeback() {
        let mut p: Pipeline<&str> = Pipeline::new(3);
        p.issue("a");
        assert_eq!(p.ready(), None);
        p.advance(); // a in stage 0
        assert_eq!(p.ready(), None);
        p.advance(); // stage 1
        p.advance(); // stage 2
        assert_eq!(p.ready(), None);
        p.advance(); // writeback
        assert_eq!(p.ready(), Some(&"a"));
    }

    #[test]
    fn back_to_back_issue_fills_stages() {
        let mut p: Pipeline<u32> = Pipeline::new(3);
        for i in 0..3 {
            assert!(p.can_issue());
            p.issue(i);
            p.advance();
        }
        assert_eq!(p.occupancy(), 3);
        p.advance();
        // First op now in writeback, three in flight total.
        assert_eq!(p.ready(), Some(&0));
    }

    #[test]
    fn blocked_writeback_holds_pipeline() {
        let mut p: Pipeline<u32> = Pipeline::new(2);
        p.issue(0);
        p.advance();
        p.issue(1);
        p.advance();
        p.advance(); // 0 → writeback, 1 → last stage
        assert_eq!(p.ready(), Some(&0));
        // Don't retire; pipeline must hold.
        p.advance();
        assert_eq!(p.ready(), Some(&0), "writeback op must persist");
        assert_eq!(p.blocked_cycles(), 1);
        // Stage-0 full (op 1 couldn't move)? op1 moved to last stage before
        // the block; now it's held there, so stage 0 is free:
        assert!(p.can_issue());
        p.issue(2);
        p.advance();
        assert_eq!(p.ready(), Some(&0));
        // Now pipe is full up to writeback: stage0=2 can't advance...
        p.advance();
        assert!(!p.can_issue(), "stage 0 occupied and pipe blocked");
        // Retire 0: everything flows again.
        assert_eq!(p.take_ready(), Some(0));
        assert!(p.can_issue(), "retiring unblocks the shift");
        p.advance();
        assert_eq!(p.ready(), Some(&1));
    }

    #[test]
    fn blocked_writeback_still_compresses_bubbles() {
        // Regression: a blocked writeback once froze the *whole*
        // pipeline, so ops could not slide into empty stages ahead of
        // them and a chained push-only producer deadlocked against its
        // own not-yet-issued consumer. Ops must keep advancing into
        // bubbles (one stage per cycle) while the writeback op holds.
        let mut p: Pipeline<u32> = Pipeline::new(3);
        p.issue(0);
        for _ in 0..4 {
            p.advance();
        }
        assert_eq!(p.ready(), Some(&0), "op 0 reached writeback");
        // Writeback blocked (not retired); issue op 1 — it must travel
        // through the empty stages up to the last one.
        p.issue(1);
        p.advance(); // 1 → stage 0
        assert!(p.can_issue(), "bubbles ahead: stage 0 will vacate");
        p.advance(); // 1 → stage 1
        p.advance(); // 1 → stage 2 (last execute stage)
        assert_eq!(p.ready(), Some(&0), "writeback op still held");
        assert_eq!(p.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
        // One more op fits behind it; the pipe then has one bubble left.
        p.issue(2);
        p.advance();
        p.advance();
        assert!(p.can_issue(), "one bubble remains");
        p.issue(3);
        p.advance();
        assert!(!p.can_issue(), "now truly full behind the block");
        // Retiring drains in order, one per cycle.
        assert_eq!(p.take_ready(), Some(0));
        p.advance();
        assert_eq!(p.take_ready(), Some(1));
    }

    #[test]
    fn bubbles_never_shortcut_latency() {
        // An op entering an empty pipeline still takes depth+1 advances
        // to reach writeback, bubbles or not.
        let mut p: Pipeline<u32> = Pipeline::new(3);
        p.issue(9);
        for _ in 0..3 {
            p.advance();
            assert_eq!(p.ready(), None, "must not skip execute stages");
        }
        p.advance();
        assert_eq!(p.ready(), Some(&9));
    }

    #[test]
    fn iter_orders_oldest_first() {
        let mut p: Pipeline<u32> = Pipeline::new(3);
        for i in 0..4 {
            p.issue(i);
            p.advance();
        }
        let order: Vec<u32> = p.iter().copied().collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn iterative_unit_counts_down() {
        let mut u: IterativeUnit<&str> = IterativeUnit::new();
        u.issue("div", 3);
        assert!(!u.can_issue());
        u.advance();
        u.advance();
        assert_eq!(u.ready(), None);
        u.advance();
        assert_eq!(u.ready(), Some(&"div"));
        assert!(!u.can_issue(), "result must be drained first");
        assert_eq!(u.take_ready(), Some("div"));
        assert!(u.can_issue());
    }

    #[test]
    fn bounded_fifo_tracks_high_water() {
        let mut f: BoundedFifo<u32> = BoundedFifo::new(2);
        f.push(1);
        f.push(2);
        assert!(f.is_full());
        assert_eq!(f.pop(), Some(1));
        f.push(3);
        assert_eq!(f.high_water(), 2);
        assert_eq!(f.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "full FIFO")]
    fn bounded_fifo_push_full_panics() {
        let mut f: BoundedFifo<u32> = BoundedFifo::new(1);
        f.push(1);
        f.push(2);
    }

    #[test]
    #[should_panic(expected = "full pipeline")]
    fn double_issue_panics() {
        let mut p: Pipeline<u32> = Pipeline::new(1);
        p.issue(1);
        p.issue(2);
    }
}
