//! System correctness pins:
//!
//! * a 1-cluster system behind a **pass-through L2** must match a
//!   stand-alone `Cluster` cycle-for-cycle (and counter-for-counter),
//!   DMA traffic included,
//! * multi-cluster DMA traffic genuinely contends at the shared L2
//!   (conflicts appear when banks shrink, refills serialise),
//! * the inter-cluster barrier rendezvouses every hart of every
//!   cluster, and deadlocks surface as budget errors.

use sc_cluster::{ClusterBuilder, ClusterConfig};
use sc_core::CoreConfig;
use sc_isa::{csr, IntReg, Program, ProgramBuilder};
use sc_mem::{Dram, DramConfig, L2Config};
use sc_system::{System, SystemBuilder, SystemConfig, SystemError};

/// A program that rings the DMA doorbell for a `bytes`-byte fetch from
/// `dram_addr` to `tcdm_addr`, polls the completion counter, then halts.
fn dma_fetch_program(dram_addr: u32, tcdm_addr: u32, bytes: u32, wait_count: u32) -> Program {
    let t = IntReg::new(5);
    let cnt = IntReg::new(6);
    let tgt = IntReg::new(7);
    let mut b = ProgramBuilder::new();
    for (addr, value) in [
        (csr::DMA_SRC, dram_addr),
        (csr::DMA_DST, tcdm_addr),
        (csr::DMA_LEN, bytes),
        (csr::DMA_SRC_STRIDE, bytes),
        (csr::DMA_DST_STRIDE, bytes),
        (csr::DMA_REPS, 1),
    ] {
        b.li(t, value as i32);
        b.csrrw(IntReg::ZERO, addr, t);
    }
    b.csrrwi(IntReg::ZERO, csr::DMA_START, 1);
    b.li(tgt, wait_count as i32);
    b.label("wait");
    b.csrrs(cnt, csr::DMA_COMPLETED, IntReg::ZERO);
    b.blt(cnt, tgt, "wait");
    b.ecall();
    b.build().unwrap()
}

fn idle_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.ecall();
    b.build().unwrap()
}

#[test]
fn one_cluster_passthrough_system_is_cycle_identical_to_cluster() {
    // The tentpole invariant: System{clusters: 1} over a pass-through
    // L2 performs exactly the same cycle sequence as PR 2's Cluster
    // with a private Dram — DMA latency, beat timing and TCDM
    // arbitration included.
    let dram_cfg = DramConfig::new().with_latency(16);
    let programs = vec![dma_fetch_program(0x1000, 0x200, 64, 1), idle_program()];

    let stage = |dram: &mut Dram| {
        for i in 0..8u32 {
            dram.write_u64(0x1000 + 8 * i, u64::from(i) * 5 + 1)
                .unwrap();
        }
    };

    let ccfg = ClusterConfig::new(2).with_core(CoreConfig::new());
    let mut dram = Dram::new(dram_cfg);
    stage(&mut dram);
    let mut cluster = ClusterBuilder::new(ccfg, programs.clone())
        .dma(dram)
        .build();
    let cluster_summary = cluster.run(100_000).unwrap();

    let scfg = SystemConfig::new(1, 2).with_l2(L2Config::passthrough(dram_cfg));
    let mut dram = Dram::new(dram_cfg);
    stage(&mut dram);
    let mut system = SystemBuilder::new(scfg, vec![vec![programs]])
        .dram(dram)
        .build();
    let system_summary = system.run(100_000).unwrap();

    assert_eq!(
        cluster_summary.cycles, system_summary.cycles,
        "pass-through system must be cycle-identical to the cluster"
    );
    let sys_cluster = &system_summary.per_cluster[0];
    for (a, b) in cluster_summary.per_core.iter().zip(&sys_cluster.per_core) {
        assert_eq!(a.counters, b.counters);
    }
    assert_eq!(cluster_summary.dma, sys_cluster.dma);
    assert_eq!(cluster_summary.core_conflicts, sys_cluster.core_conflicts);
    for i in 0..8u32 {
        assert_eq!(
            system.cluster(0).tcdm().read_u64(0x200 + 8 * i).unwrap(),
            u64::from(i) * 5 + 1
        );
        assert_eq!(
            cluster.tcdm().read_u64(0x200 + 8 * i).unwrap(),
            u64::from(i) * 5 + 1
        );
    }
    let l2 = system_summary.l2.unwrap();
    assert_eq!(l2.accesses, 8, "one L2 access per beat");
    assert_eq!(l2.conflicts, 0, "a lone cluster never conflicts");
    assert_eq!(l2.refills(), 0, "pass-through never refills");
}

#[test]
fn clusters_contend_at_the_shared_l2() {
    // Two clusters streaming simultaneously from the same L2 must slow
    // each other down when the L2 narrows to one bank, and an L2 wide
    // enough must let them overlap.
    let run = |banks: u32| {
        let l2 = L2Config::new()
            .with_refill(false)
            .with_banks(banks)
            .with_latency(0);
        let scfg = SystemConfig::new(2, 1).with_l2(l2);
        let stages = (0..2u32)
            .map(|c| vec![vec![dma_fetch_program(0x1000 + c * 0x800, 0x200, 512, 1)]])
            .collect();
        let mut dram = Dram::new(DramConfig::new());
        for i in 0..256u32 {
            dram.write_u64(0x1000 + 8 * i, u64::from(i)).unwrap();
        }
        let mut system = SystemBuilder::new(scfg, stages).dram(dram).build();
        let summary = system.run(100_000).unwrap();
        (summary.cycles, summary.l2.unwrap())
    };
    let (wide_cycles, wide_l2) = run(8);
    let (narrow_cycles, narrow_l2) = run(1);
    assert!(
        narrow_l2.conflicts > wide_l2.conflicts,
        "one bank must conflict more: {} vs {}",
        narrow_l2.conflicts,
        wide_l2.conflicts
    );
    assert!(
        narrow_cycles > wide_cycles,
        "conflicts must cost cycles: {narrow_cycles} vs {wide_cycles}"
    );
    // Fair arbitration: both clusters moved all 64 of their beats.
    assert_eq!(narrow_l2.accesses_by_cluster, vec![64, 64]);
}

#[test]
fn cold_l2_refills_charge_and_warm_reruns_speed_up() {
    let l2 = L2Config::new().with_line_bytes(256);
    let scfg = SystemConfig::new(1, 1).with_l2(l2);
    // Two identical fetch stages: the first is cold, the second hits
    // warm lines.
    let prog = |wait| vec![dma_fetch_program(0x1000, 0x200, 256, wait)];
    let mut dram = Dram::new(DramConfig::new());
    dram.write_u64(0x1000, 77).unwrap();
    let mut system = SystemBuilder::new(scfg, vec![vec![prog(1), prog(2)]])
        .dram(dram)
        .build();
    let summary = system.run(1_000_000).unwrap();
    let l2 = summary.l2.unwrap();
    assert_eq!(l2.refills(), 1, "256 B fetch twice = one cold line");
    assert_eq!(summary.l2_refill_beats, 32);
    assert!(l2.refill_stalls() > 0);
    assert_eq!(system.cluster(0).tcdm().read_u64(0x200).unwrap(), 77);
}

/// A program that rings the doorbell for a `bytes`-byte write-back from
/// `tcdm_addr` to `dram_addr`, polls the counter, then halts.
fn dma_store_program(dram_addr: u32, tcdm_addr: u32, bytes: u32, wait_count: u32) -> Program {
    let t = IntReg::new(5);
    let cnt = IntReg::new(6);
    let tgt = IntReg::new(7);
    let mut b = ProgramBuilder::new();
    for (addr, value) in [
        (csr::DMA_SRC, dram_addr),
        (csr::DMA_DST, tcdm_addr),
        (csr::DMA_LEN, bytes),
        (csr::DMA_SRC_STRIDE, bytes),
        (csr::DMA_DST_STRIDE, bytes),
        (csr::DMA_REPS, 1),
    ] {
        b.li(t, value as i32);
        b.csrrw(IntReg::ZERO, addr, t);
    }
    b.csrrwi(IntReg::ZERO, csr::DMA_START, 0);
    b.li(tgt, wait_count as i32);
    b.label("wait");
    b.csrrs(cnt, csr::DMA_COMPLETED, IntReg::ZERO);
    b.blt(cnt, tgt, "wait");
    b.ecall();
    b.build().unwrap()
}

#[test]
fn finite_l2_evicts_and_writes_back_through_the_whole_system() {
    // A 1 KiB direct-mapped write-back L2 under a 4 KiB output stream:
    // the DMA engine's TCDM→Dram beats dirty 64 lines through 16 slots,
    // so capacity pressure must evict dirty lines and the summary must
    // carry the write-back beats sc-energy charges.
    let l2 = L2Config::new()
        .with_line_bytes(64)
        .with_capacity_bytes(1 << 10)
        .with_ways(1)
        .with_write_back(true);
    let scfg = SystemConfig::new(1, 1).with_l2(l2);
    let mut dram = Dram::new(DramConfig::new());
    dram.write_u64(0x0, 0).unwrap(); // touch so the store exists
    let mut system = SystemBuilder::new(
        scfg,
        vec![vec![vec![dma_store_program(0x1000, 0x200, 4096, 1)]]],
    )
    .dram(dram)
    .build();
    let summary = system.run(1_000_000).unwrap();
    let l2_stats = summary.l2.unwrap();
    assert_eq!(l2_stats.cache.write_beats, 512, "4 KiB = 512 beats");
    assert_eq!(
        l2_stats.cache.evictions, 48,
        "64 dirty lines through 16 slots"
    );
    assert_eq!(l2_stats.cache.dirty_evictions, 48);
    assert_eq!(summary.l2_writeback_beats, 48 * 8);
    assert_eq!(
        summary.l2_refill_beats, 0,
        "pure write streams never refill"
    );
    // The functional image is intact regardless of the timing model.
    for i in 0..8u32 {
        assert!(system.dram().unwrap().read_u64(0x1000 + 8 * i).is_ok());
    }
}

#[test]
fn dma_stats_split_miss_waits_from_bank_conflicts() {
    // One cluster fetching cold lines through a refilling L2: every
    // engine stall on the shared side is a *miss* wait (there is nobody
    // to lose bank arbitration to), and the split subset must account
    // for all of them.
    let scfg = SystemConfig::new(1, 1).with_l2(L2Config::new().with_line_bytes(64));
    let mut dram = Dram::new(DramConfig::new());
    for i in 0..32u32 {
        dram.write_u64(0x1000 + 8 * i, u64::from(i)).unwrap();
    }
    let mut system = SystemBuilder::new(
        scfg,
        vec![vec![vec![dma_fetch_program(0x1000, 0x200, 256, 1)]]],
    )
    .dram(dram)
    .build();
    let summary = system.run(1_000_000).unwrap();
    let dma = summary.per_cluster[0].dma.unwrap();
    assert!(
        dma.stats.l2_wait_cycles > 0,
        "cold lines must stall the engine"
    );
    assert_eq!(
        dma.stats.l2_miss_wait_cycles, dma.stats.l2_wait_cycles,
        "a lone cluster's only L2 stalls are miss waits"
    );
}

#[test]
fn system_barrier_rendezvous_and_deadlock() {
    let waiter = {
        let mut b = ProgramBuilder::new();
        b.csrrwi(IntReg::ZERO, csr::SYSTEM_BARRIER, 0);
        b.ecall();
        b.build().unwrap()
    };
    // A hart that halts without arriving leaves the rendezvous (same
    // convention as the cluster barrier): the remaining harts release.
    let scfg = SystemConfig::new(2, 1);
    let mut system = System::new(
        scfg,
        vec![vec![vec![waiter.clone()]], vec![vec![idle_program()]]],
    );
    let summary = system.run(1_000).unwrap();
    assert_eq!(summary.system_barriers, 1);

    // A hart that never arrives but keeps *running* deadlocks the
    // rendezvous, surfacing as a budget error rather than a hang.
    let spinner = {
        let mut b = ProgramBuilder::new();
        b.label("spin");
        b.j("spin");
        b.build().unwrap()
    };
    let mut system = System::new(
        SystemConfig::new(2, 1),
        vec![vec![vec![waiter]], vec![vec![spinner]]],
    );
    let err = system.run(1_000).unwrap_err();
    assert!(matches!(err, SystemError::MaxCyclesExceeded { .. }));
}

#[test]
fn barrier_waits_for_a_cluster_between_stages() {
    // Regression: the rendezvous census once ran before the stage
    // advance, so a cluster that had just halted stage N with stage N+1
    // queued counted as inactive — a sibling's barrier released without
    // it (and each hart's solo "rendezvous" double-counted episodes).
    // Cluster 0 arrives at the barrier immediately; cluster 1 burns a
    // stage of busy-work first and only reaches its barrier in stage 2.
    let barrier_then_halt = {
        let mut b = ProgramBuilder::new();
        b.csrrwi(IntReg::ZERO, csr::SYSTEM_BARRIER, 0);
        b.ecall();
        b.build().unwrap()
    };
    let busy_work = {
        let mut b = ProgramBuilder::new();
        let (i, n) = (IntReg::new(10), IntReg::new(11));
        b.li(i, 0);
        b.li(n, 50);
        b.label("loop");
        b.addi(i, i, 1);
        b.bne(i, n, "loop");
        b.ecall();
        b.build().unwrap()
    };
    let stages = vec![
        vec![vec![barrier_then_halt.clone()]],
        vec![vec![busy_work], vec![barrier_then_halt]],
    ];
    let mut system = System::new(SystemConfig::new(2, 1), stages);
    let summary = system.run(10_000).unwrap();
    assert_eq!(
        summary.system_barriers, 1,
        "one genuine rendezvous, not two solo releases"
    );
    for cluster in &summary.per_cluster {
        assert_eq!(
            cluster.system_barriers, 1,
            "each cluster's hart completed exactly one episode"
        );
    }
    // Cluster 0 must have waited for cluster 1's busy stage to finish.
    assert!(
        summary.cluster_done_at[0] > 50,
        "cluster 0 released too early, at cycle {}",
        summary.cluster_done_at[0]
    );
}

#[test]
fn stages_advance_independently_per_cluster() {
    // Cluster 0 runs three stages, cluster 1 one stage: no global sync
    // between stages, and the system ends when the laggard finishes.
    let scfg = SystemConfig::new(2, 1);
    let stages = vec![
        vec![
            vec![idle_program()],
            vec![idle_program()],
            vec![idle_program()],
        ],
        vec![vec![idle_program()]],
    ];
    let mut system = System::new(scfg, stages);
    let summary = system.run(1_000).unwrap();
    assert!(summary.cluster_done_at[0] >= summary.cluster_done_at[1]);
    assert_eq!(summary.system_barriers, 0);
}

#[test]
fn lint_strict_refuses_a_bad_queued_stage() {
    // The error hides in a *queued* tile stage, not the loaded one:
    // strict verification must still catch it before any cycle runs.
    let scfg = SystemConfig::new(1, 1);
    let stages = vec![vec![
        vec![idle_program()],
        vec![sc_lint::fixtures::fifo_overflow()],
    ]];
    let err = SystemBuilder::new(scfg, stages)
        .lint_strict()
        .try_build()
        .expect_err("strict verification must refuse the queued overflow");
    let SystemError::Cluster { cluster, source } = err else {
        panic!("expected a cluster-tagged lint refusal, got: {err}");
    };
    assert_eq!(cluster, 0);
    let sc_cluster::ClusterError::Lint(report) = source else {
        panic!("expected ClusterError::Lint, got: {source}");
    };
    assert!(report.has_errors(), "{report}");

    // The same system with clean stages builds fine under strict mode.
    let scfg = SystemConfig::new(1, 1);
    SystemBuilder::new(scfg, vec![vec![vec![idle_program()]]])
        .lint_strict()
        .try_build()
        .expect("clean stages build under strict verification");
}
