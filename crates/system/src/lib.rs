//! # sc-system — multi-cluster scale-out over a shared L2
//!
//! A scaled-out many-cluster system: M [`sc_cluster::Cluster`]s (each N
//! lock-step cores plus one DMA engine) stepped **cycle by cycle in
//! lock-step** against a shared, banked [`sc_mem::L2`] with fair
//! inter-cluster arbitration and a configurable L2↔Dram refill path.
//! Intra-cluster contention stays where PR 2 put it — each cluster's own
//! TCDM crossbar — while the new first-order effect, clusters' DMA beats
//! genuinely contending for the memory level *above* the L1, lives here.
//!
//! ## Lock-step protocol
//!
//! Every system cycle:
//!
//! 1. each unfinished cluster runs its first half-cycle
//!    ([`sc_cluster::Cluster::begin_cycle`]): core phases, doorbells, and
//!    the DMA engine's cycle start — returning the background-memory
//!    side of the engine's beat, if one is ready;
//! 2. the shared L2 arbitrates all clusters' beats in **one** pass
//!    ([`sc_mem::L2::arbitrate`]): at most one beat per bank, rotation
//!    over clusters, missing lines stalled behind the cache core's
//!    MSHRs and refill/write-back channels;
//! 3. each cluster finishes its cycle
//!    ([`sc_cluster::Cluster::end_cycle`]) with its L2 outcome — a
//!    granted beat then contends on the cluster's own TCDM crossbar
//!    exactly as before, moving data against the shared functional
//!    store;
//! 4. the inter-cluster barrier resolves: once every active hart of
//!    every cluster has written CSR 0x7C6, all of them release in the
//!    same cycle;
//! 5. clusters whose cores all halted load their next program *stage*
//!    (the software tile loop), so per-cluster tile pipelines run
//!    independently without global synchronisation.
//!
//! A 1-cluster system behind a pass-through L2
//! ([`sc_mem::L2Config::passthrough`]) performs exactly the same
//! sequence as a stand-alone [`sc_cluster::Cluster`], cycle for cycle —
//! pinned by this crate's tests and `sc-kernels`' system proptests.
//!
//! ## Event-driven scheduling
//!
//! [`System::run`] under [`sc_core::SchedMode::Event`] (selected with
//! [`SystemBuilder::sched_mode`]) fast-forwards windows where every
//! cluster reports a future wake and the shared L2 is quiescent
//! ([`sc_mem::L2::is_quiescent`]) — bit-identical to dense stepping,
//! pinned by the checked-in baseline sweeps and `sc-kernels`'
//! differential proptest. The fluent [`SystemBuilder`] assembles a
//! system (shared memory, watchdog, tracer, scheduling mode) in one
//! expression, replacing the `System::new` + `attach_dram` ordering
//! dance.
//!
//! ```
//! use sc_isa::{csr, IntReg, ProgramBuilder};
//! use sc_system::{System, SystemConfig};
//!
//! // Every hart stores cluster*16 + hart to its own cluster's TCDM,
//! // rendezvouses on the inter-cluster barrier, halts.
//! let program = |cluster: u32, hart: u32| {
//!     let mut b = ProgramBuilder::new();
//!     b.li(IntReg::new(10), (cluster * 16 + hart) as i32);
//!     b.slli(IntReg::new(11), IntReg::new(10), 2);
//!     b.sw(IntReg::new(10), IntReg::new(11), 0x100);
//!     b.csrrwi(IntReg::ZERO, csr::SYSTEM_BARRIER, 0);
//!     b.ecall();
//!     b.build().unwrap()
//! };
//! let cfg = SystemConfig::new(2, 2);
//! let stages = (0..2)
//!     .map(|c| vec![(0..2).map(|h| program(c, h)).collect()])
//!     .collect();
//! let mut system = System::new(cfg, stages);
//! let summary = system.run(10_000)?;
//! assert_eq!(summary.system_barriers, 1);
//! for c in 0..2u32 {
//!     for h in 0..2u32 {
//!         let addr = 0x100 + (c * 16 + h) * 4;
//!         assert_eq!(system.cluster(c as usize).tcdm().read_u32(addr)?, c * 16 + h);
//!     }
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::fmt;

use sc_cluster::{
    lint_config, Cluster, ClusterBuilder, ClusterConfig, ClusterError, ClusterSummary,
};
use sc_core::{Component, PerfCounters, SchedMode, Scheduler, Wake};
use sc_isa::Program;
use sc_lint::lint_harts;
use sc_mem::{CacheWake, Dram, L2Config, L2Outcome, L2Request, L2Stats, L2};
use sc_perf::{Attribution, Leaf};
use sc_trace::{HangReport, ResourceState, Tracer, Track, Watchdog};

/// Track the shared L2 traces on: process 0 ("l2"), thread 0; the L2's
/// refill/write-back channels occupy the following thread ids. Cluster
/// `c`'s tracks live under process `c + 1`.
pub const L2_TRACK: Track = Track::new(0, 0);

/// System geometry: how many clusters, their shared per-cluster shape,
/// and the shared memory levels above them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of clusters stepped in lock-step.
    pub num_clusters: u32,
    /// Per-cluster configuration (cores, TCDM geometry).
    pub cluster: ClusterConfig,
    /// The shared L2 every cluster's DMA engine moves against.
    pub l2: L2Config,
}

impl SystemConfig {
    /// A system of `num_clusters` default-configured clusters of
    /// `cores_per_cluster` cores each, over the default L2.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(num_clusters: u32, cores_per_cluster: u32) -> Self {
        assert!(num_clusters >= 1, "a system has at least one cluster");
        SystemConfig {
            num_clusters,
            cluster: ClusterConfig::new(cores_per_cluster),
            l2: L2Config::new(),
        }
    }

    /// Replaces the per-cluster configuration.
    #[must_use]
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Replaces the L2 configuration.
    #[must_use]
    pub fn with_l2(mut self, l2: L2Config) -> Self {
        self.l2 = l2;
        self
    }
}

/// Any failure during system simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// A cluster's simulation failed.
    Cluster {
        /// The faulting cluster.
        cluster: u32,
        /// The underlying error.
        source: ClusterError,
    },
    /// The cycle budget ran out before every cluster finished — also
    /// covers inter-cluster barrier deadlocks.
    MaxCyclesExceeded {
        /// The budget that was exceeded.
        max_cycles: u64,
    },
    /// The watchdog ([`System::set_watchdog`]) saw no architectural
    /// progress anywhere in the system for its limit while clusters
    /// were unfinished: a hang, converted into a diagnostic naming each
    /// blocked resource instead of spinning until the budget runs out.
    Hang(HangReport),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Cluster { cluster, source } => {
                write!(f, "cluster {cluster}: {source}")
            }
            SystemError::MaxCyclesExceeded { max_cycles } => {
                write!(
                    f,
                    "system exceeded {max_cycles} cycles before all clusters finished"
                )
            }
            SystemError::Hang(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for SystemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SystemError::Cluster { source, .. } => Some(source),
            SystemError::MaxCyclesExceeded { .. } => None,
            SystemError::Hang(_) => None,
        }
    }
}

/// Aggregated result of a completed system run.
#[derive(Debug, Clone)]
pub struct SystemSummary {
    /// System cycles until the *last* cluster finished its last stage.
    pub cycles: u64,
    /// Each cluster's own summary (its `cycles` freeze when it
    /// finishes; DMA/overlap metrics are per-cluster engines).
    pub per_cluster: Vec<ClusterSummary>,
    /// Element-wise sum of every core's whole-run counters across all
    /// clusters, with `cycles` overwritten by the system cycle count.
    pub aggregate: PerfCounters,
    /// Cycle at which each cluster finished (halted with no stages
    /// left).
    pub cluster_done_at: Vec<u64>,
    /// Inter-cluster barrier episodes completed by the whole system.
    pub system_barriers: u64,
    /// Shared-L2 activity (accesses, conflicts, cache hits/misses,
    /// evictions, MSHR activity), when a shared memory is attached.
    pub l2: Option<L2Stats>,
    /// 64-bit beats the L2 refill channels moved from the Dram — the
    /// expensive end of every cold miss, charged by `sc-energy`.
    pub l2_refill_beats: u64,
    /// 64-bit beats of write-back traffic the L2's dirty evictions
    /// generated towards the Dram (0 unless the L2 has a finite
    /// capacity with write-back on), also charged by `sc-energy`.
    pub l2_writeback_beats: u64,
    /// The subset of [`SystemSummary::l2_refill_beats`] moved by
    /// *prefetch-issued* refills (descriptor-driven L2 prefetching; 0
    /// with [`sc_mem::L2Config::prefetch`] off). Already included in the
    /// refill total — `sc-energy` charges a prefetch beat exactly like a
    /// demand refill beat, so this field is the attribution split, not
    /// an extra charge.
    pub l2_prefetch_beats: u64,
    /// Top-down cycle attribution aggregated over every hart in the
    /// system: each cluster's padded partition plus
    /// [`sc_perf::Leaf::Park`] padding for the window between that
    /// cluster's finish and the system's last cycle, so the whole tree
    /// partitions `total harts × system cycles` exactly (verified as a
    /// hard error when the summary is assembled).
    pub attribution: Attribution,
}

impl SystemSummary {
    /// Aggregate FPU utilisation: compute-issue cycles of all cores over
    /// `total cores × system cycles`.
    #[must_use]
    pub fn system_utilization(&self) -> f64 {
        let cores: u64 = self
            .per_cluster
            .iter()
            .map(|c| c.per_core.len() as u64)
            .sum();
        let peak = self.cycles.saturating_mul(cores);
        if peak == 0 {
            0.0
        } else {
            self.aggregate.fpu_issue_cycles as f64 / peak as f64
        }
    }

    /// Total flops over system cycles.
    #[must_use]
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.aggregate.flops as f64 / self.cycles as f64
        }
    }

    /// Total DMA beats moved by every cluster's engine.
    #[must_use]
    pub fn total_dma_beats(&self) -> u64 {
        self.per_cluster
            .iter()
            .filter_map(|c| c.dma.as_ref())
            .map(|d| d.stats.beats)
            .sum()
    }

    /// The L2 refill-path occupancy split for top-down reports, in beats
    /// (the channel is busy for a fixed time per beat, so beat counts
    /// are exact occupancy ratios): demand-miss service is the refill
    /// traffic that was *not* prefetch-issued, alongside the prefetch
    /// and write-back shares.
    #[must_use]
    pub fn refill_occupancy(&self) -> sc_perf::RefillOccupancy {
        sc_perf::RefillOccupancy {
            demand_cycles: self.l2_refill_beats.saturating_sub(self.l2_prefetch_beats),
            prefetch_cycles: self.l2_prefetch_beats,
            writeback_cycles: self.l2_writeback_beats,
        }
    }
}

/// The system: M lock-stepped clusters, optionally fed through a shared
/// banked L2 from one background memory.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    clusters: Vec<Cluster>,
    /// Remaining program stages per cluster (the software tile loop):
    /// when a cluster's cores all halt, its next stage loads and the
    /// cluster keeps running — clusters advance independently.
    stages: Vec<VecDeque<Vec<Program>>>,
    /// The shared memory levels, when attached: the L2 timing filter
    /// and the single functional store behind it.
    shared: Option<(L2, Dram)>,
    cycles: u64,
    cluster_done_at: Vec<Option<u64>>,
    system_barriers: u64,
    // Scratch reused across cycles.
    l2_reqs: Vec<L2Request>,
    l2_req_of: Vec<Option<usize>>,
    stepped: Vec<usize>,
    /// Per-cluster local-skip classification for the cycle being
    /// stepped: `quiet[c]` marks an unfinished cluster whose wake lies
    /// strictly in the future — it is bulk-advanced one cycle
    /// ([`Cluster::skip_quiet`]) while the dense subset steps.
    quiet: Vec<bool>,
    tracer: Tracer,
    watchdog: Option<Watchdog>,
    /// Per-cluster, per-hart attribution snapshots at the system
    /// watchdog's last observed progress change — the baselines a hang
    /// report takes its stalled-window attribution deltas against.
    hang_attr_base: Vec<Vec<Attribution>>,
    hang_attr_sig: u64,
    hang_attr_primed: bool,
    sched: Scheduler,
}

impl System {
    /// Creates a system running `stages[c]` on cluster `c`: a non-empty
    /// sequence of program sets (one program per core each), executed
    /// back to back — the model of each cluster's software tile loop.
    /// Single-stage clusters just run their one program set.
    ///
    /// # Panics
    ///
    /// Panics unless `stages.len() == cfg.num_clusters` and every
    /// cluster has at least one stage of `cfg.cluster.num_cores`
    /// programs.
    #[must_use]
    pub fn new(cfg: SystemConfig, stages: Vec<Vec<Vec<Program>>>) -> Self {
        Self::assemble(cfg, stages, false)
    }

    /// Shared constructor: `with_engines` attaches every cluster's DMA
    /// engine at build time (the [`SystemBuilder`] path, which also
    /// installs the shared L2/Dram pair afterwards).
    fn assemble(cfg: SystemConfig, stages: Vec<Vec<Vec<Program>>>, with_engines: bool) -> Self {
        assert_eq!(
            stages.len(),
            cfg.num_clusters as usize,
            "one stage list per cluster"
        );
        let timing = cfg.l2.engine_timing();
        let mut clusters = Vec::with_capacity(stages.len());
        let mut queues = Vec::with_capacity(stages.len());
        for (c, cluster_stages) in stages.into_iter().enumerate() {
            let mut q: VecDeque<Vec<Program>> = cluster_stages.into();
            let first = q.pop_front().expect("every cluster has at least one stage");
            let mut builder =
                ClusterBuilder::new(cfg.cluster, first).embedded(c as u32, cfg.num_clusters);
            if with_engines {
                builder = builder.shared_dma(timing);
            }
            clusters.push(builder.build());
            queues.push(q);
        }
        let n = clusters.len();
        System {
            cfg,
            clusters,
            stages: queues,
            shared: None,
            cycles: 0,
            cluster_done_at: vec![None; n],
            system_barriers: 0,
            l2_reqs: Vec::new(),
            l2_req_of: vec![None; n],
            stepped: Vec::new(),
            quiet: vec![false; n],
            tracer: Tracer::off(),
            watchdog: None,
            hang_attr_base: vec![Vec::new(); n],
            hang_attr_sig: 0,
            hang_attr_primed: false,
            sched: Scheduler::default(),
        }
    }

    /// Selects how [`System::run`] advances the clock: dense lock-step
    /// (the default) or event-driven fast-forwarding of provably idle
    /// windows. The two modes are cycle-count- and stats-identical;
    /// event mode is purely a host-speed optimisation.
    pub fn set_sched_mode(&mut self, mode: SchedMode) {
        self.sched = Scheduler::new(mode);
    }

    /// The scheduling mode [`System::run`] uses.
    #[must_use]
    pub fn sched_mode(&self) -> SchedMode {
        self.sched.mode()
    }

    /// Subscribes the whole system to a trace sink: cluster `c`'s harts,
    /// DMA engine and TCDM become tracks under process `c + 1`, while
    /// the shared L2's refill/write-back channels and sampled metrics
    /// live under process 0 ([`L2_TRACK`]). Attaching the shared memory
    /// later inherits the subscription.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for (c, cluster) in self.clusters.iter_mut().enumerate() {
            cluster.set_tracer(tracer.clone(), c as u32 + 1);
        }
        if let Some((l2, _)) = self.shared.as_mut() {
            l2.set_tracer(tracer.clone(), L2_TRACK);
        }
        self.tracer = tracer;
    }

    /// Arms the hang watchdog: if no architectural state retires
    /// anywhere in the system for `limit` consecutive cycles while
    /// clusters are unfinished, the run aborts with
    /// [`SystemError::Hang`] naming each blocked resource. The watchdog
    /// watches *global* progress — a single cluster legitimately parked
    /// on an uneven inter-cluster barrier never fires it as long as some
    /// other cluster keeps retiring. Disarmed by default.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn set_watchdog(&mut self, limit: u64) {
        self.watchdog = Some(Watchdog::new(limit));
    }

    /// Appends the hang-diagnosis view of every system resource to
    /// `out`: each unfinished cluster's harts and engine, then the
    /// shared L2's miss-handling state.
    pub fn diagnose(&self, out: &mut Vec<ResourceState>) {
        for (c, cluster) in self.clusters.iter().enumerate() {
            if !self.cluster_finished(c) {
                cluster.diagnose(&format!("cluster{c}"), out);
            }
        }
        if let Some((l2, _)) = self.shared.as_ref() {
            let cache = l2.cache();
            if cache.is_busy() {
                out.push(ResourceState::info(
                    "l2",
                    format!(
                        "{} MSHR(s) in flight, {} prefetch(es) queued",
                        cache.mshr_occupancy(),
                        cache.prefetch_backlog()
                    ),
                ));
            }
        }
    }

    fn check_watchdog(&mut self) -> Option<HangReport> {
        if self.watchdog.is_none() || self.is_done() {
            return None;
        }
        let sig: u64 = self.clusters.iter().map(Cluster::progress_signature).sum();
        if !self.hang_attr_primed || sig != self.hang_attr_sig {
            self.hang_attr_primed = true;
            self.hang_attr_sig = sig;
            self.hang_attr_base = self.clusters.iter().map(Cluster::attr_snapshot).collect();
        }
        let cycle = self.cycles;
        let stuck_for = self.watchdog.as_mut()?.observe(cycle, sig)?;
        let mut resources = Vec::new();
        self.diagnose(&mut resources);
        for (c, cluster) in self.clusters.iter().enumerate() {
            if !self.cluster_finished(c) {
                cluster.diagnose_attr_since(
                    &format!("cluster{c}"),
                    &self.hang_attr_base[c],
                    &mut resources,
                );
            }
        }
        Some(HangReport::new(cycle, stuck_for, resources))
    }

    /// Attaches the shared memory: every cluster gets a DMA engine
    /// moving against `dram` *through* the configured L2 — beats from
    /// different clusters contend at the L2 banks, missing lines refill
    /// over the L2↔Dram channels (where write-back traffic from a
    /// finite L2's dirty evictions contends too). Engines pay the L2's
    /// timing ([`sc_mem::L2Config::engine_timing`]) per transfer/beat.
    #[deprecated(note = "construct the system with `SystemBuilder::dram` instead")]
    pub fn attach_dram(&mut self, dram: Dram) {
        let timing = self.cfg.l2.engine_timing();
        for cluster in &mut self.clusters {
            cluster.attach_shared_dma_engine(timing);
        }
        self.install_shared(dram);
    }

    /// Installs the shared L2 + functional store pair (the clusters'
    /// engines must already be attached).
    fn install_shared(&mut self, dram: Dram) {
        let mut l2 = L2::new(self.cfg.l2, self.cfg.num_clusters);
        if self.tracer.is_on() {
            l2.set_tracer(self.tracer.clone(), L2_TRACK);
        }
        self.shared = Some((l2, dram));
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// One cluster, by index.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cluster(&self, cluster: usize) -> &Cluster {
        &self.clusters[cluster]
    }

    /// Mutable cluster access (test setup: pre-load a cluster's TCDM).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn cluster_mut(&mut self, cluster: usize) -> &mut Cluster {
        &mut self.clusters[cluster]
    }

    /// The shared background memory, when attached.
    #[must_use]
    pub fn dram(&self) -> Option<&Dram> {
        self.shared.as_ref().map(|(_, d)| d)
    }

    /// Mutable shared background-memory access (stage inputs / read
    /// back results).
    pub fn dram_mut(&mut self) -> Option<&mut Dram> {
        self.shared.as_mut().map(|(_, d)| d)
    }

    /// The shared L2, when attached (stats inspection).
    #[must_use]
    pub fn l2(&self) -> Option<&L2> {
        self.shared.as_ref().map(|(l2, _)| l2)
    }

    /// System cycles simulated so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Whether a cluster has halted with no stages left.
    fn cluster_finished(&self, c: usize) -> bool {
        self.clusters[c].is_done() && self.stages[c].is_empty()
    }

    /// Whether every cluster has finished its last stage.
    #[must_use]
    pub fn is_done(&self) -> bool {
        (0..self.clusters.len()).all(|c| self.cluster_finished(c))
    }

    /// Executes one lock-step system cycle.
    ///
    /// # Errors
    ///
    /// The first cluster error, tagged with its cluster index.
    pub fn step(&mut self) -> Result<(), SystemError> {
        let tag = |cluster: usize| {
            move |source| SystemError::Cluster {
                cluster: cluster as u32,
                source,
            }
        };

        // All of this cycle's events carry the cycle number (the
        // clusters re-set the same value in their begin_cycle).
        self.tracer.set_cycle(self.cycles);

        // Clusters that finished their last stage sit the cycle out
        // entirely (their cycle counters freeze, like halted cores in a
        // cluster). Of the rest, clusters whose wake lies strictly in
        // the future — every hart parked, the engine at most counting
        // down — are *locally* skipped this cycle: bulk-advanced by one
        // cycle while the dense subset steps. A quiet cluster cannot
        // emit an L2 beat or a prefetch hint (its engine owes a
        // countdown, its doorbells are silent), so the dense subset's
        // arbitration is unchanged; its watchdog, samples and barrier
        // census are handled below exactly where dense stepping would.
        let mut stepped = std::mem::take(&mut self.stepped);
        stepped.clear();
        stepped.extend((0..self.clusters.len()).filter(|&c| !self.cluster_finished(c)));
        self.stepped = stepped;
        for c in 0..self.clusters.len() {
            self.quiet[c] = false;
        }
        for i in 0..self.stepped.len() {
            let c = self.stepped[i];
            self.quiet[c] = self
                .sched
                .local_quiet(self.cycles, self.clusters[c].next_wake());
        }

        // Half-cycle 1 on every densely stepped cluster, collecting the
        // L2-side beats — and the stride hints rung doorbells published
        // (DMA_START), which reach the shared L2's prefetcher *before*
        // this cycle's arbitration so prefetching can start while the
        // engine still pays its startup latency.
        self.l2_reqs.clear();
        self.l2_req_of.fill(None);
        for i in 0..self.stepped.len() {
            let c = self.stepped[i];
            if self.quiet[c] {
                continue;
            }
            if let Some((addr, kind)) = self.clusters[c].begin_cycle().map_err(tag(c))? {
                self.l2_req_of[c] = Some(self.l2_reqs.len());
                self.l2_reqs.push(L2Request {
                    cluster: c as u32,
                    addr,
                    kind,
                });
            }
            if let Some((l2, _)) = self.shared.as_mut() {
                for mut hint in self.clusters[c].take_prefetch_hints() {
                    hint.requester = c as u32;
                    l2.prefetch_hint(hint);
                }
            }
        }

        // One shared-L2 arbitration pass over all clusters' beats. With
        // no shared memory attached, beats can only come from privately
        // attached engines (Cluster::attach_dma via cluster_mut): those
        // move against their own Dram with nothing shared to arbitrate,
        // so every beat proceeds (the empty grant vector below reads as
        // all-granted).
        let outcomes = match self.shared.as_mut() {
            Some((l2, _)) => {
                l2.begin_cycle();
                l2.arbitrate(&self.l2_reqs)
            }
            None => Vec::new(),
        };

        // Half-cycle 2: each densely stepped cluster resumes with its
        // L2 outcome; a granted beat then contends on the cluster's own
        // TCDM crossbar and moves data against the shared store. A
        // quiet cluster bulk-advances one cycle instead, emitting the
        // sample rows its dense end-of-cycle would have (the loop runs
        // in cluster index order, so rows interleave exactly as dense)
        // and polling its watchdog at the same post-advance cycle a
        // dense step observes.
        for i in 0..self.stepped.len() {
            let c = self.stepped[i];
            if self.quiet[c] {
                self.clusters[c].skip_quiet(1);
                if self.tracer.wants_sample(self.cycles) {
                    self.clusters[c].sample_now();
                }
                if let Some(report) = self.clusters[c].poll_watchdog() {
                    return Err(SystemError::Cluster {
                        cluster: c as u32,
                        source: ClusterError::Hang(report),
                    });
                }
                continue;
            }
            let outcome = match self.l2_req_of[c] {
                Some(r) => outcomes.get(r).copied().unwrap_or(L2Outcome::Granted),
                None => L2Outcome::Granted,
            };
            let dram = self.shared.as_mut().map(|(_, d)| d);
            self.clusters[c].end_cycle(outcome, dram).map_err(tag(c))?;
        }
        if let Some((l2, _)) = self.shared.as_mut() {
            l2.end_cycle();
        }
        if self.tracer.wants_sample(self.cycles) {
            self.sample_l2_now();
        }
        self.cycles += 1;

        // Stage advance + completion bookkeeping — BEFORE the barrier
        // census: a cluster whose cores just halted with another stage
        // queued still has work, so reloading it first makes its harts
        // count as active in the rendezvous below. (Counting them as
        // halted would release a sibling's barrier without them.)
        for i in 0..self.stepped.len() {
            let c = self.stepped[i];
            if self.clusters[c].is_done() {
                if let Some(next) = self.stages[c].pop_front() {
                    self.clusters[c].load_programs(next);
                } else if self.cluster_done_at[c].is_none() {
                    self.cluster_done_at[c] = Some(self.cycles);
                }
            }
        }

        // Inter-cluster barrier rendezvous: release once every active
        // hart of every cluster has arrived.
        let (waiting, active) = self
            .clusters
            .iter()
            .map(Cluster::system_barrier_census)
            .fold((0, 0), |(w, a), (cw, ca)| (w + cw, a + ca));
        if waiting > 0 && waiting == active {
            for cluster in &mut self.clusters {
                cluster.release_system_barrier();
            }
            self.system_barriers += 1;
        }
        if let Some(report) = self.check_watchdog() {
            return Err(SystemError::Hang(report));
        }
        Ok(())
    }

    /// The earliest future cycle at which stepping the system could do
    /// anything a skip cannot reproduce in closed form: the merge of
    /// every unfinished cluster's wake (finished clusters freeze, as in
    /// dense stepping), the earliest armed cluster watchdog's firing
    /// point ([`Cluster::watchdog_skip_cap`] — the run loop re-observes
    /// there, reproducing the dense firing cycle), and the shared L2's
    /// own wake — dense while it has runnable refill/write-back/
    /// prefetch work, a future cycle while its only work is in-flight
    /// channel countdowns ([`L2::next_wake`]). A subscribed tracer does
    /// not pin dense stepping — [`System::skip_idle`] synthesizes the
    /// sampled counter rows dense stepping would have emitted.
    #[must_use]
    pub fn next_wake(&self) -> Wake {
        let mut wake = Wake::Idle;
        for c in 0..self.clusters.len() {
            if self.cluster_finished(c) {
                continue;
            }
            if let Some(cap) = self.clusters[c].watchdog_skip_cap() {
                wake = wake.merge(Wake::At(cap));
            }
            wake = wake.merge(self.clusters[c].next_wake());
        }
        if let Some((l2, _)) = self.shared.as_ref() {
            wake = wake.merge(match l2.next_wake() {
                CacheWake::EveryCycle => Wake::EveryCycle,
                CacheWake::In(n) => Wake::At(self.cycles + n),
                CacheWake::Quiescent => Wake::Idle,
            });
        }
        wake
    }

    /// Bulk-applies `cycles` idle cycles: every unfinished cluster
    /// skips ([`Cluster::skip_quiet`]) and the system clock advances;
    /// finished clusters stay frozen and a quiescent L2 has nothing to
    /// advance. When a tracer with a sampling cadence is subscribed,
    /// the window is split at each cadence point and the carry-forward
    /// sample rows dense stepping would have emitted there are
    /// synthesized in dense order (unfinished clusters in index order,
    /// then the shared L2). Callers must only skip up to the window
    /// [`System::next_wake`] allows.
    pub fn skip_idle(&mut self, cycles: u64) {
        let cadence = self.tracer.sample_cadence();
        if !self.tracer.is_on() || cadence == 0 {
            self.skip_quiet(cycles);
            return;
        }
        // A sample row belongs to this window iff its cycle lies in
        // `[start, end)` — each of those cycles is simulated (by bulk
        // advance) here and nowhere else. Tracking the next owed point
        // explicitly keeps a window re-entered at a cadence point — a
        // watchdog-capped partial skip, a stage boundary — from ever
        // re-emitting a row a dense cycle or an earlier window already
        // produced.
        let end = self.cycles + cycles;
        let mut point = self.cycles.next_multiple_of(cadence);
        while point < end {
            // Dense stepping samples *during* cycle `point`, after the
            // clusters' end-of-cycle bookkeeping: advance through that
            // cycle, then snapshot with the sink's clock rewound to it.
            self.skip_quiet(point - self.cycles + 1);
            self.tracer.set_cycle(point);
            for c in 0..self.clusters.len() {
                if !self.cluster_finished(c) {
                    self.clusters[c].sample_now();
                }
            }
            self.sample_l2_now();
            point += cadence;
        }
        self.skip_quiet(end - self.cycles);
    }

    /// The pure bookkeeping of a skipped window, without sample
    /// synthesis. The shared L2 may carry in-flight channel countdowns
    /// across the window ([`L2::next_wake`] reported how far they
    /// reach); they advance here in closed form.
    fn skip_quiet(&mut self, cycles: u64) {
        for c in 0..self.clusters.len() {
            if !self.cluster_finished(c) {
                self.clusters[c].skip_quiet(cycles);
            }
        }
        if let Some((l2, _)) = self.shared.as_mut() {
            l2.skip(cycles);
        }
        self.cycles += cycles;
    }

    /// Emits the shared L2's sample row set, exactly as the dense loop
    /// does at a sampling point.
    fn sample_l2_now(&self) {
        if let Some((l2, _)) = self.shared.as_ref() {
            let metrics = l2.stats().metric_set(l2.config());
            self.tracer.sample(L2_TRACK, &metrics);
        }
    }

    /// Emits the run-end partial-interval samples — every cluster's
    /// rows, then the shared L2's — when the run's length is not a
    /// multiple of the sampling cadence (see
    /// [`Cluster::sample_final`]).
    fn sample_final(&self) {
        let cadence = self.tracer.sample_cadence();
        if !self.tracer.is_on() || cadence == 0 {
            return;
        }
        if self.cycles > 0 && (self.cycles - 1).is_multiple_of(cadence) {
            return;
        }
        self.tracer.set_cycle(self.cycles);
        for cluster in &self.clusters {
            cluster.sample_now();
        }
        self.sample_l2_now();
    }

    /// Runs until every cluster finishes its last stage, or the cycle
    /// budget is exhausted.
    ///
    /// Under [`SchedMode::Event`] the loop fast-forwards windows where
    /// [`System::next_wake`] is in the future, capping each skip at the
    /// cycle budget and (when armed) the watchdog's next deadline so
    /// [`SystemError::MaxCyclesExceeded`] and [`SystemError::Hang`]
    /// fire at the identical cycle the dense loop reports.
    ///
    /// # Errors
    ///
    /// Cluster errors (tagged) or budget exhaustion — the latter also
    /// covers inter-cluster barrier deadlocks.
    pub fn run(&mut self, max_cycles: u64) -> Result<SystemSummary, SystemError> {
        while !self.is_done() {
            if self.sched.mode() == SchedMode::Event {
                let caps = self
                    .watchdog
                    .as_ref()
                    .map(|w| w.skip_cap(self.cycles))
                    .into_iter()
                    .chain(std::iter::once(max_cycles));
                let skip = self.sched.plan(self.cycles, self.next_wake(), caps);
                if skip > 0 {
                    self.skip_idle(skip);
                    if let Some(report) = self.check_watchdog() {
                        return Err(SystemError::Hang(report));
                    }
                    // Cluster-local watchdogs owe one observation per
                    // window ([`Cluster::poll_watchdog`]); the window
                    // was capped at the earliest firing point
                    // ([`System::next_wake`]), so this reproduces the
                    // dense loop's per-cycle cadence exactly.
                    for c in 0..self.clusters.len() {
                        if !self.cluster_finished(c) {
                            if let Some(report) = self.clusters[c].poll_watchdog() {
                                return Err(SystemError::Cluster {
                                    cluster: c as u32,
                                    source: ClusterError::Hang(report),
                                });
                            }
                        }
                    }
                    continue;
                }
            }
            if self.cycles >= max_cycles {
                return Err(SystemError::MaxCyclesExceeded { max_cycles });
            }
            self.step()?;
        }
        self.sample_final();
        Ok(self.summary())
    }

    /// The system summary as of now (meaningful once [`System::is_done`]).
    ///
    /// # Panics
    ///
    /// Panics when the attribution invariant is violated anywhere in the
    /// system — a simulator bug, never a property of the program under
    /// test (see [`Cluster::summary`]).
    #[must_use]
    pub fn summary(&self) -> SystemSummary {
        let per_cluster: Vec<ClusterSummary> = self.clusters.iter().map(Cluster::summary).collect();
        let mut aggregate = PerfCounters::new();
        let mut attribution = Attribution::new();
        let mut harts: u64 = 0;
        for cs in &per_cluster {
            for core in &cs.per_core {
                aggregate.accumulate(&core.counters);
            }
            attribution.accumulate(&cs.attribution);
            // A finished cluster sits out the rest of the run: its
            // harts' gap to the system's last cycle is done-padding.
            let cluster_harts = cs.per_core.len() as u64;
            attribution.record_n(
                Leaf::Park,
                self.cycles.saturating_sub(cs.cycles) * cluster_harts,
            );
            harts += cluster_harts;
        }
        attribution
            .verify(self.cycles.saturating_mul(harts))
            .expect("system attribution must partition harts x system cycles");
        aggregate.cycles = self.cycles;
        let l2 = self.shared.as_ref().map(|(l2, _)| l2.stats());
        let (l2_refill_beats, l2_writeback_beats, l2_prefetch_beats) = self
            .shared
            .as_ref()
            .zip(l2.as_ref())
            .map_or((0, 0, 0), |((shared_l2, _), stats)| {
                let cfg = shared_l2.config();
                (
                    stats.refill_beats(cfg),
                    stats.writeback_beats(cfg),
                    stats.prefetch_beats(cfg),
                )
            });
        SystemSummary {
            cycles: self.cycles,
            per_cluster,
            aggregate,
            cluster_done_at: self
                .cluster_done_at
                .iter()
                .map(|d| d.unwrap_or(self.cycles))
                .collect(),
            system_barriers: self.system_barriers,
            l2,
            l2_refill_beats,
            l2_writeback_beats,
            l2_prefetch_beats,
            attribution,
        }
    }
}

impl Component for System {
    fn now(&self) -> u64 {
        self.cycles
    }

    fn next_wake(&self) -> Wake {
        System::next_wake(self)
    }

    fn skip(&mut self, cycles: u64) {
        self.skip_idle(cycles);
    }
}

/// Fluent construction of a [`System`], replacing the order-sensitive
/// `System::new` + `attach_dram` + `set_tracer` call sequence: options
/// accumulate in any order and [`SystemBuilder::build`] wires clusters,
/// DMA engines, the shared L2 and the trace subscription in the one
/// correct order.
///
/// ```
/// use sc_isa::ProgramBuilder;
/// use sc_mem::{Dram, DramConfig};
/// use sc_system::{SystemBuilder, SystemConfig};
///
/// let program = || {
///     let mut b = ProgramBuilder::new();
///     b.ecall();
///     b.build().unwrap()
/// };
/// let stages = (0..2).map(|_| vec![vec![program(), program()]]).collect();
/// let system = SystemBuilder::new(SystemConfig::new(2, 2), stages)
///     .dram(Dram::new(DramConfig::new()))
///     .watchdog(10_000)
///     .build();
/// assert!(system.l2().is_some());
/// ```
#[derive(Debug)]
pub struct SystemBuilder {
    cfg: SystemConfig,
    stages: Vec<Vec<Vec<Program>>>,
    dram: Option<Dram>,
    watchdog: Option<u64>,
    sched: SchedMode,
    tracer: Option<Tracer>,
    lint_strict: bool,
}

impl SystemBuilder {
    /// Starts a builder for a system running `stages[c]` on cluster `c`
    /// (a non-empty sequence of program sets, one program per core
    /// each).
    #[must_use]
    pub fn new(cfg: SystemConfig, stages: Vec<Vec<Vec<Program>>>) -> Self {
        SystemBuilder {
            cfg,
            stages,
            dram: None,
            watchdog: None,
            sched: SchedMode::Dense,
            tracer: None,
            lint_strict: false,
        }
    }

    /// Refuses to build a system when the static verifier (`sc-lint`)
    /// diagnoses any cluster's program set — the loaded stage *or* any
    /// queued tile stage — with error-severity findings. Warning-tier
    /// findings still build; they stay visible through each cluster's
    /// [`Cluster::lint_report`] and in hang diagnoses.
    #[must_use]
    pub fn lint_strict(mut self) -> Self {
        self.lint_strict = true;
        self
    }

    /// Attaches the shared memory: every cluster gets a DMA engine
    /// moving against `dram` through the configured L2, paying the L2's
    /// timing ([`sc_mem::L2Config::engine_timing`]) per transfer/beat.
    #[must_use]
    pub fn dram(mut self, dram: Dram) -> Self {
        self.dram = Some(dram);
        self
    }

    /// Arms the system-wide hang watchdog with `limit` progress-free
    /// cycles.
    #[must_use]
    pub fn watchdog(mut self, limit: u64) -> Self {
        self.watchdog = Some(limit);
        self
    }

    /// Selects dense or event-driven clock advancement for
    /// [`System::run`].
    #[must_use]
    pub fn sched_mode(mut self, mode: SchedMode) -> Self {
        self.sched = mode;
        self
    }

    /// Subscribes the whole system to a trace sink (clusters under
    /// processes `c + 1`, the shared L2 under [`L2_TRACK`]).
    #[must_use]
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Builds the system, applying the accumulated options in wiring
    /// order.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration: a stage list count that does
    /// not match the cluster count, an empty stage list, a program
    /// count that does not match the core count, a zero watchdog
    /// limit, or — with [`SystemBuilder::lint_strict`] — programs the
    /// static verifier diagnoses with errors.
    #[must_use]
    pub fn build(self) -> System {
        match self.try_build() {
            Ok(system) => system,
            Err(err) => panic!("{err}"),
        }
    }

    /// Builds the system like [`SystemBuilder::build`], but returns an
    /// error instead of panicking when [`SystemBuilder::lint_strict`]
    /// was requested and the verifier found errors.
    ///
    /// # Errors
    ///
    /// [`SystemError::Cluster`] wrapping [`ClusterError::Lint`] with
    /// the full report for the first refused cluster.
    ///
    /// # Panics
    ///
    /// Same structural panics as [`SystemBuilder::build`] (stage/core
    /// count mismatches, zero watchdog limit).
    pub fn try_build(self) -> Result<System, SystemError> {
        let lint_strict = self.lint_strict;
        let mut system = System::assemble(self.cfg, self.stages, self.dram.is_some());
        if lint_strict {
            let lint_cfg = lint_config(&system.cfg.cluster);
            for (c, cluster) in system.clusters.iter().enumerate() {
                // The loaded stage was linted by the cluster itself;
                // queued tile stages are linted with the same
                // hardware-derived model before they ever load.
                let mut report = cluster.lint_report().clone();
                for programs in &system.stages[c] {
                    report.merge(lint_harts(programs, &lint_cfg));
                }
                if report.has_errors() {
                    return Err(SystemError::Cluster {
                        cluster: c as u32,
                        source: ClusterError::Lint(report),
                    });
                }
            }
        }
        if let Some(dram) = self.dram {
            system.install_shared(dram);
        }
        if let Some(tracer) = self.tracer {
            system.set_tracer(tracer);
        }
        if let Some(limit) = self.watchdog {
            system.set_watchdog(limit);
        }
        system.set_sched_mode(self.sched);
        Ok(system)
    }
}
