//! The buffering sink and its exporters.
//!
//! [`MemorySink`] coalesces the event stream as it arrives — state
//! labels into closed spans, unchanged counter values dropped — so a
//! long run buffers transitions, not cycles. [`TraceSession`] owns the
//! sink, hands out [`Tracer`] handles, and renders the buffer as
//! Chrome/Perfetto trace-event JSON (`{"traceEvents": [...]}` with
//! `ph: "M"/"X"/"i"/"C"` entries, `ts` = cycle number) or as a CSV
//! metric time-series.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::{TraceConfig, TraceEvent, TraceSink, Tracer, Track};

/// A closed (or state-coalesced) span.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Span {
    track: Track,
    name: String,
    start: u64,
    end: u64,
}

/// One interval-sampled metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SampleRow {
    cycle: u64,
    track: Track,
    source: String,
    name: String,
    value: u64,
}

/// The buffering [`TraceSink`]: coalesces on arrival, exports on demand.
#[derive(Debug, Default)]
pub struct MemorySink {
    cycle: u64,
    /// Per-track current state label and its start cycle.
    state_open: BTreeMap<Track, (String, u64)>,
    /// Per-track stack of open explicit spans.
    spans_open: BTreeMap<Track, Vec<(String, u64)>>,
    spans: Vec<Span>,
    instants: Vec<(Track, String, u64)>,
    /// `(track, name, cycle, value)` — only changes are kept.
    counters: Vec<(Track, String, u64, u64)>,
    counter_last: BTreeMap<(Track, String), u64>,
    process_names: BTreeMap<u32, String>,
    thread_names: BTreeMap<Track, String>,
    samples: Vec<SampleRow>,
}

impl MemorySink {
    /// An empty sink at cycle 0.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Closes every open state span and explicit span at the current
    /// cycle + 1 (so an activity in flight at the end of the run is
    /// still visible). Idempotent.
    fn flush(&mut self) {
        let end = self.cycle + 1;
        let open = std::mem::take(&mut self.state_open);
        for (track, (label, start)) in open {
            self.spans.push(Span {
                track,
                name: label,
                start,
                end: end.max(start + 1),
            });
        }
        let open = std::mem::take(&mut self.spans_open);
        for (track, stack) in open {
            for (name, start) in stack.into_iter().rev() {
                self.spans.push(Span {
                    track,
                    name,
                    start,
                    end: end.max(start + 1),
                });
            }
        }
    }

    /// Events buffered so far (spans + instants + counter changes) —
    /// a cheap size probe for overhead tests.
    #[must_use]
    pub fn events_buffered(&self) -> usize {
        self.spans.len() + self.instants.len() + self.counters.len()
    }
}

impl TraceSink for MemorySink {
    fn set_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    fn record(&mut self, event: TraceEvent<'_>) {
        match event {
            TraceEvent::State { track, label } => {
                if let Some((open, _)) = self.state_open.get(&track) {
                    if open == label {
                        return;
                    }
                    let (name, start) = self.state_open.remove(&track).expect("present");
                    self.spans.push(Span {
                        track,
                        name,
                        start,
                        end: self.cycle.max(start + 1),
                    });
                }
                if label != "idle" {
                    self.state_open
                        .insert(track, (label.to_string(), self.cycle));
                }
            }
            TraceEvent::SpanBegin { track, name } => {
                self.spans_open
                    .entry(track)
                    .or_default()
                    .push((name.to_string(), self.cycle));
            }
            TraceEvent::SpanEnd { track } => {
                if let Some((name, start)) = self.spans_open.entry(track).or_default().pop() {
                    self.spans.push(Span {
                        track,
                        name,
                        start,
                        end: self.cycle.max(start + 1),
                    });
                }
            }
            TraceEvent::Instant { track, name } => {
                self.instants.push((track, name.to_string(), self.cycle));
            }
            TraceEvent::Counter { track, name, value } => {
                let key = (track, name.to_string());
                if self.counter_last.get(&key) == Some(&value) {
                    return;
                }
                self.counter_last.insert(key, value);
                self.counters
                    .push((track, name.to_string(), self.cycle, value));
            }
            TraceEvent::NameProcess { pid, name } => {
                self.process_names.insert(pid, name.to_string());
            }
            TraceEvent::NameThread { track, name } => {
                self.thread_names.insert(track, name.to_string());
            }
            TraceEvent::Sample {
                track,
                source,
                name,
                value,
            } => {
                self.samples.push(SampleRow {
                    cycle: self.cycle,
                    track,
                    source: source.to_string(),
                    name: name.to_string(),
                    value,
                });
            }
        }
    }
}

/// Owns a [`MemorySink`], hands out subscribed [`Tracer`] handles, and
/// exports the collected timeline/time-series.
pub struct TraceSession {
    sink: Arc<Mutex<MemorySink>>,
    cfg: TraceConfig,
}

impl TraceSession {
    /// A fresh session with the given knobs.
    #[must_use]
    pub fn new(cfg: TraceConfig) -> Self {
        TraceSession {
            sink: Arc::new(Mutex::new(MemorySink::new())),
            cfg,
        }
    }

    /// A [`Tracer`] handle feeding this session's sink.
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        Tracer::to_sink(self.sink.clone(), self.cfg.sample_every)
    }

    /// Events buffered so far (see [`MemorySink::events_buffered`]).
    #[must_use]
    pub fn events_buffered(&self) -> usize {
        self.sink
            .lock()
            .expect("trace sink poisoned")
            .events_buffered()
    }

    /// Renders the timeline as Chrome/Perfetto trace-event JSON
    /// (`ts`/`dur` are simulated cycles). Closes any still-open spans
    /// first, so call it after the run.
    #[must_use]
    pub fn perfetto_json(&self) -> String {
        let mut sink = self.sink.lock().expect("trace sink poisoned");
        sink.flush();
        // Metadata first, then timed events sorted by start cycle
        // (stable, so same-cycle events keep emission order).
        let mut meta = Vec::new();
        for (pid, name) in &sink.process_names {
            meta.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ));
        }
        for (track, name) in &sink.thread_names {
            meta.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                track.pid,
                track.tid,
                escape(name)
            ));
        }
        let mut timed: Vec<(u64, String)> = Vec::new();
        for s in &sink.spans {
            timed.push((
                s.start,
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{},\"tid\":{}}}",
                    escape(&s.name),
                    s.start,
                    s.end - s.start,
                    s.track.pid,
                    s.track.tid
                ),
            ));
        }
        for (track, name, cycle) in &sink.instants {
            timed.push((
                *cycle,
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{cycle},\"s\":\"t\",\
                     \"pid\":{},\"tid\":{}}}",
                    escape(name),
                    track.pid,
                    track.tid
                ),
            ));
        }
        for (track, name, cycle, value) in &sink.counters {
            timed.push((
                *cycle,
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{cycle},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"value\":{value}}}}}",
                    escape(name),
                    track.pid,
                    track.tid
                ),
            ));
        }
        timed.sort_by_key(|(ts, _)| *ts);
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for entry in meta.iter().chain(timed.iter().map(|(_, e)| e)) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(entry);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders the sampled metric time-series as CSV
    /// (`cycle,pid,tid,source,metric,value` rows in sample order).
    #[must_use]
    pub fn samples_csv(&self) -> String {
        let sink = self.sink.lock().expect("trace sink poisoned");
        let mut out = String::from("cycle,pid,tid,source,metric,value\n");
        for r in &sink.samples {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                r.cycle, r.track.pid, r.track.tid, r.source, r.name, r.value
            );
        }
        out
    }
}

impl std::fmt::Debug for TraceSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSession")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

/// Minimal JSON string escaping (the names we emit are plain ASCII, but
/// stay correct for anything).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricSource;

    struct Fake;
    impl MetricSource for Fake {
        fn source_name(&self) -> &'static str {
            "fake"
        }
        fn visit_metrics(&self, visit: &mut dyn FnMut(&'static str, u64)) {
            visit("a", 1);
            visit("b", 2);
        }
    }

    #[test]
    fn states_coalesce_into_spans_and_idle_closes() {
        let session = TraceSession::new(TraceConfig::new());
        let t = session.tracer();
        let row = Track::new(1, 0);
        for cycle in 0..10u64 {
            t.set_cycle(cycle);
            let label = if cycle < 4 {
                "busy"
            } else if cycle < 6 {
                "idle"
            } else {
                "raw"
            };
            t.state(row, label);
        }
        let json = session.perfetto_json();
        // One "busy" span of 4 cycles, one "raw" span; no "idle" span.
        assert!(json.contains("\"name\":\"busy\",\"ph\":\"X\",\"ts\":0,\"dur\":4"));
        assert!(json.contains("\"name\":\"raw\",\"ph\":\"X\",\"ts\":6"));
        assert!(!json.contains("\"name\":\"idle\""));
    }

    #[test]
    fn counters_dedup_unchanged_values() {
        let session = TraceSession::new(TraceConfig::new());
        let t = session.tracer();
        let row = Track::new(0, 0);
        for cycle in 0..100u64 {
            t.set_cycle(cycle);
            t.counter(row, "depth", if cycle < 50 { 3 } else { 4 });
        }
        assert_eq!(session.events_buffered(), 2, "one event per change");
    }

    #[test]
    fn explicit_spans_nest_and_flush() {
        let session = TraceSession::new(TraceConfig::new());
        let t = session.tracer();
        let row = Track::new(0, 7);
        t.set_cycle(10);
        t.begin(row, "burst");
        t.set_cycle(25);
        t.end(row);
        t.set_cycle(30);
        t.begin(row, "open-at-exit");
        let json = session.perfetto_json();
        assert!(json.contains("\"name\":\"burst\",\"ph\":\"X\",\"ts\":10,\"dur\":15"));
        assert!(json.contains("\"name\":\"open-at-exit\""));
    }

    #[test]
    fn metadata_names_render_first() {
        let session = TraceSession::new(TraceConfig::new());
        let t = session.tracer();
        t.name_process(1, "cluster0");
        t.name_thread(Track::new(1, 0), "core0");
        t.instant(Track::new(1, 0), "mark");
        let json = session.perfetto_json();
        let meta_at = json.find("process_name").expect("metadata present");
        let mark_at = json.find("\"mark\"").expect("instant present");
        assert!(meta_at < mark_at);
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn samples_export_as_csv_rows() {
        let session = TraceSession::new(TraceConfig::new().with_sample_every(10));
        let t = session.tracer();
        t.set_cycle(10);
        t.sample(Track::new(2, 1), &Fake);
        let csv = session.samples_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("cycle,pid,tid,source,metric,value"));
        assert_eq!(lines.next(), Some("10,2,1,fake,a,1"));
        assert_eq!(lines.next(), Some("10,2,1,fake,b,2"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
    }
}
