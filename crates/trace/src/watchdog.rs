//! The hang watchdog: progress-signature freeze detection plus the
//! diagnostic snapshot types the run loops assemble when it fires.

/// Detects frozen progress. The owning run loop feeds [`Watchdog::observe`]
/// a *progress signature* every cycle — any monotone sum of
/// retirement-ish counters (instructions retired, FP issues, DMA beats,
/// barriers released, lines refilled). If the signature does not change
/// for `limit` consecutive cycles while harts are unfinished, the
/// machine is wedged: nothing that could ever unblock it can happen
/// without moving one of those counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    limit: u64,
    last_sig: u64,
    last_change: u64,
    primed: bool,
}

impl Watchdog {
    /// A watchdog firing after `limit` progress-free cycles.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero (every cycle would "hang").
    #[must_use]
    pub fn new(limit: u64) -> Self {
        assert!(limit > 0, "a zero-cycle watchdog would always fire");
        Watchdog {
            limit,
            last_sig: 0,
            last_change: 0,
            primed: false,
        }
    }

    /// The configured limit.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Feeds one cycle's signature; returns `Some(stuck_for)` when the
    /// signature has been frozen for at least the limit.
    pub fn observe(&mut self, cycle: u64, signature: u64) -> Option<u64> {
        if !self.primed || signature != self.last_sig {
            self.primed = true;
            self.last_sig = signature;
            self.last_change = cycle;
            return None;
        }
        let stuck_for = cycle.saturating_sub(self.last_change);
        (stuck_for >= self.limit).then_some(stuck_for)
    }

    /// The largest idle window an event-driven run loop may fast-forward
    /// from `now` without overshooting this watchdog's next possible
    /// deadline: a skipped window counts as its true cycle span, and the
    /// run loop observes once after the skip, so capping the skip at
    /// `last_change + limit` reproduces the dense loop's firing cycle
    /// and `stuck_for` exactly. An unprimed watchdog (no observation
    /// yet) allows only a single cycle — a dense loop would prime it at
    /// the next observation.
    #[must_use]
    pub fn skip_cap(&self, now: u64) -> u64 {
        if !self.primed {
            return now + 1;
        }
        (self.last_change + self.limit).max(now + 1)
    }
}

/// One resource's state in a [`HangReport`] — a FIFO, a barrier, an MSHR
/// file, a DMA doorbell...
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceState {
    /// Hierarchical name, e.g. `"cluster0.core1.fp.chain.f4"`.
    pub path: String,
    /// Human-readable state, e.g. `"full (valid, 2 producers held)"`.
    pub state: String,
    /// Whether this resource is (part of) what blocks progress.
    pub blocked: bool,
}

impl ResourceState {
    /// A non-blocking informational entry.
    #[must_use]
    pub fn info(path: impl Into<String>, state: impl Into<String>) -> Self {
        ResourceState {
            path: path.into(),
            state: state.into(),
            blocked: false,
        }
    }

    /// A blocking entry.
    #[must_use]
    pub fn blocked(path: impl Into<String>, state: impl Into<String>) -> Self {
        ResourceState {
            path: path.into(),
            state: state.into(),
            blocked: true,
        }
    }
}

/// The diagnostic snapshot a fired watchdog produces instead of letting
/// the run spin to its cycle budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Cycles the progress signature had been frozen.
    pub stuck_for: u64,
    /// Every inspected resource, blocked ones first.
    pub resources: Vec<ResourceState>,
}

impl HangReport {
    /// Assembles a report, sorting blocked resources to the front
    /// (stable within each group).
    #[must_use]
    pub fn new(cycle: u64, stuck_for: u64, mut resources: Vec<ResourceState>) -> Self {
        resources.sort_by_key(|r| !r.blocked);
        HangReport {
            cycle,
            stuck_for,
            resources,
        }
    }

    /// The blocked resources only.
    pub fn blocked(&self) -> impl Iterator<Item = &ResourceState> {
        self.resources.iter().filter(|r| r.blocked)
    }

    /// Whether any resource path or state mentions `needle` (test/triage
    /// convenience).
    #[must_use]
    pub fn mentions(&self, needle: &str) -> bool {
        self.resources
            .iter()
            .any(|r| r.path.contains(needle) || r.state.contains(needle))
    }
}

impl std::fmt::Display for HangReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "hang detected at cycle {}: no architectural progress for {} cycles",
            self.cycle, self.stuck_for
        )?;
        for r in &self.resources {
            writeln!(
                f,
                "  [{}] {}: {}",
                if r.blocked { "BLOCKED" } else { "  ok   " },
                r.path,
                r.state
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_fires_only_after_a_frozen_limit() {
        let mut w = Watchdog::new(10);
        // Progress every cycle: never fires.
        for c in 0..100u64 {
            assert_eq!(w.observe(c, c), None);
        }
        // Freeze: the last change was at cycle 99, so the 10-cycle
        // limit is reached at cycle 109.
        for c in 100..109u64 {
            assert_eq!(w.observe(c, 99), None, "cycle {c}");
        }
        assert_eq!(w.observe(109, 99), Some(10));
        // Progress resets it.
        assert_eq!(w.observe(110, 100), None);
        assert_eq!(w.observe(111, 100), None);
    }

    #[test]
    fn skip_cap_reproduces_the_dense_firing_cycle() {
        let mut w = Watchdog::new(10);
        // Unprimed: only one cycle may be skipped (the dense loop would
        // prime at its very next observation).
        assert_eq!(w.skip_cap(0), 1);
        assert_eq!(w.observe(99, 5), None);
        // Frozen since cycle 99: the deadline is cycle 109, however far
        // the idle window could otherwise stretch.
        assert_eq!(w.skip_cap(100), 109);
        assert_eq!(w.skip_cap(108), 109);
        // Skipping to the cap and observing fires with the same
        // stuck_for the dense loop reports.
        for c in 100..109u64 {
            assert_eq!(w.observe(c, 5), None);
        }
        assert_eq!(w.skip_cap(109), 110, "never caps below now + 1");
        assert_eq!(w.observe(109, 5), Some(10));
    }

    #[test]
    fn report_sorts_blocked_first_and_finds_needles() {
        let report = HangReport::new(
            500,
            100,
            vec![
                ResourceState::info("cluster0.core0", "halted"),
                ResourceState::blocked("cluster0.core1.fp.chain.f4", "full"),
            ],
        );
        assert!(report.resources[0].blocked);
        assert_eq!(report.blocked().count(), 1);
        assert!(report.mentions("chain.f4"));
        assert!(!report.mentions("mshr"));
        let text = report.to_string();
        assert!(text.contains("BLOCKED"));
        assert!(text.contains("no architectural progress for 100 cycles"));
    }

    #[test]
    #[should_panic(expected = "zero-cycle")]
    fn zero_limit_is_rejected() {
        let _ = Watchdog::new(0);
    }
}
