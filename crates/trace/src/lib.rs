//! The simulator's observability bus: timeline events, interval metric
//! sampling and a hang watchdog — all strictly observation-only.
//!
//! Every cycle-stepped component (core, DMA engine, cache, cluster,
//! system) holds a cheap [`Tracer`] handle. With no subscriber attached
//! (the default) every emit is a single `Option` check and the simulated
//! machine is cycle-for-cycle identical to an untraced build — pinned by
//! the differential tests in `sc-kernels`. With a [`TraceSession`]
//! subscribed, components emit typed [`TraceEvent`]s through the
//! [`TraceSink`] trait into an in-memory buffer that exports:
//!
//! * a **Chrome/Perfetto trace-event JSON** timeline (`ph: "X"/"i"/"C"`
//!   events over `pid`/`tid` tracks — one process per cluster, one
//!   thread per core, plus DMA-engine and L2-channel tracks), loadable
//!   at `ui.perfetto.dev`;
//! * a **CSV time-series** of every registered [`MetricSource`]'s
//!   counters, snapshotted every [`TraceConfig::sample_every`] cycles.
//!
//! The third face is the [`Watchdog`]: the cluster/system run loops feed
//! it a *progress signature* (a sum of retirement-ish counters) each
//! cycle, and when the signature freezes for longer than the configured
//! limit while harts are unfinished, they assemble a [`HangReport`]
//! naming each blocked resource instead of spinning to `max_cycles`.

#![forbid(unsafe_code)]

mod sink;
mod watchdog;

pub use sink::{MemorySink, TraceSession};
pub use watchdog::{HangReport, ResourceState, Watchdog};

use std::sync::{Arc, Mutex};

/// A timeline row: Perfetto's `(pid, tid)` pair. By convention pid 0 is
/// the shared (system/L2) level and pid `c + 1` is cluster `c`; tids
/// number harts, with high tids for non-core engines (DMA, channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Perfetto process id (track group).
    pub pid: u32,
    /// Perfetto thread id (row within the group).
    pub tid: u32,
}

impl Track {
    /// A track at `(pid, tid)`.
    #[must_use]
    pub const fn new(pid: u32, tid: u32) -> Self {
        Track { pid, tid }
    }
}

/// One typed observability event, emitted at the sink's current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent<'a> {
    /// What `track` is doing from this cycle until its next `State`.
    /// Consecutive identical labels coalesce into one span; the label
    /// `"idle"` closes the current span without opening a new one.
    State {
        /// The row whose activity changes.
        track: Track,
        /// Activity label (e.g. `"fp-issue"`, a stall cause).
        label: &'a str,
    },
    /// Opens a nested span on `track` (e.g. a DMA burst, a refill job).
    SpanBegin {
        /// The row the span lives on.
        track: Track,
        /// Span name.
        name: &'a str,
    },
    /// Closes the innermost open span on `track`.
    SpanEnd {
        /// The row whose span ends.
        track: Track,
    },
    /// A point-in-time marker (doorbell rung, prefetch hit, barrier).
    Instant {
        /// The row the marker sits on.
        track: Track,
        /// Marker name.
        name: &'a str,
    },
    /// A counter track sample; unchanged values are deduplicated.
    Counter {
        /// The row the counter renders under.
        track: Track,
        /// Counter name.
        name: &'a str,
        /// Current value.
        value: u64,
    },
    /// Names the process (track group) `pid`.
    NameProcess {
        /// The group to name.
        pid: u32,
        /// Display name.
        name: &'a str,
    },
    /// Names the thread (row) at `track`.
    NameThread {
        /// The row to name.
        track: Track,
        /// Display name.
        name: &'a str,
    },
    /// One interval-sampled metric value (goes to the CSV time-series,
    /// not the timeline).
    Sample {
        /// The row whose component was sampled.
        track: Track,
        /// The [`MetricSource::source_name`] of the sampled stats.
        source: &'a str,
        /// Metric name within the source.
        name: &'a str,
        /// Value at the sample cycle.
        value: u64,
    },
}

/// Receives the event stream. The shipped implementations are
/// [`MemorySink`] (buffers and exports) and [`NullSink`] — whose empty
/// inlined methods compile away entirely, the zero-cost baseline the
/// disabled [`Tracer`] handle also hits via its `None` fast path.
pub trait TraceSink: Send {
    /// Advances the sink's notion of "now" (called once per simulated
    /// cycle by whoever owns the step loop).
    fn set_cycle(&mut self, cycle: u64);
    /// Records one event at the current cycle.
    fn record(&mut self, event: TraceEvent<'_>);
}

/// The no-op sink: tracing compiled away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn set_cycle(&mut self, _cycle: u64) {}
    #[inline(always)]
    fn record(&mut self, _event: TraceEvent<'_>) {}
}

/// Uniform name/value iteration over a stats struct, so sampling,
/// serialization and required-metric discovery all walk the same list
/// instead of hand-maintaining field plumbing in three places.
pub trait MetricSource {
    /// A short stable identifier for the struct (e.g. `"core"`, `"l2"`).
    fn source_name(&self) -> &'static str;
    /// Visits every `(metric name, current value)` pair in a stable
    /// order.
    fn visit_metrics(&self, visit: &mut dyn FnMut(&'static str, u64));
}

/// Knobs of a [`TraceSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Snapshot every registered [`MetricSource`] each time the cycle
    /// count crosses a multiple of this; **0 disables sampling**.
    pub sample_every: u64,
}

impl TraceConfig {
    /// Timeline events on, metric sampling every 1024 cycles.
    #[must_use]
    pub fn new() -> Self {
        TraceConfig { sample_every: 1024 }
    }

    /// Sets the sampling interval (0 = timeline events only).
    #[must_use]
    pub fn with_sample_every(mut self, sample_every: u64) -> Self {
        self.sample_every = sample_every;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The cheap, cloneable handle components emit through. `Default` is
/// **off**: every method is an inlined `None` check, so an untraced run
/// pays one predictable branch per emit site and nothing else.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
    sample_every: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("subscribed", &self.sink.is_some())
            .field("sample_every", &self.sample_every)
            .finish()
    }
}

impl Tracer {
    /// The disabled handle (same as `Default`).
    #[must_use]
    pub fn off() -> Self {
        Tracer::default()
    }

    /// A handle feeding `sink`, sampling every `sample_every` cycles
    /// (0 = never). [`TraceSession::tracer`] is the usual constructor.
    #[must_use]
    pub fn to_sink(sink: Arc<Mutex<dyn TraceSink>>, sample_every: u64) -> Self {
        Tracer {
            sink: Some(sink),
            sample_every,
        }
    }

    /// Whether a sink is subscribed.
    #[inline]
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Advances the sink's cycle (owned by the outermost step loop —
    /// exactly one caller per simulated cycle).
    #[inline]
    pub fn set_cycle(&self, cycle: u64) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("trace sink poisoned").set_cycle(cycle);
        }
    }

    /// Emits one event (no-op when off).
    #[inline]
    pub fn emit(&self, event: TraceEvent<'_>) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("trace sink poisoned").record(event);
        }
    }

    /// Emits a [`TraceEvent::State`].
    #[inline]
    pub fn state(&self, track: Track, label: &str) {
        self.emit(TraceEvent::State { track, label });
    }

    /// Emits a [`TraceEvent::SpanBegin`].
    #[inline]
    pub fn begin(&self, track: Track, name: &str) {
        self.emit(TraceEvent::SpanBegin { track, name });
    }

    /// Emits a [`TraceEvent::SpanEnd`].
    #[inline]
    pub fn end(&self, track: Track) {
        self.emit(TraceEvent::SpanEnd { track });
    }

    /// Emits a [`TraceEvent::Instant`].
    #[inline]
    pub fn instant(&self, track: Track, name: &str) {
        self.emit(TraceEvent::Instant { track, name });
    }

    /// Emits a [`TraceEvent::Counter`].
    #[inline]
    pub fn counter(&self, track: Track, name: &str, value: u64) {
        self.emit(TraceEvent::Counter { track, name, value });
    }

    /// Names a process (track group).
    #[inline]
    pub fn name_process(&self, pid: u32, name: &str) {
        self.emit(TraceEvent::NameProcess { pid, name });
    }

    /// Names a thread (row).
    #[inline]
    pub fn name_thread(&self, track: Track, name: &str) {
        self.emit(TraceEvent::NameThread { track, name });
    }

    /// The configured sampling cadence in cycles (0 = sampling
    /// disabled). Event-driven owners use this to synthesize the
    /// carry-forward sample rows a skipped window would have produced
    /// under dense stepping, at exactly the dense cadence points.
    #[inline]
    #[must_use]
    pub fn sample_cadence(&self) -> u64 {
        self.sample_every
    }

    /// Whether `cycle` is a sampling point (off handles never sample).
    #[inline]
    #[must_use]
    pub fn wants_sample(&self, cycle: u64) -> bool {
        self.sink.is_some() && self.sample_every > 0 && cycle.is_multiple_of(self.sample_every)
    }

    /// Snapshots every metric of `source` into the time-series, under
    /// `track`.
    pub fn sample(&self, track: Track, source: &dyn MetricSource) {
        let Some(sink) = &self.sink else {
            return;
        };
        let mut sink = sink.lock().expect("trace sink poisoned");
        let source_name = source.source_name();
        source.visit_metrics(&mut |name, value| {
            sink.record(TraceEvent::Sample {
                track,
                source: source_name,
                name,
                value,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tracer_is_off_and_inert() {
        let t = Tracer::default();
        assert!(!t.is_on());
        assert!(!t.wants_sample(0));
        // Every emit path is a no-op.
        t.set_cycle(7);
        t.state(Track::new(0, 0), "busy");
        t.counter(Track::new(0, 0), "depth", 3);
        t.instant(Track::new(0, 0), "mark");
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.set_cycle(1);
        s.record(TraceEvent::Instant {
            track: Track::new(0, 0),
            name: "x",
        });
    }

    #[test]
    fn sampling_interval_gates_wants_sample() {
        let session = TraceSession::new(TraceConfig::new().with_sample_every(100));
        let t = session.tracer();
        assert!(t.is_on());
        assert!(t.wants_sample(0));
        assert!(!t.wants_sample(99));
        assert!(t.wants_sample(200));
        let none = TraceSession::new(TraceConfig::new().with_sample_every(0));
        assert!(!none.tracer().wants_sample(0));
    }
}
