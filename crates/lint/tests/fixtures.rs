//! Negative-fixture suite: each seeded-bug program must trip exactly
//! its rule, and a representative set of *correct* protocol idioms must
//! stay clean — the same zero-false-negative / zero-false-positive
//! contract the `lint_sweep` CI bin enforces over the full baseline
//! kernel set.

use sc_isa::{csr, FpReg, IntReg, ProgramBuilder};
use sc_lint::{fixtures, lint_harts, lint_program, LintConfig, Rule, Severity};

fn t(i: u8) -> IntReg {
    IntReg::new(i)
}

fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

#[test]
fn every_fixture_trips_exactly_its_rule() {
    for (name, rule_id, programs) in fixtures::expectations() {
        let report = lint_harts(&programs, &LintConfig::new());
        assert!(!report.is_clean(), "fixture {name} produced no diagnostics");
        for d in report.iter() {
            assert_eq!(
                d.rule.id(),
                rule_id,
                "fixture {name} tripped {} instead of {rule_id}: {d}",
                d.rule
            );
        }
    }
}

#[test]
fn fifo_wedge_is_the_drain_dependent_warning() {
    // Five back-to-back pushes = capacity + held writeback: legal on
    // cores with the issue-stage drain, a wedge without it — warning
    // severity, not error.
    let report = lint_program(&fixtures::fifo_wedge(16), &LintConfig::new());
    let d = report.iter().next().expect("one finding");
    assert_eq!(d.rule, Rule::FifoBalance);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("drain"), "{d}");
}

#[test]
fn fifo_overflow_is_an_error_even_with_the_drain() {
    let report = lint_program(&fixtures::fifo_overflow(), &LintConfig::new());
    assert!(
        report
            .iter()
            .any(|d| d.rule == Rule::FifoBalance && d.severity == Severity::Error),
        "{report}"
    );
}

#[test]
fn unbalanced_loop_is_caught_by_occupancy_drift() {
    let report = lint_program(&fixtures::fifo_unbalanced_loop(), &LintConfig::new());
    assert!(
        report.iter().any(|d| d.rule == Rule::FifoBalance
            && d.severity == Severity::Error
            && d.message.contains("per iteration")),
        "{report}"
    );
}

#[test]
fn wider_fifo_capacity_clears_the_wedge_warning() {
    // The depth-ablation path: the same burst on deeper hardware is
    // clean, so the capacity must be configurable.
    let report = lint_program(
        &fixtures::fifo_wedge(16),
        &LintConfig::new().with_fifo_capacity(8),
    );
    assert!(report.is_clean(), "{report}");
}

#[test]
fn balanced_chained_kernel_is_clean() {
    // The paper's idiom: pushes and pops balanced within each frep
    // iteration, mask cleared after the FIFO drains.
    let mut b = ProgramBuilder::new();
    b.li(t(10), 0x400);
    b.fld(f(1), t(10), 0);
    b.fld(f(2), t(10), 8);
    b.li(t(5), f(3).chain_mask_bit() as i32);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t(5));
    b.li(t(11), 63); // 64 frep iterations
    b.frep_outer(t(11), |b| {
        for _ in 0..4 {
            b.fadd_d(f(3), f(1), f(2));
        }
        for i in 0..4u8 {
            b.fmul_d(f(8 + i), f(3), f(2));
        }
    });
    b.csrrw(IntReg::ZERO, csr::CHAIN_MASK, IntReg::ZERO);
    b.ecall();
    let report = lint_program(&b.build().unwrap(), &LintConfig::new());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn frep_with_unknown_trip_and_net_drift_is_flagged() {
    // Trip count comes from a CSR read (statically unknown); a block
    // that nets +1 push per iteration cannot be balanced for any trip.
    let mut b = ProgramBuilder::new();
    b.li(t(5), f(3).chain_mask_bit() as i32);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t(5));
    b.csrrs(t(11), csr::MCYCLE, IntReg::ZERO);
    b.frep_outer(t(11), |b| {
        b.fadd_d(f(3), f(1), f(2));
    });
    b.ecall();
    let report = lint_program(&b.build().unwrap(), &LintConfig::new());
    assert!(
        report
            .iter()
            .any(|d| d.rule == Rule::FifoBalance && d.message.contains("unknown trip")),
        "{report}"
    );
}

#[test]
fn matching_barrier_sequences_are_clean() {
    let hart = || {
        let mut b = ProgramBuilder::new();
        b.csrrwi(IntReg::ZERO, csr::CLUSTER_BARRIER, 0);
        b.csrrwi(IntReg::ZERO, csr::SYSTEM_BARRIER, 0);
        b.ecall();
        b.build().unwrap()
    };
    let report = lint_harts(&[hart(), hart(), hart()], &LintConfig::new());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn barrier_kind_mismatch_diverges() {
    // Same count, different barrier CSR: still divergent.
    let hart = |addr: u16| {
        let mut b = ProgramBuilder::new();
        b.csrrwi(IntReg::ZERO, addr, 0);
        b.ecall();
        b.build().unwrap()
    };
    let report = lint_harts(
        &[hart(csr::CLUSTER_BARRIER), hart(csr::SYSTEM_BARRIER)],
        &LintConfig::new(),
    );
    assert!(report.has_rule(Rule::BarrierMatch), "{report}");
}

#[test]
fn wrap_safe_poll_is_clean_and_retires_transfers() {
    // The tiling codegen's exact idiom: signed distance against zero.
    let mut b = ProgramBuilder::new();
    b.li(t(5), 0x100);
    b.csrrw(IntReg::ZERO, csr::DMA_SRC, t(5));
    b.li(t(5), 0x0);
    b.csrrw(IntReg::ZERO, csr::DMA_DST, t(5));
    b.li(t(5), 256);
    b.csrrw(IntReg::ZERO, csr::DMA_LEN, t(5));
    b.csrrw(IntReg::ZERO, csr::DMA_SRC_STRIDE, IntReg::ZERO);
    b.csrrw(IntReg::ZERO, csr::DMA_DST_STRIDE, IntReg::ZERO);
    b.csrrw(IntReg::ZERO, csr::DMA_REPS, IntReg::ZERO);
    b.csrrwi(IntReg::ZERO, csr::DMA_START, 1);
    b.li(t(6), 1);
    b.label("dma_wait");
    b.csrrs(t(7), csr::DMA_COMPLETED, IntReg::ZERO);
    b.sub(t(7), t(6), t(7));
    b.blt(IntReg::ZERO, t(7), "dma_wait");
    // After the wait the destination is safe to read.
    b.li(t(10), 0x0);
    b.fld(f(1), t(10), 0);
    b.ecall();
    let report = lint_program(&b.build().unwrap(), &LintConfig::new());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn wrap_unsafe_poll_is_flagged() {
    // Branching on the raw counter: breaks when the u32 wraps.
    let mut b = ProgramBuilder::new();
    b.li(t(5), 0x100);
    b.csrrw(IntReg::ZERO, csr::DMA_SRC, t(5));
    b.li(t(5), 0x0);
    b.csrrw(IntReg::ZERO, csr::DMA_DST, t(5));
    b.li(t(5), 256);
    b.csrrw(IntReg::ZERO, csr::DMA_LEN, t(5));
    b.csrrw(IntReg::ZERO, csr::DMA_SRC_STRIDE, IntReg::ZERO);
    b.csrrw(IntReg::ZERO, csr::DMA_DST_STRIDE, IntReg::ZERO);
    b.csrrw(IntReg::ZERO, csr::DMA_REPS, IntReg::ZERO);
    b.csrrwi(IntReg::ZERO, csr::DMA_START, 1);
    b.li(t(6), 1);
    b.label("dma_wait");
    b.csrrs(t(7), csr::DMA_COMPLETED, IntReg::ZERO);
    b.branch(sc_isa::BranchOp::Ltu, t(7), t(6), "dma_wait");
    b.ecall();
    let report = lint_program(&b.build().unwrap(), &LintConfig::new());
    assert!(
        report
            .iter()
            .any(|d| d.rule == Rule::DmaProtocol && d.message.contains("wrap")),
        "{report}"
    );
}

#[test]
fn reading_the_dma_destination_before_the_wait_is_flagged() {
    let mut b = ProgramBuilder::new();
    b.li(t(5), 0x100);
    b.csrrw(IntReg::ZERO, csr::DMA_SRC, t(5));
    b.li(t(5), 0x0);
    b.csrrw(IntReg::ZERO, csr::DMA_DST, t(5));
    b.li(t(5), 256);
    b.csrrw(IntReg::ZERO, csr::DMA_LEN, t(5));
    b.csrrw(IntReg::ZERO, csr::DMA_SRC_STRIDE, IntReg::ZERO);
    b.csrrw(IntReg::ZERO, csr::DMA_DST_STRIDE, IntReg::ZERO);
    b.csrrw(IntReg::ZERO, csr::DMA_REPS, IntReg::ZERO);
    b.csrrwi(IntReg::ZERO, csr::DMA_START, 1);
    // No wait: the load races the in-flight transfer.
    b.li(t(10), 0x80);
    b.fld(f(1), t(10), 0);
    b.csrrw(t(7), csr::DMA_WAIT, t(6));
    b.ecall();
    let report = lint_program(&b.build().unwrap(), &LintConfig::new());
    assert!(
        report
            .iter()
            .any(|d| d.rule == Rule::DmaProtocol && d.message.contains("before any completion")),
        "{report}"
    );
}

#[test]
fn write_to_read_only_csr_is_flagged() {
    let mut b = ProgramBuilder::new();
    b.li(t(5), 7);
    b.csrrw(IntReg::ZERO, csr::MHARTID, t(5));
    b.ecall();
    let report = lint_program(&b.build().unwrap(), &LintConfig::new());
    assert!(
        report
            .iter()
            .any(|d| d.rule == Rule::CsrUnknown && d.message.contains("read-only")),
        "{report}"
    );
}

#[test]
fn pure_csr_reads_are_not_writes() {
    // csrrs/csrrc with a zero operand performs no architectural write:
    // reading a read-only CSR is fine.
    let mut b = ProgramBuilder::new();
    b.csrrs(t(5), csr::MHARTID, IntReg::ZERO);
    b.csrrs(t(6), csr::CLUSTER_NUM_CORES, IntReg::ZERO);
    b.csrrs(t(7), csr::DMA_COMPLETED, IntReg::ZERO);
    b.ecall();
    let report = lint_program(&b.build().unwrap(), &LintConfig::new());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn empty_and_trivial_programs_are_clean() {
    let mut b = ProgramBuilder::new();
    b.ecall();
    let report = lint_program(&b.build().unwrap(), &LintConfig::new());
    assert!(report.is_clean(), "{report}");
}
