//! Seeded-bug fixture programs: one per rule, each reproducing a bug
//! class this repo has actually shipped or pinned dynamically.
//!
//! The fixtures are shared between the crate's negative tests and the
//! `lint_sweep` CI bin, which asserts every fixture is flagged with
//! exactly its rule (zero false negatives) while every generator-emitted
//! baseline kernel stays clean (zero false positives).

use sc_isa::{csr, FpReg, IntReg, Program, ProgramBuilder};

fn t(i: u8) -> IntReg {
    IntReg::new(i)
}

fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

/// The PR 6 watchdog fixture: a producer/consumer burst through chained
/// `f3` with five back-to-back pushes — FIFO capacity plus the held
/// writeback — before the five pops. Completes only on cores with the
/// issue-stage drain (`chained_fifo_shift`); wedges silently without it.
/// Expected: `fifo-balance`.
#[must_use]
pub fn fifo_wedge(reps: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(t(10), 0x400);
    b.fld(f(1), t(10), 0);
    b.fld(f(2), t(10), 8);
    b.fld(f(4), t(10), 16);
    b.li(t(5), f(3).chain_mask_bit() as i32);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t(5));
    for _ in 0..reps {
        for _ in 0..5 {
            b.fadd_d(f(3), f(1), f(2));
        }
        for i in 0..5u8 {
            b.fmul_d(f(5 + i % 4), f(3), f(4));
        }
    }
    b.csrrw(IntReg::ZERO, csr::CHAIN_MASK, IntReg::ZERO);
    b.fsd(f(5), t(10), 32);
    b.ecall();
    b.build().expect("fixture assembles")
}

/// A hard wedge: one more producer than the FIFO plus its held
/// writeback can hold, so the burst blocks even *with* the issue-stage
/// drain. Expected: `fifo-balance` at error severity.
#[must_use]
pub fn fifo_overflow() -> Program {
    let mut b = ProgramBuilder::new();
    b.li(t(10), 0x400);
    b.fld(f(1), t(10), 0);
    b.fld(f(2), t(10), 8);
    b.li(t(5), f(3).chain_mask_bit() as i32);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t(5));
    for _ in 0..6 {
        b.fadd_d(f(3), f(1), f(2));
    }
    for i in 0..6u8 {
        b.fmul_d(f(5 + i % 4), f(3), f(2));
    }
    b.csrrw(IntReg::ZERO, csr::CHAIN_MASK, IntReg::ZERO);
    b.ecall();
    b.build().expect("fixture assembles")
}

/// A loop whose body pushes chained `f3` twice but pops it once: the
/// imbalance compounds every iteration until the FIFO wedges, which only
/// the loop-aware occupancy-drift check can see. Expected:
/// `fifo-balance`.
#[must_use]
pub fn fifo_unbalanced_loop() -> Program {
    let mut b = ProgramBuilder::new();
    b.li(t(10), 0x400);
    b.fld(f(1), t(10), 0);
    b.fld(f(2), t(10), 8);
    b.li(t(5), f(3).chain_mask_bit() as i32);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t(5));
    b.li(t(6), 8);
    b.label("loop");
    b.fadd_d(f(3), f(1), f(2));
    b.fadd_d(f(3), f(1), f(2));
    b.fmul_d(f(6), f(3), f(2));
    b.addi(t(6), t(6), -1);
    b.bne(t(6), IntReg::ZERO, "loop");
    b.csrrw(IntReg::ZERO, csr::CHAIN_MASK, IntReg::ZERO);
    b.ecall();
    b.build().expect("fixture assembles")
}

/// A 2-hart cluster whose harts disagree on the barrier schedule: hart 0
/// rendezvouses twice on the cluster barrier, hart 1 once — the second
/// rendezvous can never release. Expected: `barrier-match`.
#[must_use]
pub fn barrier_divergent() -> Vec<Program> {
    let hart = |barriers: u32| {
        let mut b = ProgramBuilder::new();
        for _ in 0..barriers {
            b.csrrwi(IntReg::ZERO, csr::CLUSTER_BARRIER, 0);
        }
        b.ecall();
        b.build().expect("fixture assembles")
    };
    vec![hart(2), hart(1)]
}

/// A double-buffered tile loop that rings a fresh doorbell every
/// iteration and never waits for completion — in-flight transfers
/// accumulate without bound and every tile's compute races its own
/// prefetch. Expected: `dma-protocol`.
#[must_use]
pub fn unwaited_dma_loop() -> Program {
    let mut b = ProgramBuilder::new();
    let tiles = 8;
    b.li(t(6), tiles);
    b.li(t(7), 0x0); // dram cursor
    b.label("tile");
    // Descriptor: one 2 KiB row per tile, Dram -> TCDM buffer 0x000.
    b.csrrw(IntReg::ZERO, csr::DMA_SRC, t(7));
    b.li(t(5), 0x0);
    b.csrrw(IntReg::ZERO, csr::DMA_DST, t(5));
    b.li(t(5), 2048);
    b.csrrw(IntReg::ZERO, csr::DMA_LEN, t(5));
    b.csrrw(IntReg::ZERO, csr::DMA_SRC_STRIDE, IntReg::ZERO);
    b.csrrw(IntReg::ZERO, csr::DMA_DST_STRIDE, IntReg::ZERO);
    b.li(t(5), 1);
    b.csrrw(IntReg::ZERO, csr::DMA_REPS, t(5));
    b.csrrwi(IntReg::ZERO, csr::DMA_START, 1);
    // ... compute would go here; the wait never comes.
    b.addi(t(7), t(7), 2048);
    b.addi(t(6), t(6), -1);
    b.bne(t(6), IntReg::ZERO, "tile");
    b.ecall();
    b.build().expect("fixture assembles")
}

/// A descriptor whose strided footprint runs past the end of the
/// 128 KiB TCDM: 64 rows of 2 KiB starting at 0x1_0000 end at 0x3_0000,
/// twice the capacity. Expected: `tcdm-hazard`.
#[must_use]
pub fn overcap_descriptor() -> Program {
    let mut b = ProgramBuilder::new();
    b.li(t(5), 0x0);
    b.csrrw(IntReg::ZERO, csr::DMA_SRC, t(5));
    b.li(t(5), 0x1_0000);
    b.csrrw(IntReg::ZERO, csr::DMA_DST, t(5));
    b.li(t(5), 2048);
    b.csrrw(IntReg::ZERO, csr::DMA_LEN, t(5));
    b.csrrw(IntReg::ZERO, csr::DMA_SRC_STRIDE, IntReg::ZERO);
    b.li(t(5), 2048);
    b.csrrw(IntReg::ZERO, csr::DMA_DST_STRIDE, t(5));
    b.li(t(5), 64);
    b.csrrw(IntReg::ZERO, csr::DMA_REPS, t(5));
    b.csrrwi(IntReg::ZERO, csr::DMA_START, 1);
    b.li(t(6), 1);
    b.csrrw(t(7), csr::DMA_WAIT, t(6));
    b.ecall();
    b.build().expect("fixture assembles")
}

/// A write to a CSR address the model does not implement (0x7CC sits in
/// the vendor range between the barrier block and the DMA block).
/// Expected: `csr-unknown`.
#[must_use]
pub fn unknown_csr() -> Program {
    let mut b = ProgramBuilder::new();
    b.li(t(5), 1);
    b.csrrw(IntReg::ZERO, 0x7CC, t(5));
    b.ecall();
    b.build().expect("fixture assembles")
}

/// The parked-forever wait from the watchdog suite: a `DMA_WAIT` for a
/// completion count no doorbell in the program ever produces. Expected:
/// `dma-protocol`.
#[must_use]
pub fn parked_forever() -> Program {
    let mut b = ProgramBuilder::new();
    b.li(t(6), 1);
    b.csrrw(t(7), csr::DMA_WAIT, t(6));
    b.ecall();
    b.build().expect("fixture assembles")
}

/// Every (name, rule-id, programs) fixture expectation, for the CI
/// sweep: each entry must produce at least one diagnostic of exactly its
/// rule.
#[must_use]
pub fn expectations() -> Vec<(&'static str, &'static str, Vec<Program>)> {
    vec![
        ("fifo-wedge", "fifo-balance", vec![fifo_wedge(16)]),
        ("fifo-overflow", "fifo-balance", vec![fifo_overflow()]),
        (
            "fifo-unbalanced-loop",
            "fifo-balance",
            vec![fifo_unbalanced_loop()],
        ),
        ("barrier-divergent", "barrier-match", barrier_divergent()),
        (
            "unwaited-dma-loop",
            "dma-protocol",
            vec![unwaited_dma_loop()],
        ),
        (
            "overcap-descriptor",
            "tcdm-hazard",
            vec![overcap_descriptor()],
        ),
        ("unknown-csr", "csr-unknown", vec![unknown_csr()]),
        ("parked-forever", "dma-protocol", vec![parked_forever()]),
    ]
}
