//! `sc_lint` — lint assembly files for chaining/DMA/barrier hazards.
//!
//! ```text
//! sc_lint [--cluster] [--json] [--fifo-capacity N] [--tcdm-cap BYTES] FILE...
//! ```
//!
//! Each `FILE` is assembly in the `sc_isa::parse_asm` dialect. By
//! default every file is linted as an independent program; with
//! `--cluster` the files are treated as the per-hart programs of one
//! cluster (hart = argument order), enabling the cross-hart
//! `barrier-match` check. Exit status: 0 when no error-severity
//! diagnostics were found (warnings are printed but do not fail), 1 when
//! errors were found, 2 on usage or parse failures.

use std::process::ExitCode;

use sc_isa::Program;
use sc_lint::{lint_harts, lint_program, LintConfig, LintReport, Severity};

struct Options {
    cluster: bool,
    json: bool,
    cfg: LintConfig,
    files: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!("usage: sc_lint [--cluster] [--json] [--fifo-capacity N] [--tcdm-cap BYTES] FILE...");
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        cluster: false,
        json: false,
        cfg: LintConfig::new(),
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cluster" => opts.cluster = true,
            "--json" => opts.json = true,
            "--fifo-capacity" => {
                let v = args.next().and_then(|v| v.parse::<u32>().ok());
                match v {
                    Some(v) if v > 0 => opts.cfg = opts.cfg.clone().with_fifo_capacity(v),
                    _ => return Err(usage()),
                }
            }
            "--tcdm-cap" => {
                let v = args.next().and_then(|v| v.parse::<u64>().ok());
                match v {
                    Some(v) if v > 0 => opts.cfg = opts.cfg.clone().with_tcdm_cap_bytes(v),
                    _ => return Err(usage()),
                }
            }
            "--help" | "-h" => return Err(usage()),
            _ if arg.starts_with('-') => return Err(usage()),
            _ => opts.files.push(arg),
        }
    }
    if opts.files.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

fn load(path: &str) -> Result<Program, ExitCode> {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("sc_lint: {path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    match sc_isa::parse_asm(&src) {
        Ok(prog) => Ok(prog),
        Err(e) => {
            eprintln!("sc_lint: {path}:{}: {}", e.line, e.message);
            Err(ExitCode::from(2))
        }
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn print_json(scopes: &[(String, LintReport)]) {
    println!("{{");
    println!("  \"scopes\": [");
    for (si, (name, report)) in scopes.iter().enumerate() {
        println!("    {{");
        println!("      \"name\": \"{}\",", json_escape(name));
        println!("      \"diagnostics\": [");
        let n = report.len();
        for (i, d) in report.iter().enumerate() {
            let hart = d.hart.map_or("null".to_string(), |h| h.to_string());
            let pc = d.pc.map_or("null".to_string(), |p| p.to_string());
            println!(
                "        {{\"rule\": \"{}\", \"severity\": \"{}\", \"hart\": {hart}, \"pc\": {pc}, \"message\": \"{}\"}}{}",
                d.rule,
                d.severity,
                json_escape(&d.message),
                if i + 1 < n { "," } else { "" }
            );
        }
        println!("      ]");
        println!("    }}{}", if si + 1 < scopes.len() { "," } else { "" });
    }
    println!("  ]");
    println!("}}");
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(code) => return code,
    };
    let mut scopes: Vec<(String, LintReport)> = Vec::new();
    if opts.cluster {
        let mut programs = Vec::new();
        for path in &opts.files {
            match load(path) {
                Ok(p) => programs.push(p),
                Err(code) => return code,
            }
        }
        scopes.push(("cluster".to_string(), lint_harts(&programs, &opts.cfg)));
    } else {
        for path in &opts.files {
            match load(path) {
                Ok(p) => scopes.push((path.clone(), lint_program(&p, &opts.cfg))),
                Err(code) => return code,
            }
        }
    }
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for (_, report) in &scopes {
        for d in report.iter() {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
    }
    if opts.json {
        print_json(&scopes);
    } else {
        for (name, report) in &scopes {
            if report.is_clean() {
                println!("{name}: lint clean");
            } else {
                for d in report.iter() {
                    println!("{name}: {d}");
                }
            }
        }
        if errors + warnings > 0 {
            println!("{errors} error(s), {warnings} warning(s)");
        }
    }
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
