//! # sc-lint — static kernel verifier for chaining/DMA/barrier hazards
//!
//! The bug classes that have cost the most in this repo — chained-FIFO
//! push/pop imbalance deadlocks, wrap-unsafe DMA completion polls,
//! barrier divergence, touching a tile buffer before its DMA completes —
//! are all *statically visible* in the instruction stream plus the DMA
//! descriptor schedule. This crate decides them before a single cycle is
//! simulated: a linear abstract-interpretation pass over each hart's
//! [`sc_isa::Program`] tracks integer-register constants, the chaining
//! mask (CSR 0x7C3) with per-register FIFO occupancy, the barrier-write
//! sequence, and the in-flight DMA transfer set, and emits a structured
//! [`LintReport`] of [`Diagnostic`]s.
//!
//! ## Rules
//!
//! | rule id | catches |
//! |---|---|
//! | `fifo-balance` | chained-FIFO pushes/pops unbalanced along any path (loop-aware via `frep` trip-count constants and back-edge occupancy deltas); overflow past the FIFO capacity; drain-dependent bursts |
//! | `barrier-match` | harts of one cluster reaching different sequences of barrier CSR writes (cluster 0x7C5 / system 0x7C6) |
//! | `dma-protocol` | doorbell rung before the descriptor is programmed, wrap-unsafe completion polls, transfers started in a loop or left at program end without a completion wait, reads of a DMA destination before the wait |
//! | `tcdm-hazard` | descriptor footprints exceeding the TCDM capacity, overlapping in-flight DMA writes, compute stores racing in-flight transfers |
//! | `csr-unknown` | architectural writes to undefined or read-only CSR addresses |
//!
//! ## Scope and soundness
//!
//! The pass is per-program: double-buffered tile pipelines load a fresh
//! program per tile, and completion-wait counts are *global* FIFO
//! positions spanning programs, so a wait is conservatively assumed to
//! retire every transfer rung earlier in the same program. Forward
//! branches are treated as fall-through (both paths are scanned in
//! order); backward branches are treated as loops and checked for
//! per-iteration imbalance against the state snapshot at their target.
//! SSR stream footprints are not modelled. These approximations are
//! chosen so that every generator-emitted kernel in the repo lints
//! clean while each historical bug class is still flagged — the
//! `lint_sweep` CI bin pins both directions.
//!
//! ```
//! use sc_isa::{csr, FpReg, IntReg, ProgramBuilder};
//! use sc_lint::{lint_program, LintConfig, Rule};
//!
//! // Enable chaining on f3, push twice, pop once: unbalanced.
//! let mut b = ProgramBuilder::new();
//! b.li(IntReg::new(5), FpReg::new(3).chain_mask_bit() as i32);
//! b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, IntReg::new(5));
//! b.fadd_d(FpReg::new(3), FpReg::new(1), FpReg::new(2));
//! b.fadd_d(FpReg::new(3), FpReg::new(1), FpReg::new(2));
//! b.fmul_d(FpReg::new(4), FpReg::new(3), FpReg::new(1));
//! b.ecall();
//! let report = lint_program(&b.build()?, &LintConfig::new());
//! assert!(report.iter().any(|d| d.rule == Rule::FifoBalance));
//! # Ok::<(), sc_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use sc_isa::Program;

mod engine;
pub mod fixtures;

/// The statically decidable hazard classes the linter checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Chained-FIFO pushes/pops unbalanced or overflowing along a path.
    FifoBalance,
    /// Harts reach different barrier CSR write sequences.
    BarrierMatch,
    /// DMA descriptor/doorbell/completion-wait protocol violations.
    DmaProtocol,
    /// TCDM capacity overruns or racing accesses to in-flight regions.
    TcdmHazard,
    /// Writes to undefined or read-only CSR addresses.
    CsrUnknown,
}

impl Rule {
    /// The stable string id used in reports, CI expectations and docs.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::FifoBalance => "fifo-balance",
            Rule::BarrierMatch => "barrier-match",
            Rule::DmaProtocol => "dma-protocol",
            Rule::TcdmHazard => "tcdm-hazard",
            Rule::CsrUnknown => "csr-unknown",
        }
    }

    /// Every rule, in report order.
    #[must_use]
    pub fn all() -> [Rule; 5] {
        [
            Rule::FifoBalance,
            Rule::BarrierMatch,
            Rule::DmaProtocol,
            Rule::TcdmHazard,
            Rule::CsrUnknown,
        ]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How certain/severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but possibly intentional (e.g. a burst that only
    /// completes with the issue-stage FIFO drain, or a protocol step
    /// that may be satisfied by an earlier program of the same run).
    Warning,
    /// A protocol violation that wedges or corrupts on conforming
    /// hardware. [`ClusterBuilder::lint_strict`]-style gates refuse
    /// programs with errors.
    ///
    /// [`ClusterBuilder::lint_strict`]: https://docs.rs/sc-cluster
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: a rule violated at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Error or warning.
    pub severity: Severity,
    /// The hart whose program contains the finding (set by
    /// [`lint_harts`]; `None` for single-program lints).
    pub hart: Option<u32>,
    /// Byte PC of the offending instruction, if attributable.
    pub pc: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if let Some(hart) = self.hart {
            write!(f, " hart{hart}")?;
        }
        if let Some(pc) = self.pc {
            write!(f, " pc={pc:#x}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The structured outcome of a lint pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diags: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty (clean) report.
    #[must_use]
    pub fn new() -> Self {
        LintReport::default()
    }

    /// No findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Whether any finding is [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether any finding fired `rule` (at any severity).
    #[must_use]
    pub fn has_rule(&self, rule: Rule) -> bool {
        self.diags.iter().any(|d| d.rule == rule)
    }

    /// All findings, in program order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Findings for one hart (plus hart-less findings when `hart` is 0).
    pub fn for_hart(&self, hart: u32) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.diags.iter().filter(move |d| d.hart == Some(hart))
    }

    /// Number of findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True when there are no findings (alias of [`LintReport::is_clean`]
    /// for the conventional pair with `len`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.diags.extend(other.diags);
    }

    pub(crate) fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Stamps every hart-less finding with `hart` (used by the
    /// multi-hart entry point).
    pub(crate) fn assign_hart(&mut self, hart: u32) {
        for d in &mut self.diags {
            if d.hart.is_none() {
                d.hart = Some(hart);
            }
        }
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diags.is_empty() {
            return write!(f, "lint clean");
        }
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Tunable hardware/model parameters the rules check against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Logical chained-FIFO capacity (hardware FPU depth + 1; the
    /// model's default depth of 3 gives 4). Occupancy of exactly
    /// `capacity + 1` relies on the issue-stage drain
    /// (`chained_fifo_shift`) and is reported as a warning; anything
    /// beyond wedges even with the drain and is an error.
    pub fifo_capacity: i64,
    /// TCDM capacity a DMA descriptor footprint may not exceed.
    pub tcdm_cap_bytes: u64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            fifo_capacity: 4,
            tcdm_cap_bytes: 128 << 10,
        }
    }
}

impl LintConfig {
    /// The default configuration (FIFO capacity 4, 128 KiB TCDM).
    #[must_use]
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Overrides the chained-FIFO capacity (FPU depth + 1).
    #[must_use]
    pub fn with_fifo_capacity(mut self, capacity: u32) -> Self {
        self.fifo_capacity = i64::from(capacity);
        self
    }

    /// Overrides the TCDM capacity cap.
    #[must_use]
    pub fn with_tcdm_cap_bytes(mut self, bytes: u64) -> Self {
        self.tcdm_cap_bytes = bytes;
        self
    }

    /// A configuration for generator self-checks: the FIFO capacity is
    /// effectively unbounded, so only *hardware-independent* invariants
    /// fire (push/pop balance, underflow, loop imbalance, DMA/barrier/
    /// CSR protocol) — depth-ablation kernels deliberately exceed the
    /// default capacity and must still pass the generators' debug
    /// assertions.
    #[must_use]
    pub fn balance_only() -> Self {
        LintConfig::default().with_fifo_capacity(1 << 20)
    }
}

/// Lints a single hart's program.
#[must_use]
pub fn lint_program(program: &Program, cfg: &LintConfig) -> LintReport {
    engine::lint_one(program, cfg).report
}

/// Lints every hart of a cluster: each program individually, plus the
/// cross-hart `barrier-match` check (all harts must reach the same
/// sequence of cluster/system barrier writes, or the rendezvous hangs).
#[must_use]
pub fn lint_harts(programs: &[Program], cfg: &LintConfig) -> LintReport {
    let mut report = LintReport::new();
    let mut seqs = Vec::with_capacity(programs.len());
    for (h, prog) in programs.iter().enumerate() {
        let outcome = engine::lint_one(prog, cfg);
        let mut hart_report = outcome.report;
        hart_report.assign_hart(h as u32);
        report.merge(hart_report);
        seqs.push(outcome.barriers);
    }
    if let Some(first) = seqs.first() {
        for (h, seq) in seqs.iter().enumerate().skip(1) {
            if seq != first {
                report.push(Diagnostic {
                    rule: Rule::BarrierMatch,
                    severity: Severity::Error,
                    hart: Some(h as u32),
                    pc: None,
                    message: format!(
                        "barrier sequence diverges from hart 0: hart 0 performs {}, hart {h} performs {} — the rendezvous can never release every hart",
                        engine::describe_barriers(first),
                        engine::describe_barriers(seq),
                    ),
                });
            }
        }
    }
    report
}
