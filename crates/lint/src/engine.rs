//! The abstract-interpretation pass behind [`crate::lint_program`].
//!
//! One linear scan per program. The abstract state tracks:
//!
//! * integer-register constants (`li`/`lui`/ALU propagation — enough to
//!   recover `frep` trip counts and DMA descriptor values from
//!   generator-emitted code),
//! * the chaining mask (CSR 0x7C3) and per-register FIFO occupancy,
//! * the per-hart barrier-write sequence,
//! * the programmed DMA descriptor and the in-flight transfer set with
//!   TCDM footprint hulls.
//!
//! A snapshot of the loop-relevant state is kept per instruction so a
//! backward branch can compare "state at the back-edge" against "state
//! at the target": any per-iteration drift in FIFO occupancy or the
//! in-flight transfer set is a hazard that compounds every iteration.
//! Completion-wait loops (polls of `DMA_COMPLETED`) are recognized
//! structurally and additionally checked for u32-wrap safety.

use sc_isa::{csr, CsrOp, CsrSrc, FpReg, Instruction, IntReg, Program};

use crate::{Diagnostic, LintConfig, LintReport, Rule, Severity};

/// Result of linting one program: the findings plus the barrier-write
/// sequence for the cross-hart comparison.
pub(crate) struct Outcome {
    pub(crate) report: LintReport,
    pub(crate) barriers: Vec<BarrierEvent>,
}

/// One barrier CSR write in a hart's trace. `looped` marks writes inside
/// a backward-branch body, where the static repetition count is part of
/// the event identity (two harts only match if the same barrier is
/// looped the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BarrierEvent {
    csr: u16,
    looped: bool,
}

pub(crate) fn describe_barriers(seq: &[BarrierEvent]) -> String {
    if seq.is_empty() {
        return "no barrier writes".to_string();
    }
    let name = |c: u16| {
        if c == csr::CLUSTER_BARRIER {
            "cluster"
        } else {
            "system"
        }
    };
    let parts: Vec<String> = seq
        .iter()
        .map(|e| {
            if e.looped {
                format!("{}(in loop)", name(e.csr))
            } else {
                name(e.csr).to_string()
            }
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

/// CSR addresses the model implements.
const KNOWN_CSRS: &[u16] = &[
    csr::FFLAGS,
    csr::FRM,
    csr::FCSR,
    csr::SSR_ENABLE,
    csr::FPMODE,
    csr::CHAIN_MASK,
    csr::PERF_REGION,
    csr::CLUSTER_BARRIER,
    csr::SYSTEM_BARRIER,
    csr::CLUSTER_ID,
    csr::SYSTEM_NUM_CLUSTERS,
    csr::CLUSTER_NUM_CORES,
    csr::PHASE_MARK,
    csr::DMA_SRC,
    csr::DMA_DST,
    csr::DMA_LEN,
    csr::DMA_SRC_STRIDE,
    csr::DMA_DST_STRIDE,
    csr::DMA_REPS,
    csr::DMA_START,
    csr::DMA_STATUS,
    csr::DMA_COMPLETED,
    csr::DMA_WAIT,
    csr::MCYCLE,
    csr::MINSTRET,
    csr::MHARTID,
];

/// CSRs an architectural write can never legally target.
const READ_ONLY_CSRS: &[u16] = &[
    csr::CLUSTER_ID,
    csr::SYSTEM_NUM_CLUSTERS,
    csr::CLUSTER_NUM_CORES,
    csr::DMA_STATUS,
    csr::DMA_COMPLETED,
    csr::MCYCLE,
    csr::MINSTRET,
    csr::MHARTID,
];

/// One programmed DMA descriptor field.
#[derive(Debug, Clone, Copy, Default)]
struct DescField {
    written: bool,
    val: Option<u32>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Descriptor {
    src: DescField,
    dst: DescField,
    len: DescField,
    dst_stride: DescField,
    reps: DescField,
}

/// A doorbell-rung transfer not yet covered by a completion wait, with
/// its TCDM-side footprint hull `[lo, hi)` when statically known.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    pc: u32,
    /// `Some(true)` = Dram→TCDM (writes TCDM), `Some(false)` =
    /// TCDM→Dram (reads TCDM), `None` = direction unknown.
    to_tcdm: Option<bool>,
    hull: Option<(u64, u64)>,
}

/// Loop-relevant state snapshot, taken before each instruction.
#[derive(Clone)]
struct Snapshot {
    occ: [i64; 32],
    barrier_len: usize,
    inflight_len: usize,
}

struct Analyzer<'a> {
    code: &'a [Instruction],
    cfg: &'a LintConfig,
    report: LintReport,
    /// Integer-register constants; index 0 is pinned to `Some(0)`.
    consts: [Option<u32>; 32],
    /// Chaining mask; `None` once an unknown value was written (the
    /// FIFO accounting then stops rather than guess).
    chain_mask: Option<u32>,
    occ: [i64; 32],
    barriers: Vec<BarrierEvent>,
    desc: Descriptor,
    inflight: Vec<Inflight>,
    doorbells: u32,
    snapshots: Vec<Snapshot>,
    /// Per-register one-shot latches so one unbalanced loop does not
    /// cascade into a diagnostic per enclosing scope.
    reported_underflow: u32,
    reported_overflow: u32,
    reported_drain: u32,
}

pub(crate) fn lint_one(program: &Program, cfg: &LintConfig) -> Outcome {
    let mut a = Analyzer {
        code: program.code(),
        cfg,
        report: LintReport::new(),
        consts: {
            let mut c = [None; 32];
            c[0] = Some(0);
            c
        },
        chain_mask: Some(0),
        occ: [0; 32],
        barriers: Vec::new(),
        desc: Descriptor::default(),
        inflight: Vec::new(),
        doorbells: 0,
        snapshots: Vec::new(),
        reported_underflow: 0,
        reported_overflow: 0,
        reported_drain: 0,
    };
    a.run();
    Outcome {
        report: a.report,
        barriers: a.barriers,
    }
}

impl Analyzer<'_> {
    fn run(&mut self) {
        let mut i = 0usize;
        while i < self.code.len() {
            self.snapshots.push(self.snapshot());
            let inst = self.code[i];
            if let Instruction::Frep {
                is_outer,
                max_rpt,
                n_instr,
                stagger_max: _,
                stagger_mask,
            } = inst
            {
                let end = (i + 1 + n_instr as usize).min(self.code.len());
                let block: Vec<Instruction> = self.code[i + 1..end].to_vec();
                // Keep the snapshot vector aligned with instruction
                // indices for branches that (illegally) target the body.
                for _ in i + 1..end {
                    self.snapshots.push(self.snapshot());
                }
                self.frep(pc(i), is_outer, max_rpt, stagger_mask, &block);
                i = end;
                continue;
            }
            self.step(pc(i), i, inst);
            i += 1;
        }
        self.finish(pc(self.code.len().saturating_sub(1)));
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            occ: self.occ,
            barrier_len: self.barriers.len(),
            inflight_len: self.inflight.len(),
        }
    }

    fn diag(&mut self, rule: Rule, severity: Severity, pc: u32, message: String) {
        self.report.push(Diagnostic {
            rule,
            severity,
            hart: None,
            pc: Some(pc),
            message,
        });
    }

    /// One non-`frep` instruction.
    fn step(&mut self, pc: u32, index: usize, inst: Instruction) {
        match inst {
            Instruction::Csr { op, rd, csr, src } => self.csr(pc, op, rd, csr, src),
            Instruction::Branch { offset, .. } => {
                if offset <= 0 {
                    self.back_edge(pc, index, offset);
                }
            }
            Instruction::Jal { rd, offset } => {
                if offset <= 0 {
                    self.back_edge(pc, index, offset);
                }
                self.clobber(rd);
            }
            Instruction::Jalr { rd, .. } => self.clobber(rd),
            _ => {
                self.memory_access(pc, inst);
                self.fifo_step(pc, inst, 1);
                self.constants(inst);
            }
        }
    }

    // ---- integer constant propagation -------------------------------

    fn clobber(&mut self, rd: IntReg) {
        if !rd.is_zero() {
            self.consts[rd.index() as usize] = None;
        }
    }

    fn set_const(&mut self, rd: IntReg, val: Option<u32>) {
        if !rd.is_zero() {
            self.consts[rd.index() as usize] = val;
        }
    }

    fn get_const(&self, r: IntReg) -> Option<u32> {
        self.consts[r.index() as usize]
    }

    fn constants(&mut self, inst: Instruction) {
        match inst {
            Instruction::Lui { rd, imm } => self.set_const(rd, Some(imm)),
            Instruction::OpImm { op, rd, rs1, imm } => {
                let v = self.get_const(rs1).map(|a| op.evaluate(a, imm as u32));
                self.set_const(rd, v);
            }
            Instruction::Op { op, rd, rs1, rs2 } => {
                let v = match (self.get_const(rs1), self.get_const(rs2)) {
                    (Some(a), Some(b)) => Some(op.evaluate(a, b)),
                    _ => None,
                };
                self.set_const(rd, v);
            }
            Instruction::MulDiv { op, rd, rs1, rs2 } => {
                let v = match (self.get_const(rs1), self.get_const(rs2)) {
                    (Some(a), Some(b)) => Some(op.evaluate(a, b)),
                    _ => None,
                };
                self.set_const(rd, v);
            }
            _ => {
                if let Some(rd) = inst.int_dest() {
                    self.clobber(rd);
                }
            }
        }
    }

    // ---- chained-FIFO accounting (fifo-balance) ---------------------

    fn is_chained(&self, r: FpReg) -> bool {
        self.chain_mask.is_some_and(|m| m & r.chain_mask_bit() != 0)
    }

    /// Applies one instruction's pops/pushes `times` times (pops before
    /// pushes within one execution, per the FIFO read-then-write order).
    fn fifo_step(&mut self, pc: u32, inst: Instruction, times: i64) {
        if self.chain_mask == Some(0) || self.chain_mask.is_none() {
            return;
        }
        let mut delta: Vec<(FpReg, i64, i64)> = Vec::new();
        for src in inst.fp_sources() {
            if self.is_chained(src) {
                match delta.iter_mut().find(|(r, _, _)| *r == src) {
                    Some((_, p, _)) => *p += 1,
                    None => delta.push((src, 1, 0)),
                }
            }
        }
        if let Some(dst) = inst.fp_dest() {
            if self.is_chained(dst) {
                match delta.iter_mut().find(|(r, _, _)| *r == dst) {
                    Some((_, _, q)) => *q += 1,
                    None => delta.push((dst, 0, 1)),
                }
            }
        }
        for (r, p, q) in delta {
            let start = self.occ[r.index() as usize];
            let net = q - p;
            // Exact min/max over `times` executions with constant
            // per-execution pops `p` then pushes `q`.
            let low = start - p + 0i64.min((times - 1) * net);
            let high = start - p + q + 0i64.max((times - 1) * net);
            self.check_occ(r, low, high, pc);
            self.occ[r.index() as usize] = start + times * net;
        }
    }

    fn check_occ(&mut self, r: FpReg, low: i64, high: i64, pc: u32) {
        let bit = r.chain_mask_bit();
        if low < 0 && self.reported_underflow & bit == 0 {
            self.reported_underflow |= bit;
            self.diag(
                Rule::FifoBalance,
                Severity::Error,
                pc,
                format!(
                    "chained FIFO {r}: pops exceed pushes along this path (occupancy would reach {low}); the in-order hart stalls forever on the empty FIFO"
                ),
            );
        }
        let cap = self.cfg.fifo_capacity;
        if high > cap + 1 && self.reported_overflow & bit == 0 {
            self.reported_overflow |= bit;
            self.diag(
                Rule::FifoBalance,
                Severity::Error,
                pc,
                format!(
                    "chained FIFO {r}: {high} elements in flight exceeds capacity {cap} plus the held writeback; the push blocks the FPU pipeline and the program wedges even with the issue-stage drain"
                ),
            );
        } else if high == cap + 1 && self.reported_drain & bit == 0 {
            self.reported_drain |= bit;
            self.diag(
                Rule::FifoBalance,
                Severity::Warning,
                pc,
                format!(
                    "chained FIFO {r}: burst of {high} fills the FIFO (capacity {cap}) plus the held writeback slot; completes only on cores with the issue-stage drain (chained_fifo_shift)"
                ),
            );
        }
    }

    /// A `frep` block: `max_rpt`+1 repetitions of the next `n_instr` FP
    /// instructions. The trip count is recovered from the constant
    /// tracker — generator code always materializes it with `li` — and
    /// the occupancy extremes over all repetitions are computed
    /// analytically, so a million-iteration `frep` costs one block scan.
    fn frep(
        &mut self,
        pc: u32,
        is_outer: bool,
        max_rpt: IntReg,
        stagger_mask: u8,
        block: &[Instruction],
    ) {
        let trip = self.get_const(max_rpt).map(|v| i64::from(v) + 1);
        // Staggered register rotation re-targets operands per iteration;
        // the static accounting would mis-attribute pushes, so chained
        // occupancy is left untouched (conservative: no finding).
        let stagger = stagger_mask != 0;
        if is_outer {
            // Whole-block repetition: one symbolic pass records each
            // chained register's running offset extremes and net delta.
            let mut net: [i64; 32] = [0; 32];
            let mut lo: [i64; 32] = [0; 32];
            let mut hi: [i64; 32] = [0; 32];
            for inst in block {
                self.memory_access(pc, *inst);
                if stagger {
                    continue;
                }
                for src in inst.fp_sources() {
                    if self.is_chained(src) {
                        let i = src.index() as usize;
                        net[i] -= 1;
                        lo[i] = lo[i].min(net[i]);
                    }
                }
                if let Some(dst) = inst.fp_dest() {
                    if self.is_chained(dst) {
                        let i = dst.index() as usize;
                        net[i] += 1;
                        hi[i] = hi[i].max(net[i]);
                    }
                }
            }
            if stagger {
                return;
            }
            for r in FpReg::all() {
                let i = r.index() as usize;
                if net[i] == 0 && lo[i] == 0 && hi[i] == 0 {
                    continue;
                }
                let start = self.occ[i];
                match trip {
                    Some(t) => {
                        let low = start + lo[i] + 0i64.min((t - 1) * net[i]);
                        let high = start + hi[i] + 0i64.max((t - 1) * net[i]);
                        self.check_occ(r, low, high, pc);
                        self.occ[i] = start + t * net[i];
                    }
                    None => {
                        if net[i] != 0 {
                            self.frep_unknown_trip(r, net[i], pc);
                        } else {
                            self.check_occ(r, start + lo[i], start + hi[i], pc);
                        }
                    }
                }
            }
        } else {
            // Per-instruction repetition: instruction k runs trip times
            // before instruction k+1 starts.
            for inst in block {
                self.memory_access(pc, *inst);
                if stagger {
                    continue;
                }
                match trip {
                    Some(t) => self.fifo_step(pc, *inst, t),
                    None => {
                        // Unknown trip: a net-zero instruction is safe at
                        // any count; a net-nonzero one is unbalanced.
                        let net_nonzero = {
                            let mut n: i64 = 0;
                            for s in inst.fp_sources() {
                                if self.is_chained(s) {
                                    n -= 1;
                                }
                            }
                            if inst.fp_dest().is_some_and(|d| self.is_chained(d)) {
                                n += 1;
                            }
                            n
                        };
                        if net_nonzero != 0 {
                            if let Some(r) = inst.fp_dest().or_else(|| inst.fp_sources().pop()) {
                                self.frep_unknown_trip(r, net_nonzero, pc);
                            }
                        } else {
                            self.fifo_step(pc, *inst, 1);
                        }
                    }
                }
            }
        }
    }

    fn frep_unknown_trip(&mut self, r: FpReg, net: i64, pc: u32) {
        let bit = r.chain_mask_bit();
        if (net > 0 && self.reported_overflow & bit != 0)
            || (net < 0 && self.reported_underflow & bit != 0)
        {
            return;
        }
        if net > 0 {
            self.reported_overflow |= bit;
        } else {
            self.reported_underflow |= bit;
        }
        self.diag(
            Rule::FifoBalance,
            Severity::Error,
            pc,
            format!(
                "chained FIFO {r}: frep with a statically unknown trip count changes occupancy by {net} per repetition — unbalanced for any trip count past the FIFO capacity"
            ),
        );
    }

    // ---- CSR instructions -------------------------------------------

    fn csr(&mut self, pc: u32, op: CsrOp, rd: IntReg, addr: u16, src: CsrSrc) {
        let operand = match src {
            CsrSrc::Reg(r) => self.get_const(r),
            CsrSrc::Imm(v) => Some(u32::from(v)),
        };
        // Per the spec, csrrs/csrrc with a zero operand performs no
        // write; csrrw always writes.
        let zero_operand = match src {
            CsrSrc::Reg(r) => r.is_zero(),
            CsrSrc::Imm(v) => v == 0,
        };
        let writes = op == CsrOp::ReadWrite || !zero_operand;
        self.clobber(rd);
        if writes && !KNOWN_CSRS.contains(&addr) {
            self.diag(
                Rule::CsrUnknown,
                Severity::Error,
                pc,
                format!("write to undefined CSR {addr:#x}; the model implements no register there"),
            );
            return;
        }
        if writes && READ_ONLY_CSRS.contains(&addr) {
            self.diag(
                Rule::CsrUnknown,
                Severity::Error,
                pc,
                format!("write to read-only CSR {addr:#x}"),
            );
            return;
        }
        match addr {
            csr::CHAIN_MASK if writes => self.chain_mask_write(pc, op, operand),
            csr::CLUSTER_BARRIER | csr::SYSTEM_BARRIER if writes => {
                self.barriers.push(BarrierEvent {
                    csr: addr,
                    looped: false,
                });
            }
            csr::DMA_SRC if writes => self.desc.src = desc_write(self.desc.src, op, operand),
            csr::DMA_DST if writes => self.desc.dst = desc_write(self.desc.dst, op, operand),
            csr::DMA_LEN if writes => self.desc.len = desc_write(self.desc.len, op, operand),
            csr::DMA_SRC_STRIDE if writes => {}
            csr::DMA_DST_STRIDE if writes => {
                self.desc.dst_stride = desc_write(self.desc.dst_stride, op, operand);
            }
            csr::DMA_REPS if writes => self.desc.reps = desc_write(self.desc.reps, op, operand),
            csr::DMA_START if writes => self.doorbell(pc, operand),
            csr::DMA_WAIT if writes => self.dma_wait(pc, operand),
            _ => {}
        }
    }

    fn chain_mask_write(&mut self, pc: u32, op: CsrOp, operand: Option<u32>) {
        let new_mask = match (op, operand, self.chain_mask) {
            (CsrOp::ReadWrite, Some(v), _) => Some(v),
            (CsrOp::ReadSet, Some(v), Some(m)) => Some(m | v),
            (CsrOp::ReadClear, Some(v), Some(m)) => Some(m & !v),
            _ => None,
        };
        if let (Some(old), Some(new)) = (self.chain_mask, new_mask) {
            let disabled = old & !new;
            for r in FpReg::all() {
                let i = r.index() as usize;
                if disabled & r.chain_mask_bit() != 0 && self.occ[i] != 0 {
                    let n = self.occ[i];
                    self.diag(
                        Rule::FifoBalance,
                        Severity::Warning,
                        pc,
                        format!(
                            "chaining disabled on {r} with {n} element(s) still buffered; the queued values are discarded"
                        ),
                    );
                }
                if disabled & r.chain_mask_bit() != 0 {
                    self.occ[i] = 0;
                }
            }
        }
        self.chain_mask = new_mask;
    }

    // ---- DMA protocol -----------------------------------------------

    fn doorbell(&mut self, pc: u32, operand: Option<u32>) {
        self.doorbells += 1;
        if !(self.desc.src.written && self.desc.dst.written && self.desc.len.written) {
            self.diag(
                Rule::DmaProtocol,
                Severity::Warning,
                pc,
                "doorbell rung before DMA_SRC/DMA_DST/DMA_LEN were all programmed in this program; the transfer reuses stale descriptor state".to_string(),
            );
        }
        let to_tcdm = operand.map(|v| v & 1 == 1);
        let hull = self.footprint(pc);
        if let Some((_, hi)) = hull {
            if hi > self.cfg.tcdm_cap_bytes {
                self.diag(
                    Rule::TcdmHazard,
                    Severity::Error,
                    pc,
                    format!(
                        "descriptor footprint ends at TCDM byte {hi:#x}, beyond the {} KiB capacity",
                        self.cfg.tcdm_cap_bytes >> 10
                    ),
                );
            }
        }
        // Two in-flight transfers may interleave arbitrarily: if either
        // writes a TCDM region the other touches, the result depends on
        // engine timing.
        if let Some(new_hull) = hull {
            for t in &self.inflight {
                let Some(old_hull) = t.hull else { continue };
                let either_writes = to_tcdm.unwrap_or(true) || t.to_tcdm.unwrap_or(true);
                if either_writes && overlaps(new_hull, old_hull) {
                    let old_pc = t.pc;
                    self.diag(
                        Rule::TcdmHazard,
                        Severity::Error,
                        pc,
                        format!(
                            "TCDM footprint {:#x}..{:#x} overlaps the in-flight transfer rung at pc {old_pc:#x} with no completion wait between them",
                            new_hull.0, new_hull.1
                        ),
                    );
                    break;
                }
            }
        }
        self.inflight.push(Inflight { pc, to_tcdm, hull });
    }

    /// TCDM-side hull `[lo, hi)` of the current descriptor, when known.
    fn footprint(&self, _pc: u32) -> Option<(u64, u64)> {
        let dst = u64::from(self.desc.dst.val?);
        let len = u64::from(self.desc.len.val?);
        let rows = u64::from(self.desc.reps.val.unwrap_or(1).max(1));
        let stride = u64::from(self.desc.dst_stride.val.unwrap_or(0));
        Some((dst, dst + (rows - 1) * stride + len))
    }

    fn dma_wait(&mut self, pc: u32, operand: Option<u32>) {
        if self.doorbells == 0 && operand != Some(0) {
            self.diag(
                Rule::DmaProtocol,
                Severity::Warning,
                pc,
                "completion wait with no doorbell rung in this program; unless an earlier program of the same run rang the missing transfers, the hart parks forever".to_string(),
            );
        }
        // Completion counts are global FIFO positions that may span
        // programs; conservatively retire everything rung so far.
        self.inflight.clear();
    }

    // ---- compute accesses vs in-flight DMA --------------------------

    fn memory_access(&mut self, pc: u32, inst: Instruction) {
        let (base, offset, size, is_store) = match inst {
            Instruction::Load {
                op, rs1, offset, ..
            } => (rs1, offset, op.size(), false),
            Instruction::Store {
                op, rs1, offset, ..
            } => (rs1, offset, op.size(), true),
            Instruction::FpLoad {
                fmt, rs1, offset, ..
            } => (rs1, offset, fmt.size(), false),
            Instruction::FpStore {
                fmt, rs1, offset, ..
            } => (rs1, offset, fmt.size(), true),
            _ => return,
        };
        let Some(base) = self.get_const(base) else {
            return;
        };
        let addr = i64::from(base) + i64::from(offset);
        if addr < 0 {
            return;
        }
        let access = (addr as u64, addr as u64 + u64::from(size));
        for t in &self.inflight {
            let Some(hull) = t.hull else { continue };
            if !overlaps(access, hull) {
                continue;
            }
            let t_pc = t.pc;
            if !is_store && t.to_tcdm == Some(false) {
                // Reading a region DMA is also reading: benign.
                continue;
            }
            if is_store {
                self.diag(
                    Rule::TcdmHazard,
                    Severity::Error,
                    pc,
                    format!(
                        "store to {:#x} races the in-flight DMA transfer rung at pc {t_pc:#x}; no completion wait separates them",
                        access.0
                    ),
                );
            } else {
                self.diag(
                    Rule::DmaProtocol,
                    Severity::Error,
                    pc,
                    format!(
                        "load from {:#x} reads the destination of the DMA transfer rung at pc {t_pc:#x} before any completion wait",
                        access.0
                    ),
                );
            }
            break;
        }
    }

    // ---- loops ------------------------------------------------------

    /// A backward branch: either a recognized completion-poll loop or a
    /// genuine loop whose per-iteration state drift is checked against
    /// the snapshot at the target.
    fn back_edge(&mut self, pc: u32, index: usize, offset: i32) {
        let target = (i64::from(pc) + i64::from(offset)) / 4;
        if target < 0 || target as usize > index {
            return;
        }
        let target = target as usize;
        if self.completion_poll(pc, target, index) {
            // The loop exits only once the engine reports completion:
            // everything rung before it is retired (conservatively, as
            // counts are global positions).
            self.inflight.clear();
            return;
        }
        let snap = self.snapshots[target].clone();
        if self.chain_mask.unwrap_or(0) != 0 {
            for r in FpReg::all() {
                let i = r.index() as usize;
                let drift = self.occ[i] - snap.occ[i];
                if drift != 0 && self.is_chained(r) {
                    let bit = r.chain_mask_bit();
                    let already = if drift > 0 {
                        &mut self.reported_overflow
                    } else {
                        &mut self.reported_underflow
                    };
                    if *already & bit != 0 {
                        continue;
                    }
                    *already |= bit;
                    self.diag(
                        Rule::FifoBalance,
                        Severity::Error,
                        pc,
                        format!(
                            "chained FIFO {r}: occupancy drifts by {drift} per iteration of the loop back to pc {:#x} — unbalanced pushes/pops compound every iteration",
                            target * 4
                        ),
                    );
                }
            }
        }
        if self.inflight.len() > snap.inflight_len {
            let grew = self.inflight.len() - snap.inflight_len;
            self.diag(
                Rule::DmaProtocol,
                Severity::Error,
                pc,
                format!(
                    "{grew} DMA transfer(s) started in the loop back to pc {:#x} with no completion wait before the back-edge; in-flight transfers accumulate every iteration",
                    target * 4
                ),
            );
            // Report once, not once per enclosing loop.
            self.inflight.truncate(snap.inflight_len);
        }
        if self.barriers.len() > snap.barrier_len {
            for e in &mut self.barriers[snap.barrier_len..] {
                e.looped = true;
            }
        }
    }

    /// Recognizes a `DMA_COMPLETED` poll loop over `code[target..=index]`
    /// and checks its wrap safety. Returns true when the body reads the
    /// completion counter (making the backward branch a wait, not a
    /// compute loop).
    fn completion_poll(&mut self, pc: u32, target: usize, index: usize) -> bool {
        let body = &self.code[target..=index];
        let mut completed_dst: Option<IntReg> = None;
        for inst in body {
            if let Instruction::Csr {
                op: CsrOp::ReadSet | CsrOp::ReadClear,
                rd,
                csr: csr::DMA_COMPLETED,
                ..
            } = inst
            {
                if !rd.is_zero() {
                    completed_dst = Some(*rd);
                }
            }
        }
        let Some(completed) = completed_dst else {
            return false;
        };
        // Wrap-safe idiom: the signed distance `target - completed`
        // (or its negation) feeds the branch, so a wrapped u32 counter
        // still compares correctly. Branching on the raw counter value
        // breaks after 2^32 transfers.
        let mut distance_regs: Vec<IntReg> = Vec::new();
        for inst in body {
            if let Instruction::Op {
                op: sc_isa::AluOp::Sub,
                rd,
                rs1,
                rs2,
            } = inst
            {
                if *rs1 == completed || *rs2 == completed {
                    distance_regs.push(*rd);
                }
            }
        }
        let Some(Instruction::Branch { op, rs1, rs2, .. }) = self.code.get(index).copied() else {
            return true;
        };
        let uses_distance = |r: IntReg| r.is_zero() || distance_regs.contains(&r);
        let signed = matches!(op, sc_isa::BranchOp::Lt | sc_isa::BranchOp::Ge);
        let safe = signed && uses_distance(rs1) && uses_distance(rs2);
        // Equality polls (`completed != target`) are also wrap-safe:
        // wrapping does not break equality on the exact target.
        let equality = matches!(op, sc_isa::BranchOp::Eq | sc_isa::BranchOp::Ne);
        if !safe && !equality {
            self.diag(
                Rule::DmaProtocol,
                Severity::Warning,
                pc,
                "completion poll compares DMA_COMPLETED without the wrap-safe signed distance ((completed - target) as i32 >= 0); the loop misbehaves once the u32 counter wraps".to_string(),
            );
        }
        true
    }

    // ---- end of program ---------------------------------------------

    fn finish(&mut self, pc: u32) {
        if let Some(mask) = self.chain_mask {
            for r in FpReg::all() {
                let i = r.index() as usize;
                if mask & r.chain_mask_bit() != 0 && self.occ[i] != 0 {
                    let n = self.occ[i];
                    let (sev, what) = if n < 0 {
                        (Severity::Error, "more pops than pushes")
                    } else {
                        (Severity::Warning, "unconsumed element(s)")
                    };
                    self.diag(
                        Rule::FifoBalance,
                        sev,
                        pc,
                        format!("program ends with {n} {what} in chained FIFO {r}"),
                    );
                }
            }
        }
        if !self.inflight.is_empty() {
            let n = self.inflight.len();
            self.diag(
                Rule::DmaProtocol,
                Severity::Warning,
                pc,
                format!(
                    "program ends with {n} DMA transfer(s) rung but never awaited; their completion is unsynchronized"
                ),
            );
        }
    }
}

fn pc(index: usize) -> u32 {
    (index * 4) as u32
}

fn desc_write(old: DescField, op: CsrOp, operand: Option<u32>) -> DescField {
    let val = match (op, operand, old.val) {
        (CsrOp::ReadWrite, v, _) => v,
        (CsrOp::ReadSet, Some(v), Some(o)) => Some(o | v),
        (CsrOp::ReadClear, Some(v), Some(o)) => Some(o & !v),
        _ => None,
    };
    DescField { written: true, val }
}

fn overlaps(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}
