//! # sc-cache — a cycle-stepped set-associative cache timing model
//!
//! The capacity/eviction/refill core behind the shared L2 of a
//! multi-cluster system. Like the rest of the memory hierarchy, the
//! cache is a **timing filter, not a data store**: one functional image
//! lives in the background memory, and this model decides *when* a beat
//! may touch it — and what traffic the decision costs on the far side.
//!
//! ## What is modelled
//!
//! * **Finite, set-associative capacity** — `capacity_bytes` split into
//!   `capacity / (line_bytes × ways)` sets with true per-set LRU
//!   replacement. `capacity_bytes == 0` selects the *infinite* residency
//!   mode: lines accumulate forever and nothing is ever evicted — the
//!   exact cold-miss-only behaviour earlier revisions of the L2 had.
//! * **Write-allocate without fetch** — a granted write installs its
//!   line immediately (DMA write-back streams write whole lines, so
//!   there is nothing to fetch) and, with `write_back` on, marks it
//!   dirty. Evicting a dirty line enqueues a **write-back job** whose
//!   beats occupy a channel like a refill's do; evicting a clean line is
//!   silent.
//! * **An MSHR file** — every in-flight line refill occupies one MSHR;
//!   same-line misses from other requesters merge into the existing
//!   entry instead of refetching ([`CacheStats::mshr_merges`]). When all
//!   `mshrs` are occupied, further misses to *new* lines stall without
//!   allocating ([`CacheStats::mshr_full_stalls`]) and retry once a
//!   refill retires. `mshrs == 0` means an unbounded file.
//! * **K parallel channels** — refill and write-back jobs drain from one
//!   FIFO over `channels` independent channels to the background memory;
//!   each job occupies its channel for `refill_latency + line_beats ×
//!   refill_cycles_per_beat` cycles. With one channel, lines serialise
//!   exactly as the single-refill-channel L2 always did.
//!
//! ## Step protocol
//!
//! The owner drives one cycle as [`Cache::begin_cycle`] (idle channels
//! pick up queued jobs) → any number of [`Cache::probe_read`] /
//! [`Cache::commit_read`] / [`Cache::commit_write`] calls for the
//! cycle's beats → [`Cache::end_cycle`] (busy channels advance; a
//! finished refill installs its line). A read beat may only be committed
//! after its probe returned [`Probe::Ready`] in the same cycle; writes
//! never stall and need no probe.
//!
//! ```
//! use sc_cache::{Cache, CacheConfig, Probe};
//!
//! let mut cache = Cache::new(CacheConfig::new().with_line_bytes(64));
//! // A cold read stalls while the line refills…
//! cache.begin_cycle();
//! assert_eq!(cache.probe_read(0x100, 0), Probe::MissPending);
//! cache.end_cycle();
//! while !cache.is_present(0x100) {
//!     cache.begin_cycle();
//!     cache.end_cycle();
//! }
//! // …then the whole line serves hits.
//! cache.begin_cycle();
//! assert_eq!(cache.probe_read(0x108, 0), Probe::Ready);
//! cache.commit_read(0x108, 0);
//! cache.end_cycle();
//! assert_eq!(cache.stats().refills, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{HashMap, HashSet, VecDeque};

/// Geometry, policies and refill timing of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total data capacity in bytes; **0 = infinite** (pure residency
    /// tracking, no eviction). When finite, must be a multiple of
    /// `line_bytes × ways`.
    pub capacity_bytes: u32,
    /// Associativity (lines per set, ≥ 1). Ignored in infinite mode.
    pub ways: u32,
    /// Line size in bytes (power of two, ≥ 8).
    pub line_bytes: u32,
    /// MSHR file size: in-flight line refills that may be outstanding at
    /// once; **0 = unbounded**.
    pub mshrs: u32,
    /// Parallel refill/write-back channels to the background memory (≥ 1).
    pub channels: u32,
    /// Cycles before the first beat of a refill (or write-back) moves.
    pub refill_latency: u32,
    /// Cycles per 64-bit beat on a channel (≥ 1).
    pub refill_cycles_per_beat: u32,
    /// Whether dirty lines are tracked and written back on eviction.
    pub write_back: bool,
}

impl CacheConfig {
    /// Defaults matching the residency-only L2 of earlier revisions:
    /// infinite capacity, one channel, unbounded MSHRs, no write-back —
    /// 256 B lines refilled over a Dram-like channel.
    #[must_use]
    pub fn new() -> Self {
        CacheConfig {
            capacity_bytes: 0,
            ways: 8,
            line_bytes: 256,
            mshrs: 0,
            channels: 1,
            refill_latency: 64,
            refill_cycles_per_beat: 1,
            write_back: false,
        }
    }

    /// Sets the capacity (0 = infinite). The multiple-of-`line_bytes ×
    /// ways` constraint is checked when the cache is instantiated, once
    /// the whole geometry is known.
    #[must_use]
    pub fn with_capacity_bytes(mut self, capacity_bytes: u32) -> Self {
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Sets the associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    #[must_use]
    pub fn with_ways(mut self, ways: u32) -> Self {
        assert!(ways >= 1, "a set holds at least one line");
        self.ways = ways;
        self
    }

    /// Sets the line size.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two ≥ 8.
    #[must_use]
    pub fn with_line_bytes(mut self, line_bytes: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 8,
            "line size must be a power of two of at least 8 bytes"
        );
        self.line_bytes = line_bytes;
        self
    }

    /// Sets the MSHR file size (0 = unbounded).
    #[must_use]
    pub fn with_mshrs(mut self, mshrs: u32) -> Self {
        self.mshrs = mshrs;
        self
    }

    /// Sets the channel count.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn with_channels(mut self, channels: u32) -> Self {
        assert!(channels >= 1, "the cache has at least one channel");
        self.channels = channels;
        self
    }

    /// Sets the per-job startup latency on a channel.
    #[must_use]
    pub fn with_refill_latency(mut self, refill_latency: u32) -> Self {
        self.refill_latency = refill_latency;
        self
    }

    /// Sets the per-beat channel occupancy (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `refill_cycles_per_beat` is zero.
    #[must_use]
    pub fn with_refill_cycles_per_beat(mut self, refill_cycles_per_beat: u32) -> Self {
        assert!(
            refill_cycles_per_beat >= 1,
            "channel bandwidth is at most one beat/cycle"
        );
        self.refill_cycles_per_beat = refill_cycles_per_beat;
        self
    }

    /// Enables/disables dirty tracking and write-back eviction traffic.
    #[must_use]
    pub fn with_write_back(mut self, write_back: bool) -> Self {
        self.write_back = write_back;
        self
    }

    /// Whether capacity is unbounded (residency mode).
    #[must_use]
    pub fn is_infinite(&self) -> bool {
        self.capacity_bytes == 0
    }

    /// Number of sets (0 in infinite mode).
    #[must_use]
    pub fn sets(&self) -> u32 {
        if self.is_infinite() {
            0
        } else {
            self.capacity_bytes / (self.line_bytes * self.ways)
        }
    }

    /// 64-bit beats per line.
    #[must_use]
    pub fn line_beats(&self) -> u32 {
        self.line_bytes / 8
    }

    /// Cycles one refill or write-back job occupies its channel.
    #[must_use]
    pub fn channel_cycles(&self) -> u32 {
        self.refill_latency + self.line_beats() * self.refill_cycles_per_beat
    }

    fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two() && self.line_bytes >= 8,
            "line size must be a power of two of at least 8 bytes"
        );
        assert!(self.ways >= 1, "a set holds at least one line");
        assert!(self.channels >= 1, "the cache has at least one channel");
        assert!(
            self.refill_cycles_per_beat >= 1,
            "channel bandwidth is at most one beat/cycle"
        );
        if !self.is_infinite() {
            assert!(
                self.capacity_bytes
                    .is_multiple_of(self.line_bytes * self.ways)
                    && self.sets() >= 1,
                "capacity must be a positive multiple of line_bytes x ways \
                 (got {} B for {} B lines x {} ways)",
                self.capacity_bytes,
                self.line_bytes,
                self.ways
            );
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// What a read beat found at the cache this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The line is present: the beat may proceed (commit it if it wins
    /// whatever downstream arbitration the owner runs).
    Ready,
    /// The line is missing; a refill is in flight or was just enqueued.
    /// The beat retries next cycle.
    MissPending,
    /// The line is missing and every MSHR is occupied: the miss could
    /// not even be accepted. The beat retries next cycle.
    MshrFull,
}

/// Cumulative cache activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Committed read beats whose line was present and never missed on
    /// the way (`read_hits + read_misses` equals the committed read
    /// beats, always).
    pub read_hits: u64,
    /// Committed read beats that had stalled on a miss before being
    /// serviced.
    pub read_misses: u64,
    /// Committed write beats (writes allocate without fetch and never
    /// stall).
    pub write_beats: u64,
    /// Cycles read beats spent stalled on a missing line (one per beat
    /// per cycle).
    pub stall_cycles: u64,
    /// MSHRs allocated (distinct line-miss episodes that started a
    /// refill).
    pub mshr_allocations: u64,
    /// Same-line misses merged into an already-pending refill instead of
    /// fetching again (one per additional distinct requester).
    pub mshr_merges: u64,
    /// Cycles a miss to a *new* line found the MSHR file full.
    pub mshr_full_stalls: u64,
    /// Highest number of simultaneously outstanding line refills.
    pub mshr_peak: u64,
    /// Lines fetched from the background memory (counted at completion).
    pub refills: u64,
    /// Lines evicted to make room (clean + dirty).
    pub evictions: u64,
    /// Evicted lines that were dirty — each enqueues one write-back job
    /// (this is the write-back *traffic* count; jobs still queued when a
    /// run ends are included).
    pub dirty_evictions: u64,
    /// Write-back jobs that finished draining over a channel.
    pub writebacks_completed: u64,
}

impl CacheStats {
    /// 64-bit beats moved over the channels for refills.
    #[must_use]
    pub fn refill_beats(&self, cfg: &CacheConfig) -> u64 {
        self.refills * u64::from(cfg.line_beats())
    }

    /// 64-bit beats of write-back traffic dirty evictions generated.
    #[must_use]
    pub fn writeback_beats(&self, cfg: &CacheConfig) -> u64 {
        self.dirty_evictions * u64::from(cfg.line_beats())
    }
}

/// A queued channel job: fetch a line, or drain a dirty evictee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Job {
    Refill(u32),
    WriteBack(u32),
}

/// One resident line of a finite set (LRU order lives in the set's Vec:
/// index 0 is least recently used, the back is most recently used).
#[derive(Debug, Clone, Copy)]
struct Way {
    line: u32,
    dirty: bool,
}

/// The cycle-stepped cache: sets/residency, MSHRs and channels.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    stats: CacheStats,
    /// Infinite mode: every line ever fetched or written.
    resident: HashSet<u32>,
    /// Finite mode: per-set LRU-ordered ways.
    sets: Vec<Vec<Way>>,
    /// Lines with an allocated MSHR (refill queued or in flight).
    pending_refills: HashSet<u32>,
    /// Requesters owed a miss classification per line: populated when a
    /// read stalls, consumed when that requester's beat finally commits
    /// (so `read_misses` counts serviced missed beats, not stall
    /// cycles).
    owed: HashMap<u32, Vec<u32>>,
    /// Refill/write-back jobs not yet on a channel, FIFO.
    queue: VecDeque<Job>,
    /// The channels: `Some((job, cycles remaining))` when busy.
    channels: Vec<Option<(Job, u32)>>,
}

impl Cache {
    /// Creates an empty (fully cold) cache.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see the field docs).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let sets = if cfg.is_infinite() {
            Vec::new()
        } else {
            vec![Vec::with_capacity(cfg.ways as usize); cfg.sets() as usize]
        };
        Cache {
            stats: CacheStats::default(),
            resident: HashSet::new(),
            sets,
            pending_refills: HashSet::new(),
            owed: HashMap::new(),
            queue: VecDeque::new(),
            channels: vec![None; cfg.channels as usize],
            cfg,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Activity counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn line_of(&self, addr: u32) -> u32 {
        addr / self.cfg.line_bytes
    }

    fn set_of(&self, line: u32) -> usize {
        (line % self.cfg.sets()) as usize
    }

    fn is_line_present(&self, line: u32) -> bool {
        if self.cfg.is_infinite() {
            self.resident.contains(&line)
        } else {
            self.sets[self.set_of(line)].iter().any(|w| w.line == line)
        }
    }

    /// Whether the line holding `addr` is present (servable this cycle).
    #[must_use]
    pub fn is_present(&self, addr: u32) -> bool {
        self.is_line_present(self.line_of(addr))
    }

    /// Currently outstanding line refills (MSHR occupancy).
    #[must_use]
    pub fn mshr_occupancy(&self) -> u32 {
        self.pending_refills.len() as u32
    }

    /// Whether any channel is busy or any job is still queued.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        !self.queue.is_empty() || self.channels.iter().any(Option::is_some)
    }

    /// Cycle start: idle channels pick up queued jobs in FIFO order.
    pub fn begin_cycle(&mut self) {
        for ch in &mut self.channels {
            if ch.is_none() {
                if let Some(job) = self.queue.pop_front() {
                    *ch = Some((job, self.cfg.channel_cycles()));
                }
            }
        }
    }

    /// Looks up a read beat: [`Probe::Ready`] when its line is present,
    /// otherwise the beat stalls this cycle and the miss is recorded —
    /// allocating an MSHR and enqueueing a refill for a new line,
    /// merging into the pending refill for an already-missing one, or
    /// bouncing off a full MSHR file.
    pub fn probe_read(&mut self, addr: u32, requester: u32) -> Probe {
        let line = self.line_of(addr);
        if self.is_line_present(line) {
            return Probe::Ready;
        }
        self.stats.stall_cycles += 1;
        let outcome = if self.pending_refills.contains(&line) {
            Probe::MissPending
        } else if self.cfg.mshrs != 0 && self.pending_refills.len() as u32 >= self.cfg.mshrs {
            self.stats.mshr_full_stalls += 1;
            Probe::MshrFull
        } else {
            self.pending_refills.insert(line);
            self.queue.push_back(Job::Refill(line));
            self.stats.mshr_allocations += 1;
            self.stats.mshr_peak = self.stats.mshr_peak.max(self.pending_refills.len() as u64);
            Probe::MissPending
        };
        let waiters = self.owed.entry(line).or_default();
        if !waiters.contains(&requester) {
            if !waiters.is_empty() {
                self.stats.mshr_merges += 1;
            }
            waiters.push(requester);
        }
        outcome
    }

    /// Commits a granted read beat, classifying it as a hit or a
    /// serviced miss (the beat had stalled earlier) and refreshing LRU.
    /// Returns whether it had missed.
    ///
    /// # Panics
    ///
    /// Debug-panics if the beat's line is not present — commit only
    /// after a same-cycle [`Probe::Ready`].
    pub fn commit_read(&mut self, addr: u32, requester: u32) -> bool {
        let line = self.line_of(addr);
        debug_assert!(
            self.is_line_present(line),
            "committed a read beat whose line is absent"
        );
        let missed = match self.owed.get_mut(&line) {
            Some(waiters) => match waiters.iter().position(|&r| r == requester) {
                Some(pos) => {
                    waiters.swap_remove(pos);
                    if waiters.is_empty() {
                        self.owed.remove(&line);
                    }
                    true
                }
                None => false,
            },
            None => false,
        };
        if missed {
            self.stats.read_misses += 1;
        } else {
            self.stats.read_hits += 1;
        }
        self.touch(line);
        missed
    }

    /// Commits a granted write beat: the line is installed without a
    /// fetch (and marked dirty under `write_back`), evicting a victim if
    /// its set is full. Writes never stall.
    pub fn commit_write(&mut self, addr: u32) {
        let line = self.line_of(addr);
        self.stats.write_beats += 1;
        self.install(line, self.cfg.write_back);
    }

    /// Cycle end: busy channels advance one cycle; a finished refill
    /// installs its line (servable from next cycle) and frees its MSHR,
    /// a finished write-back just releases the channel.
    pub fn end_cycle(&mut self) {
        for i in 0..self.channels.len() {
            let Some((job, wait)) = self.channels[i].as_mut() else {
                continue;
            };
            *wait -= 1;
            if *wait > 0 {
                continue;
            }
            let job = *job;
            self.channels[i] = None;
            match job {
                Job::Refill(line) => {
                    self.pending_refills.remove(&line);
                    self.stats.refills += 1;
                    self.install(line, false);
                }
                Job::WriteBack(_) => {
                    self.stats.writebacks_completed += 1;
                }
            }
        }
    }

    /// Moves a present line to MRU (finite mode; no-op otherwise).
    fn touch(&mut self, line: u32) {
        if self.cfg.is_infinite() {
            return;
        }
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|w| w.line == line) {
            let w = set.remove(pos);
            set.push(w);
        }
    }

    /// Installs (or refreshes) a line, evicting the set's LRU victim if
    /// needed. A dirty victim enqueues a write-back job.
    fn install(&mut self, line: u32, dirty: bool) {
        if self.cfg.is_infinite() {
            self.resident.insert(line);
            return;
        }
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|w| w.line == line) {
            let mut w = set.remove(pos);
            w.dirty |= dirty;
            set.push(w);
            return;
        }
        if set.len() as u32 == self.cfg.ways {
            let victim = set.remove(0);
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.dirty_evictions += 1;
                self.queue.push_back(Job::WriteBack(victim.line));
            }
        }
        set.push(Way { line, dirty });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Steps idle cycles (no beats) until nothing is queued or in
    /// flight; returns the cycles taken.
    fn drain(cache: &mut Cache) -> u32 {
        let mut cycles = 0;
        while cache.is_busy() {
            cache.begin_cycle();
            cache.end_cycle();
            cycles += 1;
            assert!(cycles < 100_000, "channels never drained");
        }
        cycles
    }

    /// Reads `addr` to completion: probes each cycle until Ready, then
    /// commits. Returns the stall cycles spent.
    fn read_through(cache: &mut Cache, addr: u32, requester: u32) -> u32 {
        let mut stalls = 0;
        loop {
            cache.begin_cycle();
            let p = cache.probe_read(addr, requester);
            if p == Probe::Ready {
                cache.commit_read(addr, requester);
                cache.end_cycle();
                return stalls;
            }
            cache.end_cycle();
            stalls += 1;
            assert!(stalls < 100_000, "read never completed");
        }
    }

    fn finite(capacity: u32, ways: u32) -> CacheConfig {
        CacheConfig::new()
            .with_line_bytes(64)
            .with_capacity_bytes(capacity)
            .with_ways(ways)
            .with_write_back(true)
            .with_refill_latency(4)
    }

    #[test]
    fn cold_read_stalls_one_refill_then_line_hits() {
        let cfg = CacheConfig::new()
            .with_line_bytes(64)
            .with_refill_latency(8);
        let per_job = cfg.channel_cycles();
        let mut cache = Cache::new(cfg);
        // First denial enqueues; the channel starts next begin_cycle.
        assert_eq!(read_through(&mut cache, 0x100, 0), per_job + 1);
        assert_eq!(cache.stats().refills, 1);
        assert_eq!(cache.stats().read_misses, 1);
        // A neighbouring beat on the same line is warm.
        assert_eq!(read_through(&mut cache, 0x108, 0), 0);
        assert_eq!(cache.stats().read_hits, 1);
    }

    #[test]
    fn writes_install_without_fetch_and_serve_reads() {
        let mut cache = Cache::new(finite(1024, 2));
        cache.begin_cycle();
        cache.commit_write(0x200);
        cache.end_cycle();
        assert!(cache.is_present(0x200));
        assert_eq!(read_through(&mut cache, 0x208, 0), 0, "written line hits");
        assert_eq!(cache.stats().refills, 0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_way() {
        // 2 sets x 2 ways of 64 B lines; lines 0, 2, 4 map to set 0.
        let mut cache = Cache::new(finite(256, 2));
        assert_eq!(cache.config().sets(), 2);
        read_through(&mut cache, 0, 0);
        read_through(&mut cache, 2 * 64, 0);
        // Touch line 0 so line 2 is LRU, then bring in line 4.
        read_through(&mut cache, 0, 0);
        read_through(&mut cache, 4 * 64, 0);
        assert!(cache.is_present(0), "recently used line survives");
        assert!(!cache.is_present(2 * 64), "LRU way evicted");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().dirty_evictions, 0, "clean eviction is silent");
    }

    #[test]
    fn dirty_eviction_generates_writeback_traffic_on_the_channel() {
        // One set of 1 way: every new line evicts the previous one.
        let cfg = finite(64, 1);
        let mut cache = Cache::new(cfg);
        cache.begin_cycle();
        cache.commit_write(0);
        cache.end_cycle();
        // Fetch a different line into the same (only) set: the dirty
        // victim must be written back.
        read_through(&mut cache, 64, 0);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().dirty_evictions, 1);
        assert_eq!(
            cache.stats().writeback_beats(cache.config()),
            u64::from(cfg.line_beats())
        );
        // The write-back job drains over the channel.
        drain(&mut cache);
        assert_eq!(cache.stats().writebacks_completed, 1);
    }

    #[test]
    fn writeback_disabled_never_queues_traffic() {
        let cfg = finite(64, 1).with_write_back(false);
        let mut cache = Cache::new(cfg);
        cache.begin_cycle();
        cache.commit_write(0);
        cache.end_cycle();
        read_through(&mut cache, 64, 0);
        read_through(&mut cache, 128, 0);
        assert!(cache.stats().evictions >= 2);
        assert_eq!(cache.stats().dirty_evictions, 0);
        assert_eq!(cache.stats().writeback_beats(cache.config()), 0);
    }

    #[test]
    fn same_line_misses_merge_into_one_mshr() {
        let mut cache = Cache::new(CacheConfig::new().with_line_bytes(64));
        let mut stalls = (0, 0);
        loop {
            cache.begin_cycle();
            let p0 = cache.probe_read(0x40, 0);
            let p1 = cache.probe_read(0x48, 1);
            if p0 == Probe::Ready && p1 == Probe::Ready {
                cache.commit_read(0x40, 0);
                cache.commit_read(0x48, 1);
                cache.end_cycle();
                break;
            }
            stalls = (
                stalls.0 + u32::from(p0 != Probe::Ready),
                stalls.1 + u32::from(p1 != Probe::Ready),
            );
            cache.end_cycle();
        }
        assert_eq!(cache.stats().mshr_allocations, 1, "one refill for the line");
        assert_eq!(cache.stats().mshr_merges, 1, "the second requester merged");
        assert_eq!(cache.stats().refills, 1);
        assert_eq!(
            cache.stats().read_misses,
            2,
            "both beats were serviced misses"
        );
        assert_eq!(stalls.0, stalls.1, "both waited out the same refill");
    }

    #[test]
    fn full_mshr_file_rejects_new_lines_until_a_refill_retires() {
        let cfg = CacheConfig::new().with_line_bytes(64).with_mshrs(1);
        let mut cache = Cache::new(cfg);
        cache.begin_cycle();
        assert_eq!(cache.probe_read(0, 0), Probe::MissPending);
        assert_eq!(
            cache.probe_read(8 * 64, 1),
            Probe::MshrFull,
            "second distinct line bounces off the single MSHR"
        );
        // Same-line merging is not blocked by a full file.
        assert_eq!(cache.probe_read(8, 1), Probe::MissPending);
        cache.end_cycle();
        assert!(cache.stats().mshr_full_stalls >= 1);
        assert_eq!(cache.stats().mshr_peak, 1);
        // Once the first refill retires, the second line allocates.
        drain(&mut cache);
        cache.begin_cycle();
        assert_eq!(cache.probe_read(8 * 64, 1), Probe::MissPending);
        cache.end_cycle();
        assert_eq!(cache.stats().mshr_allocations, 2);
    }

    #[test]
    fn parallel_channels_overlap_refills() {
        let serial_cfg = CacheConfig::new()
            .with_line_bytes(64)
            .with_refill_latency(16);
        let run = |channels: u32| {
            let mut cache = Cache::new(serial_cfg.with_channels(channels));
            let (mut done0, mut done1) = (false, false);
            let mut cycles = 0;
            while !(done0 && done1) {
                cache.begin_cycle();
                if !done0 && cache.probe_read(0, 0) == Probe::Ready {
                    cache.commit_read(0, 0);
                    done0 = true;
                }
                if !done1 && cache.probe_read(0x1000, 1) == Probe::Ready {
                    cache.commit_read(0x1000, 1);
                    done1 = true;
                }
                cache.end_cycle();
                cycles += 1;
                assert!(cycles < 100_000);
            }
            cycles
        };
        let per_job = serial_cfg.channel_cycles();
        let one = run(1);
        let two = run(2);
        assert!(one > 2 * per_job, "one channel serialises the two lines");
        assert!(two < one, "a second channel overlaps them ({two} vs {one})");
    }

    #[test]
    fn hits_plus_misses_account_every_committed_read() {
        let mut cache = Cache::new(finite(512, 2));
        let mut committed = 0u64;
        for round in 0..4u32 {
            for i in 0..16u32 {
                read_through(&mut cache, (i * 64 + round) / 8 * 8, 0);
                committed += 1;
            }
        }
        let s = cache.stats();
        assert_eq!(s.read_hits + s.read_misses, committed);
        assert!(s.evictions > 0, "16 lines thrash a 512 B cache");
    }

    #[test]
    fn infinite_mode_never_evicts() {
        let mut cache = Cache::new(CacheConfig::new().with_line_bytes(64));
        for i in 0..64u32 {
            read_through(&mut cache, i * 64, 0);
        }
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().refills, 64);
        for i in 0..64u32 {
            assert!(cache.is_present(i * 64), "line {i} stays resident forever");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of line_bytes x ways")]
    fn misaligned_capacity_is_rejected() {
        let _ = Cache::new(
            CacheConfig::new()
                .with_line_bytes(64)
                .with_ways(3)
                .with_capacity_bytes(1000),
        );
    }
}
