//! # sc-cache — a cycle-stepped set-associative cache timing model
//!
//! The capacity/eviction/refill core behind the shared L2 of a
//! multi-cluster system. Like the rest of the memory hierarchy, the
//! cache is a **timing filter, not a data store**: one functional image
//! lives in the background memory, and this model decides *when* a beat
//! may touch it — and what traffic the decision costs on the far side.
//!
//! ## What is modelled
//!
//! * **Finite, set-associative capacity** — `capacity_bytes` split into
//!   `capacity / (line_bytes × ways)` sets with true per-set LRU
//!   replacement. `capacity_bytes == 0` selects the *infinite* residency
//!   mode: lines accumulate forever and nothing is ever evicted — the
//!   exact cold-miss-only behaviour earlier revisions of the L2 had.
//! * **Write-allocate without fetch** — a granted write installs its
//!   line immediately (DMA write-back streams write whole lines, so
//!   there is nothing to fetch) and, with `write_back` on, marks it
//!   dirty. Evicting a dirty line enqueues a **write-back job** whose
//!   beats occupy a channel like a refill's do; evicting a clean line is
//!   silent.
//! * **An MSHR file** — every in-flight line refill occupies one MSHR;
//!   same-line misses from other requesters merge into the existing
//!   entry instead of refetching ([`CacheStats::mshr_merges`]). When all
//!   `mshrs` are occupied, further misses to *new* lines stall without
//!   allocating ([`CacheStats::mshr_full_stalls`]) and retry once a
//!   refill retires. `mshrs == 0` means an unbounded file.
//! * **K parallel channels** — refill and write-back jobs drain from one
//!   FIFO over `channels` independent channels to the background memory;
//!   each job occupies its channel for `refill_latency + line_beats ×
//!   refill_cycles_per_beat` cycles. With one channel, lines serialise
//!   exactly as the single-refill-channel L2 always did.
//! * **A descriptor-driven prefetch engine** (off by default) — the
//!   owner hands the cache [`PrefetchHint`]s describing upcoming strided
//!   read footprints (a DMA engine knows its whole access pattern the
//!   moment a descriptor is enqueued). Each hint opens a *stream* whose
//!   lines are pulled ahead of demand through a **bounded request
//!   queue** ([`CacheConfig::prefetch_queue`]): per cycle a stream walks
//!   at most [`CacheConfig::prefetch_degree`] lines and never runs more
//!   than [`CacheConfig::prefetch_distance`] lines ahead of the demand
//!   beats consuming it. Prefetches allocate MSHRs and occupy channels
//!   **at lower priority than demand misses** — an idle channel takes
//!   queued demand refills and write-backs first — so prefetching can
//!   change *when* lines arrive but never which beats are serviced:
//!   cycles move, results cannot ([`CacheStats`] carries the
//!   accurate/late/useless breakdown: `prefetch_hits`,
//!   `demand_misses_covered_by_prefetch`, `prefetch_evicted_unused`).
//!
//! ## Step protocol
//!
//! The owner drives one cycle as [`Cache::begin_cycle`] (idle channels
//! pick up queued jobs) → any number of [`Cache::probe_read`] /
//! [`Cache::commit_read`] / [`Cache::commit_write`] calls for the
//! cycle's beats → [`Cache::end_cycle`] (busy channels advance; a
//! finished refill installs its line). A read beat may only be committed
//! after its probe returned [`Probe::Ready`] in the same cycle; writes
//! never stall and need no probe.
//!
//! ```
//! use sc_cache::{Cache, CacheConfig, Probe};
//!
//! let mut cache = Cache::new(CacheConfig::new().with_line_bytes(64));
//! // A cold read stalls while the line refills…
//! cache.begin_cycle();
//! assert_eq!(cache.probe_read(0x100, 0), Probe::MissPending);
//! cache.end_cycle();
//! while !cache.is_present(0x100) {
//!     cache.begin_cycle();
//!     cache.end_cycle();
//! }
//! // …then the whole line serves hits.
//! cache.begin_cycle();
//! assert_eq!(cache.probe_read(0x108, 0), Probe::Ready);
//! cache.commit_read(0x108, 0);
//! cache.end_cycle();
//! assert_eq!(cache.stats().refills, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{HashMap, HashSet, VecDeque};

use sc_trace::{MetricSource, Tracer, Track};

/// How the prefetcher turns a hint into a line sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PrefetchMode {
    /// Follow the hint's 2D stride exactly: prefetch the lines the
    /// strided transfer will actually touch, in traversal order.
    #[default]
    Strided,
    /// Ignore the stride and fetch sequential lines from the hint's
    /// start address (a classic next-line prefetcher). Identical to
    /// [`PrefetchMode::Strided`] for contiguous transfers; on genuinely
    /// strided ones it fetches the skipped-over gap lines too, which
    /// shows up as `prefetch_evicted_unused` pollution.
    NextLine,
}

/// An upcoming strided read footprint, handed to the cache by whoever
/// knows the future access pattern (the DMA engine's descriptor, at
/// `DMA_START` time): `reps` rows of `row_bytes` bytes each, consecutive
/// row starts `stride` bytes apart, read by `requester`'s demand beats
/// in traversal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchHint {
    /// Byte address of the first row on the background-memory side.
    pub addr: u32,
    /// Bytes per row (> 0).
    pub row_bytes: u32,
    /// Byte distance between consecutive row starts.
    pub stride: u32,
    /// Row count (≥ 1).
    pub reps: u32,
    /// The requester (arbitration port) whose demand beats will consume
    /// the stream — its probes advance the stream's demand cursor.
    pub requester: u32,
}

impl PrefetchHint {
    /// A 1D contiguous read footprint of `bytes` bytes.
    #[must_use]
    pub fn contiguous(addr: u32, bytes: u32, requester: u32) -> Self {
        PrefetchHint {
            addr,
            row_bytes: bytes,
            stride: bytes,
            reps: 1,
            requester,
        }
    }
}

/// Geometry, policies and refill timing of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total data capacity in bytes; **0 = infinite** (pure residency
    /// tracking, no eviction). When finite, must be a multiple of
    /// `line_bytes × ways`.
    pub capacity_bytes: u32,
    /// Associativity (lines per set, ≥ 1). Ignored in infinite mode.
    pub ways: u32,
    /// Line size in bytes (power of two, ≥ 8).
    pub line_bytes: u32,
    /// MSHR file size: in-flight line refills that may be outstanding at
    /// once; **0 = unbounded**.
    pub mshrs: u32,
    /// Parallel refill/write-back channels to the background memory (≥ 1).
    pub channels: u32,
    /// Cycles before the first beat of a refill (or write-back) moves.
    pub refill_latency: u32,
    /// Cycles per 64-bit beat on a channel (≥ 1).
    pub refill_cycles_per_beat: u32,
    /// Whether dirty lines are tracked and written back on eviction.
    pub write_back: bool,
    /// Whether the prefetch engine is active. **Off by default**: a
    /// prefetch-disabled cache is cycle-for-cycle identical to one built
    /// before the engine existed.
    pub prefetch: bool,
    /// Lines a stream may walk per cycle when issuing prefetches (≥ 1
    /// when prefetching).
    pub prefetch_degree: u32,
    /// Max lines a stream may run ahead of the demand beats consuming
    /// it (≥ 1 when prefetching).
    pub prefetch_distance: u32,
    /// Capacity of the bounded prefetch-request queue between the
    /// streams and the channels (≥ 1 when prefetching); a full queue
    /// back-pressures the streams, it never stalls demand.
    pub prefetch_queue: u32,
    /// How hints expand into line sequences.
    pub prefetch_mode: PrefetchMode,
}

impl CacheConfig {
    /// Defaults matching the residency-only L2 of earlier revisions:
    /// infinite capacity, one channel, unbounded MSHRs, no write-back —
    /// 256 B lines refilled over a Dram-like channel.
    #[must_use]
    pub fn new() -> Self {
        CacheConfig {
            capacity_bytes: 0,
            ways: 8,
            line_bytes: 256,
            mshrs: 0,
            channels: 1,
            refill_latency: 64,
            refill_cycles_per_beat: 1,
            write_back: false,
            prefetch: false,
            prefetch_degree: 2,
            prefetch_distance: 16,
            prefetch_queue: 32,
            prefetch_mode: PrefetchMode::Strided,
        }
    }

    /// Sets the capacity (0 = infinite). The multiple-of-`line_bytes ×
    /// ways` constraint is checked when the cache is instantiated, once
    /// the whole geometry is known.
    #[must_use]
    pub fn with_capacity_bytes(mut self, capacity_bytes: u32) -> Self {
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Sets the associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    #[must_use]
    pub fn with_ways(mut self, ways: u32) -> Self {
        assert!(ways >= 1, "a set holds at least one line");
        self.ways = ways;
        self
    }

    /// Sets the line size.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two ≥ 8.
    #[must_use]
    pub fn with_line_bytes(mut self, line_bytes: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 8,
            "line size must be a power of two of at least 8 bytes"
        );
        self.line_bytes = line_bytes;
        self
    }

    /// Sets the MSHR file size (0 = unbounded).
    #[must_use]
    pub fn with_mshrs(mut self, mshrs: u32) -> Self {
        self.mshrs = mshrs;
        self
    }

    /// Sets the channel count.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn with_channels(mut self, channels: u32) -> Self {
        assert!(channels >= 1, "the cache has at least one channel");
        self.channels = channels;
        self
    }

    /// Sets the per-job startup latency on a channel.
    #[must_use]
    pub fn with_refill_latency(mut self, refill_latency: u32) -> Self {
        self.refill_latency = refill_latency;
        self
    }

    /// Sets the per-beat channel occupancy (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `refill_cycles_per_beat` is zero.
    #[must_use]
    pub fn with_refill_cycles_per_beat(mut self, refill_cycles_per_beat: u32) -> Self {
        assert!(
            refill_cycles_per_beat >= 1,
            "channel bandwidth is at most one beat/cycle"
        );
        self.refill_cycles_per_beat = refill_cycles_per_beat;
        self
    }

    /// Enables/disables dirty tracking and write-back eviction traffic.
    #[must_use]
    pub fn with_write_back(mut self, write_back: bool) -> Self {
        self.write_back = write_back;
        self
    }

    /// Enables/disables the prefetch engine.
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Sets the per-stream issue rate in lines per cycle (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `prefetch_degree` is zero.
    #[must_use]
    pub fn with_prefetch_degree(mut self, prefetch_degree: u32) -> Self {
        assert!(prefetch_degree >= 1, "a stream walks at least one line");
        self.prefetch_degree = prefetch_degree;
        self
    }

    /// Sets how far ahead of demand a stream may run, in lines (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `prefetch_distance` is zero.
    #[must_use]
    pub fn with_prefetch_distance(mut self, prefetch_distance: u32) -> Self {
        assert!(
            prefetch_distance >= 1,
            "a stream runs at least one line ahead"
        );
        self.prefetch_distance = prefetch_distance;
        self
    }

    /// Sets the bounded prefetch-request queue capacity (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `prefetch_queue` is zero.
    #[must_use]
    pub fn with_prefetch_queue(mut self, prefetch_queue: u32) -> Self {
        assert!(
            prefetch_queue >= 1,
            "the prefetch-request queue holds at least one entry"
        );
        self.prefetch_queue = prefetch_queue;
        self
    }

    /// Sets the hint-expansion mode.
    #[must_use]
    pub fn with_prefetch_mode(mut self, prefetch_mode: PrefetchMode) -> Self {
        self.prefetch_mode = prefetch_mode;
        self
    }

    /// Whether capacity is unbounded (residency mode).
    #[must_use]
    pub fn is_infinite(&self) -> bool {
        self.capacity_bytes == 0
    }

    /// Number of sets (0 in infinite mode).
    #[must_use]
    pub fn sets(&self) -> u32 {
        if self.is_infinite() {
            0
        } else {
            self.capacity_bytes / (self.line_bytes * self.ways)
        }
    }

    /// 64-bit beats per line.
    #[must_use]
    pub fn line_beats(&self) -> u32 {
        self.line_bytes / 8
    }

    /// Cycles one refill or write-back job occupies its channel.
    #[must_use]
    pub fn channel_cycles(&self) -> u32 {
        self.refill_latency + self.line_beats() * self.refill_cycles_per_beat
    }

    fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two() && self.line_bytes >= 8,
            "line size must be a power of two of at least 8 bytes"
        );
        assert!(self.ways >= 1, "a set holds at least one line");
        assert!(self.channels >= 1, "the cache has at least one channel");
        assert!(
            self.refill_cycles_per_beat >= 1,
            "channel bandwidth is at most one beat/cycle"
        );
        if self.prefetch {
            assert!(
                self.prefetch_degree >= 1,
                "a stream walks at least one line"
            );
            assert!(
                self.prefetch_distance >= 1,
                "a stream runs at least one line ahead"
            );
            assert!(
                self.prefetch_queue >= 1,
                "the prefetch-request queue holds at least one entry"
            );
        }
        if !self.is_infinite() {
            assert!(
                self.capacity_bytes
                    .is_multiple_of(self.line_bytes * self.ways)
                    && self.sets() >= 1,
                "capacity must be a positive multiple of line_bytes x ways \
                 (got {} B for {} B lines x {} ways)",
                self.capacity_bytes,
                self.line_bytes,
                self.ways
            );
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// What a read beat found at the cache this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The line is present: the beat may proceed (commit it if it wins
    /// whatever downstream arbitration the owner runs).
    Ready,
    /// The line is missing; a refill is in flight or was just enqueued.
    /// The beat retries next cycle.
    MissPending,
    /// The line is missing and every MSHR is occupied: the miss could
    /// not even be accepted. The beat retries next cycle.
    MshrFull,
}

/// How soon a cache next needs a dense cycle (see [`Cache::next_wake`]).
/// Deliberately local to this crate — `sc-cache` sits below the
/// scheduler in the dependency order, so owners convert to their own
/// wake vocabulary (`In(n)` is *relative*: inert for the next `n`
/// cycles, dense on cycle `now + n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheWake {
    /// Something progresses every cycle (prefetcher walking, a queued
    /// demand job about to claim a free channel, a channel one cycle
    /// from completion).
    EveryCycle,
    /// Provably inert for the next `n` cycles (`n >= 1`): only busy
    /// channel countdowns tick, and none reaches zero before then.
    In(u64),
    /// Fully drained — stepping is a no-op for any span with no demand
    /// traffic.
    Quiescent,
}

/// Cumulative cache activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Committed read beats whose line was present and never missed on
    /// the way (`read_hits + read_misses` equals the committed read
    /// beats, always).
    pub read_hits: u64,
    /// Committed read beats that had stalled on a miss before being
    /// serviced.
    pub read_misses: u64,
    /// Committed write beats (writes allocate without fetch and never
    /// stall).
    pub write_beats: u64,
    /// Cycles read beats spent stalled on a missing line (one per beat
    /// per cycle).
    pub stall_cycles: u64,
    /// MSHRs allocated (distinct line-miss episodes that started a
    /// refill).
    pub mshr_allocations: u64,
    /// Same-line misses merged into an already-pending refill instead of
    /// fetching again (one per additional distinct requester).
    pub mshr_merges: u64,
    /// Cycles a miss to a *new* line found the MSHR file full.
    pub mshr_full_stalls: u64,
    /// Highest number of simultaneously outstanding line refills.
    pub mshr_peak: u64,
    /// Lines fetched from the background memory (counted at completion).
    pub refills: u64,
    /// Lines evicted to make room (clean + dirty).
    pub evictions: u64,
    /// Evicted lines that were dirty — each enqueues one write-back job
    /// (this is the write-back *traffic* count; jobs still queued when a
    /// run ends are included).
    pub dirty_evictions: u64,
    /// Write-back jobs that finished draining over a channel.
    pub writebacks_completed: u64,
    /// Prefetch hints accepted into the stream table.
    pub prefetch_hints: u64,
    /// Prefetch line fetches issued to the background memory (an MSHR
    /// allocated and a channel job started, at lower priority than
    /// demand misses).
    pub prefetches_issued: u64,
    /// Prefetch-issued line fetches that completed — the subset of
    /// [`CacheStats::refills`] whose beats moved because of the
    /// prefetcher (energy charges them exactly like demand refill
    /// beats).
    pub prefetch_refills: u64,
    /// **Accurate** prefetches: prefetched lines that served a demand
    /// *read* before being evicted (counted once per line, so
    /// `prefetch_hits ≤ prefetches_issued` always). A write overwriting
    /// a never-read prefetched line is *not* a hit — it allocates
    /// without a fetch, so the prefetched data went unused — but it is
    /// not eviction waste either; such fetches stay unclassified.
    pub prefetch_hits: u64,
    /// **Late** prefetches: demand misses to a line whose prefetch was
    /// still in flight — the miss merged into the prefetch's MSHR
    /// instead of paying a fresh full-latency fetch (counted once per
    /// line episode).
    pub demand_misses_covered_by_prefetch: u64,
    /// **Useless** prefetches: prefetched lines evicted without a single
    /// demand access — pure pollution and wasted channel beats.
    pub prefetch_evicted_unused: u64,
}

impl CacheStats {
    /// 64-bit beats moved over the channels for refills.
    #[must_use]
    pub fn refill_beats(&self, cfg: &CacheConfig) -> u64 {
        self.refills * u64::from(cfg.line_beats())
    }

    /// 64-bit beats of write-back traffic dirty evictions generated.
    #[must_use]
    pub fn writeback_beats(&self, cfg: &CacheConfig) -> u64 {
        self.dirty_evictions * u64::from(cfg.line_beats())
    }

    /// 64-bit beats the channels moved for prefetch-issued refills (a
    /// subset of [`CacheStats::refill_beats`]).
    #[must_use]
    pub fn prefetch_beats(&self, cfg: &CacheConfig) -> u64 {
        self.prefetch_refills * u64::from(cfg.line_beats())
    }
}

impl MetricSource for CacheStats {
    fn source_name(&self) -> &'static str {
        "cache"
    }

    fn visit_metrics(&self, visit: &mut dyn FnMut(&'static str, u64)) {
        visit("read_hits", self.read_hits);
        visit("read_misses", self.read_misses);
        visit("write_beats", self.write_beats);
        visit("stall_cycles", self.stall_cycles);
        visit("mshr_allocations", self.mshr_allocations);
        visit("mshr_merges", self.mshr_merges);
        visit("mshr_full_stalls", self.mshr_full_stalls);
        visit("mshr_peak", self.mshr_peak);
        visit("refills", self.refills);
        visit("evictions", self.evictions);
        visit("dirty_evictions", self.dirty_evictions);
        visit("writebacks_completed", self.writebacks_completed);
        visit("prefetch_hints", self.prefetch_hints);
        visit("prefetches_issued", self.prefetches_issued);
        visit("prefetch_refills", self.prefetch_refills);
        visit("prefetch_hits", self.prefetch_hits);
        visit(
            "demand_misses_covered_by_prefetch",
            self.demand_misses_covered_by_prefetch,
        );
        visit("prefetch_evicted_unused", self.prefetch_evicted_unused);
    }
}

/// A queued channel job: fetch a line, or drain a dirty evictee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Job {
    Refill(u32),
    WriteBack(u32),
}

/// Who initiated an in-flight line refill (its MSHR's origin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// A demand miss allocated the MSHR.
    Demand,
    /// The prefetcher allocated the MSHR; no demand beat wants the line
    /// yet.
    Prefetch,
    /// The prefetcher allocated the MSHR and a demand miss later merged
    /// into it — a *late* prefetch
    /// ([`CacheStats::demand_misses_covered_by_prefetch`]).
    Covered,
}

/// One resident line of a finite set (LRU order lives in the set's Vec:
/// index 0 is least recently used, the back is most recently used).
#[derive(Debug, Clone, Copy)]
struct Way {
    line: u32,
    dirty: bool,
    /// Installed by a prefetch and not yet demand-touched: the flag that
    /// classifies the prefetch as accurate (first demand touch) or
    /// useless (evicted still set).
    prefetched: bool,
}

/// A position in a stream's line sequence.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    row: u32,
    line: u32,
}

/// An active prefetch stream: one accepted [`PrefetchHint`], expanded
/// lazily into its line sequence with independent issue and demand
/// cursors (the issue cursor never falls behind the demand cursor).
#[derive(Debug)]
struct Stream {
    requester: u32,
    addr: u32,
    row_bytes: u32,
    stride: u32,
    reps: u32,
    line_bytes: u32,
    /// Next sequence position the prefetcher will walk; `None` when the
    /// whole footprint has been issued.
    issue: Option<Cursor>,
    /// Next sequence position a demand beat will enter; `None` once
    /// demand consumed the footprint.
    demand: Option<Cursor>,
    /// Lines the issue cursor is ahead of the demand cursor — bounded by
    /// [`CacheConfig::prefetch_distance`].
    ahead: u32,
    /// How many sequence positions [`Stream::note_demand`] searches for
    /// a probed line before concluding the line is not this stream's
    /// (`prefetch_distance + prefetch_degree` — demand inside the issued
    /// window is always within `ahead ≤ distance` positions).
    window: u32,
    /// The line the last demand probe carried — a beat probes its line
    /// once per stalled cycle and ~`line_bytes / 8` times once warm, so
    /// memoising the last line keeps the hot path O(1).
    last_demand: Option<u32>,
}

impl Stream {
    fn new(hint: PrefetchHint, mode: PrefetchMode, line_bytes: u32, window: u32) -> Self {
        // Next-line mode flattens the footprint to a contiguous run of
        // the same total size starting at the hint address.
        let (row_bytes, stride, reps) = match mode {
            PrefetchMode::Strided => (hint.row_bytes, hint.stride, hint.reps),
            PrefetchMode::NextLine => (
                hint.row_bytes.saturating_mul(hint.reps),
                hint.row_bytes.saturating_mul(hint.reps),
                1,
            ),
        };
        let mut s = Stream {
            requester: hint.requester,
            addr: hint.addr,
            row_bytes,
            stride,
            reps,
            line_bytes,
            issue: None,
            demand: None,
            ahead: 0,
            window,
            last_demand: None,
        };
        let start = Cursor {
            row: 0,
            line: s.row_first(0),
        };
        s.issue = Some(start);
        s.demand = Some(start);
        s
    }

    fn row_first(&self, row: u32) -> u32 {
        self.addr.wrapping_add(row.wrapping_mul(self.stride)) / self.line_bytes
    }

    fn row_last(&self, row: u32) -> u32 {
        self.addr
            .wrapping_add(row.wrapping_mul(self.stride))
            .wrapping_add(self.row_bytes - 1)
            / self.line_bytes
    }

    fn advance(&self, c: Cursor) -> Option<Cursor> {
        if c.line < self.row_last(c.row) {
            Some(Cursor {
                row: c.row,
                line: c.line + 1,
            })
        } else if c.row + 1 < self.reps {
            let row = c.row + 1;
            Some(Cursor {
                row,
                line: self.row_first(row),
            })
        } else {
            None
        }
    }

    /// A demand beat from this stream's requester probed `line`. If the
    /// line is one of this stream's upcoming positions (searched
    /// in-order within `window` positions of the demand cursor), the
    /// cursor advances past it — skipped positions count as consumed,
    /// and when demand thereby overtakes the issue cursor (lines the
    /// prefetcher never got to), the issue cursor is dragged forward
    /// too: no point fetching lines demand already paid for. A line
    /// that is *not* in the window leaves the stream untouched — the
    /// same requester's beats into a **different** stream's footprint
    /// must not cancel this one (a cluster's engine interleaves
    /// descriptors for several disjoint regions).
    fn note_demand(&mut self, line: u32) {
        if self.last_demand == Some(line) {
            return;
        }
        self.last_demand = Some(line);
        let mut probe = self.demand;
        for _ in 0..=self.window {
            let Some(c) = probe else { return };
            if c.line == line {
                // Found: consume every position up to and including the
                // first occurrence (the walk repeats the search's order,
                // so stopping at the line is stopping at `c`).
                while let Some(d) = self.demand {
                    self.demand = self.advance(d);
                    if self.ahead > 0 {
                        self.ahead -= 1;
                    } else {
                        self.issue = self.demand;
                    }
                    if d.line == line {
                        return;
                    }
                }
                return;
            }
            probe = self.advance(c);
        }
    }

    /// Whether both cursors ran off the end — the stream retires.
    fn exhausted(&self) -> bool {
        self.issue.is_none() && self.demand.is_none()
    }
}

/// Active streams the prefetcher tracks at once; the oldest stream is
/// evicted when a hint arrives with the table full.
const MAX_STREAMS: usize = 16;

/// The cycle-stepped cache: sets/residency, MSHRs, channels and the
/// prefetch engine.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    stats: CacheStats,
    /// Infinite mode: every line ever fetched or written, with its
    /// prefetched-and-untouched flag.
    resident: HashMap<u32, bool>,
    /// Finite mode: per-set LRU-ordered ways.
    sets: Vec<Vec<Way>>,
    /// Lines with an allocated MSHR (refill queued or in flight), with
    /// the origin that decides the accuracy accounting.
    pending_refills: HashMap<u32, Origin>,
    /// Requesters owed a miss classification per line: populated when a
    /// read stalls, consumed when that requester's beat finally commits
    /// (so `read_misses` counts serviced missed beats, not stall
    /// cycles).
    owed: HashMap<u32, Vec<u32>>,
    /// Demand refill/write-back jobs not yet on a channel, FIFO. Idle
    /// channels always drain this queue before touching the prefetch
    /// queue.
    queue: VecDeque<Job>,
    /// The channels: `Some((job, cycles remaining))` when busy.
    channels: Vec<Option<(Job, u32)>>,
    /// Active prefetch streams, oldest first.
    streams: VecDeque<Stream>,
    /// The bounded prefetch-request queue (lines awaiting an MSHR and a
    /// channel), plus its membership set for cheap dedup.
    prefetch_queue: VecDeque<u32>,
    prefetch_queued: HashSet<u32>,
    /// Observability bus handle (off by default — a `None` check per
    /// emit site) and the base timeline track: counters and prefetch
    /// instants on the track itself, channel `i` on `tid + 1 + i`.
    tracer: Tracer,
    track: Track,
}

impl Cache {
    /// Creates an empty (fully cold) cache.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see the field docs).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let sets = if cfg.is_infinite() {
            Vec::new()
        } else {
            vec![Vec::with_capacity(cfg.ways as usize); cfg.sets() as usize]
        };
        Cache {
            stats: CacheStats::default(),
            resident: HashMap::new(),
            sets,
            pending_refills: HashMap::new(),
            owed: HashMap::new(),
            queue: VecDeque::new(),
            channels: vec![None; cfg.channels as usize],
            streams: VecDeque::new(),
            prefetch_queue: VecDeque::new(),
            prefetch_queued: HashSet::new(),
            tracer: Tracer::off(),
            track: Track::new(0, 0),
            cfg,
        }
    }

    /// Subscribes this cache to an observability bus. Channel activity
    /// renders on `track.tid + 1 + channel`; MSHR/prefetch counters and
    /// prefetch-lifecycle instants on `track` itself.
    pub fn set_tracer(&mut self, tracer: Tracer, track: Track) {
        self.track = track;
        if tracer.is_on() {
            tracer.name_thread(track, "cache");
            for i in 0..self.channels.len() {
                tracer.name_thread(self.channel_track(i), &format!("channel{i}"));
            }
        }
        self.tracer = tracer;
    }

    fn channel_track(&self, channel: usize) -> Track {
        Track::new(self.track.pid, self.track.tid + 1 + channel as u32)
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Activity counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn line_of(&self, addr: u32) -> u32 {
        addr / self.cfg.line_bytes
    }

    fn set_of(&self, line: u32) -> usize {
        (line % self.cfg.sets()) as usize
    }

    fn is_line_present(&self, line: u32) -> bool {
        if self.cfg.is_infinite() {
            self.resident.contains_key(&line)
        } else {
            self.sets[self.set_of(line)].iter().any(|w| w.line == line)
        }
    }

    /// Whether the line holding `addr` is present (servable this cycle).
    #[must_use]
    pub fn is_present(&self, addr: u32) -> bool {
        self.is_line_present(self.line_of(addr))
    }

    /// Currently outstanding line refills (MSHR occupancy).
    #[must_use]
    pub fn mshr_occupancy(&self) -> u32 {
        self.pending_refills.len() as u32
    }

    /// Whether any channel is busy or any demand job is still queued
    /// (pending prefetch *requests* don't count: they are dropped, not
    /// owed, if the owner stops cycling).
    #[must_use]
    pub fn is_busy(&self) -> bool {
        !self.queue.is_empty() || self.channels.iter().any(Option::is_some)
    }

    /// Whether stepping the cache is a provable no-op: no demand job
    /// queued, no channel draining, no open prefetch stream and no
    /// queued prefetch request. Stricter than `!`[`Cache::is_busy`] —
    /// an event-driven owner needs the prefetcher fully drained too
    /// before fast-forwarding an idle window, because `begin_cycle`
    /// walks streams and issues queued prefetches even with no demand
    /// traffic.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        !self.is_busy() && self.streams.is_empty() && self.prefetch_queue.is_empty()
    }

    /// Prefetch requests waiting for an MSHR and a channel (test/debug
    /// inspection).
    #[must_use]
    pub fn prefetch_backlog(&self) -> usize {
        self.prefetch_queue.len()
    }

    /// How soon this cache next needs a dense cycle, from channel
    /// countdowns and MSHR/queue state. The contract mirrors the
    /// event scheduler's wake surface without depending on it:
    ///
    /// - open prefetch streams or queued prefetch requests walk every
    ///   `begin_cycle` → [`CacheWake::EveryCycle`];
    /// - a queued demand job with a channel free to take it starts next
    ///   `begin_cycle` → [`CacheWake::EveryCycle`];
    /// - otherwise only busy channels tick: the earliest completion
    ///   (install/free-MSHR/stats) must run densely, so the cache is
    ///   inert for exactly `min(wait) - 1` cycles → [`CacheWake::In`]
    ///   (collapsing to `EveryCycle` when the minimum is already 1);
    /// - fully drained → [`CacheWake::Quiescent`].
    #[must_use]
    pub fn next_wake(&self) -> CacheWake {
        if !self.streams.is_empty() || !self.prefetch_queue.is_empty() {
            return CacheWake::EveryCycle;
        }
        if !self.queue.is_empty() && self.channels.iter().any(Option::is_none) {
            return CacheWake::EveryCycle;
        }
        let min_wait = self.channels.iter().flatten().map(|(_, wait)| *wait).min();
        match min_wait {
            None => CacheWake::Quiescent,
            Some(wait) if wait <= 1 => CacheWake::EveryCycle,
            Some(wait) => CacheWake::In(u64::from(wait) - 1),
        }
    }

    /// Bulk-advances an inert window: every busy channel's countdown
    /// drops by `cycles` with no completion, install or stat side
    /// effects — exactly what `cycles` dense steps with no demand beats
    /// would have done. Valid only within the window [`Cache::next_wake`]
    /// granted (`CacheWake::In(n)` with `cycles <= n`, or any span while
    /// quiescent).
    pub fn skip(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        debug_assert!(
            match self.next_wake() {
                CacheWake::Quiescent => true,
                CacheWake::In(n) => cycles <= n,
                CacheWake::EveryCycle => false,
            },
            "cache skipped past its wake point"
        );
        for ch in self.channels.iter_mut().flatten() {
            let (_, wait) = ch;
            *wait -= u32::try_from(cycles).expect("skip window exceeds u32 channel countdown");
        }
    }

    /// Accepts an upcoming read footprint as a prefetch stream. A no-op
    /// unless [`CacheConfig::prefetch`] is on; with the stream table
    /// full, the oldest stream is evicted to make room. Hints with an
    /// empty footprint are ignored.
    pub fn prefetch_hint(&mut self, hint: PrefetchHint) {
        if !self.cfg.prefetch || hint.row_bytes == 0 || hint.reps == 0 {
            return;
        }
        if self.streams.len() >= MAX_STREAMS {
            self.streams.pop_front();
        }
        self.streams.push_back(Stream::new(
            hint,
            self.cfg.prefetch_mode,
            self.cfg.line_bytes,
            self.cfg.prefetch_distance + self.cfg.prefetch_degree,
        ));
        self.stats.prefetch_hints += 1;
        self.tracer.instant(self.track, "prefetch-stream-open");
    }

    /// Cycle start: streams feed the bounded prefetch-request queue,
    /// then idle channels pick up work — queued **demand** jobs
    /// (refills and write-backs) strictly first, prefetch requests only
    /// with channels and MSHRs to spare.
    pub fn begin_cycle(&mut self) {
        self.issue_prefetches();
        for i in 0..self.channels.len() {
            if self.channels[i].is_none() {
                if let Some(job) = self.queue.pop_front() {
                    let label = match job {
                        Job::Refill(_) => "refill",
                        Job::WriteBack(_) => "write-back",
                    };
                    self.tracer.begin(self.channel_track(i), label);
                    self.channels[i] = Some((job, self.cfg.channel_cycles()));
                } else if let Some(line) = self.pop_prefetch_request() {
                    self.pending_refills.insert(line, Origin::Prefetch);
                    self.stats.prefetches_issued += 1;
                    self.stats.mshr_peak =
                        self.stats.mshr_peak.max(self.pending_refills.len() as u64);
                    self.tracer.instant(self.track, "prefetch-issue");
                    self.tracer.begin(self.channel_track(i), "prefetch");
                    self.channels[i] = Some((Job::Refill(line), self.cfg.channel_cycles()));
                }
            }
        }
        if self.tracer.is_on() {
            self.tracer.counter(
                self.track,
                "mshr-occupancy",
                u64::from(self.mshr_occupancy()),
            );
            self.tracer.counter(
                self.track,
                "prefetch-backlog",
                self.prefetch_queue.len() as u64,
            );
        }
    }

    /// Walks every stream up to `prefetch_degree` lines, pushing lines
    /// that are neither present, nor pending, nor already queued into
    /// the bounded request queue. Exhausted streams retire.
    fn issue_prefetches(&mut self) {
        if self.streams.is_empty() {
            return;
        }
        let mut streams = std::mem::take(&mut self.streams);
        for s in &mut streams {
            let mut walked = 0;
            while walked < self.cfg.prefetch_degree
                && s.ahead < self.cfg.prefetch_distance
                && (self.prefetch_queue.len() as u32) < self.cfg.prefetch_queue
            {
                let Some(c) = s.issue else { break };
                s.issue = s.advance(c);
                s.ahead += 1;
                walked += 1;
                if !self.is_line_present(c.line)
                    && !self.pending_refills.contains_key(&c.line)
                    && self.prefetch_queued.insert(c.line)
                {
                    self.prefetch_queue.push_back(c.line);
                }
            }
        }
        streams.retain(|s| !s.exhausted());
        self.streams = streams;
    }

    /// Pops the next *useful* prefetch request: stale entries (line
    /// became present or pending since it was queued) are discarded, and
    /// nothing is popped when the MSHR file is already full. A prefetch
    /// *may* take the last free MSHR ahead of a demand miss arriving
    /// later the same cycle (the miss then bounces `MshrFull` and
    /// retries — pinned by the tiny-MSHR prefetch-pressure tests);
    /// demand priority is enforced at the channels, which always drain
    /// the demand job FIFO first.
    fn pop_prefetch_request(&mut self) -> Option<u32> {
        if self.cfg.mshrs != 0 && self.pending_refills.len() as u32 >= self.cfg.mshrs {
            return None;
        }
        while let Some(line) = self.prefetch_queue.pop_front() {
            self.prefetch_queued.remove(&line);
            if !self.is_line_present(line) && !self.pending_refills.contains_key(&line) {
                return Some(line);
            }
        }
        None
    }

    /// Looks up a read beat: [`Probe::Ready`] when its line is present,
    /// otherwise the beat stalls this cycle and the miss is recorded —
    /// allocating an MSHR and enqueueing a refill for a new line,
    /// merging into the pending refill for an already-missing one, or
    /// bouncing off a full MSHR file.
    pub fn probe_read(&mut self, addr: u32, requester: u32) -> Probe {
        let line = self.line_of(addr);
        // The demand beat drives its requester's streams forward — the
        // prefetcher's run-ahead window is measured against this.
        for s in &mut self.streams {
            if s.requester == requester {
                s.note_demand(line);
            }
        }
        if self.is_line_present(line) {
            return Probe::Ready;
        }
        self.stats.stall_cycles += 1;
        let outcome = if let Some(origin) = self.pending_refills.get_mut(&line) {
            if *origin == Origin::Prefetch {
                // A late prefetch: demand wanted the line while its
                // prefetch was still in flight. The miss merges into
                // the existing MSHR and waits out the remainder.
                *origin = Origin::Covered;
                self.stats.demand_misses_covered_by_prefetch += 1;
                self.tracer.instant(self.track, "prefetch-covered");
            }
            Probe::MissPending
        } else if self.cfg.mshrs != 0 && self.pending_refills.len() as u32 >= self.cfg.mshrs {
            self.stats.mshr_full_stalls += 1;
            Probe::MshrFull
        } else {
            self.pending_refills.insert(line, Origin::Demand);
            self.queue.push_back(Job::Refill(line));
            self.stats.mshr_allocations += 1;
            self.stats.mshr_peak = self.stats.mshr_peak.max(self.pending_refills.len() as u64);
            Probe::MissPending
        };
        let waiters = self.owed.entry(line).or_default();
        if !waiters.contains(&requester) {
            if !waiters.is_empty() {
                self.stats.mshr_merges += 1;
            }
            waiters.push(requester);
        }
        outcome
    }

    /// Commits a granted read beat, classifying it as a hit or a
    /// serviced miss (the beat had stalled earlier) and refreshing LRU.
    /// Returns whether it had missed.
    ///
    /// # Panics
    ///
    /// Debug-panics if the beat's line is not present — commit only
    /// after a same-cycle [`Probe::Ready`].
    pub fn commit_read(&mut self, addr: u32, requester: u32) -> bool {
        let line = self.line_of(addr);
        debug_assert!(
            self.is_line_present(line),
            "committed a read beat whose line is absent"
        );
        let missed = match self.owed.get_mut(&line) {
            Some(waiters) => match waiters.iter().position(|&r| r == requester) {
                Some(pos) => {
                    waiters.swap_remove(pos);
                    if waiters.is_empty() {
                        self.owed.remove(&line);
                    }
                    true
                }
                None => false,
            },
            None => false,
        };
        if missed {
            self.stats.read_misses += 1;
        } else {
            self.stats.read_hits += 1;
        }
        self.demand_touch(line);
        missed
    }

    /// Commits a granted write beat: the line is installed without a
    /// fetch (and marked dirty under `write_back`), evicting a victim if
    /// its set is full. Writes never stall.
    pub fn commit_write(&mut self, addr: u32) {
        let line = self.line_of(addr);
        self.stats.write_beats += 1;
        self.install(line, self.cfg.write_back, false);
    }

    /// Cycle end: busy channels advance one cycle; a finished refill
    /// installs its line (servable from next cycle) and frees its MSHR —
    /// flagged *prefetched* when the prefetcher initiated it and no
    /// demand miss merged in meanwhile — a finished write-back just
    /// releases the channel.
    pub fn end_cycle(&mut self) {
        for i in 0..self.channels.len() {
            let Some((job, wait)) = self.channels[i].as_mut() else {
                continue;
            };
            *wait -= 1;
            if *wait > 0 {
                continue;
            }
            let job = *job;
            self.channels[i] = None;
            self.tracer.end(self.channel_track(i));
            match job {
                Job::Refill(line) => {
                    let origin = self.pending_refills.remove(&line).unwrap_or(Origin::Demand);
                    self.stats.refills += 1;
                    if origin != Origin::Demand {
                        self.stats.prefetch_refills += 1;
                    }
                    self.install(line, false, origin == Origin::Prefetch);
                }
                Job::WriteBack(_) => {
                    self.stats.writebacks_completed += 1;
                }
            }
        }
    }

    /// A demand beat used `line`: refresh LRU, and if the line was
    /// installed by a still-unused prefetch, bank the accurate-prefetch
    /// credit and clear the flag.
    fn demand_touch(&mut self, line: u32) {
        if self.cfg.is_infinite() {
            if let Some(flag) = self.resident.get_mut(&line) {
                if std::mem::replace(flag, false) {
                    self.stats.prefetch_hits += 1;
                    self.tracer.instant(self.track, "prefetch-hit");
                }
            }
            return;
        }
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|w| w.line == line) {
            let mut w = set.remove(pos);
            if std::mem::replace(&mut w.prefetched, false) {
                self.stats.prefetch_hits += 1;
                self.tracer.instant(self.track, "prefetch-hit");
            }
            set.push(w);
        }
    }

    /// Installs (or refreshes) a line, evicting the set's LRU victim if
    /// needed. A dirty victim enqueues a write-back job; a victim still
    /// flagged prefetched counts as a useless prefetch. `prefetched`
    /// marks a fresh prefetch install. A refresh of an already-present
    /// prefetched line clears the flag **without** banking an accuracy
    /// credit: on this write-allocate-without-fetch cache, a write
    /// overwriting a never-read prefetched line did not consume the
    /// fetched data (a cold write would have cost the same), so the
    /// fetch stays unclassified — only a demand *read*
    /// ([`Cache::demand_touch`] via [`Cache::commit_read`]) is an
    /// accurate prefetch.
    fn install(&mut self, line: u32, dirty: bool, prefetched: bool) {
        if self.cfg.is_infinite() {
            match self.resident.entry(line) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if !prefetched {
                        *e.get_mut() = false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(prefetched);
                }
            }
            return;
        }
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|w| w.line == line) {
            let mut w = set.remove(pos);
            w.dirty |= dirty;
            if !prefetched {
                w.prefetched = false;
            }
            set.push(w);
            return;
        }
        if set.len() as u32 == self.cfg.ways {
            let victim = set.remove(0);
            self.stats.evictions += 1;
            if victim.prefetched {
                self.stats.prefetch_evicted_unused += 1;
                self.tracer.instant(self.track, "prefetch-evicted-unused");
            }
            if victim.dirty {
                self.stats.dirty_evictions += 1;
                self.queue.push_back(Job::WriteBack(victim.line));
            }
        }
        set.push(Way {
            line,
            dirty,
            prefetched,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Steps idle cycles (no beats) until nothing is queued or in
    /// flight; returns the cycles taken.
    fn drain(cache: &mut Cache) -> u32 {
        let mut cycles = 0;
        while cache.is_busy() {
            cache.begin_cycle();
            cache.end_cycle();
            cycles += 1;
            assert!(cycles < 100_000, "channels never drained");
        }
        cycles
    }

    /// Reads `addr` to completion: probes each cycle until Ready, then
    /// commits. Returns the stall cycles spent.
    fn read_through(cache: &mut Cache, addr: u32, requester: u32) -> u32 {
        let mut stalls = 0;
        loop {
            cache.begin_cycle();
            let p = cache.probe_read(addr, requester);
            if p == Probe::Ready {
                cache.commit_read(addr, requester);
                cache.end_cycle();
                return stalls;
            }
            cache.end_cycle();
            stalls += 1;
            assert!(stalls < 100_000, "read never completed");
        }
    }

    fn finite(capacity: u32, ways: u32) -> CacheConfig {
        CacheConfig::new()
            .with_line_bytes(64)
            .with_capacity_bytes(capacity)
            .with_ways(ways)
            .with_write_back(true)
            .with_refill_latency(4)
    }

    #[test]
    fn next_wake_tracks_channel_countdowns_and_skip_matches_dense() {
        let cfg = finite(1024, 2); // refill latency 4
        let per_job = cfg.channel_cycles();
        assert!(per_job > 2, "test needs a multi-cycle channel window");

        // Drive two caches identically up to the start of a refill.
        let mut dense = Cache::new(cfg);
        let mut skipped = Cache::new(cfg);
        for c in [&mut dense, &mut skipped] {
            c.begin_cycle();
            assert_eq!(c.probe_read(0x100, 0), Probe::MissPending);
            c.end_cycle();
            c.begin_cycle(); // channel picks the refill up here
        }
        // Both report the same inert window: dense on the completion
        // cycle, quiet until then.
        assert_eq!(dense.next_wake(), CacheWake::In(u64::from(per_job) - 1));

        // Dense: tick the window out cycle by cycle.
        for _ in 0..per_job - 1 {
            dense.end_cycle();
            dense.begin_cycle();
        }
        // Skipped: bulk-advance the same window in one call.
        skipped.skip(u64::from(per_job) - 1);
        for c in [&mut dense, &mut skipped] {
            assert_eq!(c.next_wake(), CacheWake::EveryCycle);
            c.end_cycle(); // completion installs the line
            assert!(c.is_present(0x100));
            assert_eq!(c.next_wake(), CacheWake::Quiescent);
        }
        assert_eq!(
            format!("{:?}", dense.stats()),
            format!("{:?}", skipped.stats())
        );
    }

    #[test]
    fn open_prefetch_streams_pin_every_cycle() {
        let cfg = finite(4096, 4).with_prefetch(true);
        let mut cache = Cache::new(cfg);
        assert_eq!(cache.next_wake(), CacheWake::Quiescent);
        cache.prefetch_hint(PrefetchHint::contiguous(0, 1024, 0));
        assert_eq!(
            cache.next_wake(),
            CacheWake::EveryCycle,
            "an open stream walks every begin_cycle"
        );
    }

    #[test]
    fn queued_demand_job_with_a_free_channel_pins_every_cycle() {
        let mut cache = Cache::new(finite(1024, 2));
        cache.begin_cycle();
        assert_eq!(cache.probe_read(0x100, 0), Probe::MissPending);
        cache.end_cycle();
        // The refill is queued but no channel has started it yet.
        assert_eq!(cache.next_wake(), CacheWake::EveryCycle);
    }

    #[test]
    fn cold_read_stalls_one_refill_then_line_hits() {
        let cfg = CacheConfig::new()
            .with_line_bytes(64)
            .with_refill_latency(8);
        let per_job = cfg.channel_cycles();
        let mut cache = Cache::new(cfg);
        // First denial enqueues; the channel starts next begin_cycle.
        assert_eq!(read_through(&mut cache, 0x100, 0), per_job + 1);
        assert_eq!(cache.stats().refills, 1);
        assert_eq!(cache.stats().read_misses, 1);
        // A neighbouring beat on the same line is warm.
        assert_eq!(read_through(&mut cache, 0x108, 0), 0);
        assert_eq!(cache.stats().read_hits, 1);
    }

    #[test]
    fn writes_install_without_fetch_and_serve_reads() {
        let mut cache = Cache::new(finite(1024, 2));
        cache.begin_cycle();
        cache.commit_write(0x200);
        cache.end_cycle();
        assert!(cache.is_present(0x200));
        assert_eq!(read_through(&mut cache, 0x208, 0), 0, "written line hits");
        assert_eq!(cache.stats().refills, 0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_way() {
        // 2 sets x 2 ways of 64 B lines; lines 0, 2, 4 map to set 0.
        let mut cache = Cache::new(finite(256, 2));
        assert_eq!(cache.config().sets(), 2);
        read_through(&mut cache, 0, 0);
        read_through(&mut cache, 2 * 64, 0);
        // Touch line 0 so line 2 is LRU, then bring in line 4.
        read_through(&mut cache, 0, 0);
        read_through(&mut cache, 4 * 64, 0);
        assert!(cache.is_present(0), "recently used line survives");
        assert!(!cache.is_present(2 * 64), "LRU way evicted");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().dirty_evictions, 0, "clean eviction is silent");
    }

    #[test]
    fn dirty_eviction_generates_writeback_traffic_on_the_channel() {
        // One set of 1 way: every new line evicts the previous one.
        let cfg = finite(64, 1);
        let mut cache = Cache::new(cfg);
        cache.begin_cycle();
        cache.commit_write(0);
        cache.end_cycle();
        // Fetch a different line into the same (only) set: the dirty
        // victim must be written back.
        read_through(&mut cache, 64, 0);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().dirty_evictions, 1);
        assert_eq!(
            cache.stats().writeback_beats(cache.config()),
            u64::from(cfg.line_beats())
        );
        // The write-back job drains over the channel.
        drain(&mut cache);
        assert_eq!(cache.stats().writebacks_completed, 1);
    }

    #[test]
    fn writeback_disabled_never_queues_traffic() {
        let cfg = finite(64, 1).with_write_back(false);
        let mut cache = Cache::new(cfg);
        cache.begin_cycle();
        cache.commit_write(0);
        cache.end_cycle();
        read_through(&mut cache, 64, 0);
        read_through(&mut cache, 128, 0);
        assert!(cache.stats().evictions >= 2);
        assert_eq!(cache.stats().dirty_evictions, 0);
        assert_eq!(cache.stats().writeback_beats(cache.config()), 0);
    }

    #[test]
    fn same_line_misses_merge_into_one_mshr() {
        let mut cache = Cache::new(CacheConfig::new().with_line_bytes(64));
        let mut stalls = (0, 0);
        loop {
            cache.begin_cycle();
            let p0 = cache.probe_read(0x40, 0);
            let p1 = cache.probe_read(0x48, 1);
            if p0 == Probe::Ready && p1 == Probe::Ready {
                cache.commit_read(0x40, 0);
                cache.commit_read(0x48, 1);
                cache.end_cycle();
                break;
            }
            stalls = (
                stalls.0 + u32::from(p0 != Probe::Ready),
                stalls.1 + u32::from(p1 != Probe::Ready),
            );
            cache.end_cycle();
        }
        assert_eq!(cache.stats().mshr_allocations, 1, "one refill for the line");
        assert_eq!(cache.stats().mshr_merges, 1, "the second requester merged");
        assert_eq!(cache.stats().refills, 1);
        assert_eq!(
            cache.stats().read_misses,
            2,
            "both beats were serviced misses"
        );
        assert_eq!(stalls.0, stalls.1, "both waited out the same refill");
    }

    #[test]
    fn full_mshr_file_rejects_new_lines_until_a_refill_retires() {
        let cfg = CacheConfig::new().with_line_bytes(64).with_mshrs(1);
        let mut cache = Cache::new(cfg);
        cache.begin_cycle();
        assert_eq!(cache.probe_read(0, 0), Probe::MissPending);
        assert_eq!(
            cache.probe_read(8 * 64, 1),
            Probe::MshrFull,
            "second distinct line bounces off the single MSHR"
        );
        // Same-line merging is not blocked by a full file.
        assert_eq!(cache.probe_read(8, 1), Probe::MissPending);
        cache.end_cycle();
        assert!(cache.stats().mshr_full_stalls >= 1);
        assert_eq!(cache.stats().mshr_peak, 1);
        // Once the first refill retires, the second line allocates.
        drain(&mut cache);
        cache.begin_cycle();
        assert_eq!(cache.probe_read(8 * 64, 1), Probe::MissPending);
        cache.end_cycle();
        assert_eq!(cache.stats().mshr_allocations, 2);
    }

    #[test]
    fn parallel_channels_overlap_refills() {
        let serial_cfg = CacheConfig::new()
            .with_line_bytes(64)
            .with_refill_latency(16);
        let run = |channels: u32| {
            let mut cache = Cache::new(serial_cfg.with_channels(channels));
            let (mut done0, mut done1) = (false, false);
            let mut cycles = 0;
            while !(done0 && done1) {
                cache.begin_cycle();
                if !done0 && cache.probe_read(0, 0) == Probe::Ready {
                    cache.commit_read(0, 0);
                    done0 = true;
                }
                if !done1 && cache.probe_read(0x1000, 1) == Probe::Ready {
                    cache.commit_read(0x1000, 1);
                    done1 = true;
                }
                cache.end_cycle();
                cycles += 1;
                assert!(cycles < 100_000);
            }
            cycles
        };
        let per_job = serial_cfg.channel_cycles();
        let one = run(1);
        let two = run(2);
        assert!(one > 2 * per_job, "one channel serialises the two lines");
        assert!(two < one, "a second channel overlaps them ({two} vs {one})");
    }

    #[test]
    fn hits_plus_misses_account_every_committed_read() {
        let mut cache = Cache::new(finite(512, 2));
        let mut committed = 0u64;
        for round in 0..4u32 {
            for i in 0..16u32 {
                read_through(&mut cache, (i * 64 + round) / 8 * 8, 0);
                committed += 1;
            }
        }
        let s = cache.stats();
        assert_eq!(s.read_hits + s.read_misses, committed);
        assert!(s.evictions > 0, "16 lines thrash a 512 B cache");
    }

    #[test]
    fn infinite_mode_never_evicts() {
        let mut cache = Cache::new(CacheConfig::new().with_line_bytes(64));
        for i in 0..64u32 {
            read_through(&mut cache, i * 64, 0);
        }
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().refills, 64);
        for i in 0..64u32 {
            assert!(cache.is_present(i * 64), "line {i} stays resident forever");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of line_bytes x ways")]
    fn misaligned_capacity_is_rejected() {
        let _ = Cache::new(
            CacheConfig::new()
                .with_line_bytes(64)
                .with_ways(3)
                .with_capacity_bytes(1000),
        );
    }

    // ---- prefetch engine -------------------------------------------------

    fn prefetching(cfg: CacheConfig) -> CacheConfig {
        cfg.with_prefetch(true)
            .with_prefetch_degree(4)
            .with_prefetch_distance(16)
            .with_prefetch_queue(16)
    }

    /// Steps idle cycles until the prefetcher has nothing queued or in
    /// flight (streams may still be alive, throttled by distance).
    fn drain_prefetches(cache: &mut Cache) {
        let mut cycles = 0;
        loop {
            cache.begin_cycle();
            cache.end_cycle();
            cycles += 1;
            if !cache.is_busy() && cache.prefetch_backlog() == 0 {
                break;
            }
            assert!(cycles < 100_000, "prefetches never drained");
        }
    }

    #[test]
    fn hint_prefetches_contiguous_lines_ahead_of_demand() {
        let mut cache = Cache::new(prefetching(
            CacheConfig::new()
                .with_line_bytes(64)
                .with_refill_latency(4),
        ));
        cache.prefetch_hint(PrefetchHint::contiguous(0x0, 4 * 64, 0));
        drain_prefetches(&mut cache);
        // All four lines (≤ distance) were fetched without any demand.
        for i in 0..4u32 {
            assert!(cache.is_present(i * 64), "line {i} prefetched");
        }
        assert_eq!(cache.stats().prefetch_hints, 1);
        assert_eq!(cache.stats().prefetches_issued, 4);
        assert_eq!(cache.stats().prefetch_refills, 4);
        assert_eq!(cache.stats().refills, 4);
        assert_eq!(cache.stats().mshr_allocations, 0, "no demand misses");
        // Demand reads now hit and bank the accuracy credit once per line.
        assert_eq!(read_through(&mut cache, 0x0, 0), 0);
        assert_eq!(read_through(&mut cache, 0x8, 0), 0);
        assert_eq!(cache.stats().prefetch_hits, 1, "credited once per line");
        assert_eq!(cache.stats().read_hits, 2);
        assert_eq!(cache.stats().read_misses, 0);
    }

    #[test]
    fn strided_mode_follows_the_descriptor_next_line_does_not() {
        // 2 rows of one line, 4 lines apart.
        let hint = PrefetchHint {
            addr: 0x0,
            row_bytes: 64,
            stride: 4 * 64,
            reps: 2,
            requester: 0,
        };
        let run = |mode: PrefetchMode| {
            let mut cache = Cache::new(
                prefetching(CacheConfig::new().with_line_bytes(64)).with_prefetch_mode(mode),
            );
            cache.prefetch_hint(hint);
            drain_prefetches(&mut cache);
            (cache.is_present(0x0), cache.is_present(4 * 64))
        };
        assert_eq!(run(PrefetchMode::Strided), (true, true));
        let (first, strided_target) = run(PrefetchMode::NextLine);
        assert!(first, "next-line still fetches the start of the footprint");
        assert!(!strided_target, "next-line mispredicts a strided footprint");
    }

    #[test]
    fn demand_misses_always_outrank_prefetches_on_the_channel() {
        // One channel: a queued demand refill must start before any
        // queued prefetch request, regardless of arrival order.
        let mut cache = Cache::new(prefetching(
            CacheConfig::new()
                .with_line_bytes(64)
                .with_refill_latency(4),
        ));
        cache.prefetch_hint(PrefetchHint::contiguous(0x1000, 2 * 64, 0));
        // Cycle 1: the prefetcher grabs the idle channel for line 0x40.
        cache.begin_cycle();
        // A demand miss to a different line arrives the same cycle.
        assert_eq!(cache.probe_read(0x0, 1), Probe::MissPending);
        cache.end_cycle();
        // Next cycle the channel is still busy with the first prefetch;
        // once it frees, the *demand* refill goes next even though the
        // second prefetch request was queued earlier.
        let mut order = Vec::new();
        for _ in 0..60 {
            cache.begin_cycle();
            cache.end_cycle();
            for line in [0u32, 0x1000 / 64, 0x1000 / 64 + 1] {
                if cache.is_present(line * 64) && !order.contains(&line) {
                    order.push(line);
                }
            }
        }
        assert_eq!(
            order,
            vec![0x1000 / 64, 0, 0x1000 / 64 + 1],
            "demand line 0 must be fetched before the second prefetch"
        );
    }

    #[test]
    fn late_prefetch_covers_the_demand_miss() {
        let cfg = prefetching(
            CacheConfig::new()
                .with_line_bytes(64)
                .with_refill_latency(16),
        );
        let mut cache = Cache::new(cfg);
        cache.prefetch_hint(PrefetchHint::contiguous(0x0, 64, 0));
        // Let the prefetch start, then demand the line mid-flight.
        cache.begin_cycle();
        cache.end_cycle();
        let stalls = read_through(&mut cache, 0x0, 0);
        let s = cache.stats();
        assert_eq!(s.demand_misses_covered_by_prefetch, 1);
        assert_eq!(s.prefetches_issued, 1);
        assert_eq!(s.refills, 1, "one fetch serves both");
        assert_eq!(s.prefetch_refills, 1);
        assert_eq!(s.read_misses, 1, "the demand beat still missed");
        assert_eq!(
            s.prefetch_hits, 0,
            "a covered line is late, not an accurate hit"
        );
        assert!(
            stalls < cfg.channel_cycles() + 1,
            "merging into the in-flight prefetch saves stall cycles"
        );
    }

    #[test]
    fn prefetch_pressure_fills_a_tiny_mshr_file_and_demand_bounces() {
        // 2 MSHRs, both taken by prefetches: a demand miss to a third
        // line must bounce off the full file (Probe::MshrFull), then
        // allocate once a prefetch retires.
        let cfg = prefetching(
            CacheConfig::new()
                .with_line_bytes(64)
                .with_refill_latency(32)
                .with_mshrs(2)
                .with_channels(2),
        );
        let mut cache = Cache::new(cfg);
        cache.prefetch_hint(PrefetchHint::contiguous(0x1000, 2 * 64, 0));
        cache.begin_cycle();
        assert_eq!(cache.mshr_occupancy(), 2, "both MSHRs hold prefetches");
        assert_eq!(
            cache.probe_read(0x0, 1),
            Probe::MshrFull,
            "demand miss to a new line bounces off the prefetch-full file"
        );
        cache.end_cycle();
        assert!(cache.stats().mshr_full_stalls >= 1);
        assert_eq!(cache.stats().mshr_peak, 2);
        // The demand beat eventually gets its line.
        assert!(read_through(&mut cache, 0x0, 1) > 0);
        assert_eq!(cache.stats().mshr_allocations, 1);
        assert_eq!(cache.stats().refills, 3);
    }

    #[test]
    fn prefetcher_never_steals_the_mshr_a_demand_miss_needs() {
        // 1 MSHR, occupied by a demand refill; the prefetch request must
        // wait in its queue rather than bouncing the file size.
        let cfg = prefetching(
            CacheConfig::new()
                .with_line_bytes(64)
                .with_refill_latency(8)
                .with_mshrs(1)
                .with_channels(2),
        );
        let mut cache = Cache::new(cfg);
        cache.begin_cycle();
        assert_eq!(cache.probe_read(0x0, 0), Probe::MissPending);
        cache.end_cycle();
        cache.prefetch_hint(PrefetchHint::contiguous(0x1000, 64, 0));
        cache.begin_cycle();
        assert_eq!(
            cache.mshr_occupancy(),
            1,
            "the prefetch waits for a free MSHR"
        );
        assert_eq!(cache.prefetch_backlog(), 1);
        cache.end_cycle();
        drain_prefetches(&mut cache);
        assert_eq!(cache.stats().prefetches_issued, 1, "issued after the miss");
        assert!(cache.is_present(0x1000));
    }

    #[test]
    fn distance_throttles_the_run_ahead_window() {
        let cfg = prefetching(
            CacheConfig::new()
                .with_line_bytes(64)
                .with_refill_latency(0),
        )
        .with_prefetch_distance(2)
        .with_channels(4);
        let mut cache = Cache::new(cfg);
        cache.prefetch_hint(PrefetchHint::contiguous(0x0, 64 * 64, 0));
        drain_prefetches(&mut cache);
        assert_eq!(
            cache.stats().prefetches_issued,
            2,
            "only `distance` lines ahead of a demand cursor that never moved"
        );
        // Demand consuming the first line opens the window by one.
        read_through(&mut cache, 0x0, 0);
        drain_prefetches(&mut cache);
        assert_eq!(cache.stats().prefetches_issued, 3);
        // A requester the stream does not belong to moves nothing.
        read_through(&mut cache, 0x40, 9);
        drain_prefetches(&mut cache);
        assert_eq!(cache.stats().prefetches_issued, 3);
    }

    #[test]
    fn bounded_queue_backpressures_streams_without_losing_lines() {
        // Queue of 2, one slow channel: the stream trickles through the
        // bounded queue but eventually covers the whole footprint.
        let cfg = prefetching(
            CacheConfig::new()
                .with_line_bytes(64)
                .with_refill_latency(2),
        )
        .with_prefetch_queue(2)
        .with_prefetch_distance(64);
        let mut cache = Cache::new(cfg);
        cache.prefetch_hint(PrefetchHint::contiguous(0x0, 8 * 64, 0));
        cache.begin_cycle();
        assert!(cache.prefetch_backlog() <= 2, "queue stays bounded");
        cache.end_cycle();
        drain_prefetches(&mut cache);
        for i in 0..8u32 {
            assert!(cache.is_present(i * 64), "line {i} eventually fetched");
        }
        assert_eq!(cache.stats().prefetches_issued, 8);
    }

    #[test]
    fn demand_into_one_stream_does_not_cancel_a_sibling_at_lower_addresses() {
        // Regression: a cluster's engine interleaves descriptors for
        // disjoint regions under ONE requester id. A demand beat into
        // stream B's (higher-address) footprint must not fast-forward
        // stream A's demand cursor — the old `<=`-ordered advance
        // retired A after 2 of its 16 lines, silently losing the
        // prefetch coverage of every multi-operand tiled kernel.
        let cfg = prefetching(
            CacheConfig::new()
                .with_line_bytes(64)
                .with_refill_latency(0),
        )
        .with_prefetch_distance(16)
        .with_prefetch_queue(32)
        .with_channels(2);
        let mut cache = Cache::new(cfg);
        cache.prefetch_hint(PrefetchHint::contiguous(0x8000, 2 * 64, 0));
        cache.prefetch_hint(PrefetchHint::contiguous(0x1000, 16 * 64, 0));
        cache.begin_cycle();
        // The same requester demands stream B's first line while stream
        // A has barely started issuing.
        let _ = cache.probe_read(0x8000, 0);
        cache.end_cycle();
        drain_prefetches(&mut cache);
        for i in 0..16u32 {
            assert!(
                cache.is_present(0x1000 + i * 64),
                "stream A line {i} lost to the sibling demand beat"
            );
        }
        assert_eq!(cache.stats().prefetches_issued, 18);
    }

    #[test]
    fn demand_far_outside_every_stream_leaves_cursors_alone() {
        // A beat to an unrelated region (no stream contains it) must not
        // move any cursor in either direction.
        let cfg = prefetching(
            CacheConfig::new()
                .with_line_bytes(64)
                .with_refill_latency(0),
        )
        .with_prefetch_distance(4)
        .with_channels(4);
        let mut cache = Cache::new(cfg);
        cache.prefetch_hint(PrefetchHint::contiguous(0x1000, 32 * 64, 0));
        drain_prefetches(&mut cache);
        let issued = cache.stats().prefetches_issued;
        assert_eq!(issued, 4, "distance-limited");
        cache.begin_cycle();
        let _ = cache.probe_read(0x20000, 0); // far beyond the stream
        cache.end_cycle();
        drain_prefetches(&mut cache);
        assert_eq!(
            cache.stats().prefetches_issued,
            issued,
            "an out-of-stream beat must not open the run-ahead window"
        );
    }

    #[test]
    fn disabled_prefetcher_ignores_hints_and_counts_nothing() {
        let mut cache = Cache::new(CacheConfig::new().with_line_bytes(64));
        cache.prefetch_hint(PrefetchHint::contiguous(0x0, 4 * 64, 0));
        drain(&mut cache);
        assert!(!cache.is_present(0x0));
        let s = cache.stats();
        assert_eq!(
            (s.prefetch_hints, s.prefetches_issued, s.prefetch_refills),
            (0, 0, 0)
        );
    }

    // ---- per-set LRU order under mixed demand/prefetch fills -------------

    /// The lines resident in `set`, LRU first (test introspection via
    /// eviction probing would perturb state, so order is pinned through
    /// targeted evictions below instead).
    #[test]
    fn lru_order_interleaves_demand_and_prefetch_fills() {
        // One set of 4 ways, 64 B lines (lines 0,1,2,.. all map to set 0
        // via capacity 256 = 1 set x 4 ways).
        let cfg = prefetching(finite(256, 4)).with_refill_latency(0);
        let mut cache = Cache::new(cfg);
        // Demand-fetch line 0, prefetch lines 8 and 16, demand line 24.
        read_through(&mut cache, 0, 0);
        cache.prefetch_hint(PrefetchHint::contiguous(8 * 64, 64, 0));
        cache.prefetch_hint(PrefetchHint::contiguous(16 * 64, 64, 0));
        drain_prefetches(&mut cache);
        read_through(&mut cache, 24 * 64, 0);
        // LRU order now: 0, 8, 16, 24 (install order; nothing re-touched).
        // Touch line 0 (demand hit) — order becomes 8, 16, 24, 0.
        read_through(&mut cache, 0, 0);
        // Next install evicts line 8: the *prefetched, never used* way.
        read_through(&mut cache, 32 * 64, 0);
        assert!(!cache.is_present(8 * 64), "LRU prefetched way evicted");
        assert!(cache.is_present(0), "re-touched demand line survives");
        assert!(cache.is_present(16 * 64));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(
            cache.stats().prefetch_evicted_unused,
            1,
            "the evicted prefetched line was never demand-touched"
        );
        // Line 16 is then demand-used: accurate, not useless.
        read_through(&mut cache, 16 * 64, 0);
        assert_eq!(cache.stats().prefetch_hits, 1);
        // Evicting the rest never double-counts the used prefetch.
        for i in [40u32, 48, 56, 64] {
            read_through(&mut cache, i * 64, 0);
        }
        assert_eq!(cache.stats().prefetch_evicted_unused, 1);
    }

    #[test]
    fn demand_touch_of_a_prefetched_line_makes_it_mru() {
        // 1 set x 2 ways: prefetch A, demand-fetch B (A is LRU), then
        // demand-touch A — B becomes the victim for the next install.
        let cfg = prefetching(finite(128, 2)).with_refill_latency(0);
        let mut cache = Cache::new(cfg);
        cache.prefetch_hint(PrefetchHint::contiguous(0, 64, 0));
        drain_prefetches(&mut cache);
        read_through(&mut cache, 64, 0); // B via demand
        read_through(&mut cache, 0, 0); // touch A: hit + MRU
        assert_eq!(cache.stats().prefetch_hits, 1);
        read_through(&mut cache, 128, 0); // C evicts B
        assert!(cache.is_present(0), "touched prefetched line is MRU");
        assert!(!cache.is_present(64));
        assert_eq!(
            cache.stats().prefetch_evicted_unused,
            0,
            "evicting the demand line costs no prefetch-accuracy debit"
        );
    }

    #[test]
    fn overwriting_a_prefetched_line_is_not_an_accurate_hit() {
        // Write-allocate-without-fetch: a write landing on a prefetched,
        // never-read line did not consume the fetched data — no
        // accuracy credit, but no eviction-waste debit either (the
        // fetch stays unclassified), and the flag clears so a later
        // eviction cannot count it as useless retroactively.
        let cfg = prefetching(finite(256, 4)).with_refill_latency(0);
        let mut cache = Cache::new(cfg);
        cache.prefetch_hint(PrefetchHint::contiguous(0, 64, 0));
        drain_prefetches(&mut cache);
        cache.begin_cycle();
        cache.commit_write(0);
        cache.end_cycle();
        assert_eq!(cache.stats().prefetch_hits, 0, "a write is not a use");
        // Thrash the set: the overwritten line's eviction is not waste.
        for i in 1..5u32 {
            read_through(&mut cache, i * 64, 0);
        }
        assert!(!cache.is_present(0));
        assert_eq!(cache.stats().prefetch_evicted_unused, 0);
        assert_eq!(cache.stats().prefetch_hits, 0);
    }

    #[test]
    fn prefetched_then_evicted_unused_full_lifecycle() {
        // 1 set x 1 way: every install evicts. Prefetch A; demand B
        // evicts A unused; re-prefetch A; demand A uses it this time.
        let cfg = prefetching(finite(64, 1)).with_refill_latency(0);
        let mut cache = Cache::new(cfg);
        cache.prefetch_hint(PrefetchHint::contiguous(0, 64, 0));
        drain_prefetches(&mut cache);
        read_through(&mut cache, 64, 0);
        assert_eq!(cache.stats().prefetch_evicted_unused, 1);
        assert_eq!(cache.stats().prefetch_hits, 0);
        cache.prefetch_hint(PrefetchHint::contiguous(0, 64, 0));
        drain_prefetches(&mut cache);
        read_through(&mut cache, 0, 0);
        assert_eq!(cache.stats().prefetch_hits, 1);
        assert_eq!(cache.stats().prefetch_evicted_unused, 1);
        let s = cache.stats();
        assert!(s.prefetch_hits + s.prefetch_evicted_unused <= s.prefetches_issued);
    }
}
