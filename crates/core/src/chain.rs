//! The chaining unit — the paper's hardware contribution.
//!
//! One 32-bit mask CSR (0x7C3) selects which architectural FP registers
//! have *FIFO semantics*, plus one **valid bit** per register:
//!
//! * a **read** of a chaining-enabled register *pops*: it requires the
//!   valid bit to be set, returns the register value, and clears the bit;
//! * a **write** (at instruction completion) *pushes*: it requires the
//!   valid bit to be clear, stores the value, and sets the bit. If the bit
//!   is still set, the completing instruction **holds in the functional
//!   unit's final pipeline stage** — the unit's pipeline registers behave
//!   as the tail of the logical FIFO, exactly the paper's Fig. 2 dataflow;
//! * successive writes carry **no WAW dependency**: each is simply the
//!   next push, so a 4-deep software pipeline needs one architectural
//!   register instead of four.
//!
//! The unit stores only the mask and the valid bits; values live in the
//! ordinary FP register file (the architectural register *is* the FIFO
//! head) and in the in-flight pipeline slots (the tail). Total logical
//! FIFO capacity is therefore `1 + pipeline depth`, matching the paper's
//! observation that chaining benefits grow with pipeline depth.

use std::fmt;

use sc_isa::FpReg;

/// Error conditions surfaced by strict-mode chaining checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// The chaining CSR was written but the core was built without the
    /// extension ([`crate::CoreConfig::chaining_enabled`] = false).
    ExtensionAbsent,
    /// Chaining was disabled on a register that still had in-flight
    /// producers; their later pushes would silently become plain writes.
    DisableWithInflight {
        /// The offending register.
        reg: FpReg,
        /// In-flight producer count at the time of the CSR write.
        inflight: u32,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChainError::ExtensionAbsent => {
                write!(f, "chaining CSR written but the extension is not present")
            }
            ChainError::DisableWithInflight { reg, inflight } => write!(
                f,
                "chaining disabled on {reg} with {inflight} in-flight producer(s)"
            ),
        }
    }
}

impl std::error::Error for ChainError {}

/// Chaining mask + valid bits (the extension's entire architectural state:
/// 64 bits — the basis of the paper's <2 % area claim).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainUnit {
    mask: u32,
    valid: u32,
}

impl ChainUnit {
    /// Creates a unit with chaining disabled on all registers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current mask CSR value.
    #[must_use]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// The valid bits (diagnostic view).
    #[must_use]
    pub fn valid_bits(&self) -> u32 {
        self.valid
    }

    /// Whether `reg` currently has FIFO semantics.
    #[must_use]
    pub fn is_chained(&self, reg: FpReg) -> bool {
        self.mask & reg.chain_mask_bit() != 0
    }

    /// Whether `reg` holds an unconsumed value (valid bit set).
    #[must_use]
    pub fn is_valid(&self, reg: FpReg) -> bool {
        self.valid & reg.chain_mask_bit() != 0
    }

    /// Updates the mask from a CSR write.
    ///
    /// Newly-enabled registers start empty (valid bit cleared): the FIFO
    /// begins in the "no element" state regardless of the stale register
    /// value. Disabling a register leaves its last value readable as a
    /// plain register — the idiom the paper's Fig. 1c epilogue uses.
    ///
    /// `inflight` reports, per register index, how many producers are
    /// still in the FU pipelines; strict mode rejects disabling a register
    /// that still has some.
    ///
    /// # Errors
    ///
    /// In strict mode, returns [`ChainError::DisableWithInflight`] when a
    /// disabled register still has in-flight producers.
    pub fn set_mask(
        &mut self,
        new_mask: u32,
        inflight: &[u32; 32],
        strict: bool,
    ) -> Result<(), ChainError> {
        let disabled = self.mask & !new_mask;
        if strict && disabled != 0 {
            for idx in 0..32u8 {
                if disabled & (1 << idx) != 0 && inflight[idx as usize] > 0 {
                    return Err(ChainError::DisableWithInflight {
                        reg: FpReg::new(idx),
                        inflight: inflight[idx as usize],
                    });
                }
            }
        }
        let newly_enabled = new_mask & !self.mask;
        self.valid &= !newly_enabled;
        self.mask = new_mask;
        Ok(())
    }

    /// Whether a pop (read) of `reg` can proceed this cycle.
    ///
    /// Only meaningful for chained registers; plain registers are governed
    /// by the scoreboard instead.
    #[must_use]
    pub fn can_pop(&self, reg: FpReg) -> bool {
        self.is_valid(reg)
    }

    /// Performs the pop side effect (clears the valid bit). The caller
    /// reads the value from the register file.
    ///
    /// # Panics
    ///
    /// Panics if the register is not poppable — gate with
    /// [`ChainUnit::can_pop`]; the issue stage must have stalled instead.
    pub fn pop(&mut self, reg: FpReg) {
        assert!(self.can_pop(reg), "pop of empty chained register {reg}");
        self.valid &= !reg.chain_mask_bit();
    }

    /// Whether a push (completing write) to `reg` can proceed this cycle.
    /// A false result is the backpressure signal: the producer holds in
    /// the final pipeline stage.
    #[must_use]
    pub fn can_push(&self, reg: FpReg) -> bool {
        !self.is_valid(reg)
    }

    /// Performs the push side effect (sets the valid bit). The caller
    /// writes the value into the register file.
    ///
    /// # Panics
    ///
    /// Panics if the register is still valid — gate with
    /// [`ChainUnit::can_push`]; the producer must have held instead.
    pub fn push(&mut self, reg: FpReg) {
        assert!(
            self.can_push(reg),
            "push overwriting unconsumed chained register {reg}"
        );
        self.valid |= reg.chain_mask_bit();
    }

    /// Extension state-bit count (for the area proxy): mask + valid bits.
    #[must_use]
    pub fn state_bits() -> u32 {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_INFLIGHT: [u32; 32] = [0; 32];

    #[test]
    fn paper_mask_example_enables_ft3() {
        let mut u = ChainUnit::new();
        u.set_mask(8, &NO_INFLIGHT, true).unwrap();
        assert!(u.is_chained(FpReg::FT3));
        assert!(!u.is_chained(FpReg::new(4)));
    }

    #[test]
    fn push_pop_cycle() {
        let mut u = ChainUnit::new();
        u.set_mask(FpReg::FT3.chain_mask_bit(), &NO_INFLIGHT, true)
            .unwrap();
        assert!(
            !u.can_pop(FpReg::FT3),
            "empty register must not be poppable"
        );
        assert!(u.can_push(FpReg::FT3));
        u.push(FpReg::FT3);
        assert!(u.can_pop(FpReg::FT3));
        assert!(
            !u.can_push(FpReg::FT3),
            "occupied register must backpressure"
        );
        u.pop(FpReg::FT3);
        assert!(u.can_push(FpReg::FT3));
    }

    #[test]
    #[should_panic(expected = "pop of empty chained register")]
    fn pop_empty_panics() {
        let mut u = ChainUnit::new();
        u.set_mask(8, &NO_INFLIGHT, true).unwrap();
        u.pop(FpReg::FT3);
    }

    #[test]
    #[should_panic(expected = "unconsumed chained register")]
    fn push_full_panics() {
        let mut u = ChainUnit::new();
        u.set_mask(8, &NO_INFLIGHT, true).unwrap();
        u.push(FpReg::FT3);
        u.push(FpReg::FT3);
    }

    #[test]
    fn enable_clears_stale_valid() {
        let mut u = ChainUnit::new();
        u.set_mask(8, &NO_INFLIGHT, true).unwrap();
        u.push(FpReg::FT3);
        // Disable then re-enable: the FIFO must restart empty.
        u.set_mask(0, &NO_INFLIGHT, true).unwrap();
        u.set_mask(8, &NO_INFLIGHT, true).unwrap();
        assert!(!u.can_pop(FpReg::FT3));
    }

    #[test]
    fn strict_disable_with_inflight_is_error() {
        let mut u = ChainUnit::new();
        u.set_mask(8, &NO_INFLIGHT, true).unwrap();
        let mut inflight = NO_INFLIGHT;
        inflight[3] = 2;
        let err = u.set_mask(0, &inflight, true).unwrap_err();
        assert_eq!(
            err,
            ChainError::DisableWithInflight {
                reg: FpReg::FT3,
                inflight: 2
            }
        );
        // Lenient mode allows it.
        u.set_mask(0, &inflight, false).unwrap();
        assert_eq!(u.mask(), 0);
    }

    #[test]
    fn state_is_exactly_64_bits() {
        assert_eq!(ChainUnit::state_bits(), 64);
    }
}
