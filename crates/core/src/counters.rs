//! Performance counters and stall attribution.

use std::fmt;

use sc_perf::Attribution;
use sc_trace::MetricSource;

/// Why the FP issue slot was empty in a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallCause {
    /// No instruction available (offload queue and sequencer empty).
    NoInstruction,
    /// RAW hazard on a plain (non-chained) register.
    RawHazard,
    /// WAW hazard on a plain destination register.
    WawHazard,
    /// Chained source register empty (valid bit clear) — waiting for a push.
    ChainEmpty,
    /// Functional-unit pipeline blocked because a completing op cannot
    /// push into a chained register (valid bit still set) — the paper's
    /// backpressure.
    ChainFull,
    /// SSR read stream had no data (memory behind).
    SsrStarve,
    /// SSR write stream FIFO full (memory behind).
    SsrFull,
    /// Functional unit busy (structural hazard).
    UnitBusy,
    /// Load/store unit busy.
    LsuBusy,
    /// Waiting for the FP subsystem to drain (synchronising CSR write).
    Sync,
}

impl StallCause {
    /// All causes, for iteration in reports.
    pub const ALL: [StallCause; 10] = [
        StallCause::NoInstruction,
        StallCause::RawHazard,
        StallCause::WawHazard,
        StallCause::ChainEmpty,
        StallCause::ChainFull,
        StallCause::SsrStarve,
        StallCause::SsrFull,
        StallCause::UnitBusy,
        StallCause::LsuBusy,
        StallCause::Sync,
    ];

    fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|c| *c == self)
            .expect("cause listed in ALL")
    }

    /// Metric-series name for sampled exports (`stall_` + snake label).
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            StallCause::NoInstruction => "stall_no_inst",
            StallCause::RawHazard => "stall_raw",
            StallCause::WawHazard => "stall_waw",
            StallCause::ChainEmpty => "stall_chain_empty",
            StallCause::ChainFull => "stall_chain_full",
            StallCause::SsrStarve => "stall_ssr_starve",
            StallCause::SsrFull => "stall_ssr_full",
            StallCause::UnitBusy => "stall_unit_busy",
            StallCause::LsuBusy => "stall_lsu_busy",
            StallCause::Sync => "stall_sync",
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::NoInstruction => "no-inst",
            StallCause::RawHazard => "raw",
            StallCause::WawHazard => "waw",
            StallCause::ChainEmpty => "chain-empty",
            StallCause::ChainFull => "chain-full",
            StallCause::SsrStarve => "ssr-starve",
            StallCause::SsrFull => "ssr-full",
            StallCause::UnitBusy => "unit-busy",
            StallCause::LsuBusy => "lsu-busy",
            StallCause::Sync => "sync",
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Counter snapshot over a region of execution.
///
/// All "cycles" counters refer to the measured region (between the
/// `mcycle`-style region markers, or the whole run when no markers fire).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Cycles elapsed.
    pub cycles: u64,
    /// Integer instructions retired.
    pub int_retired: u64,
    /// FP instructions issued to the FP subsystem (incl. loads/stores).
    pub fp_issued: u64,
    /// Cycles in which an FPU *compute* op entered an execution pipeline —
    /// the numerator of the paper's FPU-utilisation metric.
    pub fpu_issue_cycles: u64,
    /// Double-precision flops performed (FMA counts 2).
    pub flops: u64,
    /// FP issue-slot stalls by cause.
    pub stalls: [u64; 10],
    /// FP loads/stores issued.
    pub fp_mem_ops: u64,
    /// Explicit integer loads/stores issued.
    pub int_mem_ops: u64,
    /// Elements moved by SSR streams.
    pub ssr_elements: u64,
    /// TCDM accesses (all ports).
    pub tcdm_accesses: u64,
    /// TCDM bank conflicts (retried cycles).
    pub tcdm_conflicts: u64,
    /// Register-file reads/writes (energy accounting).
    pub fp_rf_reads: u64,
    /// FP register-file writes.
    pub fp_rf_writes: u64,
    /// Instructions fetched by the integer core (energy accounting; FREP
    /// replays don't refetch).
    pub fetches: u64,
    /// FP instructions replayed by the FREP sequencer (no fetch energy).
    pub frep_replays: u64,
    /// Top-down cycle attribution: every cycle lands in exactly one
    /// leaf, so `attr.total() == cycles` always holds (`sc-perf`'s hard
    /// invariant). Unlike [`PerfCounters::stalls`] — which may record an
    /// FP-side stall *and* an int-side sync retry in the same cycle —
    /// this is a partition, classified once per [`Core::begin_cycle`].
    ///
    /// [`Core::begin_cycle`]: crate::Core::begin_cycle
    pub attr: Attribution,
}

impl PerfCounters {
    /// Zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an FP issue-slot stall.
    pub fn record_stall(&mut self, cause: StallCause) {
        self.stalls[cause.index()] += 1;
    }

    /// Stall cycles attributed to `cause`.
    #[must_use]
    pub fn stalls_of(&self, cause: StallCause) -> u64 {
        self.stalls[cause.index()]
    }

    /// The paper's FPU utilisation: compute-issue cycles / total cycles.
    #[must_use]
    pub fn fpu_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fpu_issue_cycles as f64 / self.cycles as f64
        }
    }

    /// Flops per cycle.
    #[must_use]
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flops as f64 / self.cycles as f64
        }
    }

    /// Adds every event counter of `other` into `self` — including
    /// `cycles`, which callers aggregating lock-step cores usually want
    /// to overwrite with the wall-clock cycle count afterwards.
    pub fn accumulate(&mut self, other: &PerfCounters) {
        self.cycles += other.cycles;
        self.int_retired += other.int_retired;
        self.fp_issued += other.fp_issued;
        self.fpu_issue_cycles += other.fpu_issue_cycles;
        self.flops += other.flops;
        for (s, o) in self.stalls.iter_mut().zip(other.stalls.iter()) {
            *s += o;
        }
        self.fp_mem_ops += other.fp_mem_ops;
        self.int_mem_ops += other.int_mem_ops;
        self.ssr_elements += other.ssr_elements;
        self.tcdm_accesses += other.tcdm_accesses;
        self.tcdm_conflicts += other.tcdm_conflicts;
        self.fp_rf_reads += other.fp_rf_reads;
        self.fp_rf_writes += other.fp_rf_writes;
        self.fetches += other.fetches;
        self.frep_replays += other.frep_replays;
        self.attr.accumulate(&other.attr);
    }

    /// Difference `self - start`, used to compute region deltas.
    #[must_use]
    pub fn delta_since(&self, start: &PerfCounters) -> PerfCounters {
        let mut stalls = [0u64; 10];
        for (i, s) in stalls.iter_mut().enumerate() {
            *s = self.stalls[i] - start.stalls[i];
        }
        PerfCounters {
            cycles: self.cycles - start.cycles,
            int_retired: self.int_retired - start.int_retired,
            fp_issued: self.fp_issued - start.fp_issued,
            fpu_issue_cycles: self.fpu_issue_cycles - start.fpu_issue_cycles,
            flops: self.flops - start.flops,
            stalls,
            fp_mem_ops: self.fp_mem_ops - start.fp_mem_ops,
            int_mem_ops: self.int_mem_ops - start.int_mem_ops,
            ssr_elements: self.ssr_elements - start.ssr_elements,
            tcdm_accesses: self.tcdm_accesses - start.tcdm_accesses,
            tcdm_conflicts: self.tcdm_conflicts - start.tcdm_conflicts,
            fp_rf_reads: self.fp_rf_reads - start.fp_rf_reads,
            fp_rf_writes: self.fp_rf_writes - start.fp_rf_writes,
            fetches: self.fetches - start.fetches,
            frep_replays: self.frep_replays - start.frep_replays,
            attr: self.attr.delta_since(&start.attr),
        }
    }

    /// Renders a compact multi-line report.
    #[must_use]
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "cycles {:>10}  fpu-util {:>6.2}%  flops {:>10}  flops/cycle {:.3}\n",
            self.cycles,
            self.fpu_utilization() * 100.0,
            self.flops,
            self.flops_per_cycle()
        ));
        s.push_str(&format!(
            "int {:>8}  fp {:>8}  fp-mem {:>8}  ssr-elems {:>8}  tcdm {:>8} (+{} conflicts)\n",
            self.int_retired,
            self.fp_issued,
            self.fp_mem_ops,
            self.ssr_elements,
            self.tcdm_accesses,
            self.tcdm_conflicts
        ));
        s.push_str("stalls:");
        for c in StallCause::ALL {
            let n = self.stalls_of(c);
            if n > 0 {
                s.push_str(&format!(" {}={}", c.label(), n));
            }
        }
        s.push('\n');
        s
    }
}

impl MetricSource for PerfCounters {
    fn source_name(&self) -> &'static str {
        "core"
    }

    fn visit_metrics(&self, visit: &mut dyn FnMut(&'static str, u64)) {
        visit("cycles", self.cycles);
        visit("int_retired", self.int_retired);
        visit("fp_issued", self.fp_issued);
        visit("fpu_issue_cycles", self.fpu_issue_cycles);
        visit("flops", self.flops);
        visit("fp_mem_ops", self.fp_mem_ops);
        visit("int_mem_ops", self.int_mem_ops);
        visit("ssr_elements", self.ssr_elements);
        visit("tcdm_accesses", self.tcdm_accesses);
        visit("tcdm_conflicts", self.tcdm_conflicts);
        visit("fp_rf_reads", self.fp_rf_reads);
        visit("fp_rf_writes", self.fp_rf_writes);
        visit("fetches", self.fetches);
        visit("frep_replays", self.frep_replays);
        for c in StallCause::ALL {
            visit(c.metric_name(), self.stalls_of(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let mut c = PerfCounters::new();
        c.cycles = 200;
        c.fpu_issue_cycles = 93;
        c.flops = 186;
        assert!((c.fpu_utilization() - 0.465).abs() < 1e-12);
        assert!((c.flops_per_cycle() - 0.93).abs() < 1e-12);
    }

    #[test]
    fn stall_bookkeeping_and_delta() {
        let mut a = PerfCounters::new();
        a.record_stall(StallCause::ChainEmpty);
        a.record_stall(StallCause::ChainEmpty);
        a.record_stall(StallCause::SsrStarve);
        a.cycles = 10;
        let b = PerfCounters { cycles: 25, ..a };
        let d = b.delta_since(&a);
        assert_eq!(d.cycles, 15);
        assert_eq!(d.stalls_of(StallCause::ChainEmpty), 0);
        assert_eq!(a.stalls_of(StallCause::ChainEmpty), 2);
    }

    #[test]
    fn report_mentions_nonzero_stalls_only() {
        let mut c = PerfCounters::new();
        c.record_stall(StallCause::RawHazard);
        let r = c.report();
        assert!(r.contains("raw=1"));
        assert!(!r.contains("waw="));
    }

    #[test]
    fn all_causes_have_distinct_indexes() {
        let mut seen = std::collections::HashSet::new();
        for c in StallCause::ALL {
            assert!(seen.insert(c.index()));
        }
        assert_eq!(seen.len(), 10);
    }
}
