//! The simulator: integer core + FP subsystem + TCDM, cycle by cycle.
//!
//! ## Cycle structure
//!
//! Each simulated cycle runs four phases:
//!
//! 1. **FP writeback** — one completion commits (chained pushes may hold).
//! 2. **Issue** — the FP issue stage tries the next sequencer instruction;
//!    then the integer core executes one instruction (pseudo dual-issue:
//!    FP instructions are *offloaded* into the sequencer queue in a single
//!    integer cycle, becoming issueable from the next cycle).
//! 3. **Memory** — the integer LSU, the FP LSU (shared TCDM port 0, integer
//!    priority) and every stream data mover place requests; the banked
//!    TCDM arbitrates; grants move data.
//! 4. **Advance** — pipelines shift, landed stream data becomes poppable.
//!
//! ## Synchronising instructions
//!
//! Writes to the chaining CSR wait for the FP subsystem to drain; writes to
//! the SSR-enable CSR and the region-marker CSR additionally wait for all
//! streams to complete; `scfgwi` to a stream *pointer* register waits only
//! until that data mover has finished its previous stream. `ecall` waits
//! for full quiescence. These rules make the extension CSRs safe without
//! modelling Snitch's explicit fence idioms.

use sc_isa::{csr, CsrFile, CsrOp, CsrSrc, FpReg, Instruction, IntReg, LoadOp, Program, StoreOp};
use sc_mem::{AccessKind, PortId, Request, Tcdm};
use sc_ssr::CfgAddr;

use crate::config::CoreConfig;
use crate::counters::PerfCounters;
use crate::error::SimError;
use crate::fp_subsys::{FpSubsystem, IssueOutcome};
use crate::sequencer::{OffloadedFp, SeqItem};
use crate::trace::{FpSlot, IssueTrace, TraceCycle};

/// Result of a completed simulation.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Counters over the whole run.
    pub counters: PerfCounters,
    /// Counters over the marked region (between PERF_REGION writes), if
    /// the program marked one.
    pub region: Option<PerfCounters>,
    /// Issue trace (empty unless [`CoreConfig::trace`] was set).
    pub trace: IssueTrace,
    /// Offload-queue high-water mark (sizing diagnostics).
    pub offload_queue_high_water: usize,
}

impl RunSummary {
    /// Counters of the measured region, falling back to the whole run.
    #[must_use]
    pub fn measured(&self) -> &PerfCounters {
        self.region.as_ref().unwrap_or(&self.counters)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IntState {
    Running,
    /// Fixed bubbles (branch penalty, load writeback).
    Bubble(u32),
    /// Integer load waiting for its TCDM grant.
    LoadWait { op: LoadOp, rd: IntReg, addr: u32 },
    /// Integer store waiting for its TCDM grant.
    StoreWait { op: StoreOp, addr: u32, value: u32 },
    /// `ecall` executed; waiting for quiescence.
    Halting,
    Halted,
}

/// The whole-core simulator.
///
/// # Examples
///
/// ```
/// use sc_core::{CoreConfig, Simulator};
/// use sc_isa::{ProgramBuilder, IntReg};
///
/// let mut b = ProgramBuilder::new();
/// b.li(IntReg::new(5), 42);
/// b.ecall();
/// let prog = b.build()?;
/// let mut sim = Simulator::new(CoreConfig::new(), prog);
/// let summary = sim.run(1_000)?;
/// assert_eq!(sim.int_reg(IntReg::new(5)), 42);
/// assert!(summary.cycles < 20);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    cfg: CoreConfig,
    program: Program,
    tcdm: Tcdm,
    fp: FpSubsystem,
    regs: [u32; 32],
    int_pending: [bool; 32],
    pc: u32,
    state: IntState,
    csrs: CsrFile,
    counters: PerfCounters,
    region_start: Option<PerfCounters>,
    region: Option<PerfCounters>,
    trace: IssueTrace,
}

impl Simulator {
    /// Creates a simulator for `program` under `cfg`.
    #[must_use]
    pub fn new(cfg: CoreConfig, program: Program) -> Self {
        Simulator {
            fp: FpSubsystem::new(&cfg),
            tcdm: Tcdm::new(cfg.tcdm),
            program,
            cfg,
            regs: [0; 32],
            int_pending: [false; 32],
            pc: 0,
            state: IntState::Running,
            csrs: CsrFile::new(),
            counters: PerfCounters::new(),
            region_start: None,
            region: None,
            trace: IssueTrace::new(),
        }
    }

    /// The TCDM (pre-load inputs / read back results).
    #[must_use]
    pub fn tcdm(&self) -> &Tcdm {
        &self.tcdm
    }

    /// Mutable TCDM access.
    pub fn tcdm_mut(&mut self) -> &mut Tcdm {
        &mut self.tcdm
    }

    /// Reads an integer register.
    #[must_use]
    pub fn int_reg(&self, reg: IntReg) -> u32 {
        self.regs[reg.index() as usize]
    }

    /// Writes an integer register (argument passing in tests).
    pub fn set_int_reg(&mut self, reg: IntReg, value: u32) {
        if !reg.is_zero() {
            self.regs[reg.index() as usize] = value;
        }
    }

    /// Reads an FP register as a double.
    #[must_use]
    pub fn fp_reg(&self, reg: FpReg) -> f64 {
        self.fp.reg(reg)
    }

    /// Writes an FP register (test setup).
    pub fn set_fp_reg(&mut self, reg: FpReg, value: f64) {
        self.fp.set_reg(reg, value);
    }

    /// The FP subsystem (diagnostics).
    #[must_use]
    pub fn fp_subsystem(&self) -> &FpSubsystem {
        &self.fp
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Runs until `ecall` or the cycle budget is exhausted.
    ///
    /// # Errors
    ///
    /// Any [`SimError`]: strict-mode misuse, memory faults, `ebreak`,
    /// budget exhaustion.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        while self.state != IntState::Halted {
            if self.counters.cycles >= max_cycles {
                return Err(SimError::MaxCyclesExceeded { max_cycles });
            }
            self.step()?;
        }
        Ok(RunSummary {
            cycles: self.counters.cycles,
            counters: self.counters,
            region: self.region,
            trace: self.trace.clone(),
            offload_queue_high_water: self.fp.sequencer().queue_high_water(),
        })
    }

    /// Executes one cycle.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run`].
    pub fn step(&mut self) -> Result<(), SimError> {
        // Phase 1: FP writeback (int-register results apply immediately).
        let int_wbs = self.fp.writeback(&mut self.counters);
        for wb in int_wbs {
            if !wb.reg.is_zero() {
                self.regs[wb.reg.index() as usize] = wb.value;
            }
            self.int_pending[wb.reg.index() as usize] = false;
        }

        // Phase 2a: FP issue.
        let fp_outcome = self.fp.try_issue(&mut self.counters)?;

        // Phase 2b: integer execute.
        let int_slot = self.int_step()?;

        // Phase 3: memory.
        self.memory_phase()?;

        // Phase 4: advance.
        self.fp.advance();

        // Bookkeeping.
        self.counters.cycles += 1;
        self.counters.tcdm_accesses = self.tcdm.stats().total_accesses();
        self.counters.tcdm_conflicts = self.tcdm.stats().conflicts();
        self.counters.frep_replays = self.fp.sequencer().replayed();
        if self.cfg.trace {
            let fp_slot = match fp_outcome {
                IssueOutcome::Issued(i) => FpSlot::Issued(i),
                IssueOutcome::Stalled(c) => FpSlot::Stalled(c),
                IssueOutcome::Idle => FpSlot::Idle,
            };
            self.trace.push(TraceCycle { cycle: self.counters.cycles - 1, int_slot, fp_slot });
        }
        Ok(())
    }

    /// One integer-pipeline step. Returns the retired instruction, if any
    /// (for tracing).
    fn int_step(&mut self) -> Result<Option<Instruction>, SimError> {
        match self.state {
            IntState::Halted => return Ok(None),
            IntState::Bubble(n) => {
                self.state = if n <= 1 { IntState::Running } else { IntState::Bubble(n - 1) };
                return Ok(None);
            }
            IntState::LoadWait { .. } | IntState::StoreWait { .. } => {
                // Resolved in the memory phase.
                return Ok(None);
            }
            IntState::Halting => {
                if self.quiescent()? {
                    self.state = IntState::Halted;
                }
                return Ok(None);
            }
            IntState::Running => {}
        }

        let inst = self
            .program
            .fetch(self.pc)
            .ok_or(SimError::FetchOutOfProgram { pc: self.pc })?;

        // Integer sources produced by in-flight FP instructions
        // (comparisons/moves) must be waited for.
        for src in inst.int_sources() {
            if self.int_pending[src.index() as usize] {
                return Ok(None);
            }
        }
        if let Some(rd) = inst.int_dest() {
            if self.int_pending[rd.index() as usize] {
                return Ok(None);
            }
        }

        if inst.is_fp() {
            return self.offload_fp(inst);
        }

        match inst {
            Instruction::Frep { is_outer, max_rpt, n_instr, stagger_max, stagger_mask } => {
                if !self.fp.sequencer().can_accept() {
                    return Ok(None);
                }
                let n_rep = self.reg(max_rpt).wrapping_add(1);
                self.fp.sequencer_mut().offload(SeqItem::Frep {
                    is_outer,
                    n_instr,
                    n_rep,
                    stagger_max,
                    stagger_mask,
                });
                self.retire(inst, 4)
            }
            Instruction::Scfgwi { rs1, imm } => {
                let addr = CfgAddr::from_imm(imm);
                // Pointer writes (affine arms at 24..=31, indirect arm at
                // 16) wait for the previous stream on this mover to
                // complete before re-arming.
                if addr.reg >= 24 || addr.reg == 16 {
                    if (addr.dm as usize) < self.fp.ssr().len()
                        && !self.fp.ssr().mover(addr.dm).is_done()
                    {
                        return Ok(None);
                    }
                }
                let value = self.reg(rs1);
                self.fp.ssr_mut().write_cfg(addr, value)?;
                self.retire(inst, 4)
            }
            Instruction::Scfgri { rd, imm } => {
                let value = self.fp.ssr().read_cfg(CfgAddr::from_imm(imm))?;
                self.write_reg(rd, value);
                self.retire(inst, 4)
            }
            Instruction::Csr { op, rd, csr: addr, src } => self.exec_csr(inst, op, rd, addr, src),
            Instruction::Lui { rd, imm } => {
                self.write_reg(rd, imm);
                self.retire(inst, 4)
            }
            Instruction::Auipc { rd, imm } => {
                self.write_reg(rd, self.pc.wrapping_add(imm));
                self.retire(inst, 4)
            }
            Instruction::Jal { rd, offset } => {
                self.write_reg(rd, self.pc.wrapping_add(4));
                let target = self.pc.wrapping_add(offset as u32);
                self.jump(inst, target)
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.write_reg(rd, self.pc.wrapping_add(4));
                self.jump(inst, target)
            }
            Instruction::Branch { op, rs1, rs2, offset } => {
                if op.evaluate(self.reg(rs1), self.reg(rs2)) {
                    let target = self.pc.wrapping_add(offset as u32);
                    self.jump(inst, target)
                } else {
                    self.retire(inst, 4)
                }
            }
            Instruction::Load { op, rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                self.state = IntState::LoadWait { op, rd, addr };
                self.counters.int_mem_ops += 1;
                self.counters.int_retired += 1;
                self.counters.fetches += 1;
                self.pc = self.pc.wrapping_add(4);
                Ok(Some(inst))
            }
            Instruction::Store { op, rs2, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let value = self.reg(rs2);
                self.state = IntState::StoreWait { op, addr, value };
                self.counters.int_mem_ops += 1;
                self.counters.int_retired += 1;
                self.counters.fetches += 1;
                self.pc = self.pc.wrapping_add(4);
                Ok(Some(inst))
            }
            Instruction::OpImm { op, rd, rs1, imm } => {
                self.write_reg(rd, op.evaluate(self.reg(rs1), imm as u32));
                self.retire(inst, 4)
            }
            Instruction::Op { op, rd, rs1, rs2 } => {
                self.write_reg(rd, op.evaluate(self.reg(rs1), self.reg(rs2)));
                self.retire(inst, 4)
            }
            Instruction::MulDiv { op, rd, rs1, rs2 } => {
                self.write_reg(rd, op.evaluate(self.reg(rs1), self.reg(rs2)));
                self.retire(inst, 4)
            }
            Instruction::Fence => self.retire(inst, 4),
            Instruction::Ecall => {
                self.state = IntState::Halting;
                self.counters.fetches += 1;
                self.counters.int_retired += 1;
                Ok(Some(inst))
            }
            Instruction::Ebreak => Err(SimError::Ebreak { pc: self.pc }),
            _ => unreachable!("fp instructions handled above"),
        }
    }

    fn exec_csr(
        &mut self,
        inst: Instruction,
        op: CsrOp,
        rd: IntReg,
        addr: u16,
        src: CsrSrc,
    ) -> Result<Option<Instruction>, SimError> {
        let operand = match src {
            CsrSrc::Reg(r) => self.reg(r),
            CsrSrc::Imm(i) => u32::from(i),
        };
        match addr {
            csr::CHAIN_MASK => {
                if !self.fp.is_drained() {
                    self.counters.record_stall(crate::counters::StallCause::Sync);
                    return Ok(None);
                }
                let old = self.fp.chain_mask();
                self.fp.set_chain_mask(op.apply(old, operand))?;
                self.write_reg(rd, old);
            }
            csr::SSR_ENABLE => {
                if !self.fp.is_drained() || !self.fp.ssr().all_done() {
                    self.counters.record_stall(crate::counters::StallCause::Sync);
                    return Ok(None);
                }
                let old = u32::from(self.fp.ssr().is_enabled());
                let new = op.apply(old, operand);
                self.fp.ssr_mut().set_enabled(new & 1 == 1);
                self.write_reg(rd, old);
            }
            csr::PERF_REGION => {
                // Region start waits for the FP side to drain; region end
                // additionally waits for the streams (write streams are
                // still draining results that belong inside the region).
                let opens = op.apply(self.csrs.read(addr), operand) != 0;
                let streams_ok = opens || self.fp.ssr().all_done();
                if !self.fp.is_drained() || !streams_ok {
                    self.counters.record_stall(crate::counters::StallCause::Sync);
                    return Ok(None);
                }
                let old = self.csrs.apply(addr, op, operand);
                self.write_reg(rd, old);
                let new = op.apply(old, operand);
                if new != 0 {
                    // Region opens *after* this cycle's bookkeeping: snapshot
                    // includes the current cycle, so the delta starts clean.
                    let mut snap = self.counters;
                    snap.cycles += 1; // this cycle belongs to setup
                    self.region_start = Some(snap);
                } else if let Some(start) = self.region_start.take() {
                    let mut end = self.counters;
                    end.cycles += 1; // include this cycle consistently
                    end.tcdm_accesses = self.tcdm.stats().total_accesses();
                    end.tcdm_conflicts = self.tcdm.stats().conflicts();
                    end.frep_replays = self.fp.sequencer().replayed();
                    self.region = Some(end.delta_since(&start));
                }
            }
            csr::MCYCLE => {
                self.write_reg(rd, self.counters.cycles as u32);
            }
            csr::MINSTRET => {
                self.write_reg(rd, (self.counters.int_retired + self.counters.fp_issued) as u32);
            }
            _ => {
                let old = self.csrs.apply(addr, op, operand);
                self.write_reg(rd, old);
            }
        }
        self.retire(inst, 4)
    }

    fn offload_fp(&mut self, inst: Instruction) -> Result<Option<Instruction>, SimError> {
        if !self.fp.sequencer().can_accept() {
            return Ok(None);
        }
        // Resolve integer-side operands now.
        let addr = match inst {
            Instruction::FpLoad { rs1, offset, .. } | Instruction::FpStore { rs1, offset, .. } => {
                Some(self.reg(rs1).wrapping_add(offset as u32))
            }
            _ => None,
        };
        let int_operand = match inst {
            Instruction::FpCvt { op, rs1, .. } if op.reads_int() => Some(self.reg(rs1)),
            _ => None,
        };
        // FP instructions that write an integer register set a pending bit
        // the integer core synchronises on.
        if let Some(rd) = inst.int_dest() {
            self.int_pending[rd.index() as usize] = true;
        }
        self.fp
            .sequencer_mut()
            .offload(SeqItem::Fp(OffloadedFp { inst, addr, int_operand }));
        self.counters.fetches += 1;
        self.pc += 4;
        Ok(Some(inst))
    }

    fn memory_phase(&mut self) -> Result<(), SimError> {
        // Port 0 carries at most one request: the integer LSU has priority
        // over the FP LSU (they are the same physical port).
        let mut requests: Vec<Request> = Vec::with_capacity(2 + self.fp.ssr().len());
        let mut int_req = false;
        match self.state {
            IntState::LoadWait { addr, .. } => {
                requests.push(Request { port: PortId(0), addr, kind: AccessKind::Read });
                int_req = true;
            }
            IntState::StoreWait { addr, .. } => {
                requests.push(Request { port: PortId(0), addr, kind: AccessKind::Write });
                int_req = true;
            }
            _ => {}
        }
        let mut fp_lsu_idx = None;
        if !int_req {
            if let Some(req) = self.fp.lsu_request() {
                fp_lsu_idx = Some(requests.len());
                requests.push(req);
            }
        }
        let dm_start = requests.len();
        let dm_indexes: Vec<u8> = self
            .fp
            .ssr()
            .movers()
            .filter_map(|m| m.request().map(|r| (m.index(), r)))
            .map(|(i, r)| {
                requests.push(r);
                i
            })
            .collect();

        if requests.is_empty() {
            return Ok(());
        }
        let grants = self.tcdm.arbitrate(&requests);

        // Integer LSU outcome.
        if int_req {
            if grants[0] {
                match self.state {
                    IntState::LoadWait { op, rd, addr } => {
                        let value = self.int_load(op, addr)?;
                        self.write_reg(rd, value);
                        // Data lands at end of cycle; one bubble before the
                        // dependent instruction can run (2-cycle load).
                        self.state = IntState::Bubble(1);
                    }
                    IntState::StoreWait { op, addr, value } => {
                        self.int_store(op, addr, value)?;
                        self.state = IntState::Running;
                    }
                    _ => unreachable!(),
                }
            }
        } else if let Some(idx) = fp_lsu_idx {
            if grants[idx] {
                self.fp.lsu_grant(&mut self.tcdm)?;
            }
        }

        // Stream movers.
        for (k, dm) in dm_indexes.iter().enumerate() {
            if grants[dm_start + k] {
                self.fp.ssr_mut().mover_mut(*dm).apply_grant(&mut self.tcdm)?;
            } else {
                self.fp.ssr_mut().mover_mut(*dm).note_denied();
            }
        }
        Ok(())
    }

    fn int_load(&mut self, op: LoadOp, addr: u32) -> Result<u32, SimError> {
        let v = match op {
            LoadOp::Lw => self.tcdm.read_u32(addr)?,
            LoadOp::Lb => self.tcdm.read_u8(addr)? as i8 as i32 as u32,
            LoadOp::Lbu => u32::from(self.tcdm.read_u8(addr)?),
            LoadOp::Lh => self.tcdm.read_u16(addr)? as i16 as i32 as u32,
            LoadOp::Lhu => u32::from(self.tcdm.read_u16(addr)?),
        };
        Ok(v)
    }

    fn int_store(&mut self, op: StoreOp, addr: u32, value: u32) -> Result<(), SimError> {
        match op {
            StoreOp::Sw => self.tcdm.write_u32(addr, value)?,
            StoreOp::Sh => self.tcdm.write_u16(addr, value as u16)?,
            StoreOp::Sb => self.tcdm.write_u8(addr, value as u8)?,
        }
        Ok(())
    }

    fn quiescent(&self) -> Result<bool, SimError> {
        if !self.fp.is_drained() {
            return Ok(false);
        }
        for m in self.fp.ssr().movers() {
            if !m.is_done() {
                // Write streams are still draining: keep waiting. Read
                // streams with leftover elements are a software bug.
                if self.cfg.strict && m.request().is_none() && m.can_pop() {
                    return Err(SimError::EcallWithActiveStream { dm: m.index() });
                }
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn reg(&self, r: IntReg) -> u32 {
        self.regs[r.index() as usize]
    }

    fn write_reg(&mut self, r: IntReg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = v;
        }
    }

    fn retire(&mut self, inst: Instruction, pc_inc: u32) -> Result<Option<Instruction>, SimError> {
        self.pc = self.pc.wrapping_add(pc_inc);
        self.counters.int_retired += 1;
        self.counters.fetches += 1;
        Ok(Some(inst))
    }

    fn jump(&mut self, inst: Instruction, target: u32) -> Result<Option<Instruction>, SimError> {
        self.pc = target;
        self.counters.int_retired += 1;
        self.counters.fetches += 1;
        if self.cfg.branch_taken_penalty > 0 {
            self.state = IntState::Bubble(self.cfg.branch_taken_penalty);
        }
        Ok(Some(inst))
    }
}
