//! The core model and the single-core simulator driver.
//!
//! [`Core`] is one Snitch-like compute core — integer pipeline, FP
//! subsystem, CSRs, counters — stepped cycle by cycle against an
//! *externally owned* [`Tcdm`]. [`Simulator`] pairs one core with its own
//! TCDM and keeps the original single-core API; `sc-cluster` instantiates
//! many cores over one shared TCDM.
//!
//! ## Cycle structure
//!
//! Each simulated cycle runs four phases:
//!
//! 1. **FP writeback** — one completion commits (chained pushes may hold).
//! 2. **Issue** — the FP issue stage tries the next sequencer instruction;
//!    then the integer core executes one instruction (pseudo dual-issue:
//!    FP instructions are *offloaded* into the sequencer queue in a single
//!    integer cycle, becoming issueable from the next cycle).
//! 3. **Memory** — the integer LSU, the FP LSU (shared first port, integer
//!    priority) and every stream data mover place requests; the banked
//!    TCDM arbitrates; grants move data.
//! 4. **Advance** — pipelines shift, landed stream data becomes poppable.
//!
//! A lone core drives all four phases through [`Core::step`]. In a
//! cluster the memory phase must see *every* core's requests at once, so
//! the phases are also exposed separately: [`Core::begin_cycle`] (1+2),
//! [`Core::mem_requests`]/[`Core::apply_grants`] (3) and
//! [`Core::end_cycle`] (4). `Core::step` is exactly the composition of
//! those four calls, which is what makes a 1-core cluster cycle-identical
//! to the plain simulator.
//!
//! ## Synchronising instructions
//!
//! Writes to the chaining CSR wait for the FP subsystem to drain; writes to
//! the SSR-enable CSR and the region-marker CSR additionally wait for all
//! streams to complete; `scfgwi` to a stream *pointer* register waits only
//! until that data mover has finished its previous stream. `ecall` waits
//! for full quiescence. These rules make the extension CSRs safe without
//! modelling Snitch's explicit fence idioms.
//!
//! ## Cluster primitives
//!
//! * Reading `mhartid` (0xF14) returns the core's hart ID; reading the
//!   custom cluster-size CSR (0x7C9) returns the number of harts; the
//!   cluster-id CSR (0x7C7) and system-size CSR (0x7C8) place the core
//!   within a multi-cluster system.
//! * Writing the barrier CSR (0x7C5) first waits for the FP subsystem to
//!   drain and all streams to complete (like the other synchronising
//!   CSRs), then parks the hart in a barrier-wait state. The owner of the
//!   cores — the cluster, or [`Simulator`] for the 1-hart case — releases
//!   all waiting harts in the same cycle once every active hart has
//!   arrived; the CSR read value delivered on release is the number of
//!   barrier episodes completed before this one. The system barrier CSR
//!   (0x7C6) works the same way across every cluster of a system.

use sc_isa::{csr, CsrFile, CsrOp, CsrSrc, FpReg, Instruction, IntReg, LoadOp, Program, StoreOp};
use sc_mem::{AccessKind, PortId, Request, Tcdm};
use sc_perf::{Leaf, PhaseMark};
use sc_ssr::CfgAddr;
use sc_trace::{ResourceState, Tracer, Track};

use crate::config::CoreConfig;
use crate::counters::{PerfCounters, StallCause};
use crate::error::SimError;
use crate::fp_subsys::{FpSubsystem, IssueOutcome};
use crate::sched::Wake;
use crate::sequencer::{OffloadedFp, SeqItem};
use crate::trace::{FpSlot, IssueTrace, TraceCycle};

/// Result of a completed simulation.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Counters over the whole run.
    pub counters: PerfCounters,
    /// Counters over the marked region (between PERF_REGION writes), if
    /// the program marked one.
    pub region: Option<PerfCounters>,
    /// Issue trace (empty unless [`CoreConfig::trace`] was set).
    pub trace: IssueTrace,
    /// Offload-queue high-water mark (sizing diagnostics).
    pub offload_queue_high_water: usize,
    /// Phase boundaries the program marked by writing the `PHASE_MARK`
    /// CSR (0x7CA), each with a timestamped attribution snapshot —
    /// `sc_perf::segment_phases` turns them into prologue / steady-state
    /// / drain profiles. Empty unless the kernel emits markers.
    pub phase_marks: Vec<PhaseMark>,
}

impl RunSummary {
    /// Counters of the measured region, falling back to the whole run.
    #[must_use]
    pub fn measured(&self) -> &PerfCounters {
        self.region.as_ref().unwrap_or(&self.counters)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IntState {
    Running,
    /// Fixed bubbles (branch penalty, load writeback).
    Bubble(u32),
    /// Integer load waiting for its TCDM grant.
    LoadWait {
        op: LoadOp,
        rd: IntReg,
        addr: u32,
    },
    /// Integer store waiting for its TCDM grant.
    StoreWait {
        op: StoreOp,
        addr: u32,
        value: u32,
    },
    /// Parked on the cluster barrier CSR; released externally.
    BarrierWait {
        rd: IntReg,
    },
    /// Parked on the inter-cluster (system) barrier CSR; released
    /// externally once every active hart in the whole system arrived.
    SystemBarrierWait {
        rd: IntReg,
    },
    /// Parked on the blocking DMA-completion CSR (`DMA_WAIT`); released
    /// externally once the engine's wrapping completion counter reaches
    /// `target`.
    DmaWait {
        rd: IntReg,
        target: u32,
    },
    /// `ecall` executed; waiting for quiescence.
    Halting,
    Halted,
}

/// What the memory phase queued this cycle (bookkeeping between
/// [`Core::mem_requests`] and [`Core::apply_grants`]).
#[derive(Debug, Clone, Copy, Default)]
struct MemPlan {
    int_req: bool,
    fp_lsu: bool,
    n_dm: usize,
}

/// A DMA transfer descriptor, snapshotted from the DMA CSRs when a
/// program rings the `DMA_START` doorbell.
///
/// The core itself does not own a DMA engine: commands accumulate in a
/// per-core outbox the cluster drains each cycle
/// ([`Core::take_dma_commands`]) into the shared engine, and the engine's
/// status is mirrored back ([`Core::set_dma_status`]) for the status
/// CSRs to read. On a lone [`Simulator`] the outbox is never drained and
/// the doorbell is inert (status reads stay zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaCommand {
    /// Byte address on the background-memory (Dram) side.
    pub src: u32,
    /// Byte address on the TCDM side.
    pub dst: u32,
    /// Bytes per row.
    pub len: u32,
    /// Byte stride between row starts on the Dram side.
    pub src_stride: u32,
    /// Byte stride between row starts on the TCDM side.
    pub dst_stride: u32,
    /// Row count (0 is treated as 1).
    pub reps: u32,
    /// Direction: `true` = Dram → TCDM.
    pub to_tcdm: bool,
}

/// One steppable compute core, memory-system agnostic.
///
/// The core owns everything *private* to a hart — register files, FP
/// subsystem, sequencer, CSRs, counters — but not the TCDM, which is
/// passed into each cycle. See the module docs for the phase protocol.
///
/// # Examples
///
/// ```
/// use sc_core::{Core, CoreConfig};
/// use sc_isa::{IntReg, ProgramBuilder};
/// use sc_mem::Tcdm;
///
/// let mut b = ProgramBuilder::new();
/// b.li(IntReg::new(5), 7);
/// b.ecall();
/// let cfg = CoreConfig::new();
/// let mut tcdm = Tcdm::new(cfg.tcdm);
/// let mut core = Core::new(cfg, b.build()?);
/// while !core.is_halted() {
///     core.step(&mut tcdm)?;
/// }
/// assert_eq!(core.int_reg(IntReg::new(5)), 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    program: Program,
    fp: FpSubsystem,
    regs: [u32; 32],
    int_pending: [bool; 32],
    pc: u32,
    state: IntState,
    csrs: CsrFile,
    counters: PerfCounters,
    region_start: Option<PerfCounters>,
    region: Option<PerfCounters>,
    trace: IssueTrace,
    hart_id: u32,
    num_harts: u32,
    cluster_id: u32,
    num_clusters: u32,
    port_base: u8,
    barriers_completed: u32,
    system_barriers_completed: u32,
    plan: MemPlan,
    dm_plan: Vec<u8>,
    trace_int_slot: Option<Instruction>,
    trace_fp_slot: FpSlot,
    dma_outbox: Vec<DmaCommand>,
    /// Cumulative doorbell rings (the `DMA_START` read-back value — the
    /// outbox itself is drained by the cluster every cycle).
    dma_rung: u32,
    dma_outstanding: u32,
    dma_completed: u32,
    phase_marks: Vec<PhaseMark>,
    tracer: Tracer,
    track: Track,
}

impl Core {
    /// Creates a lone core (hart 0 of 1) for `program` under `cfg`.
    #[must_use]
    pub fn new(cfg: CoreConfig, program: Program) -> Self {
        Self::with_hart(cfg, program, 0, 1)
    }

    /// Creates hart `hart_id` of a `num_harts`-core cluster.
    ///
    /// The core's TCDM requests use the port namespace
    /// `hart_id * (1 + num_ssrs) ..`: first the LSU port, then one port
    /// per stream data mover.
    ///
    /// # Panics
    ///
    /// Panics if `hart_id >= num_harts` or the port namespace overflows
    /// the 8-bit port space.
    #[must_use]
    pub fn with_hart(cfg: CoreConfig, program: Program, hart_id: u32, num_harts: u32) -> Self {
        assert!(num_harts >= 1, "a cluster has at least one hart");
        assert!(
            hart_id < num_harts,
            "hart {hart_id} outside cluster of {num_harts}"
        );
        let ports_per_core = 1 + u32::from(cfg.num_ssrs);
        let port_base = hart_id * ports_per_core;
        assert!(
            port_base + ports_per_core <= 256,
            "port namespace overflow: hart {hart_id} with {ports_per_core} ports/core"
        );
        Core {
            fp: FpSubsystem::with_port_base(&cfg, port_base as u8),
            program,
            cfg,
            regs: [0; 32],
            int_pending: [false; 32],
            pc: 0,
            state: IntState::Running,
            csrs: CsrFile::new(),
            counters: PerfCounters::new(),
            region_start: None,
            region: None,
            trace: IssueTrace::new(),
            hart_id,
            num_harts,
            cluster_id: 0,
            num_clusters: 1,
            port_base: port_base as u8,
            barriers_completed: 0,
            system_barriers_completed: 0,
            plan: MemPlan::default(),
            dm_plan: Vec::new(),
            trace_int_slot: None,
            trace_fp_slot: FpSlot::Idle,
            dma_outbox: Vec::new(),
            dma_rung: 0,
            dma_outstanding: 0,
            dma_completed: 0,
            phase_marks: Vec::new(),
            tracer: Tracer::off(),
            track: Track::new(0, 0),
        }
    }

    /// Subscribes the core to a trace sink. Each cycle becomes one state
    /// sample on `track` — `fp-issue`, a stall-cause label, `int`,
    /// `barrier`, … — which the sink coalesces into occupancy spans;
    /// chained-FIFO occupancy becomes a counter series.
    pub fn set_tracer(&mut self, tracer: Tracer, track: Track) {
        if tracer.is_on() {
            tracer.name_thread(track, &format!("hart{}", self.hart_id));
        }
        self.tracer = tracer;
        self.track = track;
    }

    /// This core's hart ID.
    #[must_use]
    pub fn hart_id(&self) -> u32 {
        self.hart_id
    }

    /// Number of harts in the cluster this core belongs to.
    #[must_use]
    pub fn num_harts(&self) -> u32 {
        self.num_harts
    }

    /// This core's cluster ID within the system (0 outside a system).
    #[must_use]
    pub fn cluster_id(&self) -> u32 {
        self.cluster_id
    }

    /// Number of clusters in the system (1 outside a system).
    #[must_use]
    pub fn num_clusters(&self) -> u32 {
        self.num_clusters
    }

    /// Places the core inside a multi-cluster system: the values the
    /// `CLUSTER_ID` (0x7C7) and `SYSTEM_NUM_CLUSTERS` (0x7C8) CSRs read.
    /// Called by the cluster when the cluster itself is embedded in a
    /// system; a stand-alone core is cluster 0 of 1.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_id >= num_clusters`.
    pub fn set_cluster_pos(&mut self, cluster_id: u32, num_clusters: u32) {
        assert!(
            cluster_id < num_clusters,
            "cluster {cluster_id} outside system of {num_clusters}"
        );
        self.cluster_id = cluster_id;
        self.num_clusters = num_clusters;
    }

    /// First TCDM port of this core's namespace.
    #[must_use]
    pub fn port_base(&self) -> u8 {
        self.port_base
    }

    /// Ports this core occupies at the TCDM crossbar (LSU + movers).
    #[must_use]
    pub fn ports_per_core(&self) -> u8 {
        1 + self.cfg.num_ssrs
    }

    /// The configuration this core was built with.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Reads an integer register.
    #[must_use]
    pub fn int_reg(&self, reg: IntReg) -> u32 {
        self.regs[reg.index() as usize]
    }

    /// Writes an integer register (argument passing in tests).
    pub fn set_int_reg(&mut self, reg: IntReg, value: u32) {
        if !reg.is_zero() {
            self.regs[reg.index() as usize] = value;
        }
    }

    /// Reads an FP register as a double.
    #[must_use]
    pub fn fp_reg(&self, reg: FpReg) -> f64 {
        self.fp.reg(reg)
    }

    /// Writes an FP register (test setup).
    pub fn set_fp_reg(&mut self, reg: FpReg, value: f64) {
        self.fp.set_reg(reg, value);
    }

    /// The FP subsystem (diagnostics).
    #[must_use]
    pub fn fp_subsystem(&self) -> &FpSubsystem {
        &self.fp
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Whether the core has executed `ecall` and fully quiesced.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.state == IntState::Halted
    }

    /// Whether the core is parked on the cluster barrier.
    #[must_use]
    pub fn in_barrier(&self) -> bool {
        matches!(self.state, IntState::BarrierWait { .. })
    }

    /// Whether the core is parked on the inter-cluster (system) barrier.
    #[must_use]
    pub fn in_system_barrier(&self) -> bool {
        matches!(self.state, IntState::SystemBarrierWait { .. })
    }

    /// Barrier episodes this core has completed.
    #[must_use]
    pub fn barriers_completed(&self) -> u32 {
        self.barriers_completed
    }

    /// System-barrier episodes this core has completed.
    #[must_use]
    pub fn system_barriers_completed(&self) -> u32 {
        self.system_barriers_completed
    }

    /// A short label for the integer pipeline's current state (hang
    /// diagnostics).
    #[must_use]
    pub fn state_label(&self) -> &'static str {
        match self.state {
            IntState::Running => "running",
            IntState::Bubble(_) => "bubble",
            IntState::LoadWait { .. } => "load-wait",
            IntState::StoreWait { .. } => "store-wait",
            IntState::BarrierWait { .. } => "barrier-wait",
            IntState::SystemBarrierWait { .. } => "sys-barrier-wait",
            IntState::DmaWait { .. } => "dma-wait",
            IntState::Halting => "halting",
            IntState::Halted => "halted",
        }
    }

    /// The earliest future cycle at which stepping this core could do
    /// anything beyond incrementing its cycle counter. A halted core
    /// never acts again; a core parked on a barrier or the blocking
    /// DMA-wait CSR is drained by construction (parking requires FP
    /// quiescence) and acts only when externally released; everything
    /// else — including a tracing core, whose per-cycle trace entries
    /// the owner cannot reproduce in closed form — needs dense stepping.
    #[must_use]
    pub fn wake(&self) -> Wake {
        match self.state {
            IntState::Halted => Wake::Idle,
            _ if self.cfg.trace => Wake::EveryCycle,
            IntState::BarrierWait { .. }
            | IntState::SystemBarrierWait { .. }
            | IntState::DmaWait { .. } => Wake::Idle,
            _ => Wake::EveryCycle,
        }
    }

    /// Bulk-applies `cycles` idle cycles to a parked core: exactly the
    /// bookkeeping that many dense steps would have performed. A parked
    /// hart is drained (parking requires FP quiescence), so a dense
    /// cycle mutates nothing but the cycle counter.
    ///
    /// # Panics
    ///
    /// Debug-asserts the core actually reported an idle wake.
    pub fn skip_cycles(&mut self, cycles: u64) {
        debug_assert!(
            matches!(self.wake(), Wake::Idle) && !self.is_halted(),
            "skip_cycles on a core that needs dense stepping"
        );
        // The attribution a dense loop would have recorded: a parked
        // hart is drained, so every skipped cycle classifies by its wait
        // state (`begin_cycle` would land in the same leaf each time).
        let leaf = match self.state {
            IntState::BarrierWait { .. } => Leaf::Barrier,
            IntState::SystemBarrierWait { .. } => Leaf::SystemBarrier,
            IntState::DmaWait { .. } => Leaf::DmaWait,
            _ => Leaf::Park,
        };
        self.counters.attr.record_n(leaf, cycles);
        self.counters.cycles += cycles;
    }

    /// A monotone progress signature: grows whenever architectural state
    /// retires anywhere in the hart. Watchdogs compare successive
    /// values — a frozen signature while harts are unfinished is a hang.
    #[must_use]
    pub fn progress_signature(&self) -> u64 {
        self.counters.int_retired
            + self.counters.fp_issued
            + self.counters.ssr_elements
            + u64::from(self.barriers_completed)
            + u64::from(self.system_barriers_completed)
    }

    /// Appends this hart's hang-diagnosis view to `out` under `path`:
    /// the integer pipeline's wait state, then every stateful
    /// FP-subsystem resource (held writebacks, chained FIFOs, streams).
    pub fn diagnose(&self, path: &str, out: &mut Vec<ResourceState>) {
        let parked = matches!(
            self.state,
            IntState::LoadWait { .. }
                | IntState::StoreWait { .. }
                | IntState::BarrierWait { .. }
                | IntState::SystemBarrierWait { .. }
                | IntState::DmaWait { .. }
        );
        let p = format!("{path}.int");
        out.push(if parked {
            ResourceState::blocked(p, self.state_label())
        } else {
            ResourceState::info(p, self.state_label())
        });
        self.fp.diagnose(path, out);
    }

    /// Releases a core parked on the barrier: the barrier-CSR write
    /// retires, its destination register receiving the number of barrier
    /// episodes completed before this one. No-op if the core is not
    /// waiting. Called by the cluster (or [`Simulator`], immediately)
    /// once every active hart has arrived.
    pub fn release_barrier(&mut self) {
        if let IntState::BarrierWait { rd } = self.state {
            let completed = self.barriers_completed;
            self.barriers_completed += 1;
            self.write_reg(rd, completed);
            self.pc = self.pc.wrapping_add(4);
            self.counters.int_retired += 1;
            self.counters.fetches += 1;
            self.state = IntState::Running;
            self.tracer.instant(self.track, "barrier-release");
        }
    }

    /// Releases a core parked on the system barrier: the barrier-CSR
    /// write retires, its destination register receiving the number of
    /// system-barrier episodes completed before this one. No-op if the
    /// core is not waiting. Called by the system (or by the cluster /
    /// [`Simulator`] when they are the whole system) once every active
    /// hart of every cluster has arrived.
    pub fn release_system_barrier(&mut self) {
        if let IntState::SystemBarrierWait { rd } = self.state {
            let completed = self.system_barriers_completed;
            self.system_barriers_completed += 1;
            self.write_reg(rd, completed);
            self.pc = self.pc.wrapping_add(4);
            self.counters.int_retired += 1;
            self.counters.fetches += 1;
            self.state = IntState::Running;
            self.tracer.instant(self.track, "sys-barrier-release");
        }
    }

    /// Whether the core is parked on the blocking DMA-wait CSR, and if
    /// so, the completion count it waits for. The owner compares the
    /// live engine counter with wrapping distance
    /// (`(completed - target) as i32 >= 0`) and releases via
    /// [`Core::release_dma_wait`].
    #[must_use]
    pub fn dma_wait_target(&self) -> Option<u32> {
        match self.state {
            IntState::DmaWait { target, .. } => Some(target),
            _ => None,
        }
    }

    /// Releases a core parked on the blocking DMA-wait CSR: the write
    /// retires, its destination register receiving `completed` — the
    /// live completion count that satisfied the wait. No-op if the core
    /// is not waiting. Called by the cluster once the engine's counter
    /// reaches the target (or by [`Simulator`], immediately — a lone
    /// core's doorbell is inert, so there is nothing to wait for).
    pub fn release_dma_wait(&mut self, completed: u32) {
        if let IntState::DmaWait { rd, .. } = self.state {
            self.dma_completed = completed;
            self.write_reg(rd, completed);
            self.pc = self.pc.wrapping_add(4);
            self.counters.int_retired += 1;
            self.counters.fetches += 1;
            self.state = IntState::Running;
            self.tracer.instant(self.track, "dma-wait-release");
        }
    }

    /// Drains the DMA commands rung since the last drain (cluster use).
    pub fn take_dma_commands(&mut self) -> Vec<DmaCommand> {
        std::mem::take(&mut self.dma_outbox)
    }

    /// Whether any DMA doorbell rings are waiting to be drained.
    #[must_use]
    pub fn has_dma_commands(&self) -> bool {
        !self.dma_outbox.is_empty()
    }

    /// Mirrors the shared DMA engine's state into this core, making the
    /// `DMA_STATUS` (outstanding) and `DMA_COMPLETED` (monotonic) CSRs
    /// readable. The cluster calls this at the top of every cycle.
    pub fn set_dma_status(&mut self, outstanding: u32, completed: u32) {
        self.dma_outstanding = outstanding;
        self.dma_completed = completed;
    }

    /// Replaces the program of a *halted* core and restarts execution at
    /// its first instruction, keeping all architectural state — register
    /// files, CSRs, counters, barrier episode count — intact. This
    /// models a software outer loop (e.g. the double-buffered tile loop)
    /// jumping back to its head, without charging refetch bubbles.
    ///
    /// # Panics
    ///
    /// Panics unless the core has halted (post-`ecall` quiescence
    /// guarantees the FP subsystem is drained and all streams are done,
    /// so restarting is always architecturally clean).
    pub fn load_program(&mut self, program: Program) {
        assert!(
            self.is_halted(),
            "load_program requires a halted (quiesced) core"
        );
        self.program = program;
        self.pc = 0;
        self.state = IntState::Running;
    }

    /// Phase boundaries marked so far (writes to the `PHASE_MARK` CSR),
    /// in program order. Survives [`Core::load_program`], so a tile loop
    /// run as program stages accumulates one mark per stage.
    #[must_use]
    pub fn phase_marks(&self) -> &[PhaseMark] {
        &self.phase_marks
    }

    /// The run summary as of now (cheap apart from cloning the trace).
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            cycles: self.counters.cycles,
            counters: self.counters,
            region: self.region,
            trace: self.trace.clone(),
            offload_queue_high_water: self.fp.sequencer().queue_high_water(),
            phase_marks: self.phase_marks.clone(),
        }
    }

    /// Executes one full cycle against `tcdm`, running the memory phase
    /// (arbitration included) locally. Exactly equivalent to
    /// `begin_cycle`; `mem_requests`; `arbitrate`; `apply_grants`;
    /// `end_cycle`.
    ///
    /// # Errors
    ///
    /// Any [`SimError`]: strict-mode misuse, memory faults, `ebreak`.
    pub fn step(&mut self, tcdm: &mut Tcdm) -> Result<(), SimError> {
        self.begin_cycle()?;
        let mut requests = Vec::with_capacity(2 + self.fp.ssr().len());
        self.mem_requests(&mut requests);
        let grants = if requests.is_empty() {
            Vec::new()
        } else {
            tcdm.arbitrate(&requests)
        };
        self.apply_grants(&grants, tcdm)?;
        self.end_cycle();
        Ok(())
    }

    /// Phases 1–2: FP writeback, FP issue, integer execute.
    ///
    /// # Errors
    ///
    /// See [`Core::step`].
    pub fn begin_cycle(&mut self) -> Result<(), SimError> {
        // Phase 1: FP writeback (int-register results apply immediately).
        let int_wbs = self.fp.writeback(&mut self.counters);
        for wb in int_wbs {
            if !wb.reg.is_zero() {
                self.regs[wb.reg.index() as usize] = wb.value;
            }
            self.int_pending[wb.reg.index() as usize] = false;
        }

        // Phase 2a: FP issue.
        let fp_outcome = self.fp.try_issue(&mut self.counters)?;

        // Phase 2b: integer execute.
        let sync_before = self.counters.stalls_of(StallCause::Sync);
        let int_slot = self.int_step()?;
        let sync_retry = self.counters.stalls_of(StallCause::Sync) > sync_before;

        // Top-down attribution: exactly one leaf per cycle, chosen here
        // (before `end_cycle` increments the cycle counter) so the sum
        // of leaves always partitions the cycle count. The FP issue slot
        // takes precedence — it carries the paper's headline effects —
        // and an idle slot is explained by the integer pipeline's state.
        let leaf = match fp_outcome {
            IssueOutcome::Issued(_) => Leaf::Retired,
            IssueOutcome::Stalled(cause) => match cause {
                StallCause::NoInstruction => Leaf::NoInst,
                StallCause::RawHazard => Leaf::RawHazard,
                StallCause::WawHazard => Leaf::WawHazard,
                StallCause::ChainEmpty => Leaf::ChainEmpty,
                StallCause::ChainFull => Leaf::ChainFull,
                StallCause::SsrStarve => Leaf::SsrStarve,
                StallCause::SsrFull => Leaf::SsrFull,
                StallCause::UnitBusy => Leaf::UnitBusy,
                StallCause::LsuBusy => Leaf::LsuBusy,
                StallCause::Sync => Leaf::Drain,
            },
            IssueOutcome::Idle => match self.state {
                IntState::BarrierWait { .. } => Leaf::Barrier,
                IntState::SystemBarrierWait { .. } => Leaf::SystemBarrier,
                IntState::DmaWait { .. } => Leaf::DmaWait,
                IntState::LoadWait { .. } | IntState::StoreWait { .. } => Leaf::LoadStore,
                IntState::Halting | IntState::Halted => Leaf::Park,
                IntState::Running | IntState::Bubble(_) => {
                    if int_slot.is_some() {
                        Leaf::Retired
                    } else if sync_retry {
                        // A synchronising CSR retrying against an
                        // FP-subsystem drain with an otherwise idle slot.
                        Leaf::Drain
                    } else {
                        Leaf::Frontend
                    }
                }
            },
        };
        self.counters.attr.record(leaf);

        if self.tracer.is_on() {
            let label = match fp_outcome {
                IssueOutcome::Issued(_) => "fp-issue",
                IssueOutcome::Stalled(c) => c.label(),
                IssueOutcome::Idle => match self.state {
                    IntState::BarrierWait { .. } => "barrier",
                    IntState::SystemBarrierWait { .. } => "sys-barrier",
                    IntState::DmaWait { .. } => "dma-wait",
                    IntState::LoadWait { .. } | IntState::StoreWait { .. } => "mem-wait",
                    IntState::Halting | IntState::Halted => "idle",
                    IntState::Running | IntState::Bubble(_) => {
                        if int_slot.is_some() {
                            "int"
                        } else {
                            "idle"
                        }
                    }
                },
            };
            self.tracer.state(self.track, label);
            self.tracer.counter(
                self.track,
                "chain-valid",
                u64::from(self.fp.chain().valid_bits().count_ones()),
            );
        }

        if self.cfg.trace {
            self.trace_int_slot = int_slot;
            self.trace_fp_slot = match fp_outcome {
                IssueOutcome::Issued(i) => FpSlot::Issued(i),
                IssueOutcome::Stalled(c) => FpSlot::Stalled(c),
                IssueOutcome::Idle => FpSlot::Idle,
            };
        }
        Ok(())
    }

    /// Phase 3a: appends this cycle's TCDM requests to `out`, ports
    /// already namespaced. The caller must pass the grant flags for
    /// exactly these requests (in order) to [`Core::apply_grants`].
    pub fn mem_requests(&mut self, out: &mut Vec<Request>) {
        self.plan = MemPlan::default();
        self.dm_plan.clear();
        // The first namespaced port carries at most one request: the
        // integer LSU has priority over the FP LSU (same physical port).
        match self.state {
            IntState::LoadWait { addr, .. } => {
                out.push(Request {
                    port: PortId(self.port_base),
                    addr,
                    kind: AccessKind::Read,
                });
                self.plan.int_req = true;
            }
            IntState::StoreWait { addr, .. } => {
                out.push(Request {
                    port: PortId(self.port_base),
                    addr,
                    kind: AccessKind::Write,
                });
                self.plan.int_req = true;
            }
            _ => {}
        }
        if !self.plan.int_req {
            if let Some(req) = self.fp.lsu_request() {
                out.push(req);
                self.plan.fp_lsu = true;
            }
        }
        for (dm, req) in self
            .fp
            .ssr()
            .movers()
            .filter_map(|m| m.request().map(|r| (m.index(), r)))
        {
            out.push(req);
            self.dm_plan.push(dm);
        }
        self.plan.n_dm = self.dm_plan.len();
    }

    /// Phase 3b: applies the arbitration outcome for the requests issued
    /// by [`Core::mem_requests`] this cycle. `grants` must be
    /// index-aligned with them. Granted requests move data through
    /// `tcdm`'s functional interface; denied stream requests retry next
    /// cycle. Per-core TCDM access/conflict counters update here.
    ///
    /// # Errors
    ///
    /// Functional memory errors (misaligned / out-of-bounds addresses).
    ///
    /// # Panics
    ///
    /// Panics if `grants` does not match the requests of this cycle.
    pub fn apply_grants(&mut self, grants: &[bool], tcdm: &mut Tcdm) -> Result<(), SimError> {
        let expected =
            usize::from(self.plan.int_req) + usize::from(self.plan.fp_lsu) + self.plan.n_dm;
        assert_eq!(
            grants.len(),
            expected,
            "grant flags must match this cycle's requests"
        );
        for granted in grants {
            if *granted {
                self.counters.tcdm_accesses += 1;
            } else {
                self.counters.tcdm_conflicts += 1;
            }
        }

        let mut idx = 0;
        if self.plan.int_req {
            if grants[idx] {
                match self.state {
                    IntState::LoadWait { op, rd, addr } => {
                        let value = self.int_load(op, addr, tcdm)?;
                        self.write_reg(rd, value);
                        // Data lands at end of cycle; one bubble before the
                        // dependent instruction can run (2-cycle load).
                        self.state = IntState::Bubble(1);
                    }
                    IntState::StoreWait { op, addr, value } => {
                        self.int_store(op, addr, value, tcdm)?;
                        self.state = IntState::Running;
                    }
                    _ => unreachable!(),
                }
            }
            idx += 1;
        } else if self.plan.fp_lsu {
            if grants[idx] {
                self.fp.lsu_grant(tcdm)?;
            }
            idx += 1;
        }

        for k in 0..self.plan.n_dm {
            let dm = self.dm_plan[k];
            if grants[idx + k] {
                self.fp.ssr_mut().mover_mut(dm).apply_grant(tcdm)?;
            } else {
                self.fp.ssr_mut().mover_mut(dm).note_denied();
            }
        }
        Ok(())
    }

    /// Phase 4: pipelines shift, landed stream data becomes poppable, and
    /// the cycle's bookkeeping (counters, trace) commits.
    pub fn end_cycle(&mut self) {
        self.fp.advance();
        self.counters.cycles += 1;
        self.counters.frep_replays = self.fp.sequencer().replayed();
        if self.cfg.trace {
            self.trace.push(TraceCycle {
                cycle: self.counters.cycles - 1,
                int_slot: self.trace_int_slot,
                fp_slot: std::mem::replace(&mut self.trace_fp_slot, FpSlot::Idle),
            });
            self.trace_int_slot = None;
        }
    }

    /// One integer-pipeline step. Returns the retired instruction, if any
    /// (for tracing).
    fn int_step(&mut self) -> Result<Option<Instruction>, SimError> {
        match self.state {
            IntState::Halted => return Ok(None),
            IntState::Bubble(n) => {
                self.state = if n <= 1 {
                    IntState::Running
                } else {
                    IntState::Bubble(n - 1)
                };
                return Ok(None);
            }
            IntState::LoadWait { .. }
            | IntState::StoreWait { .. }
            | IntState::BarrierWait { .. }
            | IntState::SystemBarrierWait { .. }
            | IntState::DmaWait { .. } => {
                // Loads/stores resolve in the memory phase; barrier and
                // DMA waits resolve externally via `release_barrier` /
                // `release_system_barrier` / `release_dma_wait`.
                return Ok(None);
            }
            IntState::Halting => {
                if self.quiescent()? {
                    self.state = IntState::Halted;
                }
                return Ok(None);
            }
            IntState::Running => {}
        }

        let inst = self
            .program
            .fetch(self.pc)
            .ok_or(SimError::FetchOutOfProgram { pc: self.pc })?;

        // Integer sources produced by in-flight FP instructions
        // (comparisons/moves) must be waited for.
        for src in inst.int_sources() {
            if self.int_pending[src.index() as usize] {
                return Ok(None);
            }
        }
        if let Some(rd) = inst.int_dest() {
            if self.int_pending[rd.index() as usize] {
                return Ok(None);
            }
        }

        if inst.is_fp() {
            return self.offload_fp(inst);
        }

        match inst {
            Instruction::Frep {
                is_outer,
                max_rpt,
                n_instr,
                stagger_max,
                stagger_mask,
            } => {
                if !self.fp.sequencer().can_accept() {
                    return Ok(None);
                }
                let n_rep = self.reg(max_rpt).wrapping_add(1);
                self.fp.sequencer_mut().offload(SeqItem::Frep {
                    is_outer,
                    n_instr,
                    n_rep,
                    stagger_max,
                    stagger_mask,
                });
                self.retire(inst, 4)
            }
            Instruction::Scfgwi { rs1, imm } => {
                let addr = CfgAddr::from_imm(imm);
                // Pointer writes (affine arms at 24..=31, indirect arm at
                // 16) wait for the previous stream on this mover to
                // complete before re-arming.
                if (addr.reg >= 24 || addr.reg == 16)
                    && (addr.dm as usize) < self.fp.ssr().len()
                    && !self.fp.ssr().mover(addr.dm).is_done()
                {
                    return Ok(None);
                }
                let value = self.reg(rs1);
                self.fp.ssr_mut().write_cfg(addr, value)?;
                self.retire(inst, 4)
            }
            Instruction::Scfgri { rd, imm } => {
                let value = self.fp.ssr().read_cfg(CfgAddr::from_imm(imm))?;
                self.write_reg(rd, value);
                self.retire(inst, 4)
            }
            Instruction::Csr {
                op,
                rd,
                csr: addr,
                src,
            } => self.exec_csr(inst, op, rd, addr, src),
            Instruction::Lui { rd, imm } => {
                self.write_reg(rd, imm);
                self.retire(inst, 4)
            }
            Instruction::Auipc { rd, imm } => {
                self.write_reg(rd, self.pc.wrapping_add(imm));
                self.retire(inst, 4)
            }
            Instruction::Jal { rd, offset } => {
                self.write_reg(rd, self.pc.wrapping_add(4));
                let target = self.pc.wrapping_add(offset as u32);
                self.jump(inst, target)
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.write_reg(rd, self.pc.wrapping_add(4));
                self.jump(inst, target)
            }
            Instruction::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                if op.evaluate(self.reg(rs1), self.reg(rs2)) {
                    let target = self.pc.wrapping_add(offset as u32);
                    self.jump(inst, target)
                } else {
                    self.retire(inst, 4)
                }
            }
            Instruction::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                self.state = IntState::LoadWait { op, rd, addr };
                self.counters.int_mem_ops += 1;
                self.counters.int_retired += 1;
                self.counters.fetches += 1;
                self.pc = self.pc.wrapping_add(4);
                Ok(Some(inst))
            }
            Instruction::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let value = self.reg(rs2);
                self.state = IntState::StoreWait { op, addr, value };
                self.counters.int_mem_ops += 1;
                self.counters.int_retired += 1;
                self.counters.fetches += 1;
                self.pc = self.pc.wrapping_add(4);
                Ok(Some(inst))
            }
            Instruction::OpImm { op, rd, rs1, imm } => {
                self.write_reg(rd, op.evaluate(self.reg(rs1), imm as u32));
                self.retire(inst, 4)
            }
            Instruction::Op { op, rd, rs1, rs2 } => {
                self.write_reg(rd, op.evaluate(self.reg(rs1), self.reg(rs2)));
                self.retire(inst, 4)
            }
            Instruction::MulDiv { op, rd, rs1, rs2 } => {
                self.write_reg(rd, op.evaluate(self.reg(rs1), self.reg(rs2)));
                self.retire(inst, 4)
            }
            Instruction::Fence => self.retire(inst, 4),
            Instruction::Ecall => {
                self.state = IntState::Halting;
                self.counters.fetches += 1;
                self.counters.int_retired += 1;
                Ok(Some(inst))
            }
            Instruction::Ebreak => Err(SimError::Ebreak { pc: self.pc }),
            _ => unreachable!("fp instructions handled above"),
        }
    }

    fn exec_csr(
        &mut self,
        inst: Instruction,
        op: CsrOp,
        rd: IntReg,
        addr: u16,
        src: CsrSrc,
    ) -> Result<Option<Instruction>, SimError> {
        let operand = match src {
            CsrSrc::Reg(r) => self.reg(r),
            CsrSrc::Imm(i) => u32::from(i),
        };
        match addr {
            csr::CHAIN_MASK => {
                if !self.fp.is_drained() {
                    self.counters
                        .record_stall(crate::counters::StallCause::Sync);
                    return Ok(None);
                }
                let old = self.fp.chain_mask();
                self.fp.set_chain_mask(op.apply(old, operand))?;
                self.write_reg(rd, old);
            }
            csr::SSR_ENABLE => {
                if !self.fp.is_drained() || !self.fp.ssr().all_done() {
                    self.counters
                        .record_stall(crate::counters::StallCause::Sync);
                    return Ok(None);
                }
                let old = u32::from(self.fp.ssr().is_enabled());
                let new = op.apply(old, operand);
                self.fp.ssr_mut().set_enabled(new & 1 == 1);
                self.write_reg(rd, old);
            }
            csr::PERF_REGION => {
                // Region start waits for the FP side to drain; region end
                // additionally waits for the streams (write streams are
                // still draining results that belong inside the region).
                let opens = op.apply(self.csrs.read(addr), operand) != 0;
                let streams_ok = opens || self.fp.ssr().all_done();
                if !self.fp.is_drained() || !streams_ok {
                    self.counters
                        .record_stall(crate::counters::StallCause::Sync);
                    return Ok(None);
                }
                let old = self.csrs.apply(addr, op, operand);
                self.write_reg(rd, old);
                let new = op.apply(old, operand);
                if new != 0 {
                    // Region opens *after* this cycle's bookkeeping: snapshot
                    // includes the current cycle, so the delta starts clean.
                    let mut snap = self.counters;
                    snap.cycles += 1; // this cycle belongs to setup
                    self.region_start = Some(snap);
                } else if let Some(start) = self.region_start.take() {
                    let mut end = self.counters;
                    end.cycles += 1; // include this cycle consistently
                    end.frep_replays = self.fp.sequencer().replayed();
                    self.region = Some(end.delta_since(&start));
                }
            }
            csr::CLUSTER_BARRIER => {
                // Pure reads (csrrs/csrrc with the x0 / zero-immediate
                // operand — per the RISC-V spec, no write occurs) just
                // return the completed-episode count without arriving.
                let pure_read = matches!(op, CsrOp::ReadSet | CsrOp::ReadClear)
                    && match src {
                        CsrSrc::Reg(r) => r.is_zero(),
                        CsrSrc::Imm(i) => i == 0,
                    };
                if pure_read {
                    self.write_reg(rd, self.barriers_completed);
                } else {
                    // A barrier is a rendezvous of the *harts*; each hart's
                    // FP work and streams must complete before it arrives.
                    if !self.fp.is_drained() || !self.fp.ssr().all_done() {
                        self.counters
                            .record_stall(crate::counters::StallCause::Sync);
                        return Ok(None);
                    }
                    // Park without retiring; `release_barrier` retires.
                    self.state = IntState::BarrierWait { rd };
                    return Ok(None);
                }
            }
            csr::SYSTEM_BARRIER => {
                // Same pure-read convention as the cluster barrier.
                let pure_read = matches!(op, CsrOp::ReadSet | CsrOp::ReadClear)
                    && match src {
                        CsrSrc::Reg(r) => r.is_zero(),
                        CsrSrc::Imm(i) => i == 0,
                    };
                if pure_read {
                    self.write_reg(rd, self.system_barriers_completed);
                } else {
                    // A system barrier is a rendezvous of every hart in
                    // every cluster; like the cluster barrier, each
                    // hart's FP work and streams must complete first.
                    if !self.fp.is_drained() || !self.fp.ssr().all_done() {
                        self.counters
                            .record_stall(crate::counters::StallCause::Sync);
                        return Ok(None);
                    }
                    // Park without retiring; `release_system_barrier`
                    // retires.
                    self.state = IntState::SystemBarrierWait { rd };
                    return Ok(None);
                }
            }
            csr::PHASE_MARK => {
                // A phase boundary: record the hart's attribution
                // snapshot (and notify any subscribed tracer) so
                // profiles can segment into prologue / steady-state /
                // drain. Retires in one cycle with no synchronisation —
                // markers must not perturb what they measure beyond
                // their own issue slot. Pure reads return the last
                // value without marking.
                let pure_read = matches!(op, CsrOp::ReadSet | CsrOp::ReadClear)
                    && match src {
                        CsrSrc::Reg(r) => r.is_zero(),
                        CsrSrc::Imm(i) => i == 0,
                    };
                let old = self.csrs.apply(addr, op, operand);
                self.write_reg(rd, old);
                if !pure_read {
                    let value = op.apply(old, operand);
                    self.phase_marks.push(PhaseMark {
                        cycle: self.counters.cycles,
                        value,
                        attr: self.counters.attr,
                    });
                    self.tracer.instant(self.track, "phase-mark");
                }
            }
            csr::CLUSTER_ID => {
                self.write_reg(rd, self.cluster_id);
            }
            csr::SYSTEM_NUM_CLUSTERS => {
                self.write_reg(rd, self.num_clusters);
            }
            csr::DMA_START => {
                // Pure reads (csrrs/csrrc with a zero operand) report the
                // cumulative number of doorbells this core has rung; any
                // write snapshots the descriptor CSRs into a command for
                // the cluster's engine, operand bit 0 selecting the
                // direction.
                let pure_read = matches!(op, CsrOp::ReadSet | CsrOp::ReadClear)
                    && match src {
                        CsrSrc::Reg(r) => r.is_zero(),
                        CsrSrc::Imm(i) => i == 0,
                    };
                self.write_reg(rd, self.dma_rung);
                if !pure_read {
                    self.dma_rung = self.dma_rung.wrapping_add(1);
                    self.dma_outbox.push(DmaCommand {
                        src: self.csrs.read(csr::DMA_SRC),
                        dst: self.csrs.read(csr::DMA_DST),
                        len: self.csrs.read(csr::DMA_LEN),
                        src_stride: self.csrs.read(csr::DMA_SRC_STRIDE),
                        dst_stride: self.csrs.read(csr::DMA_DST_STRIDE),
                        reps: self.csrs.read(csr::DMA_REPS).max(1),
                        to_tcdm: operand & 1 == 1,
                    });
                }
            }
            csr::DMA_STATUS => {
                self.write_reg(rd, self.dma_outstanding);
            }
            csr::DMA_WAIT => {
                // Pure reads return the mirrored completion count, like
                // DMA_COMPLETED. A write parks the hart until the
                // engine's wrapping counter reaches the target — unless
                // the mirror already satisfies it, in which case the
                // write retires immediately (the rendezvous everyone
                // already reached).
                let pure_read = matches!(op, CsrOp::ReadSet | CsrOp::ReadClear)
                    && match src {
                        CsrSrc::Reg(r) => r.is_zero(),
                        CsrSrc::Imm(i) => i == 0,
                    };
                if pure_read {
                    self.write_reg(rd, self.dma_completed);
                } else {
                    let target = op.apply(self.dma_completed, operand);
                    if (self.dma_completed.wrapping_sub(target) as i32) >= 0 {
                        self.write_reg(rd, self.dma_completed);
                    } else {
                        // Like the barrier CSRs, parking waits for FP
                        // quiescence first — a parked hart must be
                        // inert so idle windows can be fast-forwarded.
                        if !self.fp.is_drained() || !self.fp.ssr().all_done() {
                            self.counters
                                .record_stall(crate::counters::StallCause::Sync);
                            return Ok(None);
                        }
                        // Park without retiring; `release_dma_wait`
                        // retires.
                        self.state = IntState::DmaWait { rd, target };
                        return Ok(None);
                    }
                }
            }
            csr::DMA_COMPLETED => {
                self.write_reg(rd, self.dma_completed);
            }
            csr::MHARTID => {
                self.write_reg(rd, self.hart_id);
            }
            csr::CLUSTER_NUM_CORES => {
                self.write_reg(rd, self.num_harts);
            }
            csr::MCYCLE => {
                self.write_reg(rd, self.counters.cycles as u32);
            }
            csr::MINSTRET => {
                self.write_reg(
                    rd,
                    (self.counters.int_retired + self.counters.fp_issued) as u32,
                );
            }
            _ => {
                let old = self.csrs.apply(addr, op, operand);
                self.write_reg(rd, old);
            }
        }
        self.retire(inst, 4)
    }

    fn offload_fp(&mut self, inst: Instruction) -> Result<Option<Instruction>, SimError> {
        if !self.fp.sequencer().can_accept() {
            return Ok(None);
        }
        // Resolve integer-side operands now.
        let addr = match inst {
            Instruction::FpLoad { rs1, offset, .. } | Instruction::FpStore { rs1, offset, .. } => {
                Some(self.reg(rs1).wrapping_add(offset as u32))
            }
            _ => None,
        };
        let int_operand = match inst {
            Instruction::FpCvt { op, rs1, .. } if op.reads_int() => Some(self.reg(rs1)),
            _ => None,
        };
        // FP instructions that write an integer register set a pending bit
        // the integer core synchronises on.
        if let Some(rd) = inst.int_dest() {
            self.int_pending[rd.index() as usize] = true;
        }
        self.fp.sequencer_mut().offload(SeqItem::Fp(OffloadedFp {
            inst,
            addr,
            int_operand,
        }));
        self.counters.fetches += 1;
        self.pc += 4;
        Ok(Some(inst))
    }

    fn int_load(&mut self, op: LoadOp, addr: u32, tcdm: &Tcdm) -> Result<u32, SimError> {
        let v = match op {
            LoadOp::Lw => tcdm.read_u32(addr)?,
            LoadOp::Lb => tcdm.read_u8(addr)? as i8 as i32 as u32,
            LoadOp::Lbu => u32::from(tcdm.read_u8(addr)?),
            LoadOp::Lh => tcdm.read_u16(addr)? as i16 as i32 as u32,
            LoadOp::Lhu => u32::from(tcdm.read_u16(addr)?),
        };
        Ok(v)
    }

    fn int_store(
        &mut self,
        op: StoreOp,
        addr: u32,
        value: u32,
        tcdm: &mut Tcdm,
    ) -> Result<(), SimError> {
        match op {
            StoreOp::Sw => tcdm.write_u32(addr, value)?,
            StoreOp::Sh => tcdm.write_u16(addr, value as u16)?,
            StoreOp::Sb => tcdm.write_u8(addr, value as u8)?,
        }
        Ok(())
    }

    fn quiescent(&self) -> Result<bool, SimError> {
        if !self.fp.is_drained() {
            return Ok(false);
        }
        for m in self.fp.ssr().movers() {
            if !m.is_done() {
                // Write streams are still draining: keep waiting. Read
                // streams with leftover elements are a software bug.
                if self.cfg.strict && m.request().is_none() && m.can_pop() {
                    return Err(SimError::EcallWithActiveStream { dm: m.index() });
                }
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn reg(&self, r: IntReg) -> u32 {
        self.regs[r.index() as usize]
    }

    fn write_reg(&mut self, r: IntReg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = v;
        }
    }

    fn retire(&mut self, inst: Instruction, pc_inc: u32) -> Result<Option<Instruction>, SimError> {
        self.pc = self.pc.wrapping_add(pc_inc);
        self.counters.int_retired += 1;
        self.counters.fetches += 1;
        Ok(Some(inst))
    }

    fn jump(&mut self, inst: Instruction, target: u32) -> Result<Option<Instruction>, SimError> {
        self.pc = target;
        self.counters.int_retired += 1;
        self.counters.fetches += 1;
        if self.cfg.branch_taken_penalty > 0 {
            self.state = IntState::Bubble(self.cfg.branch_taken_penalty);
        }
        Ok(Some(inst))
    }
}

/// The single-core simulator: one [`Core`] driving its own private TCDM.
///
/// # Examples
///
/// ```
/// use sc_core::{CoreConfig, Simulator};
/// use sc_isa::{ProgramBuilder, IntReg};
///
/// let mut b = ProgramBuilder::new();
/// b.li(IntReg::new(5), 42);
/// b.ecall();
/// let prog = b.build()?;
/// let mut sim = Simulator::new(CoreConfig::new(), prog);
/// let summary = sim.run(1_000)?;
/// assert_eq!(sim.int_reg(IntReg::new(5)), 42);
/// assert!(summary.cycles < 20);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    core: Core,
    tcdm: Tcdm,
}

impl Simulator {
    /// Creates a simulator for `program` under `cfg`.
    #[must_use]
    pub fn new(cfg: CoreConfig, program: Program) -> Self {
        Simulator {
            tcdm: Tcdm::new(cfg.tcdm),
            core: Core::new(cfg, program),
        }
    }

    /// The TCDM (pre-load inputs / read back results).
    #[must_use]
    pub fn tcdm(&self) -> &Tcdm {
        &self.tcdm
    }

    /// Mutable TCDM access.
    pub fn tcdm_mut(&mut self) -> &mut Tcdm {
        &mut self.tcdm
    }

    /// The core being simulated.
    #[must_use]
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Reads an integer register.
    #[must_use]
    pub fn int_reg(&self, reg: IntReg) -> u32 {
        self.core.int_reg(reg)
    }

    /// Writes an integer register (argument passing in tests).
    pub fn set_int_reg(&mut self, reg: IntReg, value: u32) {
        self.core.set_int_reg(reg, value);
    }

    /// Reads an FP register as a double.
    #[must_use]
    pub fn fp_reg(&self, reg: FpReg) -> f64 {
        self.core.fp_reg(reg)
    }

    /// Writes an FP register (test setup).
    pub fn set_fp_reg(&mut self, reg: FpReg, value: f64) {
        self.core.set_fp_reg(reg, value);
    }

    /// The FP subsystem (diagnostics).
    #[must_use]
    pub fn fp_subsystem(&self) -> &FpSubsystem {
        self.core.fp_subsystem()
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> &PerfCounters {
        self.core.counters()
    }

    /// Runs until `ecall` or the cycle budget is exhausted.
    ///
    /// # Errors
    ///
    /// Any [`SimError`]: strict-mode misuse, memory faults, `ebreak`,
    /// budget exhaustion.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        while !self.core.is_halted() {
            if self.core.counters().cycles >= max_cycles {
                return Err(SimError::MaxCyclesExceeded { max_cycles });
            }
            self.step()?;
        }
        Ok(self.core.summary())
    }

    /// Executes one cycle.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run`].
    pub fn step(&mut self) -> Result<(), SimError> {
        self.core.step(&mut self.tcdm)?;
        // A lone hart is the whole rendezvous — cluster or system:
        // release immediately.
        if self.core.in_barrier() {
            self.core.release_barrier();
        }
        if self.core.in_system_barrier() {
            self.core.release_system_barrier();
        }
        // A lone core's DMA doorbell is inert (no engine will ever
        // complete anything): the blocking wait resolves trivially with
        // the mirrored count.
        if self.core.dma_wait_target().is_some() {
            let completed = self.core.dma_completed;
            self.core.release_dma_wait(completed);
        }
        Ok(())
    }
}
