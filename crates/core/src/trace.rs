//! Per-cycle issue-slot tracing — the machinery behind the reproduction of
//! the paper's Fig. 1c execution trace.

use std::fmt;

use sc_isa::Instruction;

use crate::counters::StallCause;

/// What the FP issue slot did in one cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum FpSlot {
    /// An FP instruction entered its functional unit.
    Issued(Instruction),
    /// The slot stalled for the given reason.
    Stalled(StallCause),
    /// Nothing to issue and nothing in flight.
    Idle,
}

/// One traced cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCycle {
    /// Absolute cycle number.
    pub cycle: u64,
    /// Instruction retired by the integer pipeline this cycle, if any.
    pub int_slot: Option<Instruction>,
    /// FP issue slot activity.
    pub fp_slot: FpSlot,
}

/// A recorded issue trace.
///
/// Rendered with [`IssueTrace::render`], it reads like the paper's Fig. 1c:
/// one row per cycle, the integer and FP issue slots side by side, stalls
/// annotated with their cause.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IssueTrace {
    cycles: Vec<TraceCycle>,
}

impl IssueTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one cycle.
    pub fn push(&mut self, cycle: TraceCycle) {
        self.cycles.push(cycle);
    }

    /// The recorded cycles.
    #[must_use]
    pub fn cycles(&self) -> &[TraceCycle] {
        &self.cycles
    }

    /// Number of recorded cycles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Keeps only cycles in `[from, to)` (absolute cycle numbers).
    #[must_use]
    pub fn window(&self, from: u64, to: u64) -> IssueTrace {
        IssueTrace {
            cycles: self
                .cycles
                .iter()
                .filter(|c| c.cycle >= from && c.cycle < to)
                .cloned()
                .collect(),
        }
    }

    /// Renders the trace as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>8} | {:<28} | {}\n",
            "cycle", "integer slot", "fp slot"
        ));
        out.push_str(&format!("{:->8}-+-{:-<28}-+-{:-<30}\n", "", "", ""));
        for c in &self.cycles {
            let int_s = c.int_slot.map_or(String::new(), |i| i.to_string());
            let fp_s = match &c.fp_slot {
                FpSlot::Issued(i) => i.to_string(),
                FpSlot::Stalled(cause) => format!("·· stall ({cause})"),
                FpSlot::Idle => String::new(),
            };
            out.push_str(&format!("{:>8} | {:<28} | {}\n", c.cycle, int_s, fp_s));
        }
        out
    }

    /// Counts cycles whose FP slot issued an instruction.
    #[must_use]
    pub fn fp_issue_count(&self) -> usize {
        self.cycles
            .iter()
            .filter(|c| matches!(c.fp_slot, FpSlot::Issued(_)))
            .count()
    }

    /// Counts FP stall cycles with the given cause.
    #[must_use]
    pub fn stall_count(&self, cause: StallCause) -> usize {
        self.cycles
            .iter()
            .filter(|c| c.fp_slot == FpSlot::Stalled(cause))
            .count()
    }
}

impl fmt::Display for IssueTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_isa::{FpBinOp, FpFormat, FpReg, Instruction};

    fn fadd() -> Instruction {
        Instruction::FpBin {
            op: FpBinOp::Add,
            fmt: FpFormat::Double,
            frd: FpReg::FT3,
            frs1: FpReg::FT0,
            frs2: FpReg::FT1,
        }
    }

    #[test]
    fn render_contains_slots_and_stalls() {
        let mut t = IssueTrace::new();
        t.push(TraceCycle {
            cycle: 1,
            int_slot: Some(Instruction::NOP),
            fp_slot: FpSlot::Issued(fadd()),
        });
        t.push(TraceCycle {
            cycle: 2,
            int_slot: None,
            fp_slot: FpSlot::Stalled(StallCause::RawHazard),
        });
        let s = t.render();
        assert!(s.contains("fadd.d ft3, ft0, ft1"));
        assert!(s.contains("stall (raw)"));
        assert_eq!(t.fp_issue_count(), 1);
        assert_eq!(t.stall_count(StallCause::RawHazard), 1);
    }

    #[test]
    fn window_filters_by_cycle() {
        let mut t = IssueTrace::new();
        for cycle in 0..10 {
            t.push(TraceCycle {
                cycle,
                int_slot: None,
                fp_slot: FpSlot::Idle,
            });
        }
        let w = t.window(3, 6);
        assert_eq!(w.len(), 3);
        assert_eq!(w.cycles()[0].cycle, 3);
    }
}
