//! The FP sequencer: offload queue + FREP hardware loop.
//!
//! The integer core pushes FP instructions (with integer operands already
//! resolved) into a small queue and *keeps running* — Snitch's pseudo
//! dual-issue. The sequencer drains the queue towards the FP issue stage.
//! A `frep` marker makes it capture the next `n_instr` instructions and
//! replay them without the integer core refetching or re-issuing anything:
//! the FP loop runs from the sequence buffer while the integer core
//! executes the surrounding address arithmetic and branches.

use sc_fpu::BoundedFifo;
use sc_isa::Instruction;

/// An FP instruction offloaded from the integer core.
///
/// The integer side resolves everything it owns at offload time: memory
/// addresses for FP loads/stores and the integer source operand of
/// int→float conversions/moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadedFp {
    /// The instruction.
    pub inst: Instruction,
    /// Resolved byte address (FP loads/stores).
    pub addr: Option<u32>,
    /// Resolved integer source operand (`fcvt.d.w`, `fmv.w.x`, ...).
    pub int_operand: Option<u32>,
}

/// Items travelling through the offload queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeqItem {
    /// A regular FP instruction.
    Fp(OffloadedFp),
    /// A FREP marker with the repetition count already read from the
    /// integer register file (`reg value + 1` iterations).
    Frep {
        /// Outer (repeat whole block) vs inner (repeat each instruction).
        is_outer: bool,
        /// Number of body instructions that follow.
        n_instr: u16,
        /// Total iteration count (≥ 1).
        n_rep: u32,
        /// Maximum register stagger offset.
        stagger_max: u8,
        /// Which operands to stagger (bit 0 = rd, 1 = rs1, 2 = rs2, 3 = rs3).
        stagger_mask: u8,
    },
}

/// Errors raised by the sequencer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// FREP body larger than the sequence buffer.
    BodyTooLarge {
        /// Requested body size.
        n_instr: u16,
        /// Hardware buffer capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for SeqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeqError::BodyTooLarge { n_instr, capacity } => {
                write!(
                    f,
                    "frep body of {n_instr} exceeds sequence buffer of {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for SeqError {}

#[derive(Debug, Clone)]
enum SeqState {
    /// Passing instructions straight through.
    Passthrough,
    /// Outer FREP: capturing the body while issuing its first iteration.
    Capture {
        remaining: u16,
        n_rep: u32,
        stagger_max: u8,
        stagger_mask: u8,
    },
    /// Outer FREP: replaying the captured body from the buffer.
    Replay {
        pos: usize,
        iter: u32,
        n_rep: u32,
        stagger_max: u8,
        stagger_mask: u8,
    },
    /// Inner FREP: repeating each incoming instruction `n_rep` times.
    Inner {
        remaining: u16,
        rep_done: u32,
        n_rep: u32,
        stagger_max: u8,
        stagger_mask: u8,
    },
}

/// The sequencer itself.
#[derive(Debug, Clone)]
pub struct Sequencer {
    inbox: BoundedFifo<SeqItem>,
    buffer: Vec<OffloadedFp>,
    buffer_capacity: usize,
    state: SeqState,
    replayed: u64,
}

impl Sequencer {
    /// Creates a sequencer with the given queue depth and buffer size.
    #[must_use]
    pub fn new(queue_depth: usize, buffer_capacity: usize) -> Self {
        Sequencer {
            inbox: BoundedFifo::new(queue_depth),
            buffer: Vec::with_capacity(buffer_capacity),
            buffer_capacity,
            state: SeqState::Passthrough,
            replayed: 0,
        }
    }

    /// Whether the offload queue can take another item this cycle.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        !self.inbox.is_full()
    }

    /// Offloads an item from the integer core.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — gate with [`Sequencer::can_accept`]
    /// (the integer core stalls instead).
    pub fn offload(&mut self, item: SeqItem) {
        self.inbox.push(item);
    }

    /// Whether nothing is buffered, queued or mid-replay.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.inbox.is_empty() && matches!(self.state, SeqState::Passthrough)
    }

    /// Instructions issued from the sequence buffer rather than the
    /// integer core (they cost no fetch energy).
    #[must_use]
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// High-water mark of the offload queue (sizing diagnostics).
    #[must_use]
    pub fn queue_high_water(&self) -> usize {
        self.inbox.high_water()
    }

    /// The instruction the FP issue stage should consider this cycle.
    ///
    /// Does not consume it; call [`Sequencer::consume`] after a successful
    /// issue. Returns `None` when no instruction is available (the marker
    /// handling inside never yields an issuable instruction by itself).
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::BodyTooLarge`] when a FREP marker requests more
    /// body instructions than the buffer holds.
    pub fn peek(&mut self) -> Result<Option<OffloadedFp>, SeqError> {
        // Resolve any marker at the queue head first (zero-cycle in Snitch:
        // the marker is consumed by the sequencer, not issued).
        loop {
            match self.state {
                SeqState::Passthrough => match self.inbox.front() {
                    Some(&SeqItem::Frep {
                        is_outer,
                        n_instr,
                        n_rep,
                        stagger_max,
                        stagger_mask,
                    }) => {
                        if n_instr as usize > self.buffer_capacity {
                            return Err(SeqError::BodyTooLarge {
                                n_instr,
                                capacity: self.buffer_capacity,
                            });
                        }
                        self.inbox.pop();
                        self.buffer.clear();
                        self.state = if is_outer {
                            SeqState::Capture {
                                remaining: n_instr,
                                n_rep,
                                stagger_max,
                                stagger_mask,
                            }
                        } else {
                            SeqState::Inner {
                                remaining: n_instr,
                                rep_done: 0,
                                n_rep,
                                stagger_max,
                                stagger_mask,
                            }
                        };
                    }
                    Some(&SeqItem::Fp(fp)) => return Ok(Some(fp)),
                    None => return Ok(None),
                },
                SeqState::Capture {
                    stagger_max: _,
                    stagger_mask: _,
                    ..
                } => {
                    match self.inbox.front() {
                        // First iteration: issue as-is (stagger offset 0).
                        Some(&SeqItem::Fp(fp)) => return Ok(Some(fp)),
                        Some(&SeqItem::Frep { .. }) => {
                            unreachable!("nested frep rejected by the assembler")
                        }
                        None => return Ok(None),
                    }
                }
                SeqState::Replay {
                    pos,
                    iter,
                    stagger_max,
                    stagger_mask,
                    ..
                } => {
                    let fp = self.buffer[pos];
                    let offset = stagger_offset(iter, stagger_max);
                    return Ok(Some(apply_stagger(fp, offset, stagger_mask)));
                }
                SeqState::Inner {
                    rep_done: _,
                    stagger_max,
                    stagger_mask,
                    ..
                } => match self.inbox.front() {
                    Some(&SeqItem::Fp(fp)) => {
                        let iter = match self.state {
                            SeqState::Inner { rep_done, .. } => rep_done,
                            _ => unreachable!(),
                        };
                        let offset = stagger_offset(iter, stagger_max);
                        return Ok(Some(apply_stagger(fp, offset, stagger_mask)));
                    }
                    Some(&SeqItem::Frep { .. }) => {
                        unreachable!("nested frep rejected by the assembler")
                    }
                    None => return Ok(None),
                },
            }
        }
    }

    /// Consumes the instruction returned by the last [`Sequencer::peek`].
    ///
    /// # Panics
    ///
    /// Panics if there is nothing to consume.
    pub fn consume(&mut self) {
        match self.state {
            SeqState::Passthrough => {
                let item = self.inbox.pop().expect("consume without peek");
                debug_assert!(matches!(item, SeqItem::Fp(_)));
            }
            SeqState::Capture {
                remaining,
                n_rep,
                stagger_max,
                stagger_mask,
            } => {
                let item = self.inbox.pop().expect("consume without peek");
                let SeqItem::Fp(fp) = item else {
                    unreachable!("marker in capture")
                };
                self.buffer.push(fp);
                let remaining = remaining - 1;
                if remaining > 0 {
                    self.state = SeqState::Capture {
                        remaining,
                        n_rep,
                        stagger_max,
                        stagger_mask,
                    };
                } else if n_rep > 1 {
                    self.state = SeqState::Replay {
                        pos: 0,
                        iter: 1,
                        n_rep,
                        stagger_max,
                        stagger_mask,
                    };
                } else {
                    self.buffer.clear();
                    self.state = SeqState::Passthrough;
                }
            }
            SeqState::Replay {
                pos,
                iter,
                n_rep,
                stagger_max,
                stagger_mask,
            } => {
                self.replayed += 1;
                let pos = pos + 1;
                if pos < self.buffer.len() {
                    self.state = SeqState::Replay {
                        pos,
                        iter,
                        n_rep,
                        stagger_max,
                        stagger_mask,
                    };
                } else if iter + 1 < n_rep {
                    self.state = SeqState::Replay {
                        pos: 0,
                        iter: iter + 1,
                        n_rep,
                        stagger_max,
                        stagger_mask,
                    };
                } else {
                    self.buffer.clear();
                    self.state = SeqState::Passthrough;
                }
            }
            SeqState::Inner {
                remaining,
                rep_done,
                n_rep,
                stagger_max,
                stagger_mask,
            } => {
                let rep_done = rep_done + 1;
                if rep_done > 0 && rep_done < n_rep {
                    self.replayed += u64::from(rep_done > 1);
                    self.state = SeqState::Inner {
                        remaining,
                        rep_done,
                        n_rep,
                        stagger_max,
                        stagger_mask,
                    };
                } else {
                    if rep_done > 1 {
                        self.replayed += 1;
                    }
                    self.inbox.pop().expect("consume without peek");
                    let remaining = remaining - 1;
                    if remaining > 0 {
                        self.state = SeqState::Inner {
                            remaining,
                            rep_done: 0,
                            n_rep,
                            stagger_max,
                            stagger_mask,
                        };
                    } else {
                        self.state = SeqState::Passthrough;
                    }
                }
            }
        }
    }
}

fn stagger_offset(iter: u32, stagger_max: u8) -> u8 {
    if stagger_max == 0 {
        0
    } else {
        (iter % (u32::from(stagger_max) + 1)) as u8
    }
}

/// Applies Snitch register staggering: selected operand register indices
/// are offset by `offset` (mod 32).
fn apply_stagger(fp: OffloadedFp, offset: u8, mask: u8) -> OffloadedFp {
    use sc_isa::FpReg;
    if offset == 0 || mask == 0 {
        return fp;
    }
    let bump = |r: FpReg| FpReg::new((r.index() + offset) % 32);
    let inst = match fp.inst {
        Instruction::FpBin {
            op,
            fmt,
            frd,
            frs1,
            frs2,
        } => Instruction::FpBin {
            op,
            fmt,
            frd: if mask & 1 != 0 { bump(frd) } else { frd },
            frs1: if mask & 2 != 0 { bump(frs1) } else { frs1 },
            frs2: if mask & 4 != 0 { bump(frs2) } else { frs2 },
        },
        Instruction::FpFma {
            op,
            fmt,
            frd,
            frs1,
            frs2,
            frs3,
        } => Instruction::FpFma {
            op,
            fmt,
            frd: if mask & 1 != 0 { bump(frd) } else { frd },
            frs1: if mask & 2 != 0 { bump(frs1) } else { frs1 },
            frs2: if mask & 4 != 0 { bump(frs2) } else { frs2 },
            frs3: if mask & 8 != 0 { bump(frs3) } else { frs3 },
        },
        other => other,
    };
    OffloadedFp { inst, ..fp }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_isa::{FpBinOp, FpFormat, FpReg};

    fn fp(i: u8) -> OffloadedFp {
        OffloadedFp {
            inst: Instruction::FpBin {
                op: FpBinOp::Add,
                fmt: FpFormat::Double,
                frd: FpReg::new(i),
                frs1: FpReg::FT0,
                frs2: FpReg::FT1,
            },
            addr: None,
            int_operand: None,
        }
    }

    fn drain(seq: &mut Sequencer) -> Vec<OffloadedFp> {
        let mut out = Vec::new();
        while let Some(i) = seq.peek().unwrap() {
            out.push(i);
            seq.consume();
        }
        out
    }

    #[test]
    fn passthrough_preserves_order() {
        let mut s = Sequencer::new(8, 16);
        s.offload(SeqItem::Fp(fp(3)));
        s.offload(SeqItem::Fp(fp(4)));
        let got = drain(&mut s);
        assert_eq!(got, vec![fp(3), fp(4)]);
        assert!(s.is_drained());
        assert_eq!(s.replayed(), 0);
    }

    #[test]
    fn outer_frep_replays_block() {
        let mut s = Sequencer::new(8, 16);
        s.offload(SeqItem::Frep {
            is_outer: true,
            n_instr: 2,
            n_rep: 3,
            stagger_max: 0,
            stagger_mask: 0,
        });
        s.offload(SeqItem::Fp(fp(3)));
        s.offload(SeqItem::Fp(fp(4)));
        let got = drain(&mut s);
        assert_eq!(got.len(), 6);
        assert_eq!(got[0], fp(3));
        assert_eq!(got[1], fp(4));
        assert_eq!(got[2], fp(3));
        assert_eq!(got[5], fp(4));
        assert!(s.is_drained());
        assert_eq!(s.replayed(), 4, "iterations 2 and 3 come from the buffer");
    }

    #[test]
    fn inner_frep_repeats_each_instruction() {
        let mut s = Sequencer::new(8, 16);
        s.offload(SeqItem::Frep {
            is_outer: false,
            n_instr: 2,
            n_rep: 3,
            stagger_max: 0,
            stagger_mask: 0,
        });
        s.offload(SeqItem::Fp(fp(3)));
        s.offload(SeqItem::Fp(fp(4)));
        let got = drain(&mut s);
        let want = vec![fp(3), fp(3), fp(3), fp(4), fp(4), fp(4)];
        assert_eq!(got, want);
        assert!(s.is_drained());
    }

    #[test]
    fn frep_single_iteration_degenerates_to_passthrough() {
        let mut s = Sequencer::new(8, 16);
        s.offload(SeqItem::Frep {
            is_outer: true,
            n_instr: 1,
            n_rep: 1,
            stagger_max: 0,
            stagger_mask: 0,
        });
        s.offload(SeqItem::Fp(fp(3)));
        assert_eq!(drain(&mut s), vec![fp(3)]);
        assert!(s.is_drained());
    }

    #[test]
    fn body_too_large_is_reported() {
        let mut s = Sequencer::new(8, 4);
        s.offload(SeqItem::Frep {
            is_outer: true,
            n_instr: 5,
            n_rep: 2,
            stagger_max: 0,
            stagger_mask: 0,
        });
        assert_eq!(
            s.peek().unwrap_err(),
            SeqError::BodyTooLarge {
                n_instr: 5,
                capacity: 4
            }
        );
    }

    #[test]
    fn stagger_rotates_destination() {
        let mut s = Sequencer::new(8, 16);
        s.offload(SeqItem::Frep {
            is_outer: true,
            n_instr: 1,
            n_rep: 4,
            stagger_max: 1,
            stagger_mask: 0b0001, // stagger rd only
        });
        s.offload(SeqItem::Fp(fp(8)));
        let got = drain(&mut s);
        let dests: Vec<u8> = got
            .iter()
            .map(|o| match o.inst {
                Instruction::FpBin { frd, .. } => frd.index(),
                _ => unreachable!(),
            })
            .collect();
        // Iterations 0,1,2,3 → offsets 0,1,0,1.
        assert_eq!(dests, vec![8, 9, 8, 9]);
    }

    #[test]
    fn partial_capture_waits_for_body() {
        // Marker arrives before its body: peek must return the first body
        // instruction as soon as it lands, not stall forever.
        let mut s = Sequencer::new(8, 16);
        s.offload(SeqItem::Frep {
            is_outer: true,
            n_instr: 1,
            n_rep: 2,
            stagger_max: 0,
            stagger_mask: 0,
        });
        assert_eq!(s.peek().unwrap(), None);
        assert!(!s.is_drained());
        s.offload(SeqItem::Fp(fp(5)));
        assert_eq!(s.peek().unwrap(), Some(fp(5)));
        s.consume();
        assert_eq!(s.peek().unwrap(), Some(fp(5)));
        s.consume();
        assert!(s.is_drained());
    }
}
