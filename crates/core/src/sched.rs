//! The next-event-time scheduling contract shared by every steppable
//! simulation owner (cluster, system).
//!
//! Dense lock-step simulation pays host time for every simulated cycle,
//! including the long windows where nothing architectural can happen:
//! cores parked on barriers, a DMA engine counting down its startup
//! latency, an L2 with no traffic. The scheduler contract lets an owner
//! *fast-forward* across such windows without changing a single cycle
//! count or statistic:
//!
//! * every component reports a [`Wake`] — the earliest future cycle at
//!   which stepping it could do anything beyond closed-form bookkeeping;
//! * the owner merges the wakes ([`Wake::merge`]), caps the window
//!   ([`Scheduler::plan`]) against externally imposed deadlines (cycle
//!   budget, watchdog), and either bulk-skips the window or steps one
//!   dense cycle.
//!
//! A window is only skippable when every per-cycle phase of every
//! component is provably a no-op apart from closed-form counter updates
//! (a parked core's `cycles` counter, a waiting engine's
//! `dram_wait_cycles`). Components therefore err on the side of
//! [`Wake::EveryCycle`]: tracing subscriptions, per-cycle retry loops and
//! any state the owner cannot bulk-update all pin the dense path, which
//! is what keeps [`SchedMode::Event`] bit-identical to
//! [`SchedMode::Dense`].

/// The earliest future cycle at which stepping a component could change
/// architectural state or statistics beyond closed-form bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// The component may act this very cycle (or its per-cycle work is
    /// not expressible in closed form): the owner must step densely.
    EveryCycle,
    /// Nothing can happen before the given absolute cycle (e.g. a DMA
    /// engine whose next beat is owed `wait` more countdown cycles).
    At(u64),
    /// Nothing can ever happen again without external input (a halted
    /// core, a parked hart, an idle engine).
    Idle,
}

impl Wake {
    /// Merges two wake reports: the *earlier* demand wins.
    /// [`Wake::EveryCycle`] dominates everything; [`Wake::Idle`] yields
    /// to everything.
    #[must_use]
    pub fn merge(self, other: Wake) -> Wake {
        match (self, other) {
            (Wake::EveryCycle, _) | (_, Wake::EveryCycle) => Wake::EveryCycle,
            (Wake::Idle, w) | (w, Wake::Idle) => w,
            (Wake::At(a), Wake::At(b)) => Wake::At(a.min(b)),
        }
    }

    /// Folds an iterator of wake reports with [`Wake::merge`], starting
    /// from [`Wake::Idle`] (the identity).
    #[must_use]
    pub fn earliest(wakes: impl IntoIterator<Item = Wake>) -> Wake {
        wakes.into_iter().fold(Wake::Idle, Wake::merge)
    }
}

/// Which stepping regime a run loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Step every component every cycle (the reference behaviour).
    #[default]
    Dense,
    /// Fast-forward across windows where every component reports a
    /// future [`Wake`]. Pinned cycle- and stats-identical to
    /// [`SchedMode::Dense`] by the baseline grids and the differential
    /// proptests.
    Event,
}

/// The unified stepping contract: anything that owns a clock and can
/// (a) report when it next needs a dense cycle and (b) bulk-apply an
/// idle window, implements this. `sc-cluster` and `sc-system` are the
/// in-tree implementors; their `run` loops drive the trait through a
/// [`Scheduler`].
pub trait Component {
    /// The component's current cycle.
    fn now(&self) -> u64;

    /// The earliest future cycle at which a dense step could do anything
    /// beyond closed-form bookkeeping. Must be conservative: reporting
    /// [`Wake::EveryCycle`] is always correct, reporting a too-late wake
    /// never is.
    fn next_wake(&self) -> Wake;

    /// Bulk-applies `cycles` idle cycles: advances the clock and every
    /// closed-form counter exactly as that many dense steps would have,
    /// given that [`Component::next_wake`] promised none of them could
    /// act. Callers must never pass a window reaching past the reported
    /// wake.
    fn skip(&mut self, cycles: u64);
}

/// Plans fast-forward windows for a [`Component`] run loop.
///
/// The scheduler itself is deliberately stateless apart from the mode:
/// each iteration re-derives the next event time from the component's
/// live [`Wake`] report (a one-pass min-merge — the component tree *is*
/// the event queue, re-keyed every window, which is cheap because wake
/// reports are O(components) and windows amortise the cost over their
/// whole span).
#[derive(Debug, Clone, Copy, Default)]
pub struct Scheduler {
    mode: SchedMode,
}

impl Scheduler {
    /// A scheduler driving the given mode.
    #[must_use]
    pub fn new(mode: SchedMode) -> Self {
        Scheduler { mode }
    }

    /// The mode this scheduler drives.
    #[must_use]
    pub fn mode(&self) -> SchedMode {
        self.mode
    }

    /// The number of cycles the run loop may fast-forward right now:
    /// `0` means "step one dense cycle". Non-zero only in
    /// [`SchedMode::Event`], when `wake` lies strictly in the future,
    /// and never further than the smallest of `caps` (absolute cycle
    /// deadlines: the cycle budget, the watchdog's next deadline).
    ///
    /// An [`Wake::Idle`] report fast-forwards straight to the nearest
    /// cap — exactly where a dense loop would next do anything
    /// observable (time out, or fire the watchdog).
    #[must_use]
    pub fn plan(&self, now: u64, wake: Wake, caps: impl IntoIterator<Item = u64>) -> u64 {
        if self.mode == SchedMode::Dense {
            return 0;
        }
        let horizon = match wake {
            Wake::EveryCycle => return 0,
            Wake::At(cycle) => cycle,
            Wake::Idle => u64::MAX,
        };
        let horizon = caps.into_iter().fold(horizon, u64::min);
        horizon.saturating_sub(now)
    }

    /// Whether a single component may sit out the coming dense cycle —
    /// the *local skip* counterpart of [`Scheduler::plan`] for
    /// partially-idle windows, where the global merge says "dense" but
    /// a subset of components is provably inert.
    ///
    /// `true` iff the mode is [`SchedMode::Event`] and `wake` lies
    /// strictly past `now`: the owner steps the non-idle subset densely
    /// and bulk-advances this component by one cycle instead of
    /// stepping it. Always `false` in [`SchedMode::Dense`], which keeps
    /// the reference regime untouched.
    #[must_use]
    pub fn local_quiet(&self, now: u64, wake: Wake) -> bool {
        self.mode == SchedMode::Event
            && match wake {
                Wake::EveryCycle => false,
                Wake::At(cycle) => cycle > now,
                Wake::Idle => true,
            }
    }

    /// The per-component wake-vector form of [`Scheduler::plan`]:
    /// classifies each component of a partially-idle window. Element `i`
    /// is `true` when component `i`'s wake licenses a one-cycle local
    /// skip ([`Scheduler::local_quiet`]) — the caller steps the `false`
    /// subset densely and bulk-advances the `true` subset alongside it.
    /// In [`SchedMode::Dense`] every element is `false`.
    #[must_use]
    pub fn plan_each(&self, now: u64, wakes: impl IntoIterator<Item = Wake>) -> Vec<bool> {
        wakes
            .into_iter()
            .map(|w| self.local_quiet(now, w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_prefers_the_earliest_demand() {
        assert_eq!(Wake::Idle.merge(Wake::Idle), Wake::Idle);
        assert_eq!(Wake::Idle.merge(Wake::At(7)), Wake::At(7));
        assert_eq!(Wake::At(9).merge(Wake::At(7)), Wake::At(7));
        assert_eq!(Wake::At(9).merge(Wake::EveryCycle), Wake::EveryCycle);
        assert_eq!(Wake::EveryCycle.merge(Wake::Idle), Wake::EveryCycle);
        assert_eq!(
            Wake::earliest([Wake::Idle, Wake::At(12), Wake::At(4)]),
            Wake::At(4)
        );
        assert_eq!(Wake::earliest([]), Wake::Idle);
    }

    #[test]
    fn dense_mode_never_skips() {
        let s = Scheduler::new(SchedMode::Dense);
        assert_eq!(s.plan(10, Wake::Idle, [1_000]), 0);
        assert_eq!(s.plan(10, Wake::At(500), [1_000]), 0);
    }

    #[test]
    fn event_mode_skips_to_the_wake_or_the_nearest_cap() {
        let s = Scheduler::new(SchedMode::Event);
        assert_eq!(s.plan(10, Wake::EveryCycle, [1_000]), 0);
        assert_eq!(s.plan(10, Wake::At(50), [1_000]), 40);
        assert_eq!(s.plan(10, Wake::At(50), [30, 1_000]), 20);
        assert_eq!(s.plan(10, Wake::Idle, [1_000, 200]), 190);
        // A wake at or before `now` means the component is due: dense.
        assert_eq!(s.plan(10, Wake::At(10), [1_000]), 0);
        assert_eq!(s.plan(10, Wake::At(5), [1_000]), 0);
        // A cap at or before `now` forces a dense step too (the run
        // loop's own budget check then decides what happens).
        assert_eq!(s.plan(10, Wake::Idle, [10]), 0);
    }

    #[test]
    fn local_quiet_licenses_only_strictly_future_wakes_in_event_mode() {
        let event = Scheduler::new(SchedMode::Event);
        assert!(event.local_quiet(10, Wake::Idle));
        assert!(event.local_quiet(10, Wake::At(11)));
        assert!(!event.local_quiet(10, Wake::At(10)), "due now: dense");
        assert!(!event.local_quiet(10, Wake::At(5)), "overdue: dense");
        assert!(!event.local_quiet(10, Wake::EveryCycle));

        let dense = Scheduler::new(SchedMode::Dense);
        assert!(!dense.local_quiet(10, Wake::Idle));
        assert!(!dense.local_quiet(10, Wake::At(500)));
    }

    #[test]
    fn plan_each_classifies_a_partially_idle_wake_vector() {
        let s = Scheduler::new(SchedMode::Event);
        assert_eq!(
            s.plan_each(
                10,
                [Wake::EveryCycle, Wake::Idle, Wake::At(42), Wake::At(10)]
            ),
            vec![false, true, true, false]
        );
        let d = Scheduler::new(SchedMode::Dense);
        assert_eq!(
            d.plan_each(10, [Wake::Idle, Wake::At(42)]),
            vec![false, false]
        );
    }
}
