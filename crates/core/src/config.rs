//! Core configuration.

use sc_fpu::FpuTiming;
use sc_mem::TcdmConfig;

/// Configuration of the Snitch-like core and its surroundings.
///
/// The defaults model the system of the paper: a single compute core with a
/// 3-stage ADDMUL FPU, three stream semantic registers, FREP, and a
/// 32-bank TCDM, with the chaining extension available.
///
/// # Examples
///
/// ```
/// use sc_core::CoreConfig;
/// let cfg = CoreConfig::new().with_chaining(false); // ablation: no extension
/// assert!(!cfg.chaining_enabled);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// FPU per-class latencies.
    pub fpu: FpuTiming,
    /// TCDM geometry.
    pub tcdm: TcdmConfig,
    /// Number of stream semantic registers (data movers), `ft0`-up.
    pub num_ssrs: u8,
    /// Per-stream FIFO capacity.
    pub ssr_fifo_capacity: usize,
    /// Depth of the integer→FP offload queue (pseudo dual-issue buffer).
    pub offload_queue_depth: usize,
    /// Maximum FREP body size the sequencer can buffer.
    pub sequence_buffer_depth: usize,
    /// Whether the chaining extension hardware is present. When false,
    /// writes to the chaining CSR (0x7C3) are errors in strict mode and
    /// ignored otherwise — the ablation baseline core.
    pub chaining_enabled: bool,
    /// Strict mode: software errors (re-arming active streams, disabling a
    /// chained register with in-flight producers, pops of never-written
    /// chained registers) abort the simulation with a descriptive error
    /// instead of proceeding with undefined data.
    pub strict: bool,
    /// Extra cycles charged for a taken branch (pipeline refill).
    pub branch_taken_penalty: u32,
    /// Capture a full per-cycle issue trace (costs memory; used by the
    /// Fig. 1 experiment and debugging).
    pub trace: bool,
    /// Whether the chained-FIFO writeback drain shifts entries in the
    /// same cycle a chained consumer pops (the hardware behaviour).
    /// Disabling it re-introduces a writeback deadlock — a held FPU
    /// result waiting on FIFO space that only its own consumer can
    /// free — and exists solely so watchdog tests can exercise hang
    /// diagnosis on a real historical bug.
    pub chained_fifo_shift: bool,
}

impl CoreConfig {
    /// The paper's system defaults.
    #[must_use]
    pub fn new() -> Self {
        CoreConfig {
            fpu: FpuTiming::new(),
            tcdm: TcdmConfig::new(),
            num_ssrs: 3,
            ssr_fifo_capacity: 4,
            offload_queue_depth: 8,
            sequence_buffer_depth: 16,
            chaining_enabled: true,
            strict: true,
            branch_taken_penalty: 1,
            trace: false,
            chained_fifo_shift: true,
        }
    }

    /// Enables/disables the same-cycle chained-FIFO drain shift (see
    /// [`CoreConfig::chained_fifo_shift`]). Only watchdog tests should
    /// turn this off.
    #[must_use]
    pub fn with_chained_fifo_shift(mut self, enabled: bool) -> Self {
        self.chained_fifo_shift = enabled;
        self
    }

    /// Enables/disables the chaining extension hardware.
    #[must_use]
    pub fn with_chaining(mut self, enabled: bool) -> Self {
        self.chaining_enabled = enabled;
        self
    }

    /// Overrides the FPU timing.
    #[must_use]
    pub fn with_fpu(mut self, fpu: FpuTiming) -> Self {
        self.fpu = fpu;
        self
    }

    /// Overrides the TCDM geometry.
    #[must_use]
    pub fn with_tcdm(mut self, tcdm: TcdmConfig) -> Self {
        self.tcdm = tcdm;
        self
    }

    /// Enables per-cycle issue tracing.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets strictness (see [`CoreConfig::strict`]).
    #[must_use]
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_system() {
        let c = CoreConfig::new();
        assert_eq!(c.fpu.addmul_latency, 3, "Snitch FPU depth");
        assert_eq!(c.num_ssrs, 3, "Snitch has three SSRs");
        assert!(c.chaining_enabled);
        assert!(c.strict);
    }

    #[test]
    fn builders_compose() {
        let c = CoreConfig::new()
            .with_chaining(false)
            .with_trace(true)
            .with_strict(false);
        assert!(!c.chaining_enabled);
        assert!(c.trace);
        assert!(!c.strict);
    }
}
