//! Simulation errors.
//!
//! Strict mode turns software bugs (stream misuse, chaining misuse) into
//! descriptive errors instead of undefined data — the model's equivalent
//! of an RTL assertion.

use std::fmt;

use sc_isa::{DecodeError, FpReg};
use sc_mem::MemError;
use sc_ssr::SsrError;

use crate::chain::ChainError;
use crate::sequencer::SeqError;

/// Any error the simulator can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Functional memory access failed (program bug or bad stream config).
    Mem(MemError),
    /// Stream misuse.
    Ssr(SsrError),
    /// Chaining misuse.
    Chain(ChainError),
    /// FREP misuse.
    Seq(SeqError),
    /// Instruction word failed to decode (when running encoded programs).
    Decode(DecodeError),
    /// PC left the program.
    FetchOutOfProgram {
        /// The faulting PC.
        pc: u32,
    },
    /// `ebreak` executed.
    Ebreak {
        /// PC of the `ebreak`.
        pc: u32,
    },
    /// The cycle budget ran out before `ecall`.
    MaxCyclesExceeded {
        /// The budget that was exceeded.
        max_cycles: u64,
    },
    /// A stream register was read but its stream has delivered everything.
    StreamReadExhausted {
        /// Data mover index.
        dm: u8,
    },
    /// `ecall` reached while a read stream still held undelivered elements.
    EcallWithActiveStream {
        /// Data mover index.
        dm: u8,
    },
    /// FP load targeting a stream-mapped register.
    LoadIntoStreamRegister {
        /// The destination register.
        reg: FpReg,
    },
    /// A program used the chaining CSR on a core built without the
    /// extension.
    ChainingAbsent,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mem(e) => write!(f, "memory error: {e}"),
            SimError::Ssr(e) => write!(f, "stream error: {e}"),
            SimError::Chain(e) => write!(f, "chaining error: {e}"),
            SimError::Seq(e) => write!(f, "sequencer error: {e}"),
            SimError::Decode(e) => write!(f, "decode error: {e}"),
            SimError::FetchOutOfProgram { pc } => {
                write!(f, "instruction fetch outside program at pc {pc:#010x}")
            }
            SimError::Ebreak { pc } => write!(f, "ebreak at pc {pc:#010x}"),
            SimError::MaxCyclesExceeded { max_cycles } => {
                write!(f, "simulation exceeded {max_cycles} cycles without ecall")
            }
            SimError::StreamReadExhausted { dm } => {
                write!(
                    f,
                    "read of stream register ft{dm} after its stream completed"
                )
            }
            SimError::EcallWithActiveStream { dm } => {
                write!(f, "ecall with undelivered elements in stream {dm}")
            }
            SimError::LoadIntoStreamRegister { reg } => {
                write!(f, "fp load into stream-mapped register {reg}")
            }
            SimError::ChainingAbsent => {
                write!(f, "chaining CSR used but the extension is not configured")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemError> for SimError {
    fn from(e: MemError) -> Self {
        SimError::Mem(e)
    }
}

impl From<SsrError> for SimError {
    fn from(e: SsrError) -> Self {
        SimError::Ssr(e)
    }
}

impl From<ChainError> for SimError {
    fn from(e: ChainError) -> Self {
        SimError::Chain(e)
    }
}

impl From<SeqError> for SimError {
    fn from(e: SeqError) -> Self {
        SimError::Seq(e)
    }
}

impl From<DecodeError> for SimError {
    fn from(e: DecodeError) -> Self {
        SimError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::StreamReadExhausted { dm: 1 };
        assert!(e.to_string().contains("ft1"));
        let e = SimError::MaxCyclesExceeded { max_cycles: 100 };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn conversions_compose_with_question_mark() {
        fn inner() -> Result<(), SimError> {
            Err(MemError::Misaligned { addr: 3, width: 8 })?;
            Ok(())
        }
        assert!(matches!(inner(), Err(SimError::Mem(_))));
    }
}
