//! The decoupled floating-point subsystem: issue stage, scoreboard,
//! chaining unit, FPU pipelines, FP load/store unit and SSR interface.
//!
//! One call to each phase method per simulated cycle, in this order
//! (orchestrated by [`crate::Simulator`]):
//!
//! 1. [`FpSubsystem::writeback`] — at most one completion commits through
//!    the single writeback port; chained destinations with a set valid bit
//!    *hold* (backpressure), stream destinations hold on full FIFOs.
//! 2. [`FpSubsystem::try_issue`] — in-order issue of the next sequencer
//!    instruction if operands and the target unit are ready. Chained and
//!    stream sources pop here.
//! 3. memory phase (owned by the simulator): the FP LSU and the stream
//!    movers place TCDM requests.
//! 4. [`FpSubsystem::advance`] — pipelines shift, landed stream data
//!    becomes poppable.

use sc_fpu::{evaluate, FpuOp, FpuOutput, IterativeUnit, OpClass, Pipeline};
use sc_isa::{FmaOp, FpBinOp, FpFormat, FpReg, Instruction, IntReg};
use sc_mem::{AccessKind, PortId, Request, Tcdm};
use sc_ssr::SsrUnit;
use sc_trace::ResourceState;

use crate::chain::ChainUnit;
use crate::config::CoreConfig;
use crate::counters::{PerfCounters, StallCause};
use crate::error::SimError;
use crate::sequencer::Sequencer;
#[cfg(test)]
use crate::sequencer::{OffloadedFp, SeqItem};

/// Where a completing op's result goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WbDest {
    /// Plain register write (clears the scoreboard entry).
    Plain(FpReg),
    /// Chained push (requires the valid bit to be clear).
    Chained(FpReg),
    /// Push into a write-stream data mover.
    Stream(u8),
    /// Write to the integer register file (comparisons, fp→int moves).
    Int(IntReg),
}

/// Payload carried through the FPU pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WbOp {
    dest: WbDest,
    bits: u64,
}

/// FP load/store unit: one in-flight memory op on TCDM port 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FpLsu {
    Idle,
    StorePending {
        addr: u32,
        bits: u64,
        fmt: FpFormat,
    },
    LoadPending {
        addr: u32,
        dest: WbDest,
        fmt: FpFormat,
    },
    LoadLanded {
        dest: WbDest,
        bits: u64,
    },
}

/// Outcome of the issue phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IssueOutcome {
    /// The instruction entered its unit this cycle.
    Issued(Instruction),
    /// An instruction was available but stalled.
    Stalled(StallCause),
    /// Nothing to issue.
    Idle,
}

/// A write into the integer register file produced by the FP subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntWriteback {
    /// Destination integer register.
    pub reg: IntReg,
    /// Value.
    pub value: u32,
}

/// How a register is interpreted by the current machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegClass {
    Stream(u8),
    Chained,
    Plain,
}

/// The FP subsystem.
#[derive(Debug, Clone)]
pub struct FpSubsystem {
    rf: [u64; 32],
    /// In-flight producers per FP register (scoreboard; may exceed 1 for
    /// chained registers, which drop the WAW dependency).
    pending: [u32; 32],
    chain: ChainUnit,
    addmul: Pipeline<WbOp>,
    noncomp: Pipeline<WbOp>,
    conv: Pipeline<WbOp>,
    divsqrt: IterativeUnit<WbOp>,
    lsu: FpLsu,
    seq: Sequencer,
    ssr: SsrUnit,
    cfg: CoreConfig,
    /// First TCDM port of this core's namespace (LSU port; movers follow).
    port_base: u8,
    /// Why each unit's writeback is blocked (refines `UnitBusy` stalls).
    blocked_reason: Option<StallCause>,
    /// Whether the single writeback port is still unused this cycle —
    /// the chained-drain path in issue may use it for the same-cycle
    /// FIFO shift (pop at the head + held push) if phase 1 left it free.
    wb_port_free: bool,
}

impl FpSubsystem {
    /// Creates the subsystem per the core configuration.
    #[must_use]
    pub fn new(cfg: &CoreConfig) -> Self {
        Self::with_port_base(cfg, 0)
    }

    /// Creates the subsystem with its TCDM requests namespaced to the
    /// ports `port_base ..= port_base + num_ssrs` (cluster use).
    #[must_use]
    pub fn with_port_base(cfg: &CoreConfig, port_base: u8) -> Self {
        FpSubsystem {
            rf: [0; 32],
            pending: [0; 32],
            chain: ChainUnit::new(),
            addmul: Pipeline::new(cfg.fpu.addmul_latency),
            noncomp: Pipeline::new(cfg.fpu.noncomp_latency),
            conv: Pipeline::new(cfg.fpu.conv_latency),
            divsqrt: IterativeUnit::new(),
            lsu: FpLsu::Idle,
            seq: Sequencer::new(cfg.offload_queue_depth, cfg.sequence_buffer_depth),
            ssr: SsrUnit::with_port_base(cfg.num_ssrs, cfg.ssr_fifo_capacity, port_base),
            cfg: *cfg,
            port_base,
            blocked_reason: None,
            wb_port_free: true,
        }
    }

    /// Read access to an FP register (for tests and result extraction).
    #[must_use]
    pub fn reg(&self, reg: FpReg) -> f64 {
        f64::from_bits(self.rf[reg.index() as usize])
    }

    /// Raw bits of an FP register.
    #[must_use]
    pub fn reg_bits(&self, reg: FpReg) -> u64 {
        self.rf[reg.index() as usize]
    }

    /// Writes an FP register directly (test setup / program loading).
    pub fn set_reg(&mut self, reg: FpReg, value: f64) {
        self.rf[reg.index() as usize] = value.to_bits();
    }

    /// The chaining unit state (diagnostics).
    #[must_use]
    pub fn chain(&self) -> &ChainUnit {
        &self.chain
    }

    /// The SSR unit.
    #[must_use]
    pub fn ssr(&self) -> &SsrUnit {
        &self.ssr
    }

    /// Mutable SSR unit access (configuration instructions).
    pub fn ssr_mut(&mut self) -> &mut SsrUnit {
        &mut self.ssr
    }

    /// The sequencer (offload queue).
    #[must_use]
    pub fn sequencer(&self) -> &Sequencer {
        &self.seq
    }

    /// Mutable sequencer access (offload path).
    pub fn sequencer_mut(&mut self) -> &mut Sequencer {
        &mut self.seq
    }

    /// Whether every queue, pipeline and the LSU is empty. Write streams
    /// may still be draining — check [`SsrUnit::all_done`] separately.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.seq.is_drained()
            && self.addmul.is_empty()
            && self.noncomp.is_empty()
            && self.conv.is_empty()
            && !self.divsqrt.is_busy()
            && self.lsu == FpLsu::Idle
    }

    /// Applies a chaining-CSR write (synchronised by the caller).
    ///
    /// # Errors
    ///
    /// Strict mode: fails when the extension is absent or a disabled
    /// register still has in-flight producers.
    pub fn set_chain_mask(&mut self, mask: u32) -> Result<(), SimError> {
        if !self.cfg.chaining_enabled {
            if self.cfg.strict && mask != 0 {
                return Err(SimError::ChainingAbsent);
            }
            return Ok(());
        }
        self.chain.set_mask(mask, &self.pending, self.cfg.strict)?;
        Ok(())
    }

    /// The current chaining mask.
    #[must_use]
    pub fn chain_mask(&self) -> u32 {
        self.chain.mask()
    }

    fn classify(&self, reg: FpReg) -> RegClass {
        if self.ssr.maps_register(reg.index()) {
            RegClass::Stream(reg.index())
        } else if self.chain.is_chained(reg) {
            RegClass::Chained
        } else {
            RegClass::Plain
        }
    }

    // ------------------------------------------------------------------
    // Phase 1: writeback
    // ------------------------------------------------------------------

    /// Commits at most one completed op through the writeback port.
    ///
    /// Returns integer-register writebacks for the integer core to apply.
    pub fn writeback(&mut self, counters: &mut PerfCounters) -> Vec<IntWriteback> {
        self.blocked_reason = None;
        let mut int_wb = Vec::new();
        // Fixed priority: LSU > divsqrt > conv > noncomp > addmul.
        // The first candidate that can commit uses the port; the others
        // hold (their pipelines backpressure).
        let mut port_used = false;

        // LSU landed load.
        if let FpLsu::LoadLanded { dest, bits } = self.lsu {
            if self.try_commit(dest, bits, counters, &mut int_wb) {
                self.lsu = FpLsu::Idle;
                port_used = true;
            }
        }
        // Iterative unit.
        if !port_used {
            if let Some(&op) = self.divsqrt.ready() {
                if self.try_commit(op.dest, op.bits, counters, &mut int_wb) {
                    self.divsqrt.take_ready();
                    port_used = true;
                }
            }
        }
        // Pipelines.
        for which in 0..3 {
            if port_used {
                break;
            }
            let pipe = match which {
                0 => &mut self.conv,
                1 => &mut self.noncomp,
                _ => &mut self.addmul,
            };
            if let Some(&op) = pipe.ready() {
                let (dest, bits) = (op.dest, op.bits);
                if self.try_commit(dest, bits, counters, &mut int_wb) {
                    match which {
                        0 => self.conv.take_ready(),
                        1 => self.noncomp.take_ready(),
                        _ => self.addmul.take_ready(),
                    };
                    port_used = true;
                }
            }
        }
        self.wb_port_free = !port_used;
        int_wb
    }

    /// Detects the chained-FIFO jam the issue stage can resolve itself:
    /// `inst` (a compute op) targets a unit whose writeback slot holds a
    /// completion into a chained register that `inst` is about to pop.
    /// In hardware the pipeline registers *are* the tail of that
    /// register's logical FIFO, so the pop at the head and the held push
    /// advance together as one synchronous shift — the consumer must not
    /// stall on the unit being "full", or the rotation deadlocks the
    /// moment backpressure packs the pipeline. Returns the unit class to
    /// drain during issue.
    fn chained_drain_target(&self, inst: &Instruction, popped: &[FpReg]) -> Option<OpClass> {
        if !self.cfg.chained_fifo_shift {
            return None;
        }
        if !self.wb_port_free
            || matches!(
                inst,
                Instruction::FpLoad { .. } | Instruction::FpStore { .. }
            )
        {
            return None;
        }
        let (op, _) = FpuOp::from_instruction(inst).expect("compute op");
        let class = op.class();
        let held = match class {
            OpClass::AddMul => self.addmul.ready(),
            OpClass::NonComp => self.noncomp.ready(),
            OpClass::Conv => self.conv.ready(),
            OpClass::DivSqrt => self.divsqrt.ready(),
        }?;
        match held.dest {
            WbDest::Chained(reg)
                if popped.contains(&reg)
                    && matches!(self.classify(reg), RegClass::Chained)
                    && self.chain.can_pop(reg) =>
            {
                Some(class)
            }
            _ => None,
        }
    }

    /// Performs the drain found by [`FpSubsystem::chained_drain_target`]:
    /// retires the held completion into the just-popped register through
    /// the (unused) writeback port, freeing the unit for this cycle's
    /// issue.
    fn apply_chained_drain(&mut self, class: OpClass, counters: &mut PerfCounters) {
        let op = match class {
            OpClass::AddMul => self.addmul.take_ready(),
            OpClass::NonComp => self.noncomp.take_ready(),
            OpClass::Conv => self.conv.take_ready(),
            OpClass::DivSqrt => self.divsqrt.take_ready(),
        }
        .expect("drain target verified by chained_drain_target");
        let mut int_wb = Vec::new();
        let committed = self.try_commit(op.dest, op.bits, counters, &mut int_wb);
        debug_assert!(
            committed && int_wb.is_empty(),
            "a chained drain commits into the register popped this cycle"
        );
        self.wb_port_free = false;
    }

    /// Attempts one commit; records the block reason on failure.
    fn try_commit(
        &mut self,
        dest: WbDest,
        bits: u64,
        counters: &mut PerfCounters,
        int_wb: &mut Vec<IntWriteback>,
    ) -> bool {
        match dest {
            WbDest::Plain(reg) => {
                self.rf[reg.index() as usize] = bits;
                self.pending[reg.index() as usize] -= 1;
                counters.fp_rf_writes += 1;
                true
            }
            WbDest::Chained(reg) => {
                if self.chain.can_push(reg) {
                    self.chain.push(reg);
                    self.rf[reg.index() as usize] = bits;
                    self.pending[reg.index() as usize] -= 1;
                    counters.fp_rf_writes += 1;
                    true
                } else {
                    // The paper's backpressure: hold in the final stage.
                    self.blocked_reason.get_or_insert(StallCause::ChainFull);
                    false
                }
            }
            WbDest::Stream(dm) => {
                if self.ssr.mover(dm).can_push() {
                    let value = bits;
                    self.ssr
                        .mover_mut(dm)
                        .push(value)
                        .expect("direction checked at issue");
                    counters.ssr_elements += 1;
                    true
                } else {
                    self.ssr.mover_mut(dm).note_full();
                    self.blocked_reason.get_or_insert(StallCause::SsrFull);
                    false
                }
            }
            WbDest::Int(reg) => {
                int_wb.push(IntWriteback {
                    reg,
                    value: bits as u32,
                });
                true
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: issue
    // ------------------------------------------------------------------

    /// Tries to issue the next instruction from the sequencer.
    ///
    /// # Errors
    ///
    /// Strict-mode misuse (exhausted streams, loads into stream registers,
    /// oversized FREP bodies) is reported as [`SimError`].
    pub fn try_issue(&mut self, counters: &mut PerfCounters) -> Result<IssueOutcome, SimError> {
        let Some(fp) = self.seq.peek()? else {
            return Ok(IssueOutcome::Idle);
        };
        let inst = fp.inst;

        // --- readiness checks -----------------------------------------
        // Distinct source registers (a register read twice is one port
        // read / one pop, broadcast to both operand positions).
        let mut sources = inst.fp_sources();
        sources.dedup();
        let mut distinct: Vec<FpReg> = Vec::with_capacity(3);
        for s in sources {
            if !distinct.contains(&s) {
                distinct.push(s);
            }
        }
        for &src in &distinct {
            match self.classify(src) {
                RegClass::Stream(dm) => {
                    let mover = self.ssr.mover(dm);
                    if !mover.can_pop() {
                        if mover.is_done() {
                            return Err(SimError::StreamReadExhausted { dm });
                        }
                        self.ssr.mover_mut(dm).note_starved();
                        counters.record_stall(StallCause::SsrStarve);
                        return Ok(IssueOutcome::Stalled(StallCause::SsrStarve));
                    }
                }
                RegClass::Chained => {
                    if !self.chain.can_pop(src) {
                        counters.record_stall(StallCause::ChainEmpty);
                        return Ok(IssueOutcome::Stalled(StallCause::ChainEmpty));
                    }
                }
                RegClass::Plain => {
                    if self.pending[src.index() as usize] > 0 {
                        counters.record_stall(StallCause::RawHazard);
                        return Ok(IssueOutcome::Stalled(StallCause::RawHazard));
                    }
                }
            }
        }
        // Destination.
        let dest_class = inst.fp_dest().map(|d| (d, self.classify(d)));
        if let Some((d, RegClass::Plain)) = dest_class {
            if self.pending[d.index() as usize] > 0 {
                counters.record_stall(StallCause::WawHazard);
                return Ok(IssueOutcome::Stalled(StallCause::WawHazard));
            }
        }
        // Target unit.
        let unit_free = match &inst {
            Instruction::FpLoad { .. } | Instruction::FpStore { .. } => self.lsu == FpLsu::Idle,
            _ => {
                let (op, _) = FpuOp::from_instruction(&inst).expect("compute op");
                match op.class() {
                    OpClass::AddMul => self.addmul.can_issue(),
                    OpClass::NonComp => self.noncomp.can_issue(),
                    OpClass::Conv => self.conv.can_issue(),
                    OpClass::DivSqrt => self.divsqrt.can_issue(),
                }
            }
        };
        let drain = if unit_free {
            None
        } else {
            self.chained_drain_target(&inst, &distinct)
        };
        if !unit_free && drain.is_none() {
            let cause = match &inst {
                Instruction::FpLoad { .. } | Instruction::FpStore { .. } => StallCause::LsuBusy,
                _ => self.blocked_reason.unwrap_or(StallCause::UnitBusy),
            };
            counters.record_stall(cause);
            return Ok(IssueOutcome::Stalled(cause));
        }

        // --- operand read / pop ----------------------------------------
        let mut values: [(FpReg, u64); 3] = [(FpReg::new(0), 0); 3];
        let mut nvals = 0;
        for &src in &distinct {
            let bits = match self.classify(src) {
                RegClass::Stream(dm) => {
                    let v = self.ssr.mover_mut(dm).pop().map_err(SimError::from)?;
                    counters.ssr_elements += 1;
                    v
                }
                RegClass::Chained => {
                    self.chain.pop(src);
                    counters.fp_rf_reads += 1;
                    self.rf[src.index() as usize]
                }
                RegClass::Plain => {
                    counters.fp_rf_reads += 1;
                    self.rf[src.index() as usize]
                }
            };
            values[nvals] = (src, bits);
            nvals += 1;
        }
        let lookup = |reg: FpReg| -> u64 {
            values[..nvals]
                .iter()
                .find(|(r, _)| *r == reg)
                .map(|(_, b)| *b)
                .expect("operand read")
        };

        // --- dispatch ----------------------------------------------------
        self.seq.consume();
        counters.fp_issued += 1;

        // The operand pop above freed the chained register the blocked
        // completion targets; retire it now so the unit accepts this
        // instruction (the same-cycle FIFO shift).
        if let Some(class) = drain {
            self.apply_chained_drain(class, counters);
        }

        match inst {
            Instruction::FpStore { fmt, frs2, .. } => {
                counters.fp_mem_ops += 1;
                let addr = fp.addr.expect("store address resolved at offload");
                self.lsu = FpLsu::StorePending {
                    addr,
                    bits: lookup(frs2),
                    fmt,
                };
            }
            Instruction::FpLoad { fmt, frd, .. } => {
                counters.fp_mem_ops += 1;
                let addr = fp.addr.expect("load address resolved at offload");
                let dest = match self.classify(frd) {
                    RegClass::Stream(_) => {
                        return Err(SimError::LoadIntoStreamRegister { reg: frd })
                    }
                    RegClass::Chained => WbDest::Chained(frd),
                    RegClass::Plain => WbDest::Plain(frd),
                };
                self.pending[frd.index() as usize] += 1;
                self.lsu = FpLsu::LoadPending { addr, dest, fmt };
            }
            _ => {
                let (op, fmt) = FpuOp::from_instruction(&inst).expect("compute op");
                // Build positional operands.
                let srcs: [u64; 3] = match inst {
                    Instruction::FpBin { frs1, frs2, .. } => [lookup(frs1), lookup(frs2), 0],
                    Instruction::FpFma {
                        frs1, frs2, frs3, ..
                    } => [lookup(frs1), lookup(frs2), lookup(frs3)],
                    Instruction::FpSqrt { frs1, .. } => [lookup(frs1), 0, 0],
                    Instruction::FpCmp { frs1, frs2, .. } => [lookup(frs1), lookup(frs2), 0],
                    Instruction::FpCvt { op: c, frs1, .. } => {
                        if c.reads_int() {
                            [0, 0, 0]
                        } else {
                            [lookup(frs1), 0, 0]
                        }
                    }
                    _ => unreachable!("memory ops handled above"),
                };
                let int_src = fp.int_operand.unwrap_or(0);
                let out = evaluate(op, fmt, srcs, int_src);
                let bits = match out {
                    FpuOutput::Fp(b) => b,
                    FpuOutput::Int(v) => u64::from(v),
                };
                let dest = match inst {
                    Instruction::FpCmp { rd, .. } => WbDest::Int(rd),
                    Instruction::FpCvt { op: c, rd, frd, .. } => {
                        if c.writes_int() {
                            WbDest::Int(rd)
                        } else {
                            self.fp_dest_kind(frd)
                        }
                    }
                    _ => {
                        let frd = inst.fp_dest().expect("compute op writes fp");
                        self.fp_dest_kind(frd)
                    }
                };
                if let WbDest::Plain(r) | WbDest::Chained(r) = dest {
                    self.pending[r.index() as usize] += 1;
                }
                let wb = WbOp { dest, bits };
                match op.class() {
                    OpClass::AddMul => self.addmul.issue(wb),
                    OpClass::NonComp => self.noncomp.issue(wb),
                    OpClass::Conv => self.conv.issue(wb),
                    OpClass::DivSqrt => self.divsqrt.issue(wb, op.latency(&self.cfg.fpu)),
                }
                counters.fpu_issue_cycles += 1;
                counters.flops += flop_count(op);
            }
        }
        Ok(IssueOutcome::Issued(inst))
    }

    fn fp_dest_kind(&self, frd: FpReg) -> WbDest {
        match self.classify(frd) {
            RegClass::Stream(dm) => WbDest::Stream(dm),
            RegClass::Chained => WbDest::Chained(frd),
            RegClass::Plain => WbDest::Plain(frd),
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: memory
    // ------------------------------------------------------------------

    /// The LSU's TCDM request for this cycle, if any (the core's first
    /// namespaced port — port 0 on a single-core system).
    #[must_use]
    pub fn lsu_request(&self) -> Option<Request> {
        match self.lsu {
            FpLsu::StorePending { addr, .. } => Some(Request {
                port: PortId(self.port_base),
                addr,
                kind: AccessKind::Write,
            }),
            FpLsu::LoadPending { addr, .. } => Some(Request {
                port: PortId(self.port_base),
                addr,
                kind: AccessKind::Read,
            }),
            _ => None,
        }
    }

    /// Applies a granted LSU request.
    ///
    /// # Errors
    ///
    /// Functional memory errors (misaligned / out-of-bounds addresses).
    pub fn lsu_grant(&mut self, tcdm: &mut Tcdm) -> Result<(), SimError> {
        match self.lsu {
            FpLsu::StorePending { addr, bits, fmt } => {
                match fmt {
                    FpFormat::Double => tcdm.write_u64(addr, bits)?,
                    FpFormat::Single => tcdm.write_u32(addr, bits as u32)?,
                }
                self.lsu = FpLsu::Idle;
            }
            FpLsu::LoadPending { addr, dest, fmt } => {
                let bits = match fmt {
                    FpFormat::Double => tcdm.read_u64(addr)?,
                    FpFormat::Single => u64::from(tcdm.read_u32(addr)?),
                };
                // Lands this cycle; commits through the WB port from the
                // next cycle (1-cycle SRAM latency).
                self.lsu = FpLsu::LoadLanded { dest, bits };
            }
            _ => panic!("lsu grant without a pending request"),
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Phase 4: advance
    // ------------------------------------------------------------------

    /// Ends the cycle.
    pub fn advance(&mut self) {
        self.addmul.advance();
        self.noncomp.advance();
        self.conv.advance();
        self.divsqrt.advance();
        self.ssr.advance();
    }

    /// In-flight producer counts (diagnostics; drives strict checks).
    #[must_use]
    pub fn pending_counts(&self) -> &[u32; 32] {
        &self.pending
    }

    /// Appends this subsystem's hang-diagnosis view to `out`, one entry
    /// per stateful resource, paths prefixed with `path`. A resource is
    /// flagged blocked when it holds work that cannot move on its own —
    /// most importantly a completed result parked in a unit's writeback
    /// slot whose chained destination FIFO is full, the signature of a
    /// writeback deadlock.
    pub fn diagnose(&self, path: &str, out: &mut Vec<ResourceState>) {
        let units: [(&str, Option<&WbOp>); 4] = [
            ("addmul", self.addmul.ready()),
            ("noncomp", self.noncomp.ready()),
            ("conv", self.conv.ready()),
            ("divsqrt", self.divsqrt.ready()),
        ];
        for (unit, slot) in units {
            let Some(op) = slot else { continue };
            match op.dest {
                WbDest::Chained(reg) if !self.chain.can_push(reg) => {
                    out.push(ResourceState::blocked(
                        format!("{path}.fp.{unit}"),
                        format!(
                            "held writeback into chained FIFO {reg} \
                             (valid bit set, consumer stalled)"
                        ),
                    ));
                }
                WbDest::Stream(i) if !self.ssr.mover(i).can_push() => {
                    out.push(ResourceState::blocked(
                        format!("{path}.fp.{unit}"),
                        format!("held writeback into write stream ft{i} (FIFO full)"),
                    ));
                }
                _ => out.push(ResourceState::info(
                    format!("{path}.fp.{unit}"),
                    "completed result awaiting the writeback port",
                )),
            }
        }
        for reg in FpReg::all() {
            if self.chain.is_chained(reg) && self.chain.is_valid(reg) {
                out.push(ResourceState::info(
                    format!("{path}.fp.chain.{reg}"),
                    "holds an unconsumed chained value",
                ));
            }
        }
        if self.lsu != FpLsu::Idle {
            out.push(ResourceState::info(
                format!("{path}.fp.lsu"),
                match self.lsu {
                    FpLsu::StorePending { .. } => "store awaiting TCDM grant",
                    FpLsu::LoadPending { .. } => "load awaiting TCDM grant",
                    FpLsu::LoadLanded { .. } => "load landed, awaiting writeback",
                    FpLsu::Idle => unreachable!(),
                },
            ));
        }
        if !self.seq.is_drained() {
            out.push(ResourceState::info(
                format!("{path}.fp.sequencer"),
                "offloaded instructions pending",
            ));
        }
        for m in self.ssr.movers() {
            if m.fifo_len() > 0 || m.is_active() {
                out.push(ResourceState::info(
                    format!("{path}.fp.ssr.ft{}", m.index()),
                    format!("stream FIFO {}/{}", m.fifo_len(), m.fifo_capacity()),
                ));
            }
        }
        if let Some(cause) = self.blocked_reason {
            out.push(ResourceState::info(
                format!("{path}.fp.writeback"),
                format!("blocked: {}", cause.label()),
            ));
        }
    }
}

fn flop_count(op: FpuOp) -> u64 {
    match op {
        FpuOp::Bin(FpBinOp::Add | FpBinOp::Sub | FpBinOp::Mul | FpBinOp::Div) => 1,
        FpuOp::Sqrt => 1,
        FpuOp::Fma(FmaOp::Madd | FmaOp::Msub | FmaOp::Nmsub | FmaOp::Nmadd) => 2,
        _ => 0,
    }
}

/// Test helper: packages an instruction for offload.
#[cfg(test)]
pub(crate) fn offload_item(
    inst: Instruction,
    addr: Option<u32>,
    int_operand: Option<u32>,
) -> SeqItem {
    SeqItem::Fp(OffloadedFp {
        inst,
        addr,
        int_operand,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_isa::FpBinOp;
    use sc_mem::TcdmConfig;

    fn cfg() -> CoreConfig {
        CoreConfig::new().with_tcdm(TcdmConfig::new().with_size(4096).with_banks(4))
    }

    fn fadd(frd: u8, frs1: u8, frs2: u8) -> Instruction {
        Instruction::FpBin {
            op: FpBinOp::Add,
            fmt: FpFormat::Double,
            frd: FpReg::new(frd),
            frs1: FpReg::new(frs1),
            frs2: FpReg::new(frs2),
        }
    }

    /// Runs one full cycle against a scratch TCDM; returns the outcome.
    fn cycle(fs: &mut FpSubsystem, tcdm: &mut Tcdm, c: &mut PerfCounters) -> IssueOutcome {
        c.cycles += 1;
        fs.writeback(c);
        let out = fs.try_issue(c).unwrap();
        if let Some(req) = fs.lsu_request() {
            let g = tcdm.arbitrate(&[req]);
            if g[0] {
                fs.lsu_grant(tcdm).unwrap();
            }
        }
        let dm_reqs: Vec<(u8, Request)> = fs
            .ssr()
            .movers()
            .filter_map(|m| m.request().map(|r| (m.index(), r)))
            .collect();
        if !dm_reqs.is_empty() {
            let reqs: Vec<Request> = dm_reqs.iter().map(|(_, r)| *r).collect();
            let grants = tcdm.arbitrate(&reqs);
            for ((dm, _), granted) in dm_reqs.iter().zip(grants) {
                if granted {
                    fs.ssr_mut().mover_mut(*dm).apply_grant(tcdm).unwrap();
                }
            }
        }
        fs.advance();
        out
    }

    #[test]
    fn raw_hazard_costs_exactly_three_bubbles() {
        // fadd f4 <- f5+f6 ; fmul f7 <- f4*f5 : the paper's 3 wasted cycles.
        let mut fs = FpSubsystem::new(&cfg());
        let mut tcdm = Tcdm::new(cfg().tcdm);
        let mut c = PerfCounters::new();
        fs.set_reg(FpReg::new(5), 2.0);
        fs.set_reg(FpReg::new(6), 3.0);
        fs.sequencer_mut()
            .offload(offload_item(fadd(4, 5, 6), None, None));
        fs.sequencer_mut().offload(offload_item(
            Instruction::FpBin {
                op: FpBinOp::Mul,
                fmt: FpFormat::Double,
                frd: FpReg::new(7),
                frs1: FpReg::new(4),
                frs2: FpReg::new(5),
            },
            None,
            None,
        ));
        let mut issues = Vec::new();
        for n in 0..12 {
            let out = cycle(&mut fs, &mut tcdm, &mut c);
            if let IssueOutcome::Issued(i) = out {
                issues.push((n, i.to_string()));
            }
        }
        assert_eq!(issues.len(), 2);
        assert_eq!(issues[0].0, 0);
        assert_eq!(
            issues[1].0, 4,
            "RAW consumer issues 4 cycles later (3 bubbles)"
        );
        assert_eq!(c.stalls_of(StallCause::RawHazard), 4 - 1);
        assert_eq!(fs.reg(FpReg::new(7)), 10.0);
    }

    #[test]
    fn waw_on_plain_register_stalls_but_chained_does_not() {
        let cfg = cfg();
        let mut tcdm = Tcdm::new(cfg.tcdm);
        // Plain: two fadds to the same destination serialise.
        let mut fs = FpSubsystem::new(&cfg);
        let mut c = PerfCounters::new();
        fs.sequencer_mut()
            .offload(offload_item(fadd(4, 5, 6), None, None));
        fs.sequencer_mut()
            .offload(offload_item(fadd(4, 5, 6), None, None));
        let mut issue_cycles = Vec::new();
        for n in 0..12 {
            if let IssueOutcome::Issued(_) = cycle(&mut fs, &mut tcdm, &mut c) {
                issue_cycles.push(n);
            }
        }
        assert_eq!(issue_cycles, vec![0, 4], "plain WAW serialises");

        // Chained: back-to-back issue, no WAW.
        let mut fs = FpSubsystem::new(&cfg);
        let mut c = PerfCounters::new();
        fs.set_chain_mask(FpReg::new(4).chain_mask_bit()).unwrap();
        fs.sequencer_mut()
            .offload(offload_item(fadd(4, 5, 6), None, None));
        fs.sequencer_mut()
            .offload(offload_item(fadd(4, 5, 6), None, None));
        let mut issue_cycles = Vec::new();
        for n in 0..12 {
            if let IssueOutcome::Issued(_) = cycle(&mut fs, &mut tcdm, &mut c) {
                issue_cycles.push(n);
            }
        }
        assert_eq!(
            issue_cycles,
            vec![0, 1],
            "chained writes drop the WAW dependency"
        );
    }

    #[test]
    fn chained_fifo_preserves_order_and_backpressures() {
        // Three pushes into chained f4; pops must see push order. The
        // second producer completes while f4 is still valid → it holds
        // (backpressure), observable as pipeline blocked cycles.
        let cfg = cfg();
        let mut tcdm = Tcdm::new(cfg.tcdm);
        let mut fs = FpSubsystem::new(&cfg);
        let mut c = PerfCounters::new();
        fs.set_chain_mask(FpReg::new(4).chain_mask_bit()).unwrap();
        fs.set_reg(FpReg::new(5), 1.0);
        fs.set_reg(FpReg::new(6), 0.0);
        fs.set_reg(FpReg::new(8), 10.0);
        // f4 <- 1, f4 <- 10+1=11? No: keep producers independent:
        // push 1.0 (f5+f6), push 10.0 (f8+f6), push 11.0 (f8+f5).
        fs.sequencer_mut()
            .offload(offload_item(fadd(4, 5, 6), None, None));
        fs.sequencer_mut()
            .offload(offload_item(fadd(4, 8, 6), None, None));
        fs.sequencer_mut()
            .offload(offload_item(fadd(4, 8, 5), None, None));
        // Run enough cycles for all three to complete; no consumer pops.
        for _ in 0..20 {
            cycle(&mut fs, &mut tcdm, &mut c);
        }
        // Only the first value committed; two producers are held.
        assert!(fs.chain().is_valid(FpReg::new(4)));
        assert_eq!(fs.reg(FpReg::new(4)), 1.0);
        assert_eq!(fs.pending_counts()[4], 2, "two pushes still in flight");
        // Consume two elements via chained reads. Note the consumers'
        // own results drain through the same in-order pipeline *behind*
        // the held producers, so both pops are needed before anything
        // retires — exactly the rigid-pipe FIFO behaviour of the paper.
        for dest in [9u8, 10u8] {
            fs.sequencer_mut().offload(offload_item(
                Instruction::FpBin {
                    op: FpBinOp::Mul,
                    fmt: FpFormat::Double,
                    frd: FpReg::new(dest),
                    frs1: FpReg::new(4),
                    frs2: FpReg::new(8),
                },
                None,
                None,
            ));
        }
        for _ in 0..30 {
            cycle(&mut fs, &mut tcdm, &mut c);
        }
        assert_eq!(
            fs.reg(FpReg::new(9)),
            10.0,
            "first pop returns the oldest push (1.0 * 10.0)"
        );
        assert_eq!(
            fs.reg(FpReg::new(10)),
            100.0,
            "second pop returns the next push (10.0 * 10.0)"
        );
        assert_eq!(
            fs.reg(FpReg::new(4)),
            11.0,
            "third push landed after the pops"
        );
        assert!(fs.chain().is_valid(FpReg::new(4)));
        assert_eq!(fs.pending_counts()[4], 0);
    }

    #[test]
    fn chain_empty_read_stalls_until_push() {
        let cfg = cfg();
        let mut tcdm = Tcdm::new(cfg.tcdm);
        let mut fs = FpSubsystem::new(&cfg);
        let mut c = PerfCounters::new();
        fs.set_chain_mask(FpReg::new(4).chain_mask_bit()).unwrap();
        // Consumer first (reads chained f4), then producer would be
        // wrong-order software; instead: producer offloaded after one
        // stalled cycle, consumer waits for the push.
        fs.sequencer_mut().offload(offload_item(
            Instruction::FpBin {
                op: FpBinOp::Mul,
                fmt: FpFormat::Double,
                frd: FpReg::new(9),
                frs1: FpReg::new(4),
                frs2: FpReg::new(4),
            },
            None,
            None,
        ));
        let out = cycle(&mut fs, &mut tcdm, &mut c);
        assert_eq!(out, IssueOutcome::Stalled(StallCause::ChainEmpty));
        assert!(c.stalls_of(StallCause::ChainEmpty) > 0);
    }

    #[test]
    fn store_pops_chained_register() {
        let cfg = cfg();
        let mut tcdm = Tcdm::new(cfg.tcdm);
        let mut fs = FpSubsystem::new(&cfg);
        let mut c = PerfCounters::new();
        fs.set_chain_mask(FpReg::new(4).chain_mask_bit()).unwrap();
        fs.set_reg(FpReg::new(5), 4.5);
        fs.set_reg(FpReg::new(6), 0.0);
        fs.sequencer_mut()
            .offload(offload_item(fadd(4, 5, 6), None, None));
        fs.sequencer_mut().offload(offload_item(
            Instruction::FpStore {
                fmt: FpFormat::Double,
                frs2: FpReg::new(4),
                rs1: IntReg::ZERO,
                offset: 0,
            },
            Some(128),
            None,
        ));
        for _ in 0..16 {
            cycle(&mut fs, &mut tcdm, &mut c);
        }
        assert_eq!(tcdm.read_f64(128).unwrap(), 4.5);
        assert!(
            !fs.chain().is_valid(FpReg::new(4)),
            "store consumed the element"
        );
        assert!(fs.is_drained());
    }

    #[test]
    fn load_writes_back_and_clears_scoreboard() {
        let cfg = cfg();
        let mut tcdm = Tcdm::new(cfg.tcdm);
        tcdm.write_f64(256, 6.25).unwrap();
        let mut fs = FpSubsystem::new(&cfg);
        let mut c = PerfCounters::new();
        fs.sequencer_mut().offload(offload_item(
            Instruction::FpLoad {
                fmt: FpFormat::Double,
                frd: FpReg::new(10),
                rs1: IntReg::ZERO,
                offset: 0,
            },
            Some(256),
            None,
        ));
        // Dependent consumer.
        fs.sequencer_mut()
            .offload(offload_item(fadd(11, 10, 10), None, None));
        for _ in 0..12 {
            cycle(&mut fs, &mut tcdm, &mut c);
        }
        assert_eq!(fs.reg(FpReg::new(10)), 6.25);
        assert_eq!(fs.reg(FpReg::new(11)), 12.5);
        assert_eq!(fs.pending_counts()[10], 0);
        assert!(fs.is_drained());
    }

    #[test]
    fn comparison_produces_int_writeback() {
        let cfg = cfg();
        let _tcdm = Tcdm::new(cfg.tcdm);
        let mut fs = FpSubsystem::new(&cfg);
        let mut c = PerfCounters::new();
        fs.set_reg(FpReg::new(5), 1.0);
        fs.set_reg(FpReg::new(6), 2.0);
        fs.sequencer_mut().offload(offload_item(
            Instruction::FpCmp {
                op: sc_isa::FpCmpOp::Lt,
                fmt: FpFormat::Double,
                rd: IntReg::new(7),
                frs1: FpReg::new(5),
                frs2: FpReg::new(6),
            },
            None,
            None,
        ));
        let mut got = Vec::new();
        for _ in 0..8 {
            c.cycles += 1;
            got.extend(fs.writeback(&mut c));
            let _ = fs.try_issue(&mut c).unwrap();
            fs.advance();
        }
        assert_eq!(
            got,
            vec![IntWriteback {
                reg: IntReg::new(7),
                value: 1
            }]
        );
    }

    #[test]
    fn exhausted_stream_read_is_strict_error() {
        let cfg = cfg();
        let tcdm = Tcdm::new(cfg.tcdm);
        let mut fs = FpSubsystem::new(&cfg);
        let mut c = PerfCounters::new();
        fs.ssr_mut().set_enabled(true);
        // DM0 never armed → it is "done" → reading ft0 is a bug.
        fs.sequencer_mut()
            .offload(offload_item(fadd(4, 0, 0), None, None));
        let err = loop {
            c.cycles += 1;
            fs.writeback(&mut c);
            match fs.try_issue(&mut c) {
                Err(e) => break e,
                Ok(_) => fs.advance(),
            }
        };
        assert_eq!(err, SimError::StreamReadExhausted { dm: 0 });
        drop(tcdm);
    }

    #[test]
    fn flop_accounting_counts_fma_twice() {
        let cfg = cfg();
        let mut tcdm = Tcdm::new(cfg.tcdm);
        let mut fs = FpSubsystem::new(&cfg);
        let mut c = PerfCounters::new();
        fs.sequencer_mut()
            .offload(offload_item(fadd(4, 5, 6), None, None));
        fs.sequencer_mut().offload(offload_item(
            Instruction::FpFma {
                op: FmaOp::Madd,
                fmt: FpFormat::Double,
                frd: FpReg::new(7),
                frs1: FpReg::new(5),
                frs2: FpReg::new(6),
                frs3: FpReg::new(8),
            },
            None,
            None,
        ));
        for _ in 0..12 {
            cycle(&mut fs, &mut tcdm, &mut c);
        }
        assert_eq!(c.flops, 3);
        assert_eq!(c.fpu_issue_cycles, 2);
    }
}
