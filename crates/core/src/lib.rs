//! # sc-core — a cycle-level Snitch-like core with the chaining extension
//!
//! This crate is the reproduction's centrepiece: a scalar in-order RV32
//! core with a decoupled floating-point subsystem (pseudo dual-issue),
//! stream semantic registers, an FREP sequencer — and the paper's
//! **scalar chaining** ISA extension:
//!
//! * CSR **0x7C3** holds a 32-bit mask giving selected FP registers FIFO
//!   semantics (reads pop, writes push),
//! * one **valid bit** per register implements backpressure: a completing
//!   producer holds in the FPU's final pipeline stage until the previous
//!   value is consumed, and a consumer holds at issue until a value is
//!   available,
//! * WAW dependencies between successive writers of a chained register
//!   vanish, so a latency-hiding software pipeline needs one register
//!   instead of one per in-flight result.
//!
//! ```
//! use sc_core::{CoreConfig, Simulator};
//! use sc_isa::{csr, FpReg, IntReg, ProgramBuilder};
//!
//! // fadd.d producers chained through ft3, consumed by an fmul.d.
//! let t0 = IntReg::new(5);
//! let mut b = ProgramBuilder::new();
//! b.li(t0, FpReg::FT3.chain_mask_bit() as i32);
//! b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, t0);
//! b.fadd_d(FpReg::FT3, FpReg::new(4), FpReg::new(5));
//! b.fmul_d(FpReg::new(6), FpReg::FT3, FpReg::new(4));
//! b.csrrw(IntReg::ZERO, csr::CHAIN_MASK, IntReg::ZERO);
//! b.ecall();
//!
//! let mut sim = Simulator::new(CoreConfig::new(), b.build()?);
//! sim.set_fp_reg(FpReg::new(4), 2.0);
//! sim.set_fp_reg(FpReg::new(5), 3.0);
//! sim.run(1_000)?;
//! assert_eq!(sim.fp_reg(FpReg::new(6)), 10.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chain;
mod config;
mod counters;
mod error;
mod fp_subsys;
mod sched;
mod sequencer;
mod sim;
mod trace;

pub use chain::{ChainError, ChainUnit};
pub use config::CoreConfig;
pub use counters::{PerfCounters, StallCause};
pub use error::SimError;
pub use fp_subsys::{FpSubsystem, IntWriteback, IssueOutcome};
pub use sc_perf::{Attribution, AttributionError, PhaseMark};
pub use sched::{Component, SchedMode, Scheduler, Wake};
pub use sequencer::{OffloadedFp, SeqError, SeqItem, Sequencer};
pub use sim::{Core, DmaCommand, RunSummary, Simulator};
pub use trace::{FpSlot, IssueTrace, TraceCycle};
