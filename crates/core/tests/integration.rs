//! End-to-end simulator tests: full programs through the integer core,
//! sequencer, SSRs, FPU and the chaining extension — including the
//! paper's Fig. 1 microbenchmark in all three code variants.

use sc_core::{CoreConfig, SimError, Simulator, StallCause};
use sc_isa::{csr, FpReg, IntReg, Program, ProgramBuilder};
use sc_mem::TcdmConfig;
use sc_ssr::CfgAddr;

const T0: IntReg = IntReg::new(5);

fn t(i: u8) -> IntReg {
    IntReg::new(i)
}

fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

fn cfg() -> CoreConfig {
    CoreConfig::new().with_tcdm(TcdmConfig::new().with_size(64 << 10).with_banks(8))
}

/// Emits SSR configuration: 1-D read/write stream of `n` doubles at `base`.
fn cfg_linear_stream(b: &mut ProgramBuilder, dm: u8, base: u32, n: u32, write: bool) {
    let tmp = t(28);
    b.li(tmp, (n - 1) as i32);
    b.scfgwi(tmp, CfgAddr { dm, reg: 2 }.to_imm());
    b.li(tmp, 8);
    b.scfgwi(tmp, CfgAddr { dm, reg: 6 }.to_imm());
    b.li(tmp, base as i32);
    b.scfgwi(
        tmp,
        CfgAddr {
            dm,
            reg: if write { 28 } else { 24 },
        }
        .to_imm(),
    );
}

fn enable_ssr(b: &mut ProgramBuilder) {
    let tmp = t(28);
    b.li(tmp, 1);
    b.csrrs(IntReg::ZERO, csr::SSR_ENABLE, tmp);
}

fn disable_ssr(b: &mut ProgramBuilder) {
    b.csrrw(IntReg::ZERO, csr::SSR_ENABLE, IntReg::ZERO);
}

#[test]
fn straight_line_integer_program() {
    let mut b = ProgramBuilder::new();
    b.li(t(10), 6);
    b.li(t(11), 7);
    b.mul(t(12), t(10), t(11));
    b.addi(t(12), t(12), -2);
    b.ecall();
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    let summary = sim.run(100).unwrap();
    assert_eq!(sim.int_reg(t(12)), 40);
    assert!(summary.cycles < 20);
}

#[test]
fn integer_loads_and_stores() {
    let mut b = ProgramBuilder::new();
    b.li(t(10), 0x100);
    b.li(t(11), 1234);
    b.sw(t(11), t(10), 0);
    b.lw(t(12), t(10), 0);
    b.addi(t(12), t(12), 1);
    b.ecall();
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    sim.run(100).unwrap();
    assert_eq!(sim.int_reg(t(12)), 1235);
    assert_eq!(sim.tcdm().read_u32(0x100).unwrap(), 1234);
}

#[test]
fn branch_loop_counts() {
    let mut b = ProgramBuilder::new();
    b.li(t(10), 0);
    b.li(t(11), 10);
    b.label("loop");
    b.addi(t(10), t(10), 1);
    b.bne(t(10), t(11), "loop");
    b.ecall();
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    sim.run(200).unwrap();
    assert_eq!(sim.int_reg(t(10)), 10);
}

#[test]
fn fp_load_compute_store_roundtrip() {
    let mut b = ProgramBuilder::new();
    b.li(t(10), 0x200);
    b.fld(f(4), t(10), 0);
    b.fld(f(5), t(10), 8);
    b.fadd_d(f(6), f(4), f(5));
    b.fsd(f(6), t(10), 16);
    b.ecall();
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    sim.tcdm_mut().write_f64(0x200, 1.5).unwrap();
    sim.tcdm_mut().write_f64(0x208, 2.25).unwrap();
    sim.run(200).unwrap();
    assert_eq!(sim.tcdm().read_f64(0x210).unwrap(), 3.75);
}

#[test]
fn fp_compare_writes_integer_register() {
    let mut b = ProgramBuilder::new();
    b.li(t(10), 0x200);
    b.fld(f(4), t(10), 0);
    b.fld(f(5), t(10), 8);
    b.push(sc_isa::Instruction::FpCmp {
        op: sc_isa::FpCmpOp::Lt,
        fmt: sc_isa::FpFormat::Double,
        rd: t(12),
        frs1: f(4),
        frs2: f(5),
    });
    // Integer consumer must wait for the FP comparison result.
    b.addi(t(13), t(12), 100);
    b.ecall();
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    sim.tcdm_mut().write_f64(0x200, 1.0).unwrap();
    sim.tcdm_mut().write_f64(0x208, 2.0).unwrap();
    sim.run(200).unwrap();
    assert_eq!(sim.int_reg(t(13)), 101);
}

/// Builds the paper's Fig. 1a baseline: a = b * (c + d), element-wise,
/// streams c→ft0, d→ft1, a←ft2, scalar b in f4.
fn fig1_baseline(n: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let (i, len) = (t(10), t(11));
    b.li(t(12), 0x4000);
    b.fld(f(4), t(12), 0); // b coefficient
    enable_ssr(&mut b);
    cfg_linear_stream(&mut b, 0, 0x1000, n, false);
    cfg_linear_stream(&mut b, 1, 0x2000, n, false);
    cfg_linear_stream(&mut b, 2, 0x3000, n, true);
    b.li(i, 0);
    b.li(len, n as i32);
    b.csrrsi(IntReg::ZERO, csr::PERF_REGION, 1);
    b.label("loop");
    b.fadd_d(f(3), f(0), f(1));
    b.fmul_d(f(2), f(3), f(4));
    b.addi(i, i, 1);
    b.bne(i, len, "loop");
    b.csrrwi(IntReg::ZERO, csr::PERF_REGION, 0);
    disable_ssr(&mut b);
    b.ecall();
    b.build().unwrap()
}

/// Fig. 1b: unrolled by 4 with four temporaries ft3–ft6. As in the real
/// SARIS kernels, the loop is driven by `frep.o` so the integer front-end
/// is not the bottleneck (a plain branch loop caps utilisation at
/// 8 flops / 11 integer cycles ≈ 0.72 — Snitch's motivation for FREP).
fn fig1_unrolled(n: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(t(12), 0x4000);
    b.fld(f(4), t(12), 0);
    enable_ssr(&mut b);
    cfg_linear_stream(&mut b, 0, 0x1000, n, false);
    cfg_linear_stream(&mut b, 1, 0x2000, n, false);
    cfg_linear_stream(&mut b, 2, 0x3000, n, true);
    b.li(t(11), (n / 4 - 1) as i32);
    b.csrrsi(IntReg::ZERO, csr::PERF_REGION, 1);
    b.frep_outer(t(11), |b| {
        for k in 0..4 {
            b.fadd_d(f(5 + k), f(0), f(1));
        }
        for k in 0..4 {
            b.fmul_d(f(2), f(5 + k), f(4));
        }
    });
    b.csrrwi(IntReg::ZERO, csr::PERF_REGION, 0);
    disable_ssr(&mut b);
    b.ecall();
    b.build().unwrap()
}

/// Fig. 1c: chaining through ft3 — same unrolled schedule but a single
/// temporary register with FIFO semantics (FREP-driven like Fig. 1b).
fn fig1_chained(n: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(t(12), 0x4000);
    b.fld(f(4), t(12), 0);
    enable_ssr(&mut b);
    cfg_linear_stream(&mut b, 0, 0x1000, n, false);
    cfg_linear_stream(&mut b, 1, 0x2000, n, false);
    cfg_linear_stream(&mut b, 2, 0x3000, n, true);
    b.li(t(11), (n / 4 - 1) as i32);
    // li mask, 8 ; csrs 0x7C3, mask — the paper's prologue.
    b.li(T0, f(3).chain_mask_bit() as i32);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, T0);
    b.csrrsi(IntReg::ZERO, csr::PERF_REGION, 1);
    b.frep_outer(t(11), |b| {
        for _ in 0..4 {
            b.fadd_d(f(3), f(0), f(1));
        }
        for _ in 0..4 {
            b.fmul_d(f(2), f(3), f(4));
        }
    });
    b.csrrwi(IntReg::ZERO, csr::PERF_REGION, 0);
    b.csrrw(IntReg::ZERO, csr::CHAIN_MASK, IntReg::ZERO);
    disable_ssr(&mut b);
    b.ecall();
    b.build().unwrap()
}

fn run_fig1(prog: Program, n: u32) -> (Simulator, sc_core::RunSummary) {
    let mut sim = Simulator::new(cfg(), prog);
    let coef = 2.5f64;
    sim.tcdm_mut().write_f64(0x4000, coef).unwrap();
    for k in 0..n {
        sim.tcdm_mut()
            .write_f64(0x1000 + k * 8, f64::from(k))
            .unwrap();
        sim.tcdm_mut().write_f64(0x2000 + k * 8, 1.0).unwrap();
    }
    let summary = sim.run(100_000).expect("fig1 program runs to completion");
    for k in 0..n {
        let got = sim.tcdm().read_f64(0x3000 + k * 8).unwrap();
        let want = coef * (f64::from(k) + 1.0);
        assert!((got - want).abs() < 1e-12, "a[{k}] = {got}, want {want}");
    }
    (sim, summary)
}

#[test]
fn fig1a_baseline_stalls_three_cycles_per_iteration() {
    let (_, summary) = run_fig1(fig1_baseline(64), 64);
    let m = summary.measured();
    // Steady state: 2 flops issued per 5 cycles → 40 % utilisation.
    let util = m.fpu_utilization();
    assert!(
        (0.36..=0.44).contains(&util),
        "baseline utilisation {util:.3}, expected ≈ 0.40"
    );
    assert!(
        m.stalls_of(StallCause::RawHazard) >= 3 * 60,
        "RAW stalls dominate"
    );
}

#[test]
fn fig1b_unrolling_reaches_high_utilization() {
    let (_, summary) = run_fig1(fig1_unrolled(64), 64);
    let m = summary.measured();
    let util = m.fpu_utilization();
    assert!(
        util > 0.90,
        "unrolled utilisation {util:.3}, expected > 0.90"
    );
}

#[test]
fn fig1c_chaining_matches_unrolling_without_extra_registers() {
    let (_, chained) = run_fig1(fig1_chained(64), 64);
    let (_, unrolled) = run_fig1(fig1_unrolled(64), 64);
    let cu = chained.measured().fpu_utilization();
    let uu = unrolled.measured().fpu_utilization();
    assert!(cu > 0.90, "chained utilisation {cu:.3}, expected > 0.90");
    assert!(uu > 0.90, "unrolled utilisation {uu:.3}, expected > 0.90");
    // Chaining must be at least as good as unrolling (paper's pitch), while
    // using one temporary register instead of four.
    assert!(
        chained.measured().cycles <= unrolled.measured().cycles + 4,
        "chained {} vs unrolled {} cycles",
        chained.measured().cycles,
        unrolled.measured().cycles
    );
}

#[test]
fn fig1_all_variants_agree_numerically() {
    // The three variants are alternative schedules of the same math; the
    // memory images must agree bit-for-bit.
    let n = 32;
    let (a, _) = run_fig1(fig1_baseline(n), n);
    let (b, _) = run_fig1(fig1_unrolled(n), n);
    let (c, _) = run_fig1(fig1_chained(n), n);
    for k in 0..n {
        let addr = 0x3000 + k * 8;
        let va = a.tcdm().read_u64(addr).unwrap();
        assert_eq!(va, b.tcdm().read_u64(addr).unwrap());
        assert_eq!(va, c.tcdm().read_u64(addr).unwrap());
    }
}

#[test]
fn frep_loop_runs_without_integer_issue() {
    // frep.o replaces the branch loop entirely: the integer core issues
    // the body once; the sequencer replays it.
    let n = 64u32;
    let mut b = ProgramBuilder::new();
    b.li(t(12), 0x4000);
    b.fld(f(4), t(12), 0);
    enable_ssr(&mut b);
    cfg_linear_stream(&mut b, 0, 0x1000, n, false);
    cfg_linear_stream(&mut b, 1, 0x2000, n, false);
    cfg_linear_stream(&mut b, 2, 0x3000, n, true);
    b.li(t(11), (n / 4 - 1) as i32); // max_rpt = iterations - 1
    b.li(T0, f(3).chain_mask_bit() as i32);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, T0);
    b.csrrsi(IntReg::ZERO, csr::PERF_REGION, 1);
    b.frep_outer(t(11), |b| {
        for _ in 0..4 {
            b.fadd_d(f(3), f(0), f(1));
        }
        for _ in 0..4 {
            b.fmul_d(f(2), f(3), f(4));
        }
    });
    b.csrrwi(IntReg::ZERO, csr::PERF_REGION, 0);
    b.csrrw(IntReg::ZERO, csr::CHAIN_MASK, IntReg::ZERO);
    disable_ssr(&mut b);
    b.ecall();
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    sim.tcdm_mut().write_f64(0x4000, 3.0).unwrap();
    for k in 0..n {
        sim.tcdm_mut()
            .write_f64(0x1000 + k * 8, f64::from(k))
            .unwrap();
        sim.tcdm_mut().write_f64(0x2000 + k * 8, 2.0).unwrap();
    }
    let summary = sim.run(100_000).unwrap();
    for k in 0..n {
        let got = sim.tcdm().read_f64(0x3000 + k * 8).unwrap();
        assert_eq!(got, 3.0 * (f64::from(k) + 2.0));
    }
    let m = summary.measured();
    assert!(
        m.fpu_utilization() > 0.93,
        "frep+chaining utilisation {:.3} (paper: >93 %)",
        m.fpu_utilization()
    );
    assert!(m.frep_replays > 0, "sequencer must replay the body");
}

#[test]
fn chaining_csr_on_extensionless_core_errors() {
    let mut b = ProgramBuilder::new();
    b.li(T0, 8);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, T0);
    b.ecall();
    let mut sim = Simulator::new(cfg().with_chaining(false), b.build().unwrap());
    assert_eq!(sim.run(1_000).unwrap_err(), SimError::ChainingAbsent);
}

#[test]
fn lenient_core_ignores_chaining_csr() {
    let mut b = ProgramBuilder::new();
    b.li(T0, 8);
    b.csrrs(IntReg::ZERO, csr::CHAIN_MASK, T0);
    b.fadd_d(f(3), f(4), f(5));
    b.ecall();
    let mut sim = Simulator::new(
        cfg().with_chaining(false).with_strict(false),
        b.build().unwrap(),
    );
    sim.set_fp_reg(f(4), 1.0);
    sim.set_fp_reg(f(5), 2.0);
    sim.run(1_000).unwrap();
    assert_eq!(sim.fp_reg(f(3)), 3.0);
}

#[test]
fn trace_records_issue_slots() {
    let mut b = ProgramBuilder::new();
    b.fadd_d(f(3), f(4), f(5));
    b.fmul_d(f(6), f(3), f(4));
    b.ecall();
    let mut sim = Simulator::new(cfg().with_trace(true), b.build().unwrap());
    let summary = sim.run(1_000).unwrap();
    assert_eq!(summary.trace.fp_issue_count(), 2);
    assert!(summary.trace.stall_count(StallCause::RawHazard) >= 3);
    let text = summary.trace.render();
    assert!(text.contains("fadd.d"));
    assert!(text.contains("stall (raw)"));
}

#[test]
fn mhartid_and_cluster_size_read_zero_and_one_on_lone_core() {
    let mut b = ProgramBuilder::new();
    b.csrrs(t(10), sc_isa::csr::MHARTID, IntReg::ZERO);
    b.csrrs(t(11), sc_isa::csr::CLUSTER_NUM_CORES, IntReg::ZERO);
    b.ecall();
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    sim.run(100).unwrap();
    assert_eq!(sim.int_reg(t(10)), 0);
    assert_eq!(sim.int_reg(t(11)), 1);
}

#[test]
fn hart_identity_is_visible_to_programs() {
    use sc_core::Core;
    use sc_mem::Tcdm;
    let mut b = ProgramBuilder::new();
    b.csrrs(t(10), sc_isa::csr::MHARTID, IntReg::ZERO);
    b.csrrs(t(11), sc_isa::csr::CLUSTER_NUM_CORES, IntReg::ZERO);
    b.ecall();
    let config = cfg();
    let mut tcdm = Tcdm::new(config.tcdm);
    let mut core = Core::with_hart(config, b.build().unwrap(), 2, 4);
    while !core.is_halted() {
        core.step(&mut tcdm).unwrap();
        if core.in_barrier() {
            core.release_barrier();
        }
    }
    assert_eq!(core.int_reg(t(10)), 2);
    assert_eq!(core.int_reg(t(11)), 4);
    assert_eq!(
        core.port_base(),
        2 * 4,
        "hart 2 with 3 SSRs owns ports 8..12"
    );
}

#[test]
fn lone_core_barrier_releases_immediately() {
    let mut b = ProgramBuilder::new();
    // Two barrier episodes; the second returns completion count 1.
    b.csrrwi(t(10), sc_isa::csr::CLUSTER_BARRIER, 0);
    b.csrrwi(t(11), sc_isa::csr::CLUSTER_BARRIER, 0);
    b.ecall();
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    let summary = sim.run(1_000).unwrap();
    assert_eq!(
        sim.int_reg(t(10)),
        0,
        "first barrier reports zero prior episodes"
    );
    assert_eq!(
        sim.int_reg(t(11)),
        1,
        "second barrier reports one prior episode"
    );
    assert_eq!(sim.core().barriers_completed(), 2);
    assert!(
        summary.cycles < 20,
        "a lone hart's barrier must be nearly free"
    );
}

#[test]
fn barrier_csr_pure_read_does_not_arrive() {
    // csrrs rd, 0x7C5, x0 is the canonical CSR read: per the RISC-V
    // spec it performs no write, so it must return the completed-episode
    // count without parking the hart on the barrier.
    let mut b = ProgramBuilder::new();
    b.csrrs(t(10), sc_isa::csr::CLUSTER_BARRIER, IntReg::ZERO); // read: 0
    b.csrrwi(IntReg::ZERO, sc_isa::csr::CLUSTER_BARRIER, 0); // arrive
    b.csrrs(t(11), sc_isa::csr::CLUSTER_BARRIER, IntReg::ZERO); // read: 1
    b.csrrsi(t(12), sc_isa::csr::CLUSTER_BARRIER, 0); // imm-zero read: 1
    b.ecall();
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    sim.run(1_000).unwrap();
    assert_eq!(sim.int_reg(t(10)), 0, "read before any episode");
    assert_eq!(sim.int_reg(t(11)), 1, "read after one episode");
    assert_eq!(
        sim.int_reg(t(12)),
        1,
        "zero-immediate csrrsi is also a pure read"
    );
    assert_eq!(sim.core().barriers_completed(), 1, "only the csrrw arrived");
}

#[test]
fn barrier_waits_for_streams_to_complete() {
    // The barrier is a rendezvous of quiesced harts: a pending write
    // stream must drain before the hart arrives.
    let n = 4u32;
    let mut b = ProgramBuilder::new();
    enable_ssr(&mut b);
    cfg_linear_stream(&mut b, 2, 0x3000, n, true);
    for _ in 0..n {
        b.fmv_d(f(2), f(4)); // push into the write stream
    }
    b.csrrwi(t(10), sc_isa::csr::CLUSTER_BARRIER, 0);
    disable_ssr(&mut b);
    b.ecall();
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    sim.set_fp_reg(f(4), 6.5);
    sim.run(10_000).unwrap();
    for k in 0..n {
        assert_eq!(sim.tcdm().read_f64(0x3000 + 8 * k).unwrap(), 6.5);
    }
    assert_eq!(sim.core().barriers_completed(), 1);
}

#[test]
fn ebreak_reports_pc() {
    let mut b = ProgramBuilder::new();
    b.nop();
    b.push(sc_isa::Instruction::Ebreak);
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    assert_eq!(sim.run(100).unwrap_err(), SimError::Ebreak { pc: 4 });
}

#[test]
fn runaway_program_hits_cycle_budget() {
    let mut b = ProgramBuilder::new();
    b.label("spin");
    b.j("spin");
    let mut sim = Simulator::new(cfg(), b.build().unwrap());
    assert_eq!(
        sim.run(500).unwrap_err(),
        SimError::MaxCyclesExceeded { max_cycles: 500 }
    );
}
