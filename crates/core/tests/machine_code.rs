//! Machine-code round trip: programs assembled, encoded to binary words,
//! decoded back and executed must behave identically — the encoder, the
//! decoder and the simulator agree on the ISA.

use sc_core::{CoreConfig, Simulator};
use sc_isa::{csr, parse_asm, FpReg, IntReg, Program};

fn run_both(src: &str, setup: impl Fn(&mut Simulator)) -> (Simulator, Simulator) {
    let original = parse_asm(src).expect("parses");
    let words = original.to_words();
    let decoded = Program::from_words(&words).expect("decodes");
    assert_eq!(original.code(), decoded.code(), "decode(encode(p)) == p");
    let mut a = Simulator::new(CoreConfig::new(), original);
    let mut b = Simulator::new(CoreConfig::new(), decoded);
    setup(&mut a);
    setup(&mut b);
    a.run(100_000).expect("original runs");
    b.run(100_000).expect("decoded runs");
    (a, b)
}

#[test]
fn integer_program_roundtrips_through_binary() {
    let (a, b) = run_both(
        r"
            li  t0, 100
            li  t1, 0
        loop:
            addi t1, t1, 3
            addi t0, t0, -1
            bne  t0, x0, loop
            sw   t1, 0x80(x0)
            ecall
        ",
        |_| {},
    );
    assert_eq!(a.int_reg(IntReg::new(6)), 300);
    assert_eq!(
        a.tcdm().read_u32(0x80).unwrap(),
        b.tcdm().read_u32(0x80).unwrap()
    );
}

#[test]
fn chained_fp_program_roundtrips_through_binary() {
    let src = r"
        li   t0, 8
        csrs 0x7C3, t0
        fadd.d ft3, ft4, ft5
        fadd.d ft3, ft4, ft5
        fmv.d  ft8, ft3
        fmv.d  ft9, ft3
        csrw 0x7C3, x0
        ecall
    ";
    let (a, b) = run_both(src, |sim| {
        sim.set_fp_reg(FpReg::new(4), 1.5);
        sim.set_fp_reg(FpReg::new(5), 2.0);
    });
    assert_eq!(a.fp_reg(FpReg::new(28)), 3.5, "ft8 is f28");
    assert_eq!(a.fp_reg(FpReg::new(29)), 3.5, "ft9 is f29");
    assert_eq!(
        a.fp_reg(FpReg::new(28)).to_bits(),
        b.fp_reg(FpReg::new(28)).to_bits()
    );
}

#[test]
fn div_sqrt_cvt_paths_execute() {
    // End-to-end coverage of the iterative unit and the conversion path.
    let src = r"
        li t0, 9
        fcvt.d.w ft4, t0
        fsqrt.d  ft5, ft4
        fdiv.d   ft6, ft4, ft5
        flt.d    t1, ft5, ft4
        addi     t2, t1, 10
        ecall
    ";
    let (a, _) = run_both(src, |_| {});
    assert_eq!(a.fp_reg(FpReg::new(4)), 9.0);
    assert_eq!(a.fp_reg(FpReg::new(5)), 3.0);
    assert_eq!(a.fp_reg(FpReg::new(6)), 3.0);
    assert_eq!(a.int_reg(IntReg::new(7)), 11, "3.0 < 9.0");
}

#[test]
fn iterative_unit_blocks_issue_while_busy() {
    // Two back-to-back divides serialise on the unpipelined unit.
    let src = r"
        fdiv.d ft6, ft4, ft5
        fdiv.d ft7, ft4, ft5
        ecall
    ";
    let prog = parse_asm(src).unwrap();
    let mut sim = Simulator::new(CoreConfig::new(), prog);
    sim.set_fp_reg(FpReg::new(4), 8.0);
    sim.set_fp_reg(FpReg::new(5), 2.0);
    let summary = sim.run(10_000).unwrap();
    assert_eq!(sim.fp_reg(FpReg::new(6)), 4.0);
    assert_eq!(sim.fp_reg(FpReg::new(7)), 4.0);
    // Div latency is 11: two serialised divides dominate the runtime.
    assert!(summary.cycles >= 22, "cycles {}", summary.cycles);
}

#[test]
fn mcycle_csr_is_readable() {
    let src = r"
        nop
        nop
        csrr t0, 0xB00
        ecall
    ";
    let prog = parse_asm(src).unwrap();
    let mut sim = Simulator::new(CoreConfig::new(), prog);
    sim.run(1_000).unwrap();
    let cycles_at_read = sim.int_reg(IntReg::new(5));
    assert!(cycles_at_read >= 2, "mcycle read {cycles_at_read}");
    let _ = csr::MCYCLE;
}

#[test]
fn staggered_frep_executes_through_the_simulator() {
    // frep.o with rd-stagger writes alternating destinations — the Snitch
    // feature the sequencer implements; exercised end-to-end here.
    let src = r"
        li t0, 3
        frep.o t0, 1, 1, 1
        fadd.d ft8, ft4, ft5
        ecall
    ";
    let prog = parse_asm(src).unwrap();
    let mut sim = Simulator::new(CoreConfig::new(), prog);
    sim.set_fp_reg(FpReg::new(4), 2.0);
    sim.set_fp_reg(FpReg::new(5), 0.5);
    sim.run(1_000).unwrap();
    // 4 iterations, stagger_max 1 on rd: ft8 = f28, so writes f28, f29.
    assert_eq!(sim.fp_reg(FpReg::new(28)), 2.5);
    assert_eq!(sim.fp_reg(FpReg::new(29)), 2.5);
}
