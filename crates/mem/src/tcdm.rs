//! The banked tightly-coupled data memory (TCDM).
//!
//! A Snitch cluster's L1 is a multi-banked scratchpad: word-interleaved
//! SRAM banks behind a fully-connected crossbar. Each bank serves at most
//! one request per cycle; masters that lose arbitration retry the next
//! cycle. This contention is a first-order performance effect for the
//! paper's experiments: every SSR stream occupies a TCDM port, so mapping
//! the stencil coefficients to a stream (the `Base` variant) adds a
//! requester, while keeping them in the register file (the `Chaining`
//! variants) removes one — and removes its energy per access.

use std::fmt;

use crate::stats::TcdmStats;

/// Identifies a requester (master port) at the TCDM crossbar.
///
/// Port numbering is fixed by the core: 0 = core LSU, 1.. = SSR data movers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u8);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read access.
    Read,
    /// Write access.
    Write,
}

/// One memory request presented to the crossbar in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Requesting master.
    pub port: PortId,
    /// Byte address.
    pub addr: u32,
    /// Read or write.
    pub kind: AccessKind,
}

/// Errors for functional (data) access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address (plus access width) beyond the memory size.
    OutOfBounds {
        /// Requested byte address.
        addr: u32,
        /// Access width in bytes.
        width: u32,
        /// Memory size in bytes.
        size: u32,
    },
    /// Address not aligned to the access width.
    Misaligned {
        /// Requested byte address.
        addr: u32,
        /// Access width in bytes.
        width: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MemError::OutOfBounds { addr, width, size } => write!(
                f,
                "access of {width} bytes at {addr:#010x} outside memory of {size} bytes"
            ),
            MemError::Misaligned { addr, width } => {
                write!(f, "misaligned {width}-byte access at {addr:#010x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// TCDM geometry and timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcdmConfig {
    /// Total size in bytes.
    pub size: u32,
    /// Number of SRAM banks (power of two).
    pub banks: u32,
    /// Bank word width in bytes (interleaving granule; 8 = 64-bit banks).
    pub bank_width: u32,
}

impl TcdmConfig {
    /// Snitch-like default: 32 banks × 64 bit. The capacity is scaled up
    /// from the 128 KiB of a real cluster so whole experiment footprints
    /// fit *without* DMA double-buffering; banking behaviour (the
    /// timing-relevant part) is unchanged. Use [`TcdmConfig::snitch_128k`]
    /// together with the DMA/tiling path for the true-capacity model.
    #[must_use]
    pub fn new() -> Self {
        TcdmConfig {
            size: 4 << 20,
            banks: 32,
            bank_width: 8,
        }
    }

    /// The real Snitch cluster L1: a hard 128 KiB over 32 × 64-bit banks.
    /// Whole-problem footprints generally do **not** fit; kernels must be
    /// tiled through the DMA engine (`sc-kernels`' `build_tiled`).
    #[must_use]
    pub fn snitch_128k() -> Self {
        Self::new().with_size(128 << 10)
    }

    /// Sets the bank count (must be a power of two, and the configured
    /// size must remain a whole number of interleave lines).
    #[must_use]
    pub fn with_banks(mut self, banks: u32) -> Self {
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        self.banks = banks;
        self.validate();
        self
    }

    /// Sets the total size in bytes. The size must be a positive multiple
    /// of one full interleave line (`banks × bank_width` bytes), so every
    /// bank holds the same whole number of words.
    #[must_use]
    pub fn with_size(mut self, size: u32) -> Self {
        self.size = size;
        self.validate();
        self
    }

    /// Bytes in one interleave line (one word from every bank).
    #[must_use]
    pub fn line_bytes(&self) -> u32 {
        self.banks * self.bank_width
    }

    /// Checks the size/banking invariant.
    ///
    /// # Panics
    ///
    /// Panics if the size is zero or not a multiple of `banks × bank_width`
    /// — such a geometry would give some banks one more word than others,
    /// which the word-interleaved address mapping cannot express.
    fn validate(&self) {
        let line = self.line_bytes();
        assert!(
            self.size > 0 && self.size.is_multiple_of(line),
            "TCDM size {} is not a positive multiple of one interleave line \
             ({} banks × {} B = {} B); round the size to a multiple of {} B",
            self.size,
            self.banks,
            self.bank_width,
            line,
            line,
        );
    }
}

impl Default for TcdmConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The banked scratchpad: functional byte store + per-cycle bank arbiter.
///
/// # Examples
///
/// ```
/// use sc_mem::{Tcdm, TcdmConfig, Request, PortId, AccessKind};
///
/// let mut tcdm = Tcdm::new(TcdmConfig::new());
/// tcdm.write_f64(0x100, 3.5)?;
/// assert_eq!(tcdm.read_f64(0x100)?, 3.5);
///
/// // Two requests to the same bank in one cycle: one wins, one retries.
/// let grants = tcdm.arbitrate(&[
///     Request { port: PortId(0), addr: 0x0, kind: AccessKind::Read },
///     Request { port: PortId(1), addr: 0x0, kind: AccessKind::Read },
/// ]);
/// assert_eq!(grants.iter().filter(|g| **g).count(), 1);
/// # Ok::<(), sc_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tcdm {
    cfg: TcdmConfig,
    data: Vec<u8>,
    stats: TcdmStats,
    /// Round-robin arbitration pointer, rotated every arbitration cycle so
    /// no master is starved under persistent conflicts.
    rr_next: u8,
    /// Ports per requester group (0 = ungrouped). When a cluster
    /// namespaces ports as `core × ports_per_core`, grouping makes
    /// arbitration fair *between cores* first and between a core's own
    /// ports second, so one core's many streams cannot starve another
    /// core's single LSU.
    port_group_size: u8,
}

impl Tcdm {
    /// Creates a zero-initialised TCDM.
    #[must_use]
    pub fn new(cfg: TcdmConfig) -> Self {
        Tcdm {
            data: vec![0; cfg.size as usize],
            stats: TcdmStats::new(cfg.banks),
            cfg,
            rr_next: 0,
            port_group_size: 0,
        }
    }

    /// Enables inter-group fair arbitration: ports `g*size..(g+1)*size`
    /// form group `g` (a core), and tie-breaking rotates over groups
    /// before rotating over a group's own ports. With a single group this
    /// reduces exactly to the ungrouped round-robin. Pass 0 to disable.
    pub fn set_port_group_size(&mut self, size: u8) {
        self.port_group_size = size;
    }

    /// The configured port group size (0 = ungrouped).
    #[must_use]
    pub fn port_group_size(&self) -> u8 {
        self.port_group_size
    }

    /// The configuration this TCDM was built with.
    #[must_use]
    pub fn config(&self) -> TcdmConfig {
        self.cfg
    }

    /// Access statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &TcdmStats {
        &self.stats
    }

    /// Resets statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = TcdmStats::new(self.cfg.banks);
    }

    /// The bank serving a byte address.
    #[must_use]
    pub fn bank_of(&self, addr: u32) -> u32 {
        (addr / self.cfg.bank_width) % self.cfg.banks
    }

    /// Arbitrates one cycle of requests.
    ///
    /// Returns a grant flag per request (index-aligned with the input).
    /// At most one request per bank is granted per cycle; ties are broken
    /// round-robin on the port id, with the starting priority rotating
    /// every call so persistent conflicts share bandwidth fairly.
    /// Granted requests are counted in the statistics; data movement is
    /// performed separately by the caller through the functional API.
    pub fn arbitrate(&mut self, requests: &[Request]) -> Vec<bool> {
        let mut grants = vec![false; requests.len()];
        let mut bank_taken = vec![false; self.cfg.banks as usize];
        // Order candidate indexes by rotated priority. The rotation is
        // taken modulo the highest requesting port (or group) so two
        // contenders share bandwidth 50/50 rather than by the full 8-bit
        // wrap. With port grouping, the group (core) key rotates first:
        // inter-core fairness dominates intra-core port order.
        let g = u16::from(self.port_group_size.max(1));
        let grouped = self.port_group_size > 0;
        let key_parts = |port: u8| -> (u16, u16) {
            let p = u16::from(port);
            if grouped {
                (p / g, p % g)
            } else {
                (0, p)
            }
        };
        let ngroups = requests
            .iter()
            .map(|r| key_parts(r.port.0).0 + 1)
            .max()
            .unwrap_or(1);
        let nports = requests
            .iter()
            .map(|r| key_parts(r.port.0).1 + 1)
            .max()
            .unwrap_or(1);
        // The two rotations must not stay phase-locked: with a shared
        // counter and common factors between `ngroups` and `nports`
        // (always, for power-of-two clusters) some (group, port)
        // priority combinations would never occur and a port could
        // starve. Dividing by `ngroups` gives the port rotation an
        // independent phase; with a single group this reduces exactly
        // to the ungrouped rotation.
        let rr_group = u16::from(self.rr_next) % ngroups;
        let rr_port = (u16::from(self.rr_next) / ngroups) % nports;
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| {
            let (group, port) = key_parts(requests[i].port.0);
            (
                (group + ngroups - rr_group) % ngroups,
                (port + nports - rr_port) % nports,
            )
        });
        for i in order {
            let req = &requests[i];
            let bank = self.bank_of(req.addr) as usize;
            if bank_taken[bank] {
                self.stats.record_conflict(req.port, bank as u32);
            } else {
                bank_taken[bank] = true;
                grants[i] = true;
                self.stats.record_grant(req.port, bank as u32, req.kind);
            }
        }
        if !requests.is_empty() {
            self.rr_next = self.rr_next.wrapping_add(1);
        }
        grants
    }

    fn check(&self, addr: u32, width: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(width) {
            return Err(MemError::Misaligned { addr, width });
        }
        if addr
            .checked_add(width)
            .is_none_or(|end| end > self.cfg.size)
        {
            return Err(MemError::OutOfBounds {
                addr,
                width,
                size: self.cfg.size,
            });
        }
        Ok(())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or out of bounds.
    pub fn read_u64(&self, addr: u32) -> Result<u64, MemError> {
        self.check(addr, 8)?;
        let a = addr as usize;
        Ok(u64::from_le_bytes(
            self.data[a..a + 8].try_into().expect("8 bytes"),
        ))
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or out of bounds.
    pub fn write_u64(&mut self, addr: u32, value: u64) -> Result<(), MemError> {
        self.check(addr, 8)?;
        let a = addr as usize;
        self.data[a..a + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or out of bounds.
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        self.check(addr, 4)?;
        let a = addr as usize;
        Ok(u32::from_le_bytes(
            self.data[a..a + 4].try_into().expect("4 bytes"),
        ))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or out of bounds.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        self.check(addr, 4)?;
        let a = addr as usize;
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads one byte, zero-extended.
    ///
    /// # Errors
    ///
    /// Fails if the address is out of bounds.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        self.check(addr, 1)?;
        Ok(self.data[addr as usize])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Fails if the address is out of bounds.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        self.check(addr, 1)?;
        self.data[addr as usize] = value;
        Ok(())
    }

    /// Reads a 16-bit little-endian value.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or out of bounds.
    pub fn read_u16(&self, addr: u32) -> Result<u16, MemError> {
        self.check(addr, 2)?;
        let a = addr as usize;
        Ok(u16::from_le_bytes(
            self.data[a..a + 2].try_into().expect("2 bytes"),
        ))
    }

    /// Writes a 16-bit little-endian value.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or out of bounds.
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), MemError> {
        self.check(addr, 2)?;
        let a = addr as usize;
        self.data[a..a + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads an `f64` (bit pattern of [`Tcdm::read_u64`]).
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or out of bounds.
    pub fn read_f64(&self, addr: u32) -> Result<f64, MemError> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Writes an `f64`.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or out of bounds.
    pub fn write_f64(&mut self, addr: u32, value: f64) -> Result<(), MemError> {
        self.write_u64(addr, value.to_bits())
    }

    /// Copies a slice of doubles into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if any element lands misaligned or out of bounds.
    pub fn write_f64_slice(&mut self, addr: u32, values: &[f64]) -> Result<(), MemError> {
        for (i, v) in values.iter().enumerate() {
            self.write_f64(addr + (i as u32) * 8, *v)?;
        }
        Ok(())
    }

    /// Reads `n` doubles starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if any element lands misaligned or out of bounds.
    pub fn read_f64_slice(&self, addr: u32, n: usize) -> Result<Vec<f64>, MemError> {
        (0..n)
            .map(|i| self.read_f64(addr + (i as u32) * 8))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tcdm {
        Tcdm::new(TcdmConfig::new().with_size(4096).with_banks(4))
    }

    #[test]
    fn snitch_128k_is_a_valid_geometry() {
        let c = TcdmConfig::snitch_128k();
        assert_eq!(c.size, 128 << 10);
        assert_eq!(c.banks, 32);
        assert!(c.size.is_multiple_of(c.line_bytes()));
    }

    #[test]
    #[should_panic(expected = "not a positive multiple of one interleave line")]
    fn size_not_multiple_of_line_is_rejected() {
        // 1000 B over 32 × 8 B banks would leave some banks a word short.
        let _ = TcdmConfig::new().with_size(1000);
    }

    #[test]
    #[should_panic(expected = "not a positive multiple of one interleave line")]
    fn zero_size_is_rejected() {
        let _ = TcdmConfig::new().with_size(0);
    }

    #[test]
    #[should_panic(expected = "not a positive multiple of one interleave line")]
    fn bank_growth_can_invalidate_a_small_size() {
        // 256 B is fine at 4 banks (64 B lines) but not at 64 banks (512 B).
        let _ = TcdmConfig::new()
            .with_banks(4)
            .with_size(256)
            .with_banks(64);
    }

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut m = small();
        m.write_u8(1, 0xAB).unwrap();
        m.write_u16(2, 0xBEEF).unwrap();
        m.write_u32(4, 0xDEAD_BEEF).unwrap();
        m.write_u64(8, 0x0123_4567_89AB_CDEF).unwrap();
        m.write_f64(16, -2.25).unwrap();
        assert_eq!(m.read_u8(1).unwrap(), 0xAB);
        assert_eq!(m.read_u16(2).unwrap(), 0xBEEF);
        assert_eq!(m.read_u32(4).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.read_u64(8).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_f64(16).unwrap(), -2.25);
    }

    #[test]
    fn misaligned_and_oob_rejected() {
        let mut m = small();
        assert_eq!(
            m.read_u32(2).unwrap_err(),
            MemError::Misaligned { addr: 2, width: 4 }
        );
        assert_eq!(
            m.write_u64(4096, 0).unwrap_err(),
            MemError::OutOfBounds {
                addr: 4096,
                width: 8,
                size: 4096
            }
        );
        // Last valid u64 slot works.
        m.write_u64(4088, 7).unwrap();
    }

    #[test]
    fn bank_mapping_is_word_interleaved() {
        let m = small();
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(7), 0);
        assert_eq!(m.bank_of(8), 1);
        assert_eq!(m.bank_of(24), 3);
        assert_eq!(m.bank_of(32), 0);
    }

    #[test]
    fn conflicting_requests_serialise() {
        let mut m = small();
        let reqs = [
            Request {
                port: PortId(0),
                addr: 0,
                kind: AccessKind::Read,
            },
            Request {
                port: PortId(1),
                addr: 32,
                kind: AccessKind::Read,
            }, // same bank 0
            Request {
                port: PortId(2),
                addr: 8,
                kind: AccessKind::Read,
            }, // bank 1
        ];
        let grants = m.arbitrate(&reqs);
        assert_eq!(grants.iter().filter(|g| **g).count(), 2);
        assert!(grants[2], "bank-1 request must always be granted");
        assert_eq!(m.stats().conflicts(), 1);
    }

    #[test]
    fn disjoint_banks_all_granted() {
        let mut m = small();
        let reqs: Vec<Request> = (0..4)
            .map(|i| Request {
                port: PortId(i),
                addr: u32::from(i) * 8,
                kind: AccessKind::Read,
            })
            .collect();
        let grants = m.arbitrate(&reqs);
        assert!(grants.iter().all(|g| *g));
        assert_eq!(m.stats().conflicts(), 0);
        assert_eq!(m.stats().total_accesses(), 4);
    }

    #[test]
    fn grouped_arbitration_is_fair_between_cores() {
        // Core 0 owns ports 0..4, core 1 owns ports 4..8; all requests hit
        // bank 0. Ungrouped round-robin would hand core 0 (with four
        // contending ports) most of the bandwidth; grouping must split the
        // grants evenly between the two cores.
        let mut m = small();
        m.set_port_group_size(4);
        let reqs = [
            Request {
                port: PortId(0),
                addr: 0,
                kind: AccessKind::Read,
            },
            Request {
                port: PortId(1),
                addr: 32,
                kind: AccessKind::Read,
            },
            Request {
                port: PortId(2),
                addr: 64,
                kind: AccessKind::Read,
            },
            Request {
                port: PortId(3),
                addr: 96,
                kind: AccessKind::Read,
            },
            Request {
                port: PortId(4),
                addr: 128,
                kind: AccessKind::Read,
            },
        ];
        let mut core_wins = [0u32; 2];
        for _ in 0..100 {
            let g = m.arbitrate(&reqs);
            for (i, granted) in g.iter().enumerate() {
                if *granted {
                    core_wins[if i < 4 { 0 } else { 1 }] += 1;
                }
            }
        }
        assert_eq!(core_wins[0] + core_wins[1], 100);
        assert_eq!(
            core_wins[1], 50,
            "inter-core split must be even, got {core_wins:?}"
        );
    }

    #[test]
    fn grouped_arbitration_starves_no_port() {
        // Regression: group and port rotation once shared one counter,
        // phase-locking the priorities so (e.g.) core 0's mover and
        // core 1's LSU never won a contended bank. Two cores × two
        // ports, all on bank 0: every port must win equally.
        let mut m = small();
        m.set_port_group_size(2);
        let reqs: Vec<Request> = (0..4)
            .map(|p| Request {
                port: PortId(p),
                addr: u32::from(p) * 32, // all bank 0
                kind: AccessKind::Read,
            })
            .collect();
        let mut wins = [0u32; 4];
        for _ in 0..100 {
            for (w, granted) in wins.iter_mut().zip(m.arbitrate(&reqs)) {
                *w += u32::from(granted);
            }
        }
        assert_eq!(wins, [25; 4], "every port must share the contended bank");
    }

    #[test]
    fn single_group_matches_ungrouped_arbitration() {
        // With every port inside one group, grouped arbitration must be
        // bit-identical to the legacy ungrouped order (the single-core
        // equivalence guarantee).
        let mut plain = small();
        let mut grouped = small();
        grouped.set_port_group_size(4);
        let reqs = [
            Request {
                port: PortId(0),
                addr: 0,
                kind: AccessKind::Read,
            },
            Request {
                port: PortId(1),
                addr: 32,
                kind: AccessKind::Write,
            },
            Request {
                port: PortId(2),
                addr: 8,
                kind: AccessKind::Read,
            },
            Request {
                port: PortId(3),
                addr: 64,
                kind: AccessKind::Read,
            },
        ];
        for _ in 0..25 {
            assert_eq!(plain.arbitrate(&reqs), grouped.arbitrate(&reqs));
        }
        assert_eq!(plain.stats(), grouped.stats());
    }

    #[test]
    fn round_robin_rotates_priority() {
        let mut m = small();
        let reqs = [
            Request {
                port: PortId(0),
                addr: 0,
                kind: AccessKind::Read,
            },
            Request {
                port: PortId(1),
                addr: 0,
                kind: AccessKind::Read,
            },
        ];
        let mut wins = [0u32; 2];
        for _ in 0..10 {
            let g = m.arbitrate(&reqs);
            if g[0] {
                wins[0] += 1;
            }
            if g[1] {
                wins[1] += 1;
            }
        }
        assert_eq!(wins[0] + wins[1], 10);
        assert!(wins[0] >= 4 && wins[1] >= 4, "fair-ish split, got {wins:?}");
    }
}
