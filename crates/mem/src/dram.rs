//! The background (main) memory behind the cluster's DMA engine.
//!
//! A real Snitch cluster's 128 KiB L1 scratchpad is fed from a much
//! larger memory (HBM / L2) by an asynchronous DMA mover. This module
//! models that background memory as an *unbounded* byte store with two
//! timing parameters consumed by the DMA engine:
//!
//! * [`DramConfig::latency`] — cycles between a transfer being picked up
//!   and its first beat moving (row activation / request round-trip),
//! * [`DramConfig::cycles_per_beat`] — inverse bandwidth: cycles each
//!   64-bit beat occupies the memory channel (1 = one beat per cycle).
//!
//! Functionally the store mirrors the [`crate::Tcdm`] byte API
//! (alignment-checked little-endian accesses) so kernels can stage their
//! whole problem here and verify results after the DMA writes back.
//! Reads beyond the high-water mark return zeroes without growing the
//! backing storage; writes grow it, up to the host-safety cap
//! [`DramConfig::max_bytes`].

use crate::tcdm::MemError;

/// Timing parameters of the background memory, as seen by the DMA engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Fixed cycles before the first beat of each transfer moves.
    pub latency: u32,
    /// Cycles each 64-bit beat occupies the channel (≥ 1).
    pub cycles_per_beat: u32,
    /// Host-safety cap on the backing allocation: writes beyond this
    /// byte address fail with `OutOfBounds` instead of growing the
    /// store. Guards the host against a guest-chosen stray address
    /// (e.g. `DMA_SRC = 0xFFFF_FF00`) allocating gigabytes; the model
    /// is "unbounded" only relative to problem footprints.
    pub max_bytes: u32,
}

impl DramConfig {
    /// Defaults sized like an L2/HBM hop from a 1 GHz cluster: tens of
    /// cycles of latency, one 64-bit beat per cycle once streaming, and
    /// a 256 MiB allocation cap (orders of magnitude above any problem
    /// footprint here).
    #[must_use]
    pub fn new() -> Self {
        DramConfig {
            latency: 64,
            cycles_per_beat: 1,
            max_bytes: 256 << 20,
        }
    }

    /// Sets the allocation cap.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: u32) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Sets the per-transfer startup latency.
    #[must_use]
    pub fn with_latency(mut self, latency: u32) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the inverse bandwidth (cycles per 64-bit beat; ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_beat` is zero.
    #[must_use]
    pub fn with_cycles_per_beat(mut self, cycles_per_beat: u32) -> Self {
        assert!(cycles_per_beat >= 1, "bandwidth is at most one beat/cycle");
        self.cycles_per_beat = cycles_per_beat;
        self
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The unbounded background memory: a grow-on-write byte store.
///
/// # Examples
///
/// ```
/// use sc_mem::{Dram, DramConfig};
/// let mut dram = Dram::new(DramConfig::new());
/// dram.write_f64(0x10_0000, 2.5)?;
/// assert_eq!(dram.read_f64(0x10_0000)?, 2.5);
/// assert_eq!(dram.read_u64(0xFFF_FF00)?, 0, "untouched memory reads zero");
/// # Ok::<(), sc_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    data: Vec<u8>,
}

impl Dram {
    /// Creates an empty background memory.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            cfg,
            data: Vec::new(),
        }
    }

    /// The timing configuration.
    #[must_use]
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Bytes written so far (the grow-on-write high-water mark).
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.data.len()
    }

    fn check(&self, addr: u32, width: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(width) {
            return Err(MemError::Misaligned { addr, width });
        }
        if addr
            .checked_add(width)
            .is_none_or(|end| end > self.cfg.max_bytes)
        {
            return Err(MemError::OutOfBounds {
                addr,
                width,
                size: self.cfg.max_bytes,
            });
        }
        Ok(())
    }

    fn ensure(&mut self, end: usize) {
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
    }

    /// Reads `width` bytes into the low end of an 8-byte buffer, treating
    /// addresses beyond the high-water mark as zero.
    fn read_bytes(&self, addr: u32, width: u32) -> [u8; 8] {
        let mut buf = [0u8; 8];
        let a = addr as usize;
        let end = (a + width as usize).min(self.data.len());
        if a < end {
            buf[..end - a].copy_from_slice(&self.data[a..end]);
        }
        buf
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or beyond the allocation cap.
    pub fn read_u64(&self, addr: u32) -> Result<u64, MemError> {
        self.check(addr, 8)?;
        Ok(u64::from_le_bytes(self.read_bytes(addr, 8)))
    }

    /// Writes a little-endian `u64`, growing the store as needed.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or beyond the allocation cap.
    pub fn write_u64(&mut self, addr: u32, value: u64) -> Result<(), MemError> {
        self.check(addr, 8)?;
        let a = addr as usize;
        self.ensure(a + 8);
        self.data[a..a + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or beyond the allocation cap.
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        self.check(addr, 4)?;
        let b = self.read_bytes(addr, 4);
        Ok(u32::from_le_bytes(b[..4].try_into().expect("4 bytes")))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or beyond the allocation cap.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        self.check(addr, 4)?;
        let a = addr as usize;
        self.ensure(a + 4);
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads one byte (zero beyond the high-water mark).
    ///
    /// # Errors
    ///
    /// Never fails (reads do not allocate).
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        Ok(self.data.get(addr as usize).copied().unwrap_or(0))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Fails if the access is beyond the allocation cap.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        self.check(addr, 1)?;
        let a = addr as usize;
        self.ensure(a + 1);
        self.data[a] = value;
        Ok(())
    }

    /// Reads an `f64` (bit pattern of [`Dram::read_u64`]).
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned.
    pub fn read_f64(&self, addr: u32) -> Result<f64, MemError> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Writes an `f64`.
    ///
    /// # Errors
    ///
    /// Fails if the access is misaligned or beyond the allocation cap.
    pub fn write_f64(&mut self, addr: u32, value: f64) -> Result<(), MemError> {
        self.write_u64(addr, value.to_bits())
    }

    /// Copies a slice of doubles into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if any element lands misaligned or beyond the allocation cap.
    pub fn write_f64_slice(&mut self, addr: u32, values: &[f64]) -> Result<(), MemError> {
        for (i, v) in values.iter().enumerate() {
            self.write_f64(addr + (i as u32) * 8, *v)?;
        }
        Ok(())
    }

    /// Reads `n` doubles starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if any element lands misaligned.
    pub fn read_f64_slice(&self, addr: u32, n: usize) -> Result<Vec<f64>, MemError> {
        (0..n)
            .map(|i| self.read_f64(addr + (i as u32) * 8))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_on_write_and_reads_zero_beyond() {
        let mut d = Dram::new(DramConfig::new());
        assert_eq!(d.high_water(), 0);
        assert_eq!(d.read_u64(0x8000).unwrap(), 0);
        assert_eq!(d.high_water(), 0, "reads must not grow the store");
        d.write_u64(0x8000, 0xABCD).unwrap();
        assert_eq!(d.high_water(), 0x8008);
        assert_eq!(d.read_u64(0x8000).unwrap(), 0xABCD);
    }

    #[test]
    fn partial_tail_reads_are_zero_padded() {
        let mut d = Dram::new(DramConfig::new());
        d.write_u32(0x100, 0xDEAD_BEEF).unwrap();
        // The u64 read straddles the high-water mark.
        assert_eq!(d.read_u64(0x100).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn misalignment_is_rejected() {
        let d = Dram::new(DramConfig::new());
        assert_eq!(
            d.read_u64(4).unwrap_err(),
            MemError::Misaligned { addr: 4, width: 8 }
        );
    }

    #[test]
    fn slice_roundtrip() {
        let mut d = Dram::new(DramConfig::new());
        let vals = [1.5, -2.25, 0.0, 1e300];
        d.write_f64_slice(0x40, &vals).unwrap();
        assert_eq!(d.read_f64_slice(0x40, 4).unwrap(), vals);
    }

    #[test]
    fn allocation_cap_rejects_stray_addresses() {
        // A guest-controlled stray address must not allocate gigabytes.
        let mut d = Dram::new(DramConfig::new().with_max_bytes(1 << 20));
        assert_eq!(
            d.write_u64(0xFFFF_FF00, 1).unwrap_err(),
            MemError::OutOfBounds {
                addr: 0xFFFF_FF00,
                width: 8,
                size: 1 << 20
            }
        );
        assert_eq!(d.high_water(), 0, "the failed write must not allocate");
        // The last in-cap slot still works.
        d.write_u64((1 << 20) - 8, 7).unwrap();
    }

    #[test]
    #[should_panic(expected = "one beat/cycle")]
    fn zero_bandwidth_rejected() {
        let _ = DramConfig::new().with_cycles_per_beat(0);
    }
}
