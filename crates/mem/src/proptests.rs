//! Property tests for the TCDM arbitration invariants, the L2's
//! cache-stats invariants, and the prefetch engine's core guarantee:
//! prefetching changes cycles, never results.

use proptest::prelude::*;

use crate::{
    AccessKind, L2Config, L2Outcome, L2Request, PortId, PrefetchHint, PrefetchMode, Request, Tcdm,
    TcdmConfig, L2,
};

fn request() -> impl Strategy<Value = Request> {
    (0u8..8, 0u32..512, any::<bool>()).prop_map(|(p, word, w)| Request {
        port: PortId(p),
        addr: word * 8,
        kind: if w {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
    })
}

proptest! {
    #[test]
    fn at_most_one_grant_per_bank(reqs in proptest::collection::vec(request(), 0..12)) {
        let mut tcdm = Tcdm::new(TcdmConfig::new().with_size(8192).with_banks(8));
        let grants = tcdm.arbitrate(&reqs);
        prop_assert_eq!(grants.len(), reqs.len());
        let mut banks_seen = std::collections::HashSet::new();
        for (req, granted) in reqs.iter().zip(&grants) {
            if *granted {
                prop_assert!(banks_seen.insert(tcdm.bank_of(req.addr)),
                    "two grants to bank {}", tcdm.bank_of(req.addr));
            }
        }
    }

    #[test]
    fn work_conserving(reqs in proptest::collection::vec(request(), 1..12)) {
        // Every bank with at least one request must grant exactly one.
        let mut tcdm = Tcdm::new(TcdmConfig::new().with_size(8192).with_banks(8));
        let grants = tcdm.arbitrate(&reqs);
        let mut requested: std::collections::HashSet<u32> = Default::default();
        let mut granted: std::collections::HashSet<u32> = Default::default();
        for (req, g) in reqs.iter().zip(&grants) {
            requested.insert(tcdm.bank_of(req.addr));
            if *g {
                granted.insert(tcdm.bank_of(req.addr));
            }
        }
        prop_assert_eq!(requested, granted);
    }

    #[test]
    fn stats_match_grants(batches in proptest::collection::vec(
        proptest::collection::vec(request(), 0..8), 1..16))
    {
        let mut tcdm = Tcdm::new(TcdmConfig::new().with_size(8192).with_banks(8));
        let mut expect_granted = 0u64;
        let mut expect_conflicts = 0u64;
        for batch in &batches {
            let grants = tcdm.arbitrate(batch);
            expect_granted += grants.iter().filter(|g| **g).count() as u64;
            expect_conflicts += grants.iter().filter(|g| !**g).count() as u64;
        }
        prop_assert_eq!(tcdm.stats().total_accesses(), expect_granted);
        prop_assert_eq!(tcdm.stats().conflicts(), expect_conflicts);
    }

    #[test]
    fn rw_roundtrip(addr_word in 0u32..500, value in any::<u64>()) {
        let mut tcdm = Tcdm::new(TcdmConfig::new().with_size(4096).with_banks(4));
        tcdm.write_u64(addr_word * 8, value).unwrap();
        prop_assert_eq!(tcdm.read_u64(addr_word * 8).unwrap(), value);
    }
}

/// One cluster's beat per cycle at most — the shape the system actually
/// drives the L2 with (each cluster's DMA engine issues at most one
/// beat; duplicates from the generator are dropped).
fn l2_batch(clusters: u32) -> impl Strategy<Value = Vec<L2Request>> {
    proptest::collection::vec(
        (0u32..clusters, 0u32..64, any::<bool>()),
        0..(clusters as usize + 1),
    )
    .prop_map(|reqs| {
        let mut seen = [false; 8];
        let mut batch = Vec::new();
        for (c, word, write) in reqs {
            if std::mem::replace(&mut seen[c as usize], true) {
                continue;
            }
            batch.push(L2Request {
                cluster: c,
                addr: word * 8,
                kind: if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            });
        }
        batch
    })
}

fn finite_l2_config() -> impl Strategy<Value = L2Config> {
    (
        prop_oneof![Just(0u32), Just(4), Just(8), Just(16)],
        1u32..5,
        prop_oneof![Just(0u32), Just(1), Just(2), Just(4)],
        1u32..5,
        any::<bool>(),
    )
        .prop_map(|(sets, ways, mshrs, channels, write_back)| {
            L2Config::new()
                .with_line_bytes(64)
                .with_banks(4)
                .with_refill_latency(3)
                .with_capacity_bytes(sets * 64 * ways)
                .with_ways(ways)
                .with_mshrs(mshrs)
                .with_refill_channels(channels)
                .with_write_back(write_back)
        })
}

/// Drives `batches` through an L2, returning externally counted
/// (granted reads, granted writes).
fn drive(l2: &mut L2, batches: &[Vec<L2Request>]) -> (u64, u64) {
    let (mut reads, mut writes) = (0u64, 0u64);
    for batch in batches {
        l2.begin_cycle();
        let outcomes = l2.arbitrate(batch);
        for (req, outcome) in batch.iter().zip(&outcomes) {
            if outcome.granted() {
                match req.kind {
                    AccessKind::Read => reads += 1,
                    AccessKind::Write => writes += 1,
                }
            }
        }
        l2.end_cycle();
    }
    (reads, writes)
}

proptest! {
    /// The L2's cache-stats invariants hold under arbitrary beat
    /// sequences and arbitrary finite/infinite geometries:
    ///
    /// * every granted read beat is classified exactly once — hits +
    ///   misses == granted read beats,
    /// * write-back traffic appears only from dirty evictions (never
    ///   with write-back off, never without an eviction),
    /// * MSHR merges never exceed the stall cycles that could have
    ///   produced them, the file never exceeds its configured size, and
    ///   refills never outnumber MSHR allocations.
    #[test]
    fn l2_stats_invariants(
        cfg in finite_l2_config(),
        batches in proptest::collection::vec(l2_batch(3), 1..120),
    ) {
        let mut l2 = L2::new(cfg, 3);
        let (reads, writes) = drive(&mut l2, &batches);
        let s = l2.stats();
        let c = &s.cache;
        prop_assert_eq!(c.read_hits + c.read_misses, reads,
            "every granted read beat is a hit or a serviced miss");
        prop_assert_eq!(c.write_beats, writes);
        prop_assert_eq!(s.accesses, reads + writes);
        if !cfg.write_back || c.evictions == 0 {
            prop_assert_eq!(c.dirty_evictions, 0);
            prop_assert_eq!(s.writeback_beats(&cfg), 0);
        }
        prop_assert_eq!(s.writeback_beats(&cfg),
            c.dirty_evictions * u64::from(cfg.line_beats()));
        prop_assert!(c.mshr_merges <= c.stall_cycles,
            "a merge only happens on a stalled beat");
        prop_assert!(c.refills <= c.mshr_allocations,
            "every refilled line was allocated an MSHR");
        if cfg.mshrs > 0 {
            prop_assert!(c.mshr_peak <= u64::from(cfg.mshrs));
        } else {
            prop_assert_eq!(c.mshr_full_stalls, 0);
        }
        if cfg.capacity_bytes == 0 {
            prop_assert_eq!(c.evictions, 0, "an infinite L2 never evicts");
        }
    }

    /// With no write beats at all, no line can ever become dirty: zero
    /// write-back traffic regardless of capacity pressure.
    #[test]
    fn l2_without_writes_never_writes_back(
        cfg in finite_l2_config(),
        batches in proptest::collection::vec(l2_batch(3), 1..100),
    ) {
        let reads_only: Vec<Vec<L2Request>> = batches
            .into_iter()
            .map(|b| {
                b.into_iter()
                    .map(|mut r| {
                        r.kind = AccessKind::Read;
                        r
                    })
                    .collect()
            })
            .collect();
        let mut l2 = L2::new(cfg.with_write_back(true), 3);
        drive(&mut l2, &reads_only);
        let s = l2.stats();
        prop_assert_eq!(s.cache.dirty_evictions, 0);
        prop_assert_eq!(s.writeback_beats(&cfg), 0);
    }

    /// A single requester can never merge: merging is cross-requester
    /// same-line coalescing, and one engine's retries of its own beat
    /// must not be double-counted.
    #[test]
    fn l2_single_cluster_never_merges(
        cfg in finite_l2_config(),
        batches in proptest::collection::vec(l2_batch(1), 1..100),
    ) {
        let mut l2 = L2::new(cfg, 1);
        drive(&mut l2, &batches);
        prop_assert_eq!(l2.stats().cache.mshr_merges, 0);
    }

    /// The tentpole equivalence pin: an infinite-capacity, 1-channel,
    /// no-write-back L2 behaves **cycle-identically** to the historical
    /// residency model (HashSet of lines + single FIFO refill channel),
    /// grant for grant and refill for refill, under arbitrary beat
    /// sequences.
    #[test]
    fn infinite_one_channel_l2_matches_residency_reference(
        batches in proptest::collection::vec(l2_batch(3), 1..150),
    ) {
        let cfg = L2Config::new().with_line_bytes(64).with_banks(4).with_refill_latency(3);
        prop_assert_eq!(cfg.capacity_bytes, 0, "default stays the PR 3 point");
        prop_assert_eq!(cfg.refill_channels, 1);
        prop_assert!(!cfg.write_back);
        let mut l2 = L2::new(cfg, 3);
        let mut reference = ResidencyL2::new(cfg, 3);
        for (cycle, batch) in batches.iter().enumerate() {
            l2.begin_cycle();
            reference.begin_cycle();
            let got: Vec<bool> = l2.arbitrate(batch).iter().map(|o| o.granted()).collect();
            let want = reference.arbitrate(batch);
            prop_assert_eq!(&got, &want, "grant divergence at cycle {}", cycle);
            l2.end_cycle();
            reference.end_cycle();
            prop_assert_eq!(l2.stats().refills(), reference.refills,
                "refill-count divergence at cycle {}", cycle);
        }
        prop_assert_eq!(l2.stats().refill_stalls(), reference.refill_stalls);
        prop_assert_eq!(l2.stats().accesses, reference.accesses);
        prop_assert_eq!(l2.stats().conflicts, reference.conflicts);
    }
}

fn prefetch_l2_config() -> impl Strategy<Value = L2Config> {
    (
        finite_l2_config(),
        1u32..5,
        prop_oneof![Just(1u32), Just(4), Just(16), Just(64)],
        1u32..33,
        any::<bool>(),
    )
        .prop_map(|(cfg, degree, distance, queue, next_line)| {
            cfg.with_prefetch(true)
                .with_prefetch_degree(degree)
                .with_prefetch_distance(distance)
                .with_prefetch_queue(queue)
                .with_prefetch_mode(if next_line {
                    PrefetchMode::NextLine
                } else {
                    PrefetchMode::Strided
                })
        })
}

proptest! {
    /// The prefetch engine's core guarantee, differentially: for random
    /// tile schedules, a prefetch-ON run is **bit-identical in results**
    /// to the prefetch-OFF run of the same schedules — every read beat
    /// observes the same value, the final store image matches — while
    /// only the cycle count may differ. The prefetch accounting obeys
    /// `prefetch_hits ≤ prefetches_issued`, and the demand-side
    /// classification (`hits + misses == granted reads`) is unchanged by
    /// prefetching.
    #[test]
    fn prefetch_changes_cycles_never_results(
        cfg in prefetch_l2_config(),
        schedules in proptest::collection::vec(schedule(), 1..4),
    ) {
        let n = schedules.len() as u32;
        let granted_reads: u64 = schedules
            .iter()
            .flatten()
            .filter(|&&(_, _, write, private)| !(write && private))
            .map(|&(_, words, _, _)| u64::from(words))
            .sum();
        let mut off = L2::new(cfg.with_prefetch(false), n);
        let (logs_off, store_off, _cycles_off) = run_schedules(&mut off, &schedules, false);
        let mut on = L2::new(cfg, n);
        let (logs_on, store_on, _cycles_on) = run_schedules(&mut on, &schedules, true);

        // Results: bit-identical, beat for beat.
        prop_assert_eq!(&logs_on, &logs_off, "read beats observed different data");
        prop_assert_eq!(&store_on, &store_off, "final memory images diverged");

        // Stats: the demand-side invariants hold identically in both
        // runs; the prefetch counters obey their accuracy bounds.
        for (name, s) in [("off", off.stats()), ("on", on.stats())] {
            prop_assert_eq!(
                s.cache.read_hits + s.cache.read_misses,
                granted_reads,
                "{}: hits + misses must equal granted reads", name
            );
        }
        let on_s = on.stats();
        prop_assert!(on_s.cache.prefetch_hits <= on_s.cache.prefetches_issued,
            "more accurate hits than issued prefetches");
        prop_assert!(on_s.cache.prefetch_hits + on_s.cache.prefetch_evicted_unused
            <= on_s.cache.prefetches_issued,
            "accuracy classes overlap");
        prop_assert!(on_s.cache.prefetch_refills <= on_s.cache.prefetches_issued);
        prop_assert!(on_s.cache.prefetch_refills <= on_s.cache.refills);
        prop_assert!(on_s.cache.demand_misses_covered_by_prefetch
            <= on_s.cache.prefetches_issued);
        let off_s = off.stats();
        prop_assert_eq!(off_s.cache.prefetches_issued, 0);
        prop_assert_eq!(off_s.cache.prefetch_hints, 0);
        // Both runs granted exactly every scheduled beat. (Cycle counts
        // and the hit/miss split may legitimately differ: timely
        // prefetches convert misses into hits, and pollution in an
        // under-fit cache can do the reverse — but never change data.)
        prop_assert_eq!(on_s.accesses, off_s.accesses);
    }
}

/// One cluster's tile schedule: a sequence of descriptor-like transfers
/// (word base, word count, write?, private?). Like real tiled kernels,
/// schedules are race-free across clusters: writes land only in the
/// cluster's **private** window, and shared-window transfers are
/// read-only — cross-cluster read/write races would make results
/// timing-dependent for *any* timing change, not just prefetching.
type Schedule = Vec<(u32, u32, bool, bool)>;

fn schedule() -> impl Strategy<Value = Schedule> {
    proptest::collection::vec((0u32..96, 1u32..24, any::<bool>(), any::<bool>()), 1..4)
}

/// Resolves a schedule entry to its cluster-local placement: private
/// windows of 128 words per cluster sit above the 128-word shared
/// read-only region.
fn resolve(c: usize, base: u32, write: bool, private: bool) -> (u32, bool) {
    if private {
        (128 + c as u32 * 128 + base, write)
    } else {
        (base, false)
    }
}

/// Expands a cluster's schedule into its in-order beat sequence.
fn beats_of(c: usize, sched: &Schedule) -> Vec<(u32, AccessKind)> {
    let mut beats = Vec::new();
    for &(base, words, write, private) in sched {
        let (base, write) = resolve(c, base, write, private);
        for w in 0..words {
            beats.push((
                (base + w) * 8,
                if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            ));
        }
    }
    beats
}

/// Runs every cluster's beat sequence to completion against one L2 over
/// a little functional word store: each cluster retries its current beat
/// until granted (exactly how a DMA engine behaves), granted reads log
/// the value they observed, granted writes store a value derived from
/// (cluster, position). Returns (per-cluster read logs, final store,
/// cycles taken).
fn run_schedules(
    l2: &mut L2,
    schedules: &[Schedule],
    hints: bool,
) -> (Vec<Vec<u64>>, Vec<u64>, u64) {
    let beats: Vec<Vec<(u32, AccessKind)>> = schedules
        .iter()
        .enumerate()
        .map(|(c, s)| beats_of(c, s))
        .collect();
    if hints {
        // Descriptor-derived stride hints, delivered up front the way a
        // doorbell ring precedes the transfer's first beat.
        for (c, sched) in schedules.iter().enumerate() {
            for &(base, words, write, private) in sched {
                let (base, write) = resolve(c, base, write, private);
                if !write {
                    l2.prefetch_hint(PrefetchHint::contiguous(base * 8, words * 8, c as u32));
                }
            }
        }
    }
    let mut store = vec![0u64; 512];
    let mut logs: Vec<Vec<u64>> = vec![Vec::new(); beats.len()];
    let mut pos: Vec<usize> = vec![0; beats.len()];
    let mut cycles = 0u64;
    let mut requests: Vec<L2Request> = Vec::new();
    let mut owner: Vec<usize> = Vec::new();
    while pos.iter().zip(&beats).any(|(&p, b)| p < b.len()) {
        requests.clear();
        owner.clear();
        for (c, b) in beats.iter().enumerate() {
            if let Some(&(addr, kind)) = b.get(pos[c]) {
                requests.push(L2Request {
                    cluster: c as u32,
                    addr,
                    kind,
                });
                owner.push(c);
            }
        }
        l2.begin_cycle();
        let outcomes = l2.arbitrate(&requests);
        for (i, outcome) in outcomes.iter().enumerate() {
            if outcome.granted() {
                let c = owner[i];
                let word = (requests[i].addr / 8) as usize;
                match requests[i].kind {
                    AccessKind::Read => logs[c].push(store[word]),
                    AccessKind::Write => store[word] = ((c as u64) << 32) | pos[c] as u64,
                }
                pos[c] += 1;
            }
        }
        l2.end_cycle();
        cycles += 1;
        assert!(cycles < 1_000_000, "schedules never completed");
    }
    (logs, store, cycles)
}

/// The PR 3 residency L2, verbatim: a `HashSet` of resident lines, a
/// FIFO refill queue and a single refill channel. Kept as the reference
/// the rewritten (cache-core) L2 must match at the
/// infinite/1-channel/no-write-back configuration point.
struct ResidencyL2 {
    cfg: L2Config,
    resident: std::collections::HashSet<u32>,
    refill_queue: std::collections::VecDeque<u32>,
    refill_pending: std::collections::HashSet<u32>,
    refilling: Option<(u32, u32)>,
    rr_next: u32,
    num_clusters: u32,
    accesses: u64,
    conflicts: u64,
    refill_stalls: u64,
    refills: u64,
}

impl ResidencyL2 {
    fn new(cfg: L2Config, num_clusters: u32) -> Self {
        ResidencyL2 {
            cfg,
            resident: Default::default(),
            refill_queue: Default::default(),
            refill_pending: Default::default(),
            refilling: None,
            rr_next: 0,
            num_clusters,
            accesses: 0,
            conflicts: 0,
            refill_stalls: 0,
            refills: 0,
        }
    }

    fn line_of(&self, addr: u32) -> u32 {
        addr / self.cfg.line_bytes
    }

    fn begin_cycle(&mut self) {
        if self.refilling.is_none() {
            if let Some(line) = self.refill_queue.pop_front() {
                self.refilling = Some((line, self.cfg.refill_cycles()));
            }
        }
    }

    fn arbitrate(&mut self, requests: &[L2Request]) -> Vec<bool> {
        let mut grants = vec![false; requests.len()];
        if requests.is_empty() {
            return grants;
        }
        let mut bank_taken = vec![false; self.cfg.banks as usize];
        let n = self.num_clusters.max(1);
        let rr = self.rr_next % n;
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| (requests[i].cluster + n - rr) % n);
        let mut first_winner = None;
        for &i in &order {
            let req = &requests[i];
            if req.kind == AccessKind::Read && !self.resident.contains(&self.line_of(req.addr)) {
                let line = self.line_of(req.addr);
                if self.refill_pending.insert(line) {
                    self.refill_queue.push_back(line);
                }
                self.refill_stalls += 1;
                continue;
            }
            let bank = ((req.addr / self.cfg.bank_width) % self.cfg.banks) as usize;
            if bank_taken[bank] {
                self.conflicts += 1;
            } else {
                bank_taken[bank] = true;
                grants[i] = true;
                self.accesses += 1;
                first_winner.get_or_insert(req.cluster);
                if req.kind == AccessKind::Write {
                    self.resident.insert(self.line_of(req.addr));
                }
            }
        }
        self.rr_next = match first_winner {
            Some(cluster) => (cluster + 1) % n,
            None => (self.rr_next + 1) % n,
        };
        grants
    }

    fn end_cycle(&mut self) {
        if let Some((line, wait)) = self.refilling.as_mut() {
            *wait -= 1;
            if *wait == 0 {
                self.resident.insert(*line);
                self.refill_pending.remove(line);
                self.refills += 1;
                self.refilling = None;
            }
        }
    }
}

/// Keep the outcome enum honest about what "granted" means — the system
/// maps every non-granted outcome to a retried beat.
#[test]
fn l2_outcome_classification() {
    assert!(L2Outcome::Granted.granted());
    for denied in [
        L2Outcome::BankConflict,
        L2Outcome::MissWait,
        L2Outcome::MshrFull,
    ] {
        assert!(!denied.granted());
    }
    assert!(L2Outcome::MissWait.refill_related());
    assert!(L2Outcome::MshrFull.refill_related());
    assert!(!L2Outcome::BankConflict.refill_related());
}
