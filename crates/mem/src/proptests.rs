//! Property tests for the TCDM arbitration invariants.

use proptest::prelude::*;

use crate::{AccessKind, PortId, Request, Tcdm, TcdmConfig};

fn request() -> impl Strategy<Value = Request> {
    (0u8..8, 0u32..512, any::<bool>()).prop_map(|(p, word, w)| Request {
        port: PortId(p),
        addr: word * 8,
        kind: if w {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
    })
}

proptest! {
    #[test]
    fn at_most_one_grant_per_bank(reqs in proptest::collection::vec(request(), 0..12)) {
        let mut tcdm = Tcdm::new(TcdmConfig::new().with_size(8192).with_banks(8));
        let grants = tcdm.arbitrate(&reqs);
        prop_assert_eq!(grants.len(), reqs.len());
        let mut banks_seen = std::collections::HashSet::new();
        for (req, granted) in reqs.iter().zip(&grants) {
            if *granted {
                prop_assert!(banks_seen.insert(tcdm.bank_of(req.addr)),
                    "two grants to bank {}", tcdm.bank_of(req.addr));
            }
        }
    }

    #[test]
    fn work_conserving(reqs in proptest::collection::vec(request(), 1..12)) {
        // Every bank with at least one request must grant exactly one.
        let mut tcdm = Tcdm::new(TcdmConfig::new().with_size(8192).with_banks(8));
        let grants = tcdm.arbitrate(&reqs);
        let mut requested: std::collections::HashSet<u32> = Default::default();
        let mut granted: std::collections::HashSet<u32> = Default::default();
        for (req, g) in reqs.iter().zip(&grants) {
            requested.insert(tcdm.bank_of(req.addr));
            if *g {
                granted.insert(tcdm.bank_of(req.addr));
            }
        }
        prop_assert_eq!(requested, granted);
    }

    #[test]
    fn stats_match_grants(batches in proptest::collection::vec(
        proptest::collection::vec(request(), 0..8), 1..16))
    {
        let mut tcdm = Tcdm::new(TcdmConfig::new().with_size(8192).with_banks(8));
        let mut expect_granted = 0u64;
        let mut expect_conflicts = 0u64;
        for batch in &batches {
            let grants = tcdm.arbitrate(batch);
            expect_granted += grants.iter().filter(|g| **g).count() as u64;
            expect_conflicts += grants.iter().filter(|g| !**g).count() as u64;
        }
        prop_assert_eq!(tcdm.stats().total_accesses(), expect_granted);
        prop_assert_eq!(tcdm.stats().conflicts(), expect_conflicts);
    }

    #[test]
    fn rw_roundtrip(addr_word in 0u32..500, value in any::<u64>()) {
        let mut tcdm = Tcdm::new(TcdmConfig::new().with_size(4096).with_banks(4));
        tcdm.write_u64(addr_word * 8, value).unwrap();
        prop_assert_eq!(tcdm.read_u64(addr_word * 8).unwrap(), value);
    }
}
