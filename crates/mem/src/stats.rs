//! Access statistics for the TCDM, consumed by the energy model.

use std::collections::BTreeMap;

use sc_trace::MetricSource;

use crate::tcdm::{AccessKind, PortId};

/// Per-port and per-bank access counters.
///
/// Every *granted* request is one SRAM access (read or write); conflicts
/// count retries that cost a cycle but no SRAM energy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TcdmStats {
    reads_by_port: BTreeMap<u8, u64>,
    writes_by_port: BTreeMap<u8, u64>,
    conflicts_by_port: BTreeMap<u8, u64>,
    accesses_by_bank: Vec<u64>,
    conflicts_by_bank: Vec<u64>,
}

impl TcdmStats {
    /// Creates zeroed statistics for a memory with `banks` banks.
    #[must_use]
    pub fn new(banks: u32) -> Self {
        TcdmStats {
            accesses_by_bank: vec![0; banks as usize],
            conflicts_by_bank: vec![0; banks as usize],
            ..Default::default()
        }
    }

    pub(crate) fn record_grant(&mut self, port: PortId, bank: u32, kind: AccessKind) {
        match kind {
            AccessKind::Read => *self.reads_by_port.entry(port.0).or_default() += 1,
            AccessKind::Write => *self.writes_by_port.entry(port.0).or_default() += 1,
        }
        if let Some(b) = self.accesses_by_bank.get_mut(bank as usize) {
            *b += 1;
        }
    }

    pub(crate) fn record_conflict(&mut self, port: PortId, bank: u32) {
        *self.conflicts_by_port.entry(port.0).or_default() += 1;
        if let Some(b) = self.conflicts_by_bank.get_mut(bank as usize) {
            *b += 1;
        }
    }

    /// Total granted reads across ports.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads_by_port.values().sum()
    }

    /// Total granted writes across ports.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes_by_port.values().sum()
    }

    /// Total granted accesses (reads + writes).
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Total lost arbitrations across ports.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts_by_port.values().sum()
    }

    /// Granted reads for one port.
    #[must_use]
    pub fn reads_of(&self, port: PortId) -> u64 {
        self.reads_by_port.get(&port.0).copied().unwrap_or(0)
    }

    /// Granted writes for one port.
    #[must_use]
    pub fn writes_of(&self, port: PortId) -> u64 {
        self.writes_by_port.get(&port.0).copied().unwrap_or(0)
    }

    /// Lost arbitrations for one port.
    #[must_use]
    pub fn conflicts_of(&self, port: PortId) -> u64 {
        self.conflicts_by_port.get(&port.0).copied().unwrap_or(0)
    }

    /// Granted accesses (reads + writes) for one port.
    #[must_use]
    pub fn accesses_of(&self, port: PortId) -> u64 {
        self.reads_of(port) + self.writes_of(port)
    }

    /// Accesses per bank, index-aligned with bank numbers.
    #[must_use]
    pub fn accesses_by_bank(&self) -> &[u64] {
        &self.accesses_by_bank
    }

    /// Lost arbitrations per bank, index-aligned with bank numbers.
    #[must_use]
    pub fn conflicts_by_bank(&self) -> &[u64] {
        &self.conflicts_by_bank
    }

    /// Totals over a contiguous port range — the per-core view when
    /// ports are namespaced `core × ports_per_core` (see
    /// [`crate::Tcdm::set_port_group_size`]). Returns
    /// `(accesses, conflicts)`.
    #[must_use]
    pub fn totals_of_port_range(&self, ports: core::ops::Range<u8>) -> (u64, u64) {
        let mut accesses = 0;
        let mut conflicts = 0;
        for p in ports {
            accesses += self.accesses_of(PortId(p));
            conflicts += self.conflicts_of(PortId(p));
        }
        (accesses, conflicts)
    }
}

impl MetricSource for TcdmStats {
    fn source_name(&self) -> &'static str {
        "tcdm"
    }

    fn visit_metrics(&self, visit: &mut dyn FnMut(&'static str, u64)) {
        visit("reads", self.reads());
        visit("writes", self.writes());
        visit("conflicts", self.conflicts());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TcdmStats::new(4);
        s.record_grant(PortId(0), 1, AccessKind::Read);
        s.record_grant(PortId(0), 1, AccessKind::Write);
        s.record_grant(PortId(2), 3, AccessKind::Read);
        s.record_conflict(PortId(1), 1);
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.total_accesses(), 3);
        assert_eq!(s.conflicts(), 1);
        assert_eq!(s.reads_of(PortId(0)), 1);
        assert_eq!(s.writes_of(PortId(0)), 1);
        assert_eq!(s.conflicts_of(PortId(1)), 1);
        assert_eq!(s.accesses_of(PortId(0)), 2);
        assert_eq!(s.accesses_by_bank(), &[0, 2, 0, 1]);
        assert_eq!(s.conflicts_by_bank(), &[0, 1, 0, 0]);
    }

    #[test]
    fn port_range_totals_group_by_core() {
        // Two cores of two ports each (group size 2).
        let mut s = TcdmStats::new(4);
        s.record_grant(PortId(0), 0, AccessKind::Read);
        s.record_grant(PortId(1), 1, AccessKind::Read);
        s.record_grant(PortId(2), 2, AccessKind::Write);
        s.record_conflict(PortId(3), 0);
        assert_eq!(s.totals_of_port_range(0..2), (2, 0));
        assert_eq!(s.totals_of_port_range(2..4), (1, 1));
    }
}
