//! The shared L2 between the clusters' DMA engines and the background
//! memory.
//!
//! A scaled-out system places an interconnect level above the per-cluster
//! L1 scratchpads: every cluster's DMA engine moves its beats against one
//! **banked L2**, and the L2 itself refills from the background memory
//! ([`crate::Dram`]) over a single channel. Sustained chaining throughput
//! is ultimately bounded here — once several clusters stream tiles
//! concurrently, their beats contend for L2 banks and the refill channel
//! serialises cold misses.
//!
//! ## What is modelled
//!
//! The L2 is a **timing filter, not a second data store**: the system
//! keeps one functional image in the background memory, and the L2
//! decides *when* a beat may touch it. Per cycle it:
//!
//! * arbitrates at most one beat per bank across the clusters' engines,
//!   with round-robin rotation over clusters so no engine starves,
//! * tracks **line residency** (when [`L2Config::refill`] is on): a
//!   *read* beat to a line not yet resident stalls and enqueues a
//!   refill; a single refill channel fetches one line at a time from
//!   the Dram with its own latency/bandwidth. Writes are no-allocate —
//!   they pass straight through (and make their line servable), so
//!   write-back streams to fresh output lines never occupy the refill
//!   channel.
//!
//! Capacity misses and write-back eviction are not modelled — the L2 is
//! sized to hold a sweep's working set, so the interesting effects are
//! cold-miss serialisation and inter-cluster bank pressure. The
//! *per-beat* timing the engines pay (startup latency, beats-per-cycle)
//! comes from [`L2Config::engine_timing`], mirroring how the
//! single-cluster path derives it from [`crate::DramConfig`].
//!
//! ## Pass-through mode
//!
//! [`L2Config::passthrough`] copies a `DramConfig`'s timing and disables
//! residency tracking: a single cluster behind a pass-through L2 is
//! cycle-identical to the same cluster moving directly against that
//! `Dram` (pinned by `sc-system`'s equivalence tests).

use std::collections::{HashSet, VecDeque};

use crate::dram::DramConfig;
use crate::tcdm::AccessKind;

/// Geometry and timing of the shared L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Number of L2 banks (power of two). Beats from different clusters
    /// to different banks proceed in parallel; same-bank beats
    /// serialise.
    pub banks: u32,
    /// Bank word width in bytes (interleaving granule; 8 = 64-bit).
    pub bank_width: u32,
    /// Per-transfer startup latency the DMA engines pay (the L2-hop
    /// analogue of [`DramConfig::latency`]).
    pub latency: u32,
    /// Cycles each 64-bit beat occupies an L2 bank (≥ 1).
    pub cycles_per_beat: u32,
    /// Whether line residency is tracked (cold misses refill from the
    /// background memory). Off = pass-through: every line is warm.
    pub refill: bool,
    /// Refill line size in bytes (power of two, multiple of 8).
    pub line_bytes: u32,
    /// Cycles before the first beat of a line refill arrives from Dram.
    pub refill_latency: u32,
    /// Cycles per 64-bit beat on the refill channel (≥ 1).
    pub refill_cycles_per_beat: u32,
}

impl L2Config {
    /// Defaults sized like a multi-cluster interconnect hop: closer and
    /// wider than the Dram (8 cycles startup, 8 banks), refilling 256 B
    /// lines from a Dram-like channel.
    #[must_use]
    pub fn new() -> Self {
        L2Config {
            banks: 8,
            bank_width: 8,
            latency: 8,
            cycles_per_beat: 1,
            refill: true,
            line_bytes: 256,
            refill_latency: 64,
            refill_cycles_per_beat: 1,
        }
    }

    /// A pass-through L2 that imposes exactly `timing`'s latency and
    /// bandwidth and never refills: one cluster behind it behaves
    /// cycle-identically to the same cluster moving directly against a
    /// `Dram` with that config.
    #[must_use]
    pub fn passthrough(timing: DramConfig) -> Self {
        L2Config {
            latency: timing.latency,
            cycles_per_beat: timing.cycles_per_beat,
            refill: false,
            ..Self::new()
        }
    }

    /// Sets the bank count.
    ///
    /// # Panics
    ///
    /// Panics unless `banks` is a power of two.
    #[must_use]
    pub fn with_banks(mut self, banks: u32) -> Self {
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        self.banks = banks;
        self
    }

    /// Sets the per-transfer startup latency.
    #[must_use]
    pub fn with_latency(mut self, latency: u32) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the per-beat bank occupancy (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_beat` is zero.
    #[must_use]
    pub fn with_cycles_per_beat(mut self, cycles_per_beat: u32) -> Self {
        assert!(cycles_per_beat >= 1, "bandwidth is at most one beat/cycle");
        self.cycles_per_beat = cycles_per_beat;
        self
    }

    /// Enables/disables residency tracking (cold-miss refills).
    #[must_use]
    pub fn with_refill(mut self, refill: bool) -> Self {
        self.refill = refill;
        self
    }

    /// Sets the refill line size.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two ≥ 8.
    #[must_use]
    pub fn with_line_bytes(mut self, line_bytes: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 8,
            "line size must be a power of two of at least 8 bytes"
        );
        self.line_bytes = line_bytes;
        self
    }

    /// The timing the DMA engines pay per transfer/beat at this L2 —
    /// the drop-in replacement for a private Dram's `DramConfig`.
    #[must_use]
    pub fn engine_timing(&self) -> DramConfig {
        DramConfig::new()
            .with_latency(self.latency)
            .with_cycles_per_beat(self.cycles_per_beat)
    }

    /// 64-bit beats per refill line.
    #[must_use]
    pub fn line_beats(&self) -> u32 {
        self.line_bytes / 8
    }

    /// Cycles one line refill occupies the channel.
    #[must_use]
    pub fn refill_cycles(&self) -> u32 {
        self.refill_latency + self.line_beats() * self.refill_cycles_per_beat
    }
}

impl Default for L2Config {
    fn default() -> Self {
        Self::new()
    }
}

/// One cluster's L2-side beat for a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Request {
    /// The requesting cluster's index (the arbitration port).
    pub cluster: u32,
    /// Byte address of the beat on the background-memory side.
    pub addr: u32,
    /// Read (Dram→TCDM beat) or write (TCDM→Dram beat).
    pub kind: AccessKind,
}

/// Cumulative L2 activity, broken down per requesting cluster.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Beats granted an L2 bank.
    pub accesses: u64,
    /// Beats denied by same-cycle bank contention from another cluster.
    pub conflicts: u64,
    /// Beats stalled because their line was still refilling (or queued
    /// to refill) from the background memory.
    pub refill_stalls: u64,
    /// Lines refilled from the background memory.
    pub refills: u64,
    /// Granted beats per cluster.
    pub accesses_by_cluster: Vec<u64>,
    /// Bank-conflict denials per cluster.
    pub conflicts_by_cluster: Vec<u64>,
}

impl L2Stats {
    fn new(num_clusters: u32) -> Self {
        L2Stats {
            accesses_by_cluster: vec![0; num_clusters as usize],
            conflicts_by_cluster: vec![0; num_clusters as usize],
            ..Self::default()
        }
    }

    /// 64-bit beats moved over the refill channel (one Dram access each
    /// — the unit `sc-energy` charges).
    #[must_use]
    pub fn refill_beats(&self, cfg: &L2Config) -> u64 {
        self.refills * u64::from(cfg.line_beats())
    }
}

/// The cycle-stepped shared L2: bank arbiter + residency/refill state.
///
/// Step protocol per system cycle: [`L2::begin_cycle`] →
/// [`L2::arbitrate`] (once, with every cluster's beat) →
/// [`L2::end_cycle`].
#[derive(Debug)]
pub struct L2 {
    cfg: L2Config,
    stats: L2Stats,
    /// Lines already fetched from the background memory.
    resident: HashSet<u32>,
    /// Lines queued for refill but not yet started, FIFO.
    refill_queue: VecDeque<u32>,
    /// Lines in the queue or in flight (dedup for the queue).
    refill_pending: HashSet<u32>,
    /// The in-flight refill: (line, cycles remaining).
    refilling: Option<(u32, u32)>,
    /// Round-robin rotation over clusters.
    rr_next: u32,
    /// Scratch: banks taken this cycle.
    bank_taken: Vec<bool>,
    /// Scratch: request indexes in priority order (reused across cycles
    /// to keep the lock-step hot loop allocation-light).
    order: Vec<usize>,
}

impl L2 {
    /// Creates an empty (fully cold) L2 arbitrating `num_clusters`
    /// engine ports.
    #[must_use]
    pub fn new(cfg: L2Config, num_clusters: u32) -> Self {
        L2 {
            stats: L2Stats::new(num_clusters),
            resident: HashSet::new(),
            refill_queue: VecDeque::new(),
            refill_pending: HashSet::new(),
            refilling: None,
            rr_next: 0,
            bank_taken: vec![false; cfg.banks as usize],
            order: Vec::new(),
            cfg,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &L2Config {
        &self.cfg
    }

    /// Activity counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &L2Stats {
        &self.stats
    }

    /// The bank serving a byte address.
    #[must_use]
    pub fn bank_of(&self, addr: u32) -> u32 {
        (addr / self.cfg.bank_width) % self.cfg.banks
    }

    fn line_of(&self, addr: u32) -> u32 {
        addr / self.cfg.line_bytes
    }

    /// Whether the line holding `addr` is resident (always true with
    /// refill tracking off).
    #[must_use]
    pub fn is_resident(&self, addr: u32) -> bool {
        !self.cfg.refill || self.resident.contains(&self.line_of(addr))
    }

    /// Whether a beat must wait for its line: only **reads** of cold
    /// lines do. Writes are no-allocate — the beat passes through to the
    /// functional store and marks the line resident (a subsequent read
    /// of data this system just produced is a hit, not a refill), so
    /// write-back traffic to never-read output lines neither stalls
    /// behind the refill channel nor charges Dram refill energy.
    fn needs_refill(&self, req: &L2Request) -> bool {
        req.kind == AccessKind::Read && !self.is_resident(req.addr)
    }

    /// Cycle start: pick up the next queued line refill if the channel
    /// is idle.
    pub fn begin_cycle(&mut self) {
        if self.refilling.is_none() {
            if let Some(line) = self.refill_queue.pop_front() {
                self.refilling = Some((line, self.cfg.refill_cycles()));
            }
        }
    }

    /// Arbitrates one cycle of beats — at most one request per cluster,
    /// at most one grant per bank, rotation over clusters. Reads of
    /// non-resident lines are denied and queued for refill; writes pass
    /// through (no-allocate). Returns grant flags index-aligned with
    /// `requests`.
    pub fn arbitrate(&mut self, requests: &[L2Request]) -> Vec<bool> {
        let mut grants = vec![false; requests.len()];
        if requests.is_empty() {
            return grants;
        }
        self.bank_taken.fill(false);
        // True round-robin over the *configured* cluster ids: priority
        // starts at the pointer and wraps, and the pointer then advances
        // past the highest-priority winner — so idle clusters never skew
        // the split between the ones actually contending (a free-running
        // counter would hand an absent id's turn to the next id above
        // it, starving lower-numbered clusters of their share).
        let n = self.stats.accesses_by_cluster.len().max(1) as u32;
        debug_assert!(
            requests.iter().all(|r| r.cluster < n),
            "request from cluster outside the configured id range"
        );
        let rr = self.rr_next % n;
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend(0..requests.len());
        order.sort_by_key(|&i| (requests[i].cluster + n - rr) % n);
        let mut first_winner = None;
        for &i in &order {
            let req = &requests[i];
            let c = req.cluster as usize;
            if self.needs_refill(req) {
                let line = self.line_of(req.addr);
                if self.refill_pending.insert(line) {
                    self.refill_queue.push_back(line);
                }
                self.stats.refill_stalls += 1;
                continue;
            }
            let bank = self.bank_of(req.addr) as usize;
            if self.bank_taken[bank] {
                self.stats.conflicts += 1;
                self.stats.conflicts_by_cluster[c] += 1;
            } else {
                self.bank_taken[bank] = true;
                grants[i] = true;
                self.stats.accesses += 1;
                self.stats.accesses_by_cluster[c] += 1;
                first_winner.get_or_insert(req.cluster);
                if self.cfg.refill && req.kind == AccessKind::Write {
                    // No-allocate in the timing sense, but the written
                    // data is now the L2's to serve: later reads hit.
                    self.resident.insert(self.line_of(req.addr));
                }
            }
        }
        self.order = order;
        self.rr_next = match first_winner {
            Some(cluster) => (cluster + 1) % n,
            None => (self.rr_next + 1) % n,
        };
        grants
    }

    /// Cycle end: the refill channel advances; a finished line becomes
    /// resident (its stalled beats may be granted from next cycle).
    pub fn end_cycle(&mut self) {
        if let Some((line, wait)) = self.refilling.as_mut() {
            *wait -= 1;
            if *wait == 0 {
                self.resident.insert(*line);
                self.refill_pending.remove(line);
                self.stats.refills += 1;
                self.refilling = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cluster: u32, addr: u32) -> L2Request {
        L2Request {
            cluster,
            addr,
            kind: AccessKind::Read,
        }
    }

    fn warm(l2: &mut L2, addrs: &[u32]) {
        // Drive the refill channel until every named line is resident.
        for &a in addrs {
            while !l2.is_resident(a) {
                l2.begin_cycle();
                let _ = l2.arbitrate(&[req(0, a)]);
                l2.end_cycle();
            }
        }
    }

    #[test]
    fn passthrough_always_grants_single_cluster() {
        let mut l2 = L2::new(L2Config::passthrough(DramConfig::new()), 1);
        for i in 0..100u32 {
            l2.begin_cycle();
            let g = l2.arbitrate(&[req(0, i * 8)]);
            assert!(g[0], "pass-through must never deny a lone cluster");
            l2.end_cycle();
        }
        assert_eq!(l2.stats().accesses, 100);
        assert_eq!(l2.stats().refills, 0);
    }

    #[test]
    fn cold_lines_stall_until_refilled() {
        let cfg = L2Config::new()
            .with_line_bytes(64)
            .with_cycles_per_beat(1)
            .with_latency(0);
        let refill_cycles = cfg.refill_cycles();
        let mut l2 = L2::new(cfg, 1);
        let mut stalled = 0;
        loop {
            l2.begin_cycle();
            let g = l2.arbitrate(&[req(0, 0x100)]);
            l2.end_cycle();
            if g[0] {
                break;
            }
            stalled += 1;
            assert!(stalled < 10_000, "refill never completed");
        }
        // The beat waits out exactly one line refill (first denial
        // enqueues it; the channel starts next begin_cycle).
        assert_eq!(stalled, refill_cycles as u64 + 1);
        assert_eq!(l2.stats().refills, 1);
        assert_eq!(l2.stats().refill_stalls, stalled);
        // The neighbouring beat on the same line is now warm.
        l2.begin_cycle();
        assert!(l2.arbitrate(&[req(0, 0x108)])[0]);
        l2.end_cycle();
    }

    #[test]
    fn same_bank_beats_from_two_clusters_share_fairly() {
        let mut l2 = L2::new(L2Config::new().with_banks(4), 2);
        warm(&mut l2, &[0x0, 0x20]);
        // Both clusters hit bank 0 every cycle (0x0 and 0x20 with 4
        // banks × 8 B both map to bank 0).
        let mut wins = [0u32; 2];
        for _ in 0..100 {
            l2.begin_cycle();
            let g = l2.arbitrate(&[req(0, 0x0), req(1, 0x20)]);
            assert_eq!(g.iter().filter(|g| **g).count(), 1);
            for (w, granted) in wins.iter_mut().zip(&g) {
                *w += u32::from(*granted);
            }
            l2.end_cycle();
        }
        assert_eq!(wins, [50, 50], "round-robin must split a contended bank");
        assert_eq!(l2.stats().conflicts, 100);
        assert_eq!(l2.stats().conflicts_by_cluster, vec![50, 50]);
    }

    #[test]
    fn writes_bypass_the_refill_channel_and_warm_their_line() {
        // Write-no-allocate: a cold-line write proceeds immediately
        // (never stalls on the refill channel), and a later read of the
        // just-written line hits.
        let mut l2 = L2::new(L2Config::new().with_line_bytes(64), 1);
        l2.begin_cycle();
        let g = l2.arbitrate(&[L2Request {
            cluster: 0,
            addr: 0x200,
            kind: AccessKind::Write,
        }]);
        assert!(g[0], "cold write must not wait for a refill");
        l2.end_cycle();
        assert_eq!(l2.stats().refills, 0);
        assert_eq!(l2.stats().refill_stalls, 0);
        l2.begin_cycle();
        assert!(
            l2.arbitrate(&[req(0, 0x208)])[0],
            "reading back freshly written data is a hit"
        );
        l2.end_cycle();
        assert_eq!(l2.stats().refills, 0);
    }

    #[test]
    fn idle_clusters_do_not_skew_the_round_robin() {
        // Regression: with a free-running rotation counter, cluster 1
        // sitting idle handed its priority turns to cluster 2, splitting
        // a contended bank 1:2 between clusters 0 and 2. The pointer
        // must advance past the actual winner, keeping the split even
        // among the clusters genuinely contending.
        let mut l2 = L2::new(L2Config::new().with_banks(4).with_refill(false), 3);
        let mut wins = [0u32; 2];
        for _ in 0..100 {
            l2.begin_cycle();
            let g = l2.arbitrate(&[req(0, 0x0), req(2, 0x20)]);
            assert_eq!(g.iter().filter(|g| **g).count(), 1);
            wins[0] += u32::from(g[0]);
            wins[1] += u32::from(g[1]);
            l2.end_cycle();
        }
        assert_eq!(wins, [50, 50], "idle cluster 1 must not skew the split");
    }

    #[test]
    fn disjoint_banks_proceed_in_parallel() {
        let mut l2 = L2::new(L2Config::new().with_banks(4), 2);
        warm(&mut l2, &[0x0, 0x8]);
        l2.begin_cycle();
        let g = l2.arbitrate(&[req(0, 0x0), req(1, 0x8)]);
        assert_eq!(g, vec![true, true]);
        l2.end_cycle();
        assert_eq!(l2.stats().conflicts, 0);
    }

    #[test]
    fn refill_channel_serialises_lines() {
        let cfg = L2Config::new().with_line_bytes(64);
        let per_line = cfg.refill_cycles();
        let mut l2 = L2::new(cfg, 2);
        // Two clusters miss two different lines in the same cycle: the
        // single channel fetches them one after the other.
        let mut cycles = 0u32;
        let (mut got0, mut got1) = (false, false);
        while !(got0 && got1) {
            l2.begin_cycle();
            let g = l2.arbitrate(&[req(0, 0x0), req(1, 0x1000)]);
            got0 |= g[0];
            got1 |= g[1];
            l2.end_cycle();
            cycles += 1;
            assert!(cycles < 10_000, "refills never completed");
        }
        assert!(cycles > 2 * per_line, "two lines cannot overlap refills");
        assert_eq!(l2.stats().refills, 2);
        assert_eq!(
            l2.stats().refill_beats(l2.config()),
            2 * u64::from(l2.config().line_beats())
        );
    }
}
