//! The shared L2 between the clusters' DMA engines and the background
//! memory.
//!
//! A scaled-out system places an interconnect level above the per-cluster
//! L1 scratchpads: every cluster's DMA engine moves its beats against one
//! **banked L2**, and the L2 itself refills from the background memory
//! ([`crate::Dram`]). Sustained chaining throughput is ultimately bounded
//! here — once several clusters stream tiles concurrently, their beats
//! contend for L2 banks, cold misses queue behind the refill channels,
//! and (with a finite capacity) evicted dirty lines generate write-back
//! traffic of their own.
//!
//! ## What is modelled
//!
//! The L2 is a **timing filter, not a second data store**: the system
//! keeps one functional image in the background memory, and the L2
//! decides *when* a beat may touch it. Per cycle it:
//!
//! * arbitrates at most one beat per bank across the clusters' engines,
//!   with round-robin rotation over clusters so no engine starves,
//! * consults its cache core ([`sc_cache::Cache`], when
//!   [`L2Config::refill`] is on): a *read* beat to a line not present
//!   stalls — allocating an MSHR and queueing a refill for a new line,
//!   merging into the pending refill for an already-missing one, or
//!   bouncing off a full MSHR file — while `refill_channels` parallel
//!   channels fetch lines from the Dram. Writes allocate without a fetch
//!   (DMA write-back streams write whole lines) and, with
//!   [`L2Config::write_back`] on, mark their line dirty; a dirty line
//!   evicted by LRU replacement enqueues a **write-back job** that
//!   contends for the same channels the refills use.
//!
//! With [`L2Config::prefetch`] on, the L2 additionally runs the cache
//! core's **descriptor-driven prefetch engine**: the system hands it
//! every DMA descriptor's Dram-side read footprint at `DMA_START`
//! ([`L2::prefetch_hint`]), and the engine pulls the footprint's lines
//! through the refill channels ahead of the demand beats — at strictly
//! lower priority than demand misses and write-backs, throttled by
//! degree/distance/queue knobs. Prefetching changes *when* lines arrive,
//! never which beats move: results are bit-identical with it on or off
//! (pinned by this crate's differential proptests).
//!
//! [`L2Config::capacity_bytes`]` == 0` keeps the capacity infinite: no
//! line is ever evicted, exactly the cold-miss-only residency model of
//! earlier revisions (an infinite-capacity / 1-channel / no-write-back
//! L2 is cycle-identical to it, pinned by tests and proptests). The
//! *per-beat* timing the engines pay (startup latency, beats-per-cycle)
//! comes from [`L2Config::engine_timing`], mirroring how the
//! single-cluster path derives it from [`crate::DramConfig`].
//!
//! ## Pass-through mode
//!
//! [`L2Config::passthrough`] copies a `DramConfig`'s timing and disables
//! residency tracking: a single cluster behind a pass-through L2 is
//! cycle-identical to the same cluster moving directly against that
//! `Dram` (pinned by `sc-system`'s equivalence tests).

use sc_cache::{Cache, CacheConfig, CacheStats, CacheWake, PrefetchHint, PrefetchMode, Probe};
use sc_trace::{MetricSource, Tracer, Track};

use crate::dram::DramConfig;
use crate::tcdm::AccessKind;

/// Geometry and timing of the shared L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Number of L2 banks (power of two). Beats from different clusters
    /// to different banks proceed in parallel; same-bank beats
    /// serialise.
    pub banks: u32,
    /// Bank word width in bytes (interleaving granule; 8 = 64-bit).
    pub bank_width: u32,
    /// Per-transfer startup latency the DMA engines pay (the L2-hop
    /// analogue of [`DramConfig::latency`]).
    pub latency: u32,
    /// Cycles each 64-bit beat occupies an L2 bank (≥ 1).
    pub cycles_per_beat: u32,
    /// Whether the cache core is active (capacity, misses, refills from
    /// the background memory). Off = pass-through: every line is warm.
    pub refill: bool,
    /// Cache line size in bytes (power of two, multiple of 8).
    pub line_bytes: u32,
    /// Data capacity in bytes; **0 = infinite** (residency-only, no
    /// eviction — the historical behaviour). When finite, must be a
    /// multiple of `line_bytes × ways`.
    pub capacity_bytes: u32,
    /// Associativity of a finite L2 (lines per set, ≥ 1).
    pub ways: u32,
    /// MSHR file size: line refills that may be outstanding at once;
    /// **0 = unbounded**.
    pub mshrs: u32,
    /// Parallel refill/write-back channels to the Dram (≥ 1).
    pub refill_channels: u32,
    /// Whether evicted dirty lines generate write-back traffic on the
    /// channels (finite capacities only — an infinite L2 never evicts).
    pub write_back: bool,
    /// Cycles before the first beat of a line refill arrives from Dram.
    pub refill_latency: u32,
    /// Cycles per 64-bit beat on a refill/write-back channel (≥ 1).
    pub refill_cycles_per_beat: u32,
    /// Whether the descriptor-driven prefetch engine is active. **Off by
    /// default**: a prefetch-disabled L2 is cycle-for-cycle identical to
    /// the pre-prefetch L2 (pinned by `sc-kernels`' identity test).
    pub prefetch: bool,
    /// Lines a prefetch stream may walk per cycle (≥ 1 when
    /// prefetching).
    pub prefetch_degree: u32,
    /// Max lines a prefetch stream may run ahead of the demand beats
    /// consuming it (≥ 1 when prefetching).
    pub prefetch_distance: u32,
    /// Capacity of the bounded prefetch-request queue (≥ 1 when
    /// prefetching).
    pub prefetch_queue: u32,
    /// How hints expand into line sequences (strided follows the DMA
    /// descriptor; next-line ignores the stride).
    pub prefetch_mode: PrefetchMode,
}

impl L2Config {
    /// Defaults sized like a multi-cluster interconnect hop: closer and
    /// wider than the Dram (8 cycles startup, 8 banks), refilling 256 B
    /// lines from a Dram-like channel — with **infinite** capacity, one
    /// channel and no write-back, i.e. the residency-only L2 earlier
    /// revisions modelled.
    #[must_use]
    pub fn new() -> Self {
        L2Config {
            banks: 8,
            bank_width: 8,
            latency: 8,
            cycles_per_beat: 1,
            refill: true,
            line_bytes: 256,
            capacity_bytes: 0,
            ways: 8,
            mshrs: 0,
            refill_channels: 1,
            write_back: false,
            refill_latency: 64,
            refill_cycles_per_beat: 1,
            prefetch: false,
            prefetch_degree: 2,
            prefetch_distance: 16,
            prefetch_queue: 32,
            prefetch_mode: PrefetchMode::Strided,
        }
    }

    /// A pass-through L2 that imposes exactly `timing`'s latency and
    /// bandwidth and never refills: one cluster behind it behaves
    /// cycle-identically to the same cluster moving directly against a
    /// `Dram` with that config.
    #[must_use]
    pub fn passthrough(timing: DramConfig) -> Self {
        L2Config {
            latency: timing.latency,
            cycles_per_beat: timing.cycles_per_beat,
            refill: false,
            ..Self::new()
        }
    }

    /// Sets the bank count.
    ///
    /// # Panics
    ///
    /// Panics unless `banks` is a power of two.
    #[must_use]
    pub fn with_banks(mut self, banks: u32) -> Self {
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        self.banks = banks;
        self
    }

    /// Sets the bank word width (the interleaving granule).
    ///
    /// # Panics
    ///
    /// Panics unless `bank_width` is a power of two ≥ 8.
    #[must_use]
    pub fn with_bank_width(mut self, bank_width: u32) -> Self {
        assert!(
            bank_width.is_power_of_two() && bank_width >= 8,
            "bank width must be a power of two of at least 8 bytes"
        );
        self.bank_width = bank_width;
        self
    }

    /// Sets the per-transfer startup latency.
    #[must_use]
    pub fn with_latency(mut self, latency: u32) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the per-beat bank occupancy (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_beat` is zero.
    #[must_use]
    pub fn with_cycles_per_beat(mut self, cycles_per_beat: u32) -> Self {
        assert!(cycles_per_beat >= 1, "bandwidth is at most one beat/cycle");
        self.cycles_per_beat = cycles_per_beat;
        self
    }

    /// Enables/disables the cache core (miss/refill modelling).
    #[must_use]
    pub fn with_refill(mut self, refill: bool) -> Self {
        self.refill = refill;
        self
    }

    /// Sets the cache line size.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two ≥ 8.
    #[must_use]
    pub fn with_line_bytes(mut self, line_bytes: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 8,
            "line size must be a power of two of at least 8 bytes"
        );
        self.line_bytes = line_bytes;
        self
    }

    /// Sets the capacity (0 = infinite). A finite capacity must be a
    /// multiple of `line_bytes × ways`, checked when the L2 is
    /// instantiated (once the whole geometry is known).
    #[must_use]
    pub fn with_capacity_bytes(mut self, capacity_bytes: u32) -> Self {
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Sets the associativity of a finite L2.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    #[must_use]
    pub fn with_ways(mut self, ways: u32) -> Self {
        assert!(ways >= 1, "a set holds at least one line");
        self.ways = ways;
        self
    }

    /// Sets the MSHR file size (0 = unbounded).
    #[must_use]
    pub fn with_mshrs(mut self, mshrs: u32) -> Self {
        self.mshrs = mshrs;
        self
    }

    /// Sets the number of parallel refill/write-back channels.
    ///
    /// # Panics
    ///
    /// Panics if `refill_channels` is zero.
    #[must_use]
    pub fn with_refill_channels(mut self, refill_channels: u32) -> Self {
        assert!(refill_channels >= 1, "the L2 has at least one channel");
        self.refill_channels = refill_channels;
        self
    }

    /// Enables/disables write-back traffic for evicted dirty lines.
    #[must_use]
    pub fn with_write_back(mut self, write_back: bool) -> Self {
        self.write_back = write_back;
        self
    }

    /// Sets the refill-channel startup latency.
    #[must_use]
    pub fn with_refill_latency(mut self, refill_latency: u32) -> Self {
        self.refill_latency = refill_latency;
        self
    }

    /// Sets the per-beat refill-channel occupancy (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `refill_cycles_per_beat` is zero.
    #[must_use]
    pub fn with_refill_cycles_per_beat(mut self, refill_cycles_per_beat: u32) -> Self {
        assert!(
            refill_cycles_per_beat >= 1,
            "refill bandwidth is at most one beat/cycle"
        );
        self.refill_cycles_per_beat = refill_cycles_per_beat;
        self
    }

    /// Enables/disables the descriptor-driven prefetch engine.
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Sets the per-stream prefetch issue rate in lines per cycle (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `prefetch_degree` is zero.
    #[must_use]
    pub fn with_prefetch_degree(mut self, prefetch_degree: u32) -> Self {
        assert!(prefetch_degree >= 1, "a stream walks at least one line");
        self.prefetch_degree = prefetch_degree;
        self
    }

    /// Sets how far ahead of demand a prefetch stream may run (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `prefetch_distance` is zero.
    #[must_use]
    pub fn with_prefetch_distance(mut self, prefetch_distance: u32) -> Self {
        assert!(
            prefetch_distance >= 1,
            "a stream runs at least one line ahead"
        );
        self.prefetch_distance = prefetch_distance;
        self
    }

    /// Sets the bounded prefetch-request queue capacity (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `prefetch_queue` is zero.
    #[must_use]
    pub fn with_prefetch_queue(mut self, prefetch_queue: u32) -> Self {
        assert!(
            prefetch_queue >= 1,
            "the prefetch-request queue holds at least one entry"
        );
        self.prefetch_queue = prefetch_queue;
        self
    }

    /// Sets the hint-expansion mode.
    #[must_use]
    pub fn with_prefetch_mode(mut self, prefetch_mode: PrefetchMode) -> Self {
        self.prefetch_mode = prefetch_mode;
        self
    }

    /// The timing the DMA engines pay per transfer/beat at this L2 —
    /// the drop-in replacement for a private Dram's `DramConfig`.
    #[must_use]
    pub fn engine_timing(&self) -> DramConfig {
        DramConfig::new()
            .with_latency(self.latency)
            .with_cycles_per_beat(self.cycles_per_beat)
    }

    /// The cache-core configuration this L2 instantiates.
    #[must_use]
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig::new()
            .with_line_bytes(self.line_bytes)
            .with_capacity_bytes(self.capacity_bytes)
            .with_ways(self.ways)
            .with_mshrs(self.mshrs)
            .with_channels(self.refill_channels)
            .with_refill_latency(self.refill_latency)
            .with_refill_cycles_per_beat(self.refill_cycles_per_beat)
            .with_write_back(self.write_back)
            .with_prefetch(self.prefetch)
            .with_prefetch_degree(self.prefetch_degree)
            .with_prefetch_distance(self.prefetch_distance)
            .with_prefetch_queue(self.prefetch_queue)
            .with_prefetch_mode(self.prefetch_mode)
    }

    /// 64-bit beats per refill line.
    #[must_use]
    pub fn line_beats(&self) -> u32 {
        self.line_bytes / 8
    }

    /// Cycles one line refill (or write-back) occupies its channel.
    #[must_use]
    pub fn refill_cycles(&self) -> u32 {
        self.refill_latency + self.line_beats() * self.refill_cycles_per_beat
    }
}

impl Default for L2Config {
    fn default() -> Self {
        Self::new()
    }
}

/// One cluster's L2-side beat for a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Request {
    /// The requesting cluster's index (the arbitration port).
    pub cluster: u32,
    /// Byte address of the beat on the background-memory side.
    pub addr: u32,
    /// Read (Dram→TCDM beat) or write (TCDM→Dram beat).
    pub kind: AccessKind,
}

/// Per-request outcome of one [`L2::arbitrate`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Outcome {
    /// The beat won its bank (and, for reads, its line was present): it
    /// proceeds this cycle.
    Granted,
    /// The beat lost same-cycle bank arbitration to another cluster; it
    /// retries next cycle.
    BankConflict,
    /// A read beat's line is missing; its refill is in flight or queued.
    MissWait,
    /// A read beat's line is missing and the MSHR file is full: the miss
    /// could not even be accepted this cycle.
    MshrFull,
}

impl L2Outcome {
    /// Whether the beat proceeds this cycle.
    #[must_use]
    pub fn granted(self) -> bool {
        matches!(self, L2Outcome::Granted)
    }

    /// Whether the denial is miss/refill-related (as opposed to losing
    /// bank arbitration).
    #[must_use]
    pub fn refill_related(self) -> bool {
        matches!(self, L2Outcome::MissWait | L2Outcome::MshrFull)
    }
}

/// Cumulative L2 activity: the bank-arbitration side (per requesting
/// cluster) plus the cache core's hit/miss/eviction/MSHR counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Beats granted an L2 bank.
    pub accesses: u64,
    /// Beats denied by same-cycle bank contention from another cluster.
    pub conflicts: u64,
    /// Granted beats per cluster.
    pub accesses_by_cluster: Vec<u64>,
    /// Bank-conflict denials per cluster.
    pub conflicts_by_cluster: Vec<u64>,
    /// The cache core's counters (hits, misses, refills, evictions,
    /// write-backs, MSHR activity).
    pub cache: CacheStats,
}

impl L2Stats {
    /// Cycles beats spent stalled because their line was still missing
    /// (refilling, queued, or bounced off a full MSHR file).
    #[must_use]
    pub fn refill_stalls(&self) -> u64 {
        self.cache.stall_cycles
    }

    /// Lines refilled from the background memory.
    #[must_use]
    pub fn refills(&self) -> u64 {
        self.cache.refills
    }

    /// 64-bit beats moved over the refill channels (one Dram access each
    /// — the unit `sc-energy` charges).
    #[must_use]
    pub fn refill_beats(&self, cfg: &L2Config) -> u64 {
        self.cache.refills * u64::from(cfg.line_beats())
    }

    /// 64-bit beats of write-back traffic dirty evictions generated (one
    /// Dram access each).
    #[must_use]
    pub fn writeback_beats(&self, cfg: &L2Config) -> u64 {
        self.cache.dirty_evictions * u64::from(cfg.line_beats())
    }

    /// 64-bit beats the refill channels moved for *prefetch-issued* line
    /// fetches — a subset of [`L2Stats::refill_beats`], charged by
    /// `sc-energy` exactly like demand refill beats (one Dram access
    /// per beat).
    #[must_use]
    pub fn prefetch_beats(&self, cfg: &L2Config) -> u64 {
        self.cache.prefetch_refills * u64::from(cfg.line_beats())
    }

    /// Bundles these stats with their derived beat counts into the
    /// [`MetricSource`] every consumer (sampling, report serialization,
    /// gate discovery) iterates.
    #[must_use]
    pub fn metric_set(&self, cfg: &L2Config) -> L2MetricSet {
        L2MetricSet::from_parts(
            self.clone(),
            self.refill_beats(cfg),
            self.writeback_beats(cfg),
            self.prefetch_beats(cfg),
        )
    }
}

/// The L2's full scalar metric list — bank arbitration, the cache
/// core's counters and the per-beat traffic the config derives — as one
/// [`MetricSource`]. The visit order and names **are** the serialized
/// `l2` report schema: `sc-bench`'s `l2_stats_json` writes exactly these
/// pairs and `perf_gate` derives its required-metric list from them, so
/// a counter added here is automatically reported, sampled and gated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct L2MetricSet {
    /// The raw stats.
    pub stats: L2Stats,
    /// 64-bit beats moved over the refill channels.
    pub refill_beats: u64,
    /// 64-bit beats of dirty-eviction write-back traffic.
    pub writeback_beats: u64,
    /// Refill beats moved for prefetch-issued fetches.
    pub prefetch_beats: u64,
}

impl L2MetricSet {
    /// Assembles the set from stats plus externally derived beat counts
    /// (`l2_stats_json`'s historical signature).
    #[must_use]
    pub fn from_parts(
        stats: L2Stats,
        refill_beats: u64,
        writeback_beats: u64,
        prefetch_beats: u64,
    ) -> Self {
        L2MetricSet {
            stats,
            refill_beats,
            writeback_beats,
            prefetch_beats,
        }
    }

    /// The metric names in visit order (schema discovery without an
    /// instance's values).
    #[must_use]
    pub fn metric_names() -> Vec<&'static str> {
        let mut names = Vec::new();
        L2MetricSet::default().visit_metrics(&mut |name, _| names.push(name));
        names
    }
}

impl MetricSource for L2MetricSet {
    fn source_name(&self) -> &'static str {
        "l2"
    }

    // The names deliberately keep the historical `l2_stats_json` keys
    // (e.g. `hits` for the cache core's `read_hits`): checked-in
    // baselines and report-diff tooling pin this schema.
    fn visit_metrics(&self, visit: &mut dyn FnMut(&'static str, u64)) {
        visit("accesses", self.stats.accesses);
        visit("conflicts", self.stats.conflicts);
        visit("refills", self.stats.refills());
        visit("refill_stalls", self.stats.refill_stalls());
        visit("refill_beats", self.refill_beats);
        visit("hits", self.stats.cache.read_hits);
        visit("misses", self.stats.cache.read_misses);
        visit("evictions", self.stats.cache.evictions);
        visit("writeback_beats", self.writeback_beats);
        visit("mshr_merges", self.stats.cache.mshr_merges);
        visit("mshr_full_stalls", self.stats.cache.mshr_full_stalls);
        visit("mshr_peak", self.stats.cache.mshr_peak);
        visit("prefetch_hints", self.stats.cache.prefetch_hints);
        visit("prefetches_issued", self.stats.cache.prefetches_issued);
        visit("prefetch_hits", self.stats.cache.prefetch_hits);
        visit(
            "prefetch_covered_misses",
            self.stats.cache.demand_misses_covered_by_prefetch,
        );
        visit(
            "prefetch_evicted_unused",
            self.stats.cache.prefetch_evicted_unused,
        );
        visit("prefetch_beats", self.prefetch_beats);
    }
}

/// The cycle-stepped shared L2: bank arbiter over a [`sc_cache::Cache`]
/// core.
///
/// Step protocol per system cycle: [`L2::begin_cycle`] →
/// [`L2::arbitrate`] (once, with every cluster's beat) →
/// [`L2::end_cycle`].
#[derive(Debug)]
pub struct L2 {
    cfg: L2Config,
    /// The capacity/miss/refill core (used only when `cfg.refill`).
    cache: Cache,
    accesses: u64,
    conflicts: u64,
    accesses_by_cluster: Vec<u64>,
    conflicts_by_cluster: Vec<u64>,
    /// Round-robin rotation over clusters.
    rr_next: u32,
    /// Scratch: banks taken this cycle.
    bank_taken: Vec<bool>,
    /// Scratch: request indexes in priority order (reused across cycles
    /// to keep the lock-step hot loop allocation-light).
    order: Vec<usize>,
}

impl L2 {
    /// Creates an empty (fully cold) L2 arbitrating `num_clusters`
    /// engine ports.
    ///
    /// # Panics
    ///
    /// Panics on an invalid cache geometry (a finite capacity that is
    /// not a multiple of `line_bytes × ways`).
    #[must_use]
    pub fn new(cfg: L2Config, num_clusters: u32) -> Self {
        L2 {
            cache: Cache::new(cfg.cache_config()),
            accesses: 0,
            conflicts: 0,
            accesses_by_cluster: vec![0; num_clusters as usize],
            conflicts_by_cluster: vec![0; num_clusters as usize],
            rr_next: 0,
            bank_taken: vec![false; cfg.banks as usize],
            order: Vec::new(),
            cfg,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &L2Config {
        &self.cfg
    }

    /// Activity counters accumulated so far (assembled from the bank
    /// arbiter and the cache core).
    #[must_use]
    pub fn stats(&self) -> L2Stats {
        L2Stats {
            accesses: self.accesses,
            conflicts: self.conflicts,
            accesses_by_cluster: self.accesses_by_cluster.clone(),
            conflicts_by_cluster: self.conflicts_by_cluster.clone(),
            cache: *self.cache.stats(),
        }
    }

    /// The cache core (config/occupancy inspection).
    #[must_use]
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Subscribes the L2 (its cache core's channels, counters and
    /// prefetch lifecycle) to an observability bus, rooted at `track`.
    pub fn set_tracer(&mut self, tracer: Tracer, track: Track) {
        if tracer.is_on() {
            tracer.name_process(track.pid, "l2");
        }
        self.cache.set_tracer(tracer, track);
    }

    /// The bank serving a byte address.
    #[must_use]
    pub fn bank_of(&self, addr: u32) -> u32 {
        (addr / self.cfg.bank_width) % self.cfg.banks
    }

    /// Whether the line holding `addr` is present (always true with the
    /// cache core off).
    #[must_use]
    pub fn is_resident(&self, addr: u32) -> bool {
        !self.cfg.refill || self.cache.is_present(addr)
    }

    /// Whether stepping the L2 with no requests is a provable no-op:
    /// pass-through L2s always are; with the cache core on, its queues,
    /// channels and prefetcher must all be drained. The condition an
    /// event-driven system needs before fast-forwarding an idle window
    /// across [`L2::begin_cycle`]/[`L2::end_cycle`] pairs.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        !self.cfg.refill || self.cache.is_quiescent()
    }

    /// How soon the L2 next needs a dense cycle, delegated to the cache
    /// core's channel countdowns and MSHR/queue state
    /// ([`Cache::next_wake`]). A pass-through L2 is always
    /// [`CacheWake::Quiescent`] — with no requests arriving, stepping it
    /// changes nothing (the bank arbiter is stateless on an empty
    /// request vector).
    #[must_use]
    pub fn next_wake(&self) -> CacheWake {
        if self.cfg.refill {
            self.cache.next_wake()
        } else {
            CacheWake::Quiescent
        }
    }

    /// Bulk-advances an inert window across the cache core's channels —
    /// the exact effect of `cycles` [`L2::begin_cycle`]/[`L2::end_cycle`]
    /// pairs with no requests, valid only within the window
    /// [`L2::next_wake`] granted.
    pub fn skip(&mut self, cycles: u64) {
        if self.cfg.refill {
            self.cache.skip(cycles);
        }
    }

    /// Hands the cache core an upcoming strided read footprint (a DMA
    /// descriptor's Dram-side access pattern, delivered at `DMA_START`).
    /// A no-op unless the cache core and [`L2Config::prefetch`] are both
    /// on — feeding hints to a prefetch-disabled L2 changes nothing,
    /// which is what keeps the disabled path cycle-identical.
    pub fn prefetch_hint(&mut self, hint: PrefetchHint) {
        if self.cfg.refill {
            self.cache.prefetch_hint(hint);
        }
    }

    /// Cycle start: idle refill/write-back channels pick up queued jobs
    /// — demand refills and write-backs first, prefetch requests only
    /// with channels and MSHRs to spare.
    pub fn begin_cycle(&mut self) {
        if self.cfg.refill {
            self.cache.begin_cycle();
        }
    }

    /// Arbitrates one cycle of beats — at most one request per cluster,
    /// at most one grant per bank, rotation over clusters. Reads of
    /// missing lines stall behind the cache core's MSHRs/channels;
    /// writes allocate without a fetch and never stall. Returns per-beat
    /// outcomes index-aligned with `requests`.
    pub fn arbitrate(&mut self, requests: &[L2Request]) -> Vec<L2Outcome> {
        let mut outcomes = vec![L2Outcome::BankConflict; requests.len()];
        if requests.is_empty() {
            return outcomes;
        }
        self.bank_taken.fill(false);
        // True round-robin over the *configured* cluster ids: priority
        // starts at the pointer and wraps, and the pointer then advances
        // past the highest-priority winner — so idle clusters never skew
        // the split between the ones actually contending (a free-running
        // counter would hand an absent id's turn to the next id above
        // it, starving lower-numbered clusters of their share).
        let n = self.accesses_by_cluster.len().max(1) as u32;
        debug_assert!(
            requests.iter().all(|r| r.cluster < n),
            "request from cluster outside the configured id range"
        );
        let rr = self.rr_next % n;
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend(0..requests.len());
        order.sort_by_key(|&i| (requests[i].cluster + n - rr) % n);
        let mut first_winner = None;
        for &i in &order {
            let req = &requests[i];
            let c = req.cluster as usize;
            if self.cfg.refill && req.kind == AccessKind::Read {
                match self.cache.probe_read(req.addr, req.cluster) {
                    Probe::Ready => {}
                    Probe::MissPending => {
                        outcomes[i] = L2Outcome::MissWait;
                        continue;
                    }
                    Probe::MshrFull => {
                        outcomes[i] = L2Outcome::MshrFull;
                        continue;
                    }
                }
            }
            let bank = self.bank_of(req.addr) as usize;
            if self.bank_taken[bank] {
                self.conflicts += 1;
                self.conflicts_by_cluster[c] += 1;
            } else {
                self.bank_taken[bank] = true;
                outcomes[i] = L2Outcome::Granted;
                self.accesses += 1;
                self.accesses_by_cluster[c] += 1;
                first_winner.get_or_insert(req.cluster);
                if self.cfg.refill {
                    match req.kind {
                        AccessKind::Read => {
                            let _ = self.cache.commit_read(req.addr, req.cluster);
                        }
                        // Allocate-without-fetch in the timing sense,
                        // and the written data is now the L2's to
                        // serve: later reads hit.
                        AccessKind::Write => self.cache.commit_write(req.addr),
                    }
                }
            }
        }
        self.order = order;
        self.rr_next = match first_winner {
            Some(cluster) => (cluster + 1) % n,
            None => (self.rr_next + 1) % n,
        };
        outcomes
    }

    /// Cycle end: the refill/write-back channels advance; a finished
    /// line becomes present (its stalled beats may be granted from next
    /// cycle).
    pub fn end_cycle(&mut self) {
        if self.cfg.refill {
            self.cache.end_cycle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cluster: u32, addr: u32) -> L2Request {
        L2Request {
            cluster,
            addr,
            kind: AccessKind::Read,
        }
    }

    fn wr(cluster: u32, addr: u32) -> L2Request {
        L2Request {
            cluster,
            addr,
            kind: AccessKind::Write,
        }
    }

    fn warm(l2: &mut L2, addrs: &[u32]) {
        // Drive the refill channel until every named line is resident.
        for &a in addrs {
            while !l2.is_resident(a) {
                l2.begin_cycle();
                let _ = l2.arbitrate(&[req(0, a)]);
                l2.end_cycle();
            }
        }
    }

    #[test]
    fn passthrough_always_grants_single_cluster() {
        let mut l2 = L2::new(L2Config::passthrough(DramConfig::new()), 1);
        for i in 0..100u32 {
            l2.begin_cycle();
            let g = l2.arbitrate(&[req(0, i * 8)]);
            assert!(
                g[0].granted(),
                "pass-through must never deny a lone cluster"
            );
            l2.end_cycle();
        }
        assert_eq!(l2.stats().accesses, 100);
        assert_eq!(l2.stats().refills(), 0);
    }

    #[test]
    fn cold_lines_stall_until_refilled() {
        let cfg = L2Config::new()
            .with_line_bytes(64)
            .with_cycles_per_beat(1)
            .with_latency(0);
        let refill_cycles = cfg.refill_cycles();
        let mut l2 = L2::new(cfg, 1);
        let mut stalled = 0;
        loop {
            l2.begin_cycle();
            let g = l2.arbitrate(&[req(0, 0x100)]);
            l2.end_cycle();
            if g[0].granted() {
                break;
            }
            assert_eq!(g[0], L2Outcome::MissWait);
            stalled += 1;
            assert!(stalled < 10_000, "refill never completed");
        }
        // The beat waits out exactly one line refill (first denial
        // enqueues it; the channel starts next begin_cycle).
        assert_eq!(stalled, refill_cycles as u64 + 1);
        assert_eq!(l2.stats().refills(), 1);
        assert_eq!(l2.stats().refill_stalls(), stalled);
        assert_eq!(l2.stats().cache.read_misses, 1);
        // The neighbouring beat on the same line is now warm.
        l2.begin_cycle();
        assert!(l2.arbitrate(&[req(0, 0x108)])[0].granted());
        l2.end_cycle();
        assert_eq!(l2.stats().cache.read_hits, 1);
    }

    #[test]
    fn same_bank_beats_from_two_clusters_share_fairly() {
        let mut l2 = L2::new(L2Config::new().with_banks(4), 2);
        warm(&mut l2, &[0x0, 0x20]);
        // Both clusters hit bank 0 every cycle (0x0 and 0x20 with 4
        // banks × 8 B both map to bank 0).
        let mut wins = [0u32; 2];
        for _ in 0..100 {
            l2.begin_cycle();
            let g = l2.arbitrate(&[req(0, 0x0), req(1, 0x20)]);
            assert_eq!(g.iter().filter(|g| g.granted()).count(), 1);
            for (w, granted) in wins.iter_mut().zip(&g) {
                *w += u32::from(granted.granted());
            }
            l2.end_cycle();
        }
        assert_eq!(wins, [50, 50], "round-robin must split a contended bank");
        assert_eq!(l2.stats().conflicts, 100);
        assert_eq!(l2.stats().conflicts_by_cluster, vec![50, 50]);
    }

    #[test]
    fn writes_bypass_the_refill_channel_and_warm_their_line() {
        // Allocate-without-fetch: a cold-line write proceeds immediately
        // (never stalls on the refill channel), and a later read of the
        // just-written line hits.
        let mut l2 = L2::new(L2Config::new().with_line_bytes(64), 1);
        l2.begin_cycle();
        let g = l2.arbitrate(&[wr(0, 0x200)]);
        assert!(g[0].granted(), "cold write must not wait for a refill");
        l2.end_cycle();
        assert_eq!(l2.stats().refills(), 0);
        assert_eq!(l2.stats().refill_stalls(), 0);
        l2.begin_cycle();
        assert!(
            l2.arbitrate(&[req(0, 0x208)])[0].granted(),
            "reading back freshly written data is a hit"
        );
        l2.end_cycle();
        assert_eq!(l2.stats().refills(), 0);
    }

    #[test]
    fn idle_clusters_do_not_skew_the_round_robin() {
        // Regression: with a free-running rotation counter, cluster 1
        // sitting idle handed its priority turns to cluster 2, splitting
        // a contended bank 1:2 between clusters 0 and 2. The pointer
        // must advance past the actual winner, keeping the split even
        // among the clusters genuinely contending.
        let mut l2 = L2::new(L2Config::new().with_banks(4).with_refill(false), 3);
        let mut wins = [0u32; 2];
        for _ in 0..100 {
            l2.begin_cycle();
            let g = l2.arbitrate(&[req(0, 0x0), req(2, 0x20)]);
            assert_eq!(g.iter().filter(|g| g.granted()).count(), 1);
            wins[0] += u32::from(g[0].granted());
            wins[1] += u32::from(g[1].granted());
            l2.end_cycle();
        }
        assert_eq!(wins, [50, 50], "idle cluster 1 must not skew the split");
    }

    #[test]
    fn disjoint_banks_proceed_in_parallel() {
        let mut l2 = L2::new(L2Config::new().with_banks(4), 2);
        warm(&mut l2, &[0x0, 0x8]);
        l2.begin_cycle();
        let g = l2.arbitrate(&[req(0, 0x0), req(1, 0x8)]);
        assert_eq!(g, vec![L2Outcome::Granted, L2Outcome::Granted]);
        l2.end_cycle();
        assert_eq!(l2.stats().conflicts, 0);
    }

    #[test]
    fn single_refill_channel_serialises_lines() {
        let cfg = L2Config::new().with_line_bytes(64);
        let per_line = cfg.refill_cycles();
        let mut l2 = L2::new(cfg, 2);
        // Two clusters miss two different lines in the same cycle: the
        // single channel fetches them one after the other.
        let mut cycles = 0u32;
        let (mut got0, mut got1) = (false, false);
        while !(got0 && got1) {
            l2.begin_cycle();
            let g = l2.arbitrate(&[req(0, 0x0), req(1, 0x1000)]);
            got0 |= g[0].granted();
            got1 |= g[1].granted();
            l2.end_cycle();
            cycles += 1;
            assert!(cycles < 10_000, "refills never completed");
        }
        assert!(cycles > 2 * per_line, "two lines cannot overlap refills");
        assert_eq!(l2.stats().refills(), 2);
        assert_eq!(
            l2.stats().refill_beats(l2.config()),
            2 * u64::from(l2.config().line_beats())
        );
    }

    #[test]
    fn parallel_refill_channels_overlap_lines() {
        let run = |channels: u32| {
            let cfg = L2Config::new()
                .with_line_bytes(64)
                .with_refill_channels(channels);
            let mut l2 = L2::new(cfg, 2);
            let mut cycles = 0u32;
            let (mut got0, mut got1) = (false, false);
            while !(got0 && got1) {
                l2.begin_cycle();
                let g = l2.arbitrate(&[req(0, 0x0), req(1, 0x1000)]);
                got0 |= g[0].granted();
                got1 |= g[1].granted();
                l2.end_cycle();
                cycles += 1;
                assert!(cycles < 10_000, "refills never completed");
            }
            cycles
        };
        assert!(
            run(2) < run(1),
            "a second channel must overlap the two lines' refills"
        );
    }

    #[test]
    fn capacity_pressure_evicts_and_writes_back_dirty_lines() {
        // 2 KiB, 2-way, 64 B lines = 16 sets; stream writes over 64
        // lines, then re-read the start: early lines were dirty-evicted,
        // so write-back traffic appears and the re-read misses again.
        let cfg = L2Config::new()
            .with_line_bytes(64)
            .with_capacity_bytes(2 << 10)
            .with_ways(2)
            .with_write_back(true);
        let mut l2 = L2::new(cfg, 1);
        for i in 0..64u32 {
            l2.begin_cycle();
            assert!(l2.arbitrate(&[wr(0, i * 64)])[0].granted());
            l2.end_cycle();
        }
        let stats = l2.stats();
        assert_eq!(stats.cache.write_beats, 64);
        assert_eq!(stats.cache.evictions, 32, "64 lines through 32 slots");
        assert_eq!(stats.cache.dirty_evictions, 32, "every victim was dirty");
        assert_eq!(
            stats.writeback_beats(l2.config()),
            32 * u64::from(l2.config().line_beats())
        );
        assert!(
            !l2.is_resident(0),
            "the first written line was evicted by capacity pressure"
        );
        // An infinite L2 driven identically never evicts.
        let mut inf = L2::new(L2Config::new().with_line_bytes(64), 1);
        for i in 0..64u32 {
            inf.begin_cycle();
            assert!(inf.arbitrate(&[wr(0, i * 64)])[0].granted());
            inf.end_cycle();
        }
        assert_eq!(inf.stats().cache.evictions, 0);
        assert!(inf.is_resident(0));
    }

    #[test]
    fn mshr_file_limits_outstanding_misses() {
        let cfg = L2Config::new()
            .with_line_bytes(64)
            .with_banks(8)
            .with_mshrs(1);
        let mut l2 = L2::new(cfg, 2);
        l2.begin_cycle();
        let g = l2.arbitrate(&[req(0, 0x0), req(1, 0x1000)]);
        assert_eq!(g[0], L2Outcome::MissWait, "first miss allocates the MSHR");
        assert_eq!(g[1], L2Outcome::MshrFull, "second distinct line bounces");
        l2.end_cycle();
        assert!(l2.stats().cache.mshr_full_stalls >= 1);
        assert_eq!(l2.stats().cache.mshr_peak, 1);
    }

    #[test]
    fn prefetch_pressure_surfaces_mshr_full_to_demand_beats() {
        // A tiny MSHR file fully occupied by in-flight *prefetches*: a
        // demand read to a third line must come back `MshrFull` — the
        // outcome the cluster books as a miss wait — and succeed once a
        // prefetch retires and frees an entry.
        let cfg = L2Config::new()
            .with_line_bytes(64)
            .with_banks(8)
            .with_mshrs(2)
            .with_refill_latency(32)
            .with_refill_channels(2)
            .with_prefetch(true)
            .with_prefetch_degree(4)
            .with_prefetch_distance(16)
            .with_prefetch_queue(8);
        let mut l2 = L2::new(cfg, 2);
        l2.prefetch_hint(PrefetchHint::contiguous(0x1000, 2 * 64, 0));
        l2.begin_cycle();
        assert_eq!(l2.cache().mshr_occupancy(), 2, "both MSHRs hold prefetches");
        let g = l2.arbitrate(&[req(1, 0x0)]);
        assert_eq!(
            g[0],
            L2Outcome::MshrFull,
            "demand miss bounces off the prefetch-full file"
        );
        assert!(g[0].refill_related(), "MshrFull counts as a miss wait");
        l2.end_cycle();
        assert!(l2.stats().cache.mshr_full_stalls >= 1);
        // Once the prefetches land, the demand beat allocates and is
        // eventually served.
        let mut granted = false;
        for _ in 0..200 {
            l2.begin_cycle();
            granted |= l2.arbitrate(&[req(1, 0x0)])[0].granted();
            l2.end_cycle();
            if granted {
                break;
            }
        }
        assert!(granted, "demand beat starved behind retired prefetches");
        let s = l2.stats();
        assert_eq!(s.cache.prefetches_issued, 2);
        assert_eq!(s.cache.mshr_allocations, 1, "one demand allocation");
        assert_eq!(s.refills(), 3);
        assert_eq!(
            s.prefetch_beats(l2.config()),
            2 * u64::from(l2.config().line_beats()),
            "prefetch beats are the prefetched lines' refill traffic"
        );
    }

    #[test]
    fn hinted_prefetch_hides_the_refill_latency_of_a_streamed_footprint() {
        // The end-to-end point of the engine at the L2 level: a cluster
        // streaming a hinted footprint over one refill channel finishes
        // in fewer cycles than the same stream cold, and the lines it
        // touches are counted accurate (`prefetch_hits`), not useless.
        // Two channels: with one, a fetch (latency + 8 beats) always
        // outlasts the 8 demand beats consuming the previous line, so
        // every prefetch is merely *late* (covered); the second channel
        // lets the engine genuinely run ahead and bank accurate hits.
        let base_cfg = L2Config::new()
            .with_line_bytes(64)
            .with_refill_latency(16)
            .with_refill_channels(2);
        let schedule: Vec<u32> = (0..64u32).map(|w| w * 8).collect();
        let run = |prefetch: bool| {
            let cfg = if prefetch {
                base_cfg
                    .with_prefetch(true)
                    .with_prefetch_degree(2)
                    .with_prefetch_distance(32)
                    .with_prefetch_queue(32)
            } else {
                base_cfg
            };
            let mut l2 = L2::new(cfg, 1);
            if prefetch {
                l2.prefetch_hint(PrefetchHint::contiguous(0, 64 * 8, 0));
            }
            let mut cycles = 0u64;
            let mut pos = 0;
            while pos < schedule.len() {
                l2.begin_cycle();
                if l2.arbitrate(&[req(0, schedule[pos])])[0].granted() {
                    pos += 1;
                }
                l2.end_cycle();
                cycles += 1;
                assert!(cycles < 100_000);
            }
            (cycles, l2.stats())
        };
        let (cold_cycles, cold) = run(false);
        let (warm_cycles, warm) = run(true);
        assert!(
            warm_cycles < cold_cycles,
            "prefetching must hide refill latency ({warm_cycles} vs {cold_cycles})"
        );
        assert_eq!(warm.refills(), cold.refills(), "same lines moved");
        assert!(warm.cache.prefetch_hits > 0);
        assert_eq!(warm.cache.prefetch_evicted_unused, 0, "nothing wasted");
    }
}
