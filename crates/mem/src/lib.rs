//! # sc-mem — banked TCDM model
//!
//! A cycle-level model of the tightly-coupled data memory of a Snitch-like
//! cluster: word-interleaved SRAM banks behind a single-cycle crossbar with
//! per-bank arbitration. The model separates:
//!
//! * **functional access** — bounds/alignment-checked byte-addressed
//!   reads/writes used to move actual data, and
//! * **timing access** — [`Tcdm::arbitrate`], which decides per cycle which
//!   master ports win their banks; losers retry (a *bank conflict*).
//!
//! Bank conflicts are central to the paper's evaluation: each stream
//! semantic register occupies a crossbar port, so streaming the stencil
//! coefficients (the `Base` variant) adds a contender while holding them in
//! registers (the `Chaining` variants) removes one.
//!
//! ```
//! use sc_mem::{Tcdm, TcdmConfig};
//! let mut tcdm = Tcdm::new(TcdmConfig::new().with_banks(8));
//! tcdm.write_f64(64, 1.25)?;
//! assert_eq!(tcdm.read_f64(64)?, 1.25);
//! # Ok::<(), sc_mem::MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dram;
mod l2;
mod stats;
mod tcdm;

#[cfg(test)]
mod proptests;

pub use dram::{Dram, DramConfig};
pub use l2::{L2Config, L2MetricSet, L2Outcome, L2Request, L2Stats, L2};
// The cache core the L2 is built on, re-exported so consumers can read
// its configuration and statistics types without a direct dependency.
pub use sc_cache::{Cache, CacheConfig, CacheStats, CacheWake, PrefetchHint, PrefetchMode, Probe};
pub use stats::TcdmStats;
pub use tcdm::{AccessKind, MemError, PortId, Request, Tcdm, TcdmConfig};
