//! Host-time bench for the Fig. 1 experiment: simulates each vecop
//! variant end-to-end and reports host time per simulated kernel. The
//! simulated-cycle results themselves come from the `fig1_trace` binary;
//! this bench tracks the *simulator's* performance and pins the
//! variant-to-variant cycle ratios as a regression guard.
//!
//! Dependency-free harness (`harness = false`): the environment has no
//! registry access, so criterion is replaced by a simple timing loop.

use std::time::Instant;

use sc_core::CoreConfig;
use sc_kernels::{VecOpKernel, VecOpVariant};

fn main() {
    println!("fig1_vecop — host time per simulated kernel (n = 256)");
    for variant in VecOpVariant::ALL {
        let kernel = VecOpKernel::new(256, variant).build();
        // Warm-up, then measure.
        for _ in 0..3 {
            kernel
                .run(CoreConfig::new(), 10_000_000)
                .expect("vecop kernel verifies");
        }
        let iters = 20;
        let start = Instant::now();
        let mut cycles = 0;
        for _ in 0..iters {
            cycles = kernel
                .run(CoreConfig::new(), 10_000_000)
                .expect("vecop kernel verifies")
                .summary
                .cycles;
        }
        let per_run = start.elapsed() / iters;
        println!("  {variant:<10} {per_run:>10.2?}/run   ({cycles} simulated cycles)");
    }

    // Regression guard on the simulated result itself.
    let base = VecOpKernel::new(256, VecOpVariant::Baseline)
        .build()
        .run(CoreConfig::new(), 10_000_000)
        .expect("baseline")
        .measured()
        .cycles;
    let chained = VecOpKernel::new(256, VecOpVariant::Chained)
        .build()
        .run(CoreConfig::new(), 10_000_000)
        .expect("chained")
        .measured()
        .cycles;
    assert!(
        chained * 2 < base,
        "fig1 regression: chained {chained} cycles vs baseline {base}"
    );
    println!("regression guard passed: chained {chained} vs baseline {base} cycles");
}
