//! Criterion bench for the Fig. 1 experiment: simulates each vecop
//! variant end-to-end and reports host time per simulated kernel. The
//! simulated-cycle results themselves come from the `fig1_trace` binary;
//! this bench tracks the *simulator's* performance and pins the
//! variant-to-variant cycle ratios as a regression guard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::CoreConfig;
use sc_kernels::{VecOpKernel, VecOpVariant};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_vecop");
    for variant in VecOpVariant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant),
            &variant,
            |b, &variant| {
                let kernel = VecOpKernel::new(256, variant).build();
                b.iter(|| {
                    kernel
                        .run(CoreConfig::new(), 10_000_000)
                        .expect("vecop kernel verifies")
                        .summary
                        .cycles
                });
            },
        );
    }
    group.finish();

    // Regression guard on the simulated result itself.
    let base = VecOpKernel::new(256, VecOpVariant::Baseline)
        .build()
        .run(CoreConfig::new(), 10_000_000)
        .expect("baseline")
        .measured()
        .cycles;
    let chained = VecOpKernel::new(256, VecOpVariant::Chained)
        .build()
        .run(CoreConfig::new(), 10_000_000)
        .expect("chained")
        .measured()
        .cycles;
    assert!(
        chained * 2 < base,
        "fig1 regression: chained {chained} cycles vs baseline {base}"
    );
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
