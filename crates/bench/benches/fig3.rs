//! Host-time bench for the Fig. 3 experiment: simulates each
//! stencil × variant point on a reduced tile and reports host time. The
//! full-figure numbers come from the `fig3` binary; this bench guards the
//! ordering the paper reports (chained variants beat the baselines).
//!
//! Dependency-free harness (`harness = false`): the environment has no
//! registry access, so criterion is replaced by a simple timing loop.

use std::time::Instant;

use sc_core::CoreConfig;
use sc_kernels::{Grid3, Stencil, StencilKernel, Variant};

fn main() {
    let grid = Grid3::new(8, 4, 2);
    println!(
        "fig3_box3d1r — host time per simulated kernel ({}x{}x{})",
        grid.nx, grid.ny, grid.nz
    );
    for variant in Variant::ALL {
        let gen = StencilKernel::new(Stencil::box3d1r(), grid, variant).expect("valid combination");
        let kernel = gen.build();
        for _ in 0..2 {
            kernel
                .run(CoreConfig::new(), 100_000_000)
                .expect("stencil kernel verifies");
        }
        let iters = 10;
        let start = Instant::now();
        let mut cycles = 0;
        for _ in 0..iters {
            cycles = kernel
                .run(CoreConfig::new(), 100_000_000)
                .expect("stencil kernel verifies")
                .summary
                .cycles;
        }
        let per_run = start.elapsed() / iters;
        println!("  {variant:<10} {per_run:>10.2?}/run   ({cycles} simulated cycles)");
    }

    // Regression guard: Chaining+ must beat Base in simulated cycles.
    let cycles = |v: Variant| {
        StencilKernel::new(Stencil::box3d1r(), grid, v)
            .expect("valid")
            .build()
            .run(CoreConfig::new(), 100_000_000)
            .expect("runs")
            .measured()
            .cycles
    };
    let base = cycles(Variant::Base);
    let chp = cycles(Variant::ChainingPlus);
    assert!(
        chp < base,
        "fig3 regression: Chaining+ {chp} vs Base {base} cycles"
    );
    println!("regression guard passed: Chaining+ {chp} vs Base {base} cycles");
}
