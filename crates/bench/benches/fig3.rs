//! Criterion bench for the Fig. 3 experiment: simulates each
//! stencil × variant point on a reduced tile and reports host time. The
//! full-figure numbers come from the `fig3` binary; this bench guards the
//! ordering the paper reports (chained variants beat the baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::CoreConfig;
use sc_kernels::{Grid3, Stencil, StencilKernel, Variant};

fn bench_fig3(c: &mut Criterion) {
    let grid = Grid3::new(8, 4, 2);
    let mut group = c.benchmark_group("fig3_box3d1r");
    group.sample_size(10);
    for variant in Variant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant),
            &variant,
            |b, &variant| {
                let gen = StencilKernel::new(Stencil::box3d1r(), grid, variant)
                    .expect("valid combination");
                let kernel = gen.build();
                b.iter(|| {
                    kernel
                        .run(CoreConfig::new(), 100_000_000)
                        .expect("stencil kernel verifies")
                        .summary
                        .cycles
                });
            },
        );
    }
    group.finish();

    // Regression guard: Chaining+ must beat Base in simulated cycles.
    let cycles = |v: Variant| {
        StencilKernel::new(Stencil::box3d1r(), grid, v)
            .expect("valid")
            .build()
            .run(CoreConfig::new(), 100_000_000)
            .expect("runs")
            .measured()
            .cycles
    };
    let base = cycles(Variant::Base);
    let chp = cycles(Variant::ChainingPlus);
    assert!(chp < base, "fig3 regression: Chaining+ {chp} vs Base {base} cycles");
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
