//! Host-thread parallelism for sweep binaries.
//!
//! Simulation config points are independent, so ablation and scaling
//! sweeps fan them out over OS threads (one per point — sweeps have a
//! handful to a few dozen points) and report the wall-clock speedup over
//! the serial estimate (the sum of per-point runtimes), keeping results
//! in input order.

use std::time::{Duration, Instant};

/// Timing of a parallel sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepTiming {
    /// Wall-clock time of the whole fan-out.
    pub wall: Duration,
    /// Sum of per-point runtimes — what a serial sweep would have cost.
    pub serial_estimate: Duration,
}

impl SweepTiming {
    /// Wall-clock speedup of the fan-out over the serial estimate.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.serial_estimate.as_secs_f64() / wall
        } else {
            1.0
        }
    }

    /// One-line human-readable summary for a binary's output.
    #[must_use]
    pub fn report(&self, points: usize) -> String {
        format!(
            "{points} config points in {:.2?} wall ({:.2?} serial estimate, {:.2}x speedup from host threads)",
            self.wall,
            self.serial_estimate,
            self.speedup()
        )
    }
}

/// Runs `f` over every item on its own host thread, returning results in
/// input order plus the sweep timing.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn parallel_sweep<T, R, F>(items: Vec<T>, f: F) -> (Vec<R>, SweepTiming)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let start = Instant::now();
    let mut results: Vec<(R, Duration)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for item in items {
            let f = &f;
            handles.push(scope.spawn(move || {
                let t0 = Instant::now();
                let out = f(item);
                (out, t0.elapsed())
            }));
        }
        for handle in handles {
            results.push(handle.join().expect("sweep worker panicked"));
        }
    });
    let wall = start.elapsed();
    let mut serial_estimate = Duration::ZERO;
    let ordered = results
        .into_iter()
        .map(|(out, took)| {
            serial_estimate += took;
            out
        })
        .collect();
    (
        ordered,
        SweepTiming {
            wall,
            serial_estimate,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let (results, timing) = parallel_sweep((0..16).collect(), |i: i32| i * i);
        assert_eq!(results, (0..16).map(|i| i * i).collect::<Vec<_>>());
        assert!(timing.serial_estimate >= Duration::ZERO);
        assert!(timing.speedup() > 0.0);
    }

    #[test]
    fn actually_overlaps_work() {
        let (results, timing) = parallel_sweep(vec![10u64; 8], |ms| {
            std::thread::sleep(Duration::from_millis(ms));
            ms
        });
        assert_eq!(results.len(), 8);
        // Eight 10 ms sleeps in parallel must take well under 80 ms.
        assert!(
            timing.wall < timing.serial_estimate,
            "wall {:?} vs serial {:?}",
            timing.wall,
            timing.serial_estimate
        );
    }

    #[test]
    fn report_mentions_speedup() {
        let timing = SweepTiming {
            wall: Duration::from_millis(100),
            serial_estimate: Duration::from_millis(400),
        };
        let line = timing.report(4);
        assert!(line.contains("4 config points"));
        assert!(line.contains("4.00x"));
    }
}
