//! Ablation for the paper's §II claim that "chaining benefits are
//! increased for functional units with deeper pipelines".
//!
//! For each FPU ADDMUL depth *d* we compare, on the vecop kernel:
//!
//! * the RAW-stalled baseline (decays as `2 / (2 + d)`),
//! * unrolling fixed at 4 registers — the register-pressure-limited case:
//!   it covers the latency only up to `d = 3`,
//! * unrolling matched to the depth (`d + 1` registers) — what software
//!   would need *without* chaining,
//! * chaining with a matched software pipeline — same schedule, but all
//!   partial results rotate through ONE architectural register.
//!
//! Config points run in parallel on host threads; results are also
//! serialized to `target/reports/ablation_depth.json`.
//!
//! Run with `cargo run --release -p sc-bench --bin ablation_depth`.

use sc_bench::{json, parallel_sweep, Json};
use sc_core::CoreConfig;
use sc_fpu::FpuTiming;
use sc_kernels::{VecOpKernel, VecOpVariant};

fn util(cfg: CoreConfig, n: u32, variant: VecOpVariant, unroll: u32) -> f64 {
    let kernel = VecOpKernel::with_unroll(n, variant, unroll).build();
    let run = kernel
        .run(cfg, 10_000_000)
        .unwrap_or_else(|e| panic!("{} unroll {unroll}: {e}", kernel.name()));
    run.measured().fpu_utilization()
}

struct Row {
    depth: u32,
    baseline: f64,
    fixed4: f64,
    matched: f64,
    chained: f64,
}

fn run_row(depth: u32, n: u32) -> Row {
    let cfg = CoreConfig::new().with_fpu(FpuTiming::new().with_addmul_latency(depth));
    Row {
        depth,
        baseline: util(cfg, n, VecOpVariant::Baseline, 1),
        fixed4: util(cfg, n, VecOpVariant::Unrolled, 4),
        matched: util(cfg, n, VecOpVariant::Unrolled, depth + 1),
        chained: util(cfg, n, VecOpVariant::Chained, depth + 1),
    }
}

fn main() {
    println!("=== Chaining benefit vs FPU pipeline depth (vecop, n = 840) ===\n");
    println!(
        "{:>6} | {:>10} {:>12} {:>14} {:>12} | {:>14}",
        "depth", "baseline", "unroll=4", "unroll=d+1", "chained", "regs saved"
    );
    // n divisible by every unroll in use (lcm of 1..=8 factors: 840).
    let n = 840;
    let (rows, timing) = parallel_sweep(vec![1u32, 2, 3, 4, 5, 6, 7], |depth| run_row(depth, n));
    for row in &rows {
        println!(
            "{:>6} | {:>9.1}% {:>11.1}% {:>13.1}% {:>11.1}% | {:>14}",
            row.depth,
            row.baseline * 100.0,
            row.fixed4 * 100.0,
            row.matched * 100.0,
            row.chained * 100.0,
            row.depth, // matched unroll needs d+1 regs, chaining needs 1
        );
    }
    println!("\n{}", timing.report(rows.len()));

    let report = Json::obj()
        .set("sweep", "ablation_depth")
        .set("kernel", "vecop")
        .set("n", u64::from(n))
        .set("wall_seconds", timing.wall.as_secs_f64())
        .set("host_thread_speedup", timing.speedup())
        .set(
            "points",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .set("depth", r.depth)
                            .set("baseline_utilization", r.baseline)
                            .set("unroll4_utilization", r.fixed4)
                            .set("matched_unroll_utilization", r.matched)
                            .set("chained_utilization", r.chained)
                            .set("registers_saved", r.depth)
                    })
                    .collect(),
            ),
        );
    match json::write_report("ablation_depth.json", &report) {
        Ok(path) => println!("json report: {}", path.display()),
        Err(e) => eprintln!("could not write json report: {e}"),
    }

    println!();
    println!("`regs saved` = architectural registers the chained version frees at");
    println!("each depth (matched unroll needs d+1 temporaries, chaining needs 1).");
    println!("Deeper pipelines widen the register gap — the paper's §II claim.");
}
