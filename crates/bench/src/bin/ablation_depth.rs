//! Ablation for the paper's §II claim that "chaining benefits are
//! increased for functional units with deeper pipelines".
//!
//! For each FPU ADDMUL depth *d* we compare, on the vecop kernel:
//!
//! * the RAW-stalled baseline (decays as `2 / (2 + d)`),
//! * unrolling fixed at 4 registers — the register-pressure-limited case:
//!   it covers the latency only up to `d = 3`,
//! * unrolling matched to the depth (`d + 1` registers) — what software
//!   would need *without* chaining,
//! * chaining with a matched software pipeline — same schedule, but all
//!   partial results rotate through ONE architectural register.
//!
//! Run with `cargo run --release -p sc-bench --bin ablation_depth`.

use sc_core::CoreConfig;
use sc_fpu::FpuTiming;
use sc_kernels::{VecOpKernel, VecOpVariant};

fn util(cfg: CoreConfig, n: u32, variant: VecOpVariant, unroll: u32) -> f64 {
    let kernel = VecOpKernel::with_unroll(n, variant, unroll).build();
    let run = kernel
        .run(cfg, 10_000_000)
        .unwrap_or_else(|e| panic!("{} unroll {unroll}: {e}", kernel.name()));
    run.measured().fpu_utilization()
}

fn main() {
    println!("=== Chaining benefit vs FPU pipeline depth (vecop, n = 840) ===\n");
    println!(
        "{:>6} | {:>10} {:>12} {:>14} {:>12} | {:>14}",
        "depth", "baseline", "unroll=4", "unroll=d+1", "chained", "regs saved"
    );
    // n divisible by every unroll in use (lcm of 1..=8 factors: 840).
    let n = 840;
    for depth in [1u32, 2, 3, 4, 5, 6, 7] {
        let cfg = CoreConfig::new().with_fpu(FpuTiming::new().with_addmul_latency(depth));
        let base = util(cfg, n, VecOpVariant::Baseline, 1);
        let fixed4 = util(cfg, n, VecOpVariant::Unrolled, 4);
        let matched = util(cfg, n, VecOpVariant::Unrolled, depth + 1);
        let chained = util(cfg, n, VecOpVariant::Chained, depth + 1);
        println!(
            "{:>6} | {:>9.1}% {:>11.1}% {:>13.1}% {:>11.1}% | {:>14}",
            depth,
            base * 100.0,
            fixed4 * 100.0,
            matched * 100.0,
            chained * 100.0,
            depth, // matched unroll needs d+1 regs, chaining needs 1
        );
    }
    println!();
    println!("`regs saved` = architectural registers the chained version frees at");
    println!("each depth (matched unroll needs d+1 temporaries, chaining needs 1).");
    println!("Deeper pipelines widen the register gap — the paper's §II claim.");
}
