//! Ablation for the register-pressure argument of §I: how many
//! architectural registers does software pipelining need to hide the FPU
//! latency, and what does chaining deliver with one?
//!
//! Config points run in parallel on host threads; results are also
//! serialized to `target/reports/ablation_registers.json`.
//!
//! Run with `cargo run --release -p sc-bench --bin ablation_registers`.

use sc_bench::{json, parallel_sweep, Json};
use sc_core::CoreConfig;
use sc_kernels::{VecOpKernel, VecOpVariant};

struct Row {
    label: String,
    regs: u32,
    util: f64,
}

fn main() {
    let n = 840;
    println!("=== Register pressure vs FPU utilisation (vecop, 3-stage FPU) ===\n");
    println!("{:>22} {:>10} {:>12}", "schedule", "FP regs", "fpu util");

    // Config points: unrolled ×1..×8, then the chained schedule.
    let points: Vec<Option<u32>> = [1u32, 2, 3, 4, 6, 8]
        .iter()
        .map(|u| Some(*u))
        .chain([None])
        .collect();
    let (rows, timing) = parallel_sweep(points, |point| match point {
        Some(unroll) => {
            let kernel = VecOpKernel::with_unroll(n, VecOpVariant::Unrolled, unroll).build();
            let run = kernel
                .run(CoreConfig::new(), 10_000_000)
                .unwrap_or_else(|e| panic!("unroll {unroll}: {e}"));
            Row {
                label: format!("unrolled ×{unroll}"),
                regs: unroll,
                util: run.measured().fpu_utilization(),
            }
        }
        None => {
            let kernel = VecOpKernel::with_unroll(n, VecOpVariant::Chained, 4).build();
            let run = kernel
                .run(CoreConfig::new(), 10_000_000)
                .expect("chained runs");
            Row {
                label: "chained (paper)".to_owned(),
                regs: 1,
                util: run.measured().fpu_utilization(),
            }
        }
    });
    for row in &rows {
        println!(
            "{:>22} {:>10} {:>11.1}%",
            row.label,
            row.regs,
            row.util * 100.0
        );
    }
    println!("\n{}", timing.report(rows.len()));

    let report = Json::obj()
        .set("sweep", "ablation_registers")
        .set("kernel", "vecop")
        .set("n", u64::from(n))
        .set("wall_seconds", timing.wall.as_secs_f64())
        .set("host_thread_speedup", timing.speedup())
        .set(
            "points",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .set("schedule", r.label.as_str())
                            .set("fp_registers", r.regs)
                            .set("fpu_utilization", r.util)
                    })
                    .collect(),
            ),
        );
    match json::write_report("ablation_registers.json", &report) {
        Ok(path) => println!("json report: {}", path.display()),
        Err(e) => eprintln!("could not write json report: {e}"),
    }

    println!();
    println!("Unrolling needs `depth + 1 = 4` live temporaries to hide the 3-stage");
    println!("FPU; chaining reaches the same utilisation with a single register,");
    println!("leaving the rest of the file for e.g. stencil coefficients (Fig. 3).");
}
