//! Ablation for the register-pressure argument of §I: how many
//! architectural registers does software pipelining need to hide the FPU
//! latency, and what does chaining deliver with one?
//!
//! Run with `cargo run --release -p sc-bench --bin ablation_registers`.

use sc_core::CoreConfig;
use sc_kernels::{VecOpKernel, VecOpVariant};

fn main() {
    let n = 840;
    println!("=== Register pressure vs FPU utilisation (vecop, 3-stage FPU) ===\n");
    println!("{:>22} {:>10} {:>12}", "schedule", "FP regs", "fpu util");
    for unroll in [1u32, 2, 3, 4, 6, 8] {
        let kernel = VecOpKernel::with_unroll(n, VecOpVariant::Unrolled, unroll).build();
        let run = kernel
            .run(CoreConfig::new(), 10_000_000)
            .unwrap_or_else(|e| panic!("unroll {unroll}: {e}"));
        println!(
            "{:>22} {:>10} {:>11.1}%",
            format!("unrolled ×{unroll}"),
            unroll,
            run.measured().fpu_utilization() * 100.0
        );
    }
    let chained = VecOpKernel::with_unroll(n, VecOpVariant::Chained, 4).build();
    let run = chained.run(CoreConfig::new(), 10_000_000).expect("chained runs");
    println!(
        "{:>22} {:>10} {:>11.1}%",
        "chained (paper)",
        1,
        run.measured().fpu_utilization() * 100.0
    );
    println!();
    println!("Unrolling needs `depth + 1 = 4` live temporaries to hide the 3-stage");
    println!("FPU; chaining reaches the same utilisation with a single register,");
    println!("leaving the rest of the file for e.g. stencil coefficients (Fig. 3).");
}
