//! Ablation: sensitivity of the Fig. 3 result to TCDM bank count.
//!
//! The `Base` variant keeps two read streams alive (inputs + coefficients)
//! while the chained variants need only one; fewer banks raise conflict
//! pressure and widen the gap — relevant for area-constrained clusters.
//!
//! Config points run in parallel on host threads; results are also
//! serialized to `target/reports/ablation_banks.json`.
//!
//! Run with `cargo run --release -p sc-bench --bin ablation_banks`.

use sc_bench::{json, parallel_sweep, Json};
use sc_core::CoreConfig;
use sc_kernels::{Grid3, Stencil, StencilKernel, Variant};
use sc_mem::TcdmConfig;

struct Row {
    banks: u32,
    base_util: f64,
    chained_util: f64,
    base_conflicts: u64,
}

fn run_row(banks: u32, grid: Grid3) -> Row {
    let cfg = CoreConfig::new().with_tcdm(TcdmConfig::new().with_banks(banks));
    let mut utils = Vec::new();
    let mut base_conflicts = 0;
    for variant in [Variant::Base, Variant::ChainingPlus] {
        let gen = StencilKernel::new(Stencil::box3d1r(), grid, variant).expect("valid");
        let kernel = gen.build();
        let run = kernel
            .run(cfg, 100_000_000)
            .unwrap_or_else(|e| panic!("{banks} banks, {}: {e}", kernel.name()));
        if variant == Variant::Base {
            base_conflicts = run.measured().tcdm_conflicts;
        }
        utils.push(run.measured().fpu_utilization());
    }
    Row {
        banks,
        base_util: utils[0],
        chained_util: utils[1],
        base_conflicts,
    }
}

fn main() {
    let grid = Grid3::new(16, 6, 4);
    println!("=== FPU utilisation vs TCDM bank count (box3d1r) ===\n");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>16}",
        "banks", "Base", "Chaining+", "gap [pp]", "Base conflicts"
    );
    let (rows, timing) = parallel_sweep(vec![4u32, 8, 16, 32], |banks| run_row(banks, grid));
    for row in &rows {
        println!(
            "{:>6} {:>9.1}% {:>9.1}% {:>12.1} {:>16}",
            row.banks,
            row.base_util * 100.0,
            row.chained_util * 100.0,
            (row.chained_util - row.base_util) * 100.0,
            row.base_conflicts
        );
    }
    println!("\n{}", timing.report(rows.len()));

    let report = Json::obj()
        .set("sweep", "ablation_banks")
        .set("stencil", "box3d1r")
        .set("wall_seconds", timing.wall.as_secs_f64())
        .set("host_thread_speedup", timing.speedup())
        .set(
            "points",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .set("banks", r.banks)
                            .set("base_utilization", r.base_util)
                            .set("chaining_plus_utilization", r.chained_util)
                            .set("base_conflicts", r.base_conflicts)
                    })
                    .collect(),
            ),
        );
    match json::write_report("ablation_banks.json", &report) {
        Ok(path) => println!("json report: {}", path.display()),
        Err(e) => eprintln!("could not write json report: {e}"),
    }

    println!();
    println!("Chaining+ runs a single input stream; Base adds the coefficient");
    println!("stream whose repeated reads collide with it — the fewer the banks,");
    println!("the larger the utilisation gap.");
}
