//! Ablation: sensitivity of the Fig. 3 result to TCDM bank count.
//!
//! The `Base` variant keeps two read streams alive (inputs + coefficients)
//! while the chained variants need only one; fewer banks raise conflict
//! pressure and widen the gap — relevant for area-constrained clusters.
//!
//! Run with `cargo run --release -p sc-bench --bin ablation_banks`.

use sc_core::CoreConfig;
use sc_kernels::{Grid3, Stencil, StencilKernel, Variant};
use sc_mem::TcdmConfig;

fn main() {
    let grid = Grid3::new(16, 6, 4);
    println!("=== FPU utilisation vs TCDM bank count (box3d1r) ===\n");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>16}",
        "banks", "Base", "Chaining+", "gap [pp]", "Base conflicts"
    );
    for banks in [4u32, 8, 16, 32] {
        let cfg = CoreConfig::new()
            .with_tcdm(TcdmConfig::new().with_banks(banks));
        let mut utils = Vec::new();
        let mut base_conflicts = 0;
        for variant in [Variant::Base, Variant::ChainingPlus] {
            let gen = StencilKernel::new(Stencil::box3d1r(), grid, variant).expect("valid");
            let kernel = gen.build();
            let run = kernel
                .run(cfg, 100_000_000)
                .unwrap_or_else(|e| panic!("{banks} banks, {}: {e}", kernel.name()));
            if variant == Variant::Base {
                base_conflicts = run.measured().tcdm_conflicts;
            }
            utils.push(run.measured().fpu_utilization());
        }
        println!(
            "{:>6} {:>9.1}% {:>9.1}% {:>12.1} {:>16}",
            banks,
            utils[0] * 100.0,
            utils[1] * 100.0,
            (utils[1] - utils[0]) * 100.0,
            base_conflicts
        );
    }
    println!();
    println!("Chaining+ runs a single input stream; Base adds the coefficient");
    println!("stream whose repeated reads collide with it — the fewer the banks,");
    println!("the larger the utilisation gap.");
}
