//! Cluster scaling sweep: the paper's chaining extension at cluster
//! level, with and without the real memory system.
//!
//! Runs the `box3d1r` stencil tiled over 1/2/4/8 cores sharing one
//! banked TCDM, with chaining on (`Chaining+`) and off (`Base`), in two
//! memory regimes:
//!
//! * **unbounded** — the legacy capacity cheat: the whole problem
//!   resident in a scaled-up TCDM, no data movement modelled;
//! * **tiled** — the TCDM capped at the real cluster's 128 KiB, the
//!   problem staged in background memory, and a DMA engine
//!   double-buffering z-slab tiles through ping-pong buffers while the
//!   cores compute.
//!
//! Both regimes verify bit-exactly against the same golden model, so
//! their results are numerically identical by construction; the sweep
//! asserts this by running every config to verified completion. The
//! tiled rows additionally report DMA traffic and the compute–transfer
//! overlap fraction — how much of the engine's busy time was hidden
//! behind compute.
//!
//! The config points are independent simulations, so they fan out over
//! host threads. Machine-readable results (consumed by the CI perf
//! gate, see `baselines/`) land in `target/reports/cluster_scaling.json`.
//!
//! Run with `cargo run --release -p sc-bench --bin cluster_scaling`.

use sc_bench::{json, parallel_sweep, Json};
use sc_cluster::{ClusterSummary, DmaSummary};
use sc_core::CoreConfig;
use sc_energy::{ClusterEnergyReport, EnergyModel};
use sc_kernels::{Grid3, Stencil, StencilKernel, Variant, TCDM_CAP_BYTES};
use sc_mem::DramConfig;

const CORES: [u32; 4] = [1, 2, 4, 8];
const MAX_CYCLES: u64 = 500_000_000;

struct Point {
    cores: u32,
    chaining: bool,
    tiled: bool,
    tiles: usize,
    name: String,
    summary: ClusterSummary,
    energy: ClusterEnergyReport,
}

impl Point {
    fn id(&self) -> String {
        format!(
            "{}/c{}/{}",
            if self.tiled { "tiled" } else { "unbounded" },
            self.cores,
            if self.chaining { "chaining" } else { "base" }
        )
    }
}

fn run_point(cores: u32, chaining: bool, tiled: bool, grid: Grid3) -> Point {
    let variant = if chaining {
        Variant::ChainingPlus
    } else {
        Variant::Base
    };
    let cfg = CoreConfig::new().with_chaining(chaining);
    let gen = StencilKernel::new(Stencil::box3d1r(), grid, variant).expect("valid combination");
    let (name, tiles, summary) = if tiled {
        let tk = gen
            .build_tiled(cores, TCDM_CAP_BYTES)
            .expect("grid tiles within 128 KiB");
        let run = tk
            .run(cfg, DramConfig::new(), MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{} on {cores} cores: {e}", tk.name()));
        (tk.name().to_owned(), run.num_tiles, run.summary)
    } else {
        let ck = gen.build_cluster(cores);
        let run = ck
            .run(cfg, MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{} on {cores} cores: {e}", ck.name()));
        (ck.name().to_owned(), 1, run.summary)
    };
    let per_core: Vec<_> = summary.per_core.iter().map(|c| c.counters).collect();
    let dma_beats = summary.dma.map_or(0, |d| d.stats.beats);
    let energy = EnergyModel::new().cluster_report_with_dma(&per_core, summary.cycles, dma_beats);
    Point {
        cores,
        chaining,
        tiled,
        tiles,
        name,
        summary,
        energy,
    }
}

fn busiest_banks(by_bank: &[u64]) -> String {
    let mut ranked: Vec<(usize, u64)> = by_bank
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, c)| *c > 0)
        .collect();
    ranked.sort_by_key(|(bank, conflicts)| (std::cmp::Reverse(*conflicts), *bank));
    if ranked.is_empty() {
        return "none".to_owned();
    }
    ranked
        .iter()
        .take(3)
        .map(|(bank, conflicts)| format!("b{bank}:{conflicts}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn dma_json(dma: &DmaSummary) -> Json {
    Json::obj()
        .set("beats", dma.stats.beats)
        .set("bytes_to_tcdm", dma.stats.bytes_to_tcdm)
        .set("bytes_from_tcdm", dma.stats.bytes_from_tcdm)
        .set("transfers", dma.stats.transfers_completed)
        .set("tcdm_conflicts", dma.stats.tcdm_conflicts)
        .set("dram_wait_cycles", dma.stats.dram_wait_cycles)
        .set("busy_cycles", dma.busy_cycles)
        .set("overlap_cycles", dma.overlap_cycles)
        .set(
            "exposed_cycles",
            dma.transfer_attribution().exposed_cycles(),
        )
        .set("overlap_fraction", dma.overlap_fraction())
        .set("port", u64::from(dma.port))
}

fn point_json(p: &Point) -> Json {
    let s = &p.summary;
    let mut j = Json::obj()
        .set("id", p.id())
        .set("kernel", p.name.as_str())
        .set("cores", p.cores)
        .set("chaining", p.chaining)
        .set("tiled", p.tiled)
        .set("tiles", p.tiles)
        .set("cycles_to_last_core_done", s.cycles)
        .set("barriers", s.barriers)
        .set("cluster_utilization", s.cluster_utilization())
        .set("flops", s.aggregate.flops)
        .set("flops_per_cycle", s.flops_per_cycle())
        .set("tcdm_accesses", s.aggregate.tcdm_accesses)
        .set("tcdm_conflicts", s.aggregate.tcdm_conflicts)
        .set(
            "core_cycles",
            s.per_core.iter().map(|c| c.cycles).collect::<Vec<_>>(),
        )
        .set("core_done_at", s.core_done_at.clone())
        .set("core_conflicts", s.core_conflicts.clone())
        .set("core_accesses", s.core_accesses.clone())
        .set("conflicts_by_bank", s.conflicts_by_bank.clone())
        .set("power_mw", p.energy.power_mw)
        .set("gflops", p.energy.gflops)
        .set("gflops_per_w", p.energy.gflops_per_w)
        .set("dma_pj", p.energy.dma_pj)
        .set(
            "attribution",
            json::attribution_json(&s.attribution, s.per_core.len() as u64, s.cycles),
        );
    if let Some(dma) = &s.dma {
        j = j.set("dma", dma_json(dma));
    }
    j
}

fn main() {
    // nz = 24 gives every hart of the widest sweep point planes to own
    // *and* forces several z-slab tiles under the 128 KiB cap; nx = 16
    // satisfies both unroll factors (8 and 4).
    let grid = Grid3::new(16, 16, 24);
    println!(
        "=== Cluster scaling — box3d1r {}x{}x{}, shared 32-bank TCDM ===",
        grid.nx, grid.ny, grid.nz
    );
    println!("=== unbounded TCDM vs true 128 KiB + DMA double-buffering ===\n");

    let points: Vec<(u32, bool, bool)> = CORES
        .iter()
        .flat_map(|&c| {
            [
                (c, true, false),
                (c, false, false),
                (c, true, true),
                (c, false, true),
            ]
        })
        .collect();
    let (results, timing) = parallel_sweep(points, |(cores, chaining, tiled)| {
        run_point(cores, chaining, tiled, grid)
    });

    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>9} {:>8} {:>11} {:>9} {:>8}  hot banks",
        "cores", "variant", "memory", "cycles", "speedup", "util", "conflicts", "overlap", "power"
    );
    let base_cycles = |chaining: bool, tiled: bool| {
        results
            .iter()
            .find(|p| p.cores == 1 && p.chaining == chaining && p.tiled == tiled)
            .map_or(0, |p| p.summary.cycles)
    };
    for p in &results {
        let speedup = base_cycles(p.chaining, p.tiled) as f64 / p.summary.cycles as f64;
        let overlap = p.summary.dma.as_ref().map_or("-".to_owned(), |d| {
            format!("{:.0}%", d.overlap_fraction() * 100.0)
        });
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>8.2}x {:>7.1}% {:>11} {:>9} {:>6.1}mW  {}",
            p.cores,
            if p.chaining { "Chaining+" } else { "Base" },
            if p.tiled { "128K+DMA" } else { "unbounded" },
            p.summary.cycles,
            speedup,
            p.summary.cluster_utilization() * 100.0,
            p.summary.aggregate.tcdm_conflicts,
            overlap,
            p.energy.power_mw,
            busiest_banks(&p.summary.conflicts_by_bank),
        );
    }

    println!("\nper-core breakdown (cycles | conflicts):");
    for p in &results {
        let cores: Vec<String> = p
            .summary
            .per_core
            .iter()
            .zip(&p.summary.core_conflicts)
            .map(|(c, conflicts)| format!("{}|{}", c.cycles, conflicts))
            .collect();
        println!("  {:<32} {}", p.name, cores.join("  "));
    }

    println!("\n{}", timing.report(results.len()));

    let mut report = Json::obj()
        .set("sweep", "cluster_scaling")
        .set("stencil", "box3d1r")
        .set(
            "grid",
            vec![u64::from(grid.nx), u64::from(grid.ny), u64::from(grid.nz)],
        )
        .set("tcdm_cap_bytes", u64::from(TCDM_CAP_BYTES))
        // Both regimes verified bit-exactly against the same golden
        // model inside their run() paths, so this flag records that the
        // 128 KiB runs are numerically identical to the unbounded ones.
        .set("tiled_matches_unbounded", true)
        .set("wall_seconds", timing.wall.as_secs_f64())
        .set(
            "serial_estimate_seconds",
            timing.serial_estimate.as_secs_f64(),
        )
        .set("host_thread_speedup", timing.speedup());
    // Chaining speedup per config (cores × memory regime) — gated in CI.
    for &cores in &CORES {
        for tiled in [false, true] {
            let cyc = |chaining: bool| {
                results
                    .iter()
                    .find(|p| p.cores == cores && p.chaining == chaining && p.tiled == tiled)
                    .map_or(0, |p| p.summary.cycles)
            };
            let (base, chain) = (cyc(false), cyc(true));
            if base > 0 && chain > 0 {
                let key = format!(
                    "speedup_c{cores}_{}",
                    if tiled { "tiled" } else { "unbounded" }
                );
                report = report.set(&key, base as f64 / chain as f64);
            }
        }
    }
    report = report.set(
        "points",
        Json::Arr(results.iter().map(point_json).collect()),
    );
    match json::write_report("cluster_scaling.json", &report) {
        Ok(path) => println!("json report: {}", path.display()),
        Err(e) => eprintln!("could not write json report: {e}"),
    }

    println!();
    println!("Chaining+ scales further than Base: the freed coefficient stream");
    println!("removes one TCDM requester per core, so inter-core bank pressure");
    println!("grows more slowly with the core count. Under the true 128 KiB");
    println!("TCDM the DMA engine double-buffers z-slab tiles; the overlap");
    println!("column shows how much transfer time compute hides.");
}
