//! Cluster scaling sweep: the paper's chaining extension at cluster
//! level. Runs the `box3d1r` stencil tiled over 1/2/4/8 cores sharing
//! one banked TCDM, with chaining on (`Chaining+`) and off (`Base`), and
//! reports per-core and aggregate counters — cycles to last-core-done,
//! per-core conflict breakdown, the busiest banks, speedup and cluster
//! energy.
//!
//! The config points are independent simulations, so they fan out over
//! host threads; the wall-clock speedup over a serial sweep is reported
//! at the end. Machine-readable results land in
//! `target/reports/cluster_scaling.json`.
//!
//! Run with `cargo run --release -p sc-bench --bin cluster_scaling`.

use sc_bench::{json, parallel_sweep, Json};
use sc_cluster::ClusterSummary;
use sc_core::CoreConfig;
use sc_energy::{ClusterEnergyReport, EnergyModel};
use sc_kernels::{Grid3, Stencil, StencilKernel, Variant};

const CORES: [u32; 4] = [1, 2, 4, 8];
const MAX_CYCLES: u64 = 500_000_000;

struct Point {
    cores: u32,
    chaining: bool,
    name: String,
    summary: ClusterSummary,
    energy: ClusterEnergyReport,
}

fn run_point(cores: u32, chaining: bool, grid: Grid3) -> Point {
    let variant = if chaining {
        Variant::ChainingPlus
    } else {
        Variant::Base
    };
    let cfg = CoreConfig::new().with_chaining(chaining);
    let gen = StencilKernel::new(Stencil::box3d1r(), grid, variant).expect("valid combination");
    let ck = gen.build_cluster(cores);
    let run = ck
        .run(cfg, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{} on {cores} cores: {e}", ck.name()));
    let per_core: Vec<_> = run.summary.per_core.iter().map(|c| c.counters).collect();
    let energy = EnergyModel::new().cluster_report(&per_core, run.summary.cycles);
    Point {
        cores,
        chaining,
        name: ck.name().to_owned(),
        summary: run.summary,
        energy,
    }
}

fn busiest_banks(by_bank: &[u64]) -> String {
    let mut ranked: Vec<(usize, u64)> = by_bank
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, c)| *c > 0)
        .collect();
    ranked.sort_by_key(|(bank, conflicts)| (std::cmp::Reverse(*conflicts), *bank));
    if ranked.is_empty() {
        return "none".to_owned();
    }
    ranked
        .iter()
        .take(3)
        .map(|(bank, conflicts)| format!("b{bank}:{conflicts}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn point_json(p: &Point) -> Json {
    let s = &p.summary;
    Json::obj()
        .set("kernel", p.name.as_str())
        .set("cores", p.cores)
        .set("chaining", p.chaining)
        .set("cycles_to_last_core_done", s.cycles)
        .set("barriers", s.barriers)
        .set("cluster_utilization", s.cluster_utilization())
        .set("flops", s.aggregate.flops)
        .set("flops_per_cycle", s.flops_per_cycle())
        .set("tcdm_accesses", s.aggregate.tcdm_accesses)
        .set("tcdm_conflicts", s.aggregate.tcdm_conflicts)
        .set(
            "core_cycles",
            s.per_core.iter().map(|c| c.cycles).collect::<Vec<_>>(),
        )
        .set("core_done_at", s.core_done_at.clone())
        .set("core_conflicts", s.core_conflicts.clone())
        .set("core_accesses", s.core_accesses.clone())
        .set("conflicts_by_bank", s.conflicts_by_bank.clone())
        .set("power_mw", p.energy.power_mw)
        .set("gflops", p.energy.gflops)
        .set("gflops_per_w", p.energy.gflops_per_w)
}

fn main() {
    // nz = 8 so every hart of the widest sweep point owns ≥ 1 plane;
    // nx = 16 satisfies both unroll factors (8 and 4).
    let grid = Grid3::new(16, 8, 8);
    println!(
        "=== Cluster scaling — box3d1r {}x{}x{}, shared 32-bank TCDM ===\n",
        grid.nx, grid.ny, grid.nz
    );

    let points: Vec<(u32, bool)> = CORES
        .iter()
        .flat_map(|&c| [(c, true), (c, false)])
        .collect();
    let (results, timing) =
        parallel_sweep(points, |(cores, chaining)| run_point(cores, chaining, grid));

    println!(
        "{:>6} {:>10} {:>10} {:>9} {:>9} {:>11} {:>10} {:>10}  hot banks",
        "cores", "variant", "cycles", "speedup", "util", "conflicts", "power", "Gflop/s/W"
    );
    let mut baseline: Vec<(bool, u64)> = Vec::new();
    for p in &results {
        if p.cores == 1 {
            baseline.push((p.chaining, p.summary.cycles));
        }
    }
    let base_cycles = |chaining: bool| {
        baseline
            .iter()
            .find(|(c, _)| *c == chaining)
            .map_or(0, |(_, cy)| *cy)
    };
    for p in &results {
        let speedup = base_cycles(p.chaining) as f64 / p.summary.cycles as f64;
        println!(
            "{:>6} {:>10} {:>10} {:>8.2}x {:>8.1}% {:>11} {:>8.1}mW {:>10.2}  {}",
            p.cores,
            if p.chaining { "Chaining+" } else { "Base" },
            p.summary.cycles,
            speedup,
            p.summary.cluster_utilization() * 100.0,
            p.summary.aggregate.tcdm_conflicts,
            p.energy.power_mw,
            p.energy.gflops_per_w,
            busiest_banks(&p.summary.conflicts_by_bank),
        );
    }

    println!("\nper-core breakdown (cycles | conflicts):");
    for p in &results {
        let cores: Vec<String> = p
            .summary
            .per_core
            .iter()
            .zip(&p.summary.core_conflicts)
            .map(|(c, conflicts)| format!("{}|{}", c.cycles, conflicts))
            .collect();
        println!("  {:<24} {}", p.name, cores.join("  "));
    }

    println!("\n{}", timing.report(results.len()));

    let report = Json::obj()
        .set("sweep", "cluster_scaling")
        .set("stencil", "box3d1r")
        .set(
            "grid",
            vec![u64::from(grid.nx), u64::from(grid.ny), u64::from(grid.nz)],
        )
        .set("wall_seconds", timing.wall.as_secs_f64())
        .set(
            "serial_estimate_seconds",
            timing.serial_estimate.as_secs_f64(),
        )
        .set("host_thread_speedup", timing.speedup())
        .set(
            "points",
            Json::Arr(results.iter().map(point_json).collect()),
        );
    match json::write_report("cluster_scaling.json", &report) {
        Ok(path) => println!("json report: {}", path.display()),
        Err(e) => eprintln!("could not write json report: {e}"),
    }

    println!();
    println!("Chaining+ scales further than Base: the freed coefficient stream");
    println!("removes one TCDM requester per core, so inter-core bank pressure");
    println!("grows more slowly with the core count.");
}
