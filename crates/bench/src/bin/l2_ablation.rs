//! L2 cache ablation: capacity × associativity × refill channels ×
//! chaining, on the tiled multi-cluster stencil.
//!
//! The tiled planner's working-set report sizes the sweep: an
//! **over-fit** L2 (2× the plan's distinct Dram footprint) holds the
//! whole problem after the compulsory misses, while an **under-fit** one
//! (a quarter of the footprint) forces capacity evictions — and, with
//! write-back on, dirty-line write-back traffic that contends with
//! refills for the L2↔Dram channels. Sweeping the channel count then
//! shows how much of the capacity-miss penalty parallel refill can buy
//! back, with chaining on and off on the compute side.
//!
//! The validator asserts the cross-module accounting invariants (every
//! granted beat classified by the cache core) and the capacity story
//! (under-fit ⇒ non-zero evictions *and* write-back beats; over-fit at
//! full associativity ⇒ none). Machine-readable results land in
//! `target/reports/l2_ablation.json`, gated in CI against
//! `baselines/l2_ablation.json` — including the flat per-point
//! `l2_evictions` / `l2_writeback_beats` traffic counts.
//!
//! Run with `cargo run --release -p sc-bench --bin l2_ablation`.
//! Pass `--trace <path>` to additionally re-run the most contended
//! point — under-fit, single refill channel, chaining — with a trace
//! subscription and write its Perfetto timeline JSON to `<path>`.

use sc_bench::{json, parallel_sweep, Json};
use sc_core::CoreConfig;
use sc_kernels::{Grid3, Stencil, StencilKernel, Variant, WorkingSet, TCDM_CAP_BYTES};
use sc_mem::{DramConfig, L2Config};
use sc_system::SystemSummary;
use sc_trace::{TraceConfig, TraceSession};

const CLUSTERS: u32 = 2;
const CORES: u32 = 2;
const WAYS: [u32; 2] = [2, 8];
const CHANNELS: [u32; 2] = [1, 4];
const MSHRS: u32 = 8;
const MAX_CYCLES: u64 = 500_000_000;

/// Capacities must divide into whole sets for every swept associativity.
const CAP_GRANULE: u32 = 256 * 8;

struct Point {
    capacity: u32,
    ways: u32,
    channels: u32,
    chaining: bool,
    overfit: bool,
    summary: SystemSummary,
}

impl Point {
    fn id(&self) -> String {
        format!(
            "cap{}K/w{}/ch{}/{}",
            self.capacity >> 10,
            self.ways,
            self.channels,
            if self.chaining { "chaining" } else { "base" }
        )
    }
}

fn l2_config(capacity: u32, ways: u32, channels: u32) -> L2Config {
    L2Config::new()
        .with_capacity_bytes(capacity)
        .with_ways(ways)
        .with_refill_channels(channels)
        .with_mshrs(MSHRS)
        .with_write_back(true)
        .with_refill_latency(64)
        .with_refill_cycles_per_beat(1)
        .with_bank_width(8)
}

fn run_point(
    grid: Grid3,
    capacity: u32,
    ways: u32,
    channels: u32,
    chaining: bool,
    overfit: bool,
) -> Point {
    let variant = if chaining {
        Variant::ChainingPlus
    } else {
        Variant::Base
    };
    let gen = StencilKernel::new(Stencil::box3d1r(), grid, variant).expect("valid combination");
    let tk = gen
        .build_system_tiled(CLUSTERS, CORES, TCDM_CAP_BYTES)
        .expect("slabs tile within 128 KiB");
    let run = tk
        .run(
            CoreConfig::new().with_chaining(chaining),
            l2_config(capacity, ways, channels),
            DramConfig::new(),
            MAX_CYCLES,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", tk.name()));
    Point {
        capacity,
        ways,
        channels,
        chaining,
        overfit,
        summary: run.summary,
    }
}

fn point_json(p: &Point) -> Json {
    let s = &p.summary;
    let l2 = s.l2.as_ref().expect("shared memory attached");
    Json::obj()
        .set("id", p.id())
        .set("capacity_bytes", p.capacity)
        .set("ways", p.ways)
        .set("channels", p.channels)
        .set("chaining", p.chaining)
        .set("overfit", p.overfit)
        .set("cycles_to_last_core_done", s.cycles)
        .set("tcdm_conflicts", s.aggregate.tcdm_conflicts)
        // Flat traffic counts (pinned by the perf gate's point metrics).
        .set("l2_evictions", l2.cache.evictions)
        .set("l2_writeback_beats", s.l2_writeback_beats)
        .set(
            "l2",
            json::l2_stats_json(
                l2,
                s.l2_refill_beats,
                s.l2_writeback_beats,
                s.l2_prefetch_beats,
            ),
        )
        .set(
            "l2_occupancy",
            json::refill_occupancy_json(&s.refill_occupancy()),
        )
        .set(
            "attribution",
            json::attribution_json(&s.attribution, total_harts(s), s.cycles),
        )
}

/// Harts the system-level attribution aggregates over.
fn total_harts(s: &SystemSummary) -> u64 {
    s.per_cluster.iter().map(|c| c.per_core.len() as u64).sum()
}

/// Accounting and capacity-story invariants — a violation is a model
/// bug, not a perf regression.
fn validate(points: &[Point]) {
    for p in points {
        let l2 = p.summary.l2.as_ref().expect("shared memory attached");
        let c = &l2.cache;
        assert_eq!(
            c.read_hits + c.read_misses + c.write_beats,
            l2.accesses,
            "{}: every granted beat must be classified by the cache core",
            p.id()
        );
        assert!(
            c.refills <= c.mshr_allocations,
            "{}: refills outnumber MSHR allocations",
            p.id()
        );
        assert!(
            c.mshr_peak <= u64::from(MSHRS),
            "{}: MSHR file overflowed its configured size",
            p.id()
        );
        if p.overfit && p.ways == WAYS[1] {
            assert_eq!(
                c.evictions,
                0,
                "{}: an over-fit associative L2 must hold the working set",
                p.id()
            );
        }
        if !p.overfit {
            assert!(
                c.evictions > 0 && p.summary.l2_writeback_beats > 0,
                "{}: an under-fit write-back L2 must evict dirty lines \
                 (evictions {}, writeback beats {})",
                p.id(),
                c.evictions,
                p.summary.l2_writeback_beats
            );
        }
    }
    // Capacity pressure costs cycles: under-fit never beats over-fit at
    // the same ways/channels/variant point.
    for under in points.iter().filter(|p| !p.overfit) {
        let over = points
            .iter()
            .find(|p| {
                p.overfit
                    && p.ways == under.ways
                    && p.channels == under.channels
                    && p.chaining == under.chaining
            })
            .expect("matched over-fit point");
        assert!(
            under.summary.cycles >= over.summary.cycles,
            "{}: capacity misses cannot make the run faster ({} vs {})",
            under.id(),
            under.summary.cycles,
            over.summary.cycles
        );
    }
}

/// Parses `--trace <path>` from the command line, if present.
fn trace_path() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--trace" => Some(path.into()),
        [flag] if flag == "--trace" => {
            eprintln!("--trace needs a path argument");
            std::process::exit(2);
        }
        other => {
            eprintln!("unknown arguments {other:?} (only --trace <path> is accepted)");
            std::process::exit(2);
        }
    }
}

/// Re-runs the most contended under-fit point with a trace subscription
/// and writes the Perfetto timeline to `path`. The traced run must be
/// results-identical to the sweep's own run of the same point.
fn write_trace(grid: Grid3, capacity: u32, sweep_cycles: u64, path: &std::path::Path) {
    let gen = StencilKernel::new(Stencil::box3d1r(), grid, Variant::ChainingPlus)
        .expect("valid combination");
    let tk = gen
        .build_system_tiled(CLUSTERS, CORES, TCDM_CAP_BYTES)
        .expect("slabs tile within 128 KiB");
    let session = TraceSession::new(TraceConfig::new().with_sample_every(1024));
    let run = tk
        .run_traced(
            CoreConfig::new().with_chaining(true),
            l2_config(capacity, WAYS[1], CHANNELS[0]),
            DramConfig::new(),
            MAX_CYCLES,
            session.tracer(),
        )
        .unwrap_or_else(|e| panic!("traced point: {e}"));
    assert_eq!(
        run.summary.cycles, sweep_cycles,
        "the traced re-run must be cycle-identical to the sweep's run"
    );
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create trace directory");
    }
    std::fs::write(path, session.perfetto_json()).expect("write trace");
    println!(
        "perfetto trace ({} events): {}",
        session.events_buffered(),
        path.display()
    );
}

fn main() {
    let trace = trace_path();
    let grid = Grid3::new(16, 16, 16);
    // Plan once to size the sweep off the working-set report.
    let ws: WorkingSet = StencilKernel::new(Stencil::box3d1r(), grid, Variant::ChainingPlus)
        .expect("valid combination")
        .build_system_tiled(CLUSTERS, CORES, TCDM_CAP_BYTES)
        .expect("slabs tile within 128 KiB")
        .working_set()
        .clone();
    let footprint = ws.footprint_bytes();
    let over = ws.overfit_capacity(CAP_GRANULE);
    let under = ws.underfit_capacity(CAP_GRANULE);
    println!(
        "=== L2 ablation — box3d1r {}x{}x{}, m{CLUSTERS}x{CORES} tiled ===",
        grid.nx, grid.ny, grid.nz
    );
    println!(
        "=== working set: {} B footprint ({} lines of 256 B), {} B traffic ===",
        footprint,
        ws.l2_lines(256),
        ws.traffic_bytes()
    );
    println!(
        "=== capacities: over-fit {over} B, under-fit {under} B x ways {WAYS:?} x channels {CHANNELS:?} ===\n",
    );

    let configs: Vec<(u32, u32, u32, bool, bool)> = [(over, true), (under, false)]
        .iter()
        .flat_map(|&(cap, overfit)| {
            WAYS.iter().flat_map(move |&w| {
                CHANNELS.iter().flat_map(move |&ch| {
                    [true, false].map(|chaining| (cap, w, ch, chaining, overfit))
                })
            })
        })
        .collect();
    let (results, timing) = parallel_sweep(configs, |(cap, w, ch, chaining, overfit)| {
        run_point(grid, cap, w, ch, chaining, overfit)
    });
    validate(&results);

    println!(
        "{:>14} {:>5} {:>4} {:>10} {:>10} {:>8} {:>9} {:>10} {:>9} {:>9}",
        "config",
        "ways",
        "ch",
        "variant",
        "cycles",
        "hits",
        "misses",
        "evictions",
        "wb-beats",
        "merges"
    );
    for p in &results {
        let l2 = p.summary.l2.as_ref().unwrap();
        println!(
            "{:>14} {:>5} {:>4} {:>10} {:>10} {:>8} {:>9} {:>10} {:>9} {:>9}",
            format!(
                "{}K {}",
                p.capacity >> 10,
                if p.overfit { "(over)" } else { "(under)" }
            ),
            p.ways,
            p.channels,
            if p.chaining { "Chaining+" } else { "Base" },
            p.summary.cycles,
            l2.cache.read_hits,
            l2.cache.read_misses,
            l2.cache.evictions,
            p.summary.l2_writeback_beats,
            l2.cache.mshr_merges,
        );
    }
    println!("\n{}", timing.report(results.len()));

    let mut report = Json::obj()
        .set("sweep", "l2_ablation")
        .set("stencil", "box3d1r")
        .set(
            "grid",
            vec![u64::from(grid.nx), u64::from(grid.ny), u64::from(grid.nz)],
        )
        .set("clusters", CLUSTERS)
        .set("cores", CORES)
        .set("working_set_footprint_bytes", footprint)
        .set("working_set_traffic_bytes", ws.traffic_bytes())
        .set("working_set_l2_lines", ws.l2_lines(256))
        .set("capacity_overfit_bytes", over)
        .set("capacity_underfit_bytes", under)
        .set("wall_seconds", timing.wall.as_secs_f64());
    // How much of the capacity-miss penalty parallel refill buys back on
    // the under-fit points (gated as speedup_* ratios).
    for chaining in [true, false] {
        let cyc = |channels: u32| {
            results
                .iter()
                .find(|p| {
                    !p.overfit
                        && p.ways == WAYS[1]
                        && p.channels == channels
                        && p.chaining == chaining
                })
                .map(|p| p.summary.cycles)
        };
        if let (Some(one), Some(four)) = (cyc(CHANNELS[0]), cyc(CHANNELS[1])) {
            let key = format!(
                "speedup_ch{}_underfit_{}",
                CHANNELS[1],
                if chaining { "chaining" } else { "base" }
            );
            report = report.set(&key, one as f64 / four as f64);
        }
    }
    report = report.set(
        "points",
        Json::Arr(results.iter().map(point_json).collect()),
    );
    match json::write_report("l2_ablation.json", &report) {
        Ok(path) => println!("json report: {}", path.display()),
        Err(e) => eprintln!("could not write json report: {e}"),
    }

    if let Some(path) = trace {
        let sweep_cycles = results
            .iter()
            .find(|p| !p.overfit && p.ways == WAYS[1] && p.channels == CHANNELS[0] && p.chaining)
            .expect("swept point present")
            .summary
            .cycles;
        write_trace(grid, under, sweep_cycles, &path);
    }

    println!();
    println!("An L2 smaller than the tiled working set turns the halo revisits");
    println!("into capacity misses and dirty write-backs; extra refill channels");
    println!("recover part of that penalty, which is exactly the regime where");
    println!("chaining's freed memory ports matter most.");
}
