//! Regenerates the paper's Fig. 3 — FPU utilisation (left) and power
//! consumption (right) for Base--, Base-, Base, Chaining and Chaining+ on
//! the box3d1r and j3d27pt stencils — plus the §III headline geomeans.
//!
//! Run with `cargo run --release -p sc-bench --bin fig3`.
//! Pass `--csv` to print machine-readable output instead.

use sc_bench::{fig3_csv, headline, render_fig3, render_headline, Fig3Experiment};
use sc_energy::EnergyModel;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let experiment = Fig3Experiment::new();
    let model = EnergyModel::new();
    let results = experiment
        .run(&model)
        .unwrap_or_else(|e| panic!("fig3 sweep failed: {e}"));
    if csv {
        print!("{}", fig3_csv(&results));
        return;
    }
    println!("=== Fig. 3 — per-stencil interior tiles, 1 GHz, default energy model ===\n");
    print!("{}", render_fig3(&results));
    println!();
    print!("{}", render_headline(&headline(&results)));
    println!();
    println!("Notes: absolute levels are properties of this model, not the paper's");
    println!("RTL+PrimeTime flow; the reproduced quantities are the variant ordering,");
    println!("the >93 % chained utilisation, and the geomean speedup/efficiency gains.");
}
