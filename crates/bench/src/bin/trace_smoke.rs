//! Trace smoke check: runs a tiny tiled stencil twice — untraced and
//! with a [`sc_trace::TraceSession`] subscribed — asserts the traced
//! run is results-identical (same cycle count, same verified store
//! image), then writes the Perfetto timeline JSON and the sampled
//! metric CSV to `target/reports/` and re-parses the JSON to validate
//! the trace-event schema (`traceEvents` array, `ph`/`pid`/`ts` fields,
//! durations on every complete event).
//!
//! CI runs this on every push and uploads the trace as an artifact, so
//! a schema break or a tracing-dependent result divergence fails fast
//! on a sub-second run.
//!
//! Run with `cargo run --release -p sc-bench --bin trace_smoke`.

use sc_bench::Json;
use sc_core::CoreConfig;
use sc_kernels::{Grid3, Stencil, StencilKernel, Variant, TCDM_CAP_BYTES};
use sc_mem::{DramConfig, L2Config};
use sc_trace::{TraceConfig, TraceSession, Tracer};

const CLUSTERS: u32 = 2;
const CORES: u32 = 2;
const MAX_CYCLES: u64 = 100_000_000;

fn main() {
    let grid = Grid3::new(8, 8, 8);
    let gen = StencilKernel::new(Stencil::box3d1r(), grid, Variant::ChainingPlus)
        .expect("valid combination");
    let tk = gen
        .build_system_tiled(CLUSTERS, CORES, TCDM_CAP_BYTES)
        .expect("slabs tile within 128 KiB");
    // Under-fit the L2 so the trace exercises the interesting spans:
    // refill/write-back channel occupancy and prefetch stream lifetimes.
    let l2 = L2Config::new()
        .with_capacity_bytes(tk.working_set().underfit_capacity(256 * 8))
        .with_ways(4)
        .with_mshrs(8)
        .with_refill_channels(2)
        .with_write_back(true);

    let cfg = CoreConfig::new();
    let untraced = tk
        .run(cfg, l2, DramConfig::new(), MAX_CYCLES)
        .expect("untraced run completes");

    let session = TraceSession::new(TraceConfig::new().with_sample_every(256));
    let traced = tk
        .run_traced(cfg, l2, DramConfig::new(), MAX_CYCLES, session.tracer())
        .expect("traced run completes and verifies the same store image");

    // Tracing must be an observer: cycle-for-cycle identical results.
    assert_eq!(
        untraced.summary.cycles, traced.summary.cycles,
        "subscribing a tracer changed the cycle count"
    );
    assert!(
        session.events_buffered() > 0,
        "a traced under-fit run must buffer events"
    );

    let json = session.perfetto_json();
    let csv = session.samples_csv();
    validate_perfetto(&json);
    validate_csv(&csv);

    let dir = std::path::Path::new("target").join("reports");
    std::fs::create_dir_all(&dir).expect("create target/reports");
    let trace_path = dir.join("trace_smoke.json");
    std::fs::write(&trace_path, &json).expect("write trace");
    let csv_path = dir.join("trace_smoke_metrics.csv");
    std::fs::write(&csv_path, &csv).expect("write metric series");

    println!(
        "trace ok: {} cycles, {} buffered events, {} bytes of perfetto json",
        traced.summary.cycles,
        session.events_buffered(),
        json.len()
    );
    println!("timeline: {}", trace_path.display());
    println!("metrics:  {}", csv_path.display());

    // A second session must be inert when never subscribed: the off
    // tracer is the zero-cost path every production run takes.
    let off = Tracer::off();
    assert!(!off.is_on(), "Tracer::off() must report off");
}

/// Round-trips the emitted JSON through the bench parser and asserts
/// the Chrome trace-event shape Perfetto loads.
fn validate_perfetto(json: &str) {
    let doc = Json::parse(json).expect("emitted trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::items)
        .expect("trace must carry a traceEvents array");
    assert!(!events.is_empty(), "traceEvents must be non-empty");
    let mut metadata = 0usize;
    let mut complete = 0usize;
    let mut counters = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("traceEvents[{i}] has no ph"));
        assert!(
            e.get("pid").and_then(Json::as_f64).is_some(),
            "traceEvents[{i}] has no pid"
        );
        match ph {
            "M" => metadata += 1,
            "X" => {
                assert!(
                    e.get("ts").and_then(Json::as_f64).is_some()
                        && e.get("dur").and_then(Json::as_f64).is_some(),
                    "complete event traceEvents[{i}] needs ts and dur"
                );
                complete += 1;
            }
            "i" => assert!(
                e.get("ts").and_then(Json::as_f64).is_some(),
                "instant traceEvents[{i}] needs ts"
            ),
            "C" => {
                assert!(
                    e.get("ts").and_then(Json::as_f64).is_some() && e.get("args").is_some(),
                    "counter traceEvents[{i}] needs ts and args"
                );
                counters += 1;
            }
            other => panic!("traceEvents[{i}] has unexpected ph {other:?}"),
        }
    }
    assert!(metadata > 0, "process/thread name metadata must be present");
    assert!(complete > 0, "an under-fit run must emit spans");
    assert!(counters > 0, "occupancy counters must be present");
}

/// Asserts the sampled metric series header and that the interval
/// sampler produced rows from more than one metric source.
fn validate_csv(csv: &str) {
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("cycle,pid,tid,source,metric,value"),
        "metric series header drifted"
    );
    let sources: std::collections::BTreeSet<&str> =
        lines.filter_map(|l| l.split(',').nth(3)).collect();
    for want in ["core", "tcdm", "dma", "l2"] {
        assert!(
            sources.contains(want),
            "sampled series lacks the `{want}` source (got {sources:?})"
        );
    }
}
