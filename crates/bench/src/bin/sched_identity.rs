//! Scheduler identity sweep: `SchedMode::Event` replayed against
//! `SchedMode::Dense` on **every config point of every baseline sweep**.
//!
//! The event-driven scheduler is allowed to fast-forward the clock only
//! across windows where stepping would provably change nothing, so it
//! must be an observable no-op: identical cycle counts, per-core
//! `PerfCounters`, DMA statistics and overlap accounting, barrier
//! counts, TCDM conflict maps and shared-L2 statistics. The kernel
//! proptests pin this over *random* kernels; this sweep pins it over the
//! exact grids the CI perf gate baselines — `cluster_scaling`,
//! `system_scaling`, `l2_ablation`, `weak_scaling` and
//! `prefetch_ablation` — so a scheduler bug cannot hide in a corner of
//! the baselined configuration space.
//!
//! Every point runs twice (dense, then event) and the two summaries are
//! compared field by field; any divergence panics with the offending
//! point id. The comparison also re-verifies the top-down attribution's
//! partition invariant (`sum(leaves) == cycles`, per hart and per
//! padded roll-up) on every point — this sweep is CI's proof that the
//! invariant holds across the whole baselined configuration space.
//! Machine-readable results land in `target/reports/sched_identity.json`.
//!
//! Run with `cargo run --release -p sc-bench --bin sched_identity`.

use sc_bench::{json, parallel_sweep, Json};
use sc_cluster::ClusterSummary;
use sc_core::{CoreConfig, SchedMode};
use sc_kernels::{Grid3, Stencil, StencilKernel, Variant, TCDM_CAP_BYTES};
use sc_mem::{DramConfig, L2Config};
use sc_system::SystemSummary;

const MAX_CYCLES: u64 = 500_000_000;

/// Capacity granule shared by the capacity-swept ablations: capacities
/// must divide into whole sets for every swept associativity.
const CAP_GRANULE: u32 = 256 * 8;

/// The summary a point produces — cluster-level or system-level.
enum Summary {
    Cluster(ClusterSummary),
    System(SystemSummary),
}

/// One baseline config point: a display id plus how to run it under an
/// explicit scheduling mode.
struct Case {
    id: String,
    run: Box<dyn Fn(SchedMode) -> Summary + Send + Sync>,
}

impl Case {
    fn new(id: String, run: impl Fn(SchedMode) -> Summary + Send + Sync + 'static) -> Self {
        Case {
            id,
            run: Box::new(run),
        }
    }
}

fn variant(chaining: bool) -> Variant {
    if chaining {
        Variant::ChainingPlus
    } else {
        Variant::Base
    }
}

fn gen(grid: Grid3, chaining: bool) -> StencilKernel {
    StencilKernel::new(Stencil::box3d1r(), grid, variant(chaining)).expect("valid combination")
}

/// Field-by-field comparison of two cluster summaries.
fn assert_cluster_identical(id: &str, dense: &ClusterSummary, event: &ClusterSummary) {
    assert_eq!(dense.cycles, event.cycles, "{id}: cluster cycles diverge");
    assert_eq!(dense.per_core.len(), event.per_core.len(), "{id}");
    for (i, (a, b)) in dense.per_core.iter().zip(&event.per_core).enumerate() {
        assert_eq!(a.counters, b.counters, "{id}: hart{i} counters diverge");
        assert_eq!(a.region, b.region, "{id}: hart{i} measured region diverges");
    }
    assert_eq!(dense.aggregate, event.aggregate, "{id}: aggregate diverges");
    assert_eq!(
        dense.core_done_at, event.core_done_at,
        "{id}: done-at diverges"
    );
    assert_eq!(dense.core_conflicts, event.core_conflicts, "{id}");
    assert_eq!(dense.core_accesses, event.core_accesses, "{id}");
    assert_eq!(dense.conflicts_by_bank, event.conflicts_by_bank, "{id}");
    assert_eq!(dense.accesses_by_bank, event.accesses_by_bank, "{id}");
    assert_eq!(
        dense.barriers, event.barriers,
        "{id}: barrier count diverges"
    );
    assert_eq!(dense.system_barriers, event.system_barriers, "{id}");
    assert_eq!(dense.dma, event.dma, "{id}: DMA stats/overlap diverge");
    assert_eq!(
        dense.attribution, event.attribution,
        "{id}: top-down attribution diverges"
    );
    // Beyond dense ≡ event: the attribution must *partition* the run at
    // every level — each hart's leaves sum to its own cycle count, and
    // the padded cluster roll-up covers harts × wall-clock exactly.
    for (i, c) in dense.per_core.iter().enumerate() {
        c.counters
            .attr
            .verify(c.counters.cycles)
            .unwrap_or_else(|e| panic!("{id}: hart{i}: {e}"));
    }
    dense
        .attribution
        .verify(dense.cycles * dense.per_core.len() as u64)
        .unwrap_or_else(|e| panic!("{id}: cluster roll-up: {e}"));
}

/// Field-by-field comparison of two system summaries.
fn assert_system_identical(id: &str, dense: &SystemSummary, event: &SystemSummary) {
    assert_eq!(dense.cycles, event.cycles, "{id}: system cycles diverge");
    assert_eq!(dense.per_cluster.len(), event.per_cluster.len(), "{id}");
    for (m, (a, b)) in dense.per_cluster.iter().zip(&event.per_cluster).enumerate() {
        assert_cluster_identical(&format!("{id} cluster{m}"), a, b);
    }
    assert_eq!(dense.aggregate, event.aggregate, "{id}: aggregate diverges");
    assert_eq!(dense.cluster_done_at, event.cluster_done_at, "{id}");
    assert_eq!(dense.system_barriers, event.system_barriers, "{id}");
    assert_eq!(dense.l2, event.l2, "{id}: shared-L2 stats diverge");
    assert_eq!(dense.l2_refill_beats, event.l2_refill_beats, "{id}");
    assert_eq!(dense.l2_writeback_beats, event.l2_writeback_beats, "{id}");
    assert_eq!(dense.l2_prefetch_beats, event.l2_prefetch_beats, "{id}");
    assert_eq!(
        dense.attribution, event.attribution,
        "{id}: top-down attribution diverges"
    );
    let harts: u64 = dense
        .per_cluster
        .iter()
        .map(|c| c.per_core.len() as u64)
        .sum();
    dense
        .attribution
        .verify(dense.cycles * harts)
        .unwrap_or_else(|e| panic!("{id}: system roll-up: {e}"));
}

/// `cluster_scaling`: box3d1r 16x16x24, 1/2/4/8 cores, chaining on/off,
/// unbounded and 128 KiB tiled + DMA.
fn cluster_scaling_cases(cases: &mut Vec<Case>) {
    let grid = Grid3::new(16, 16, 24);
    for cores in [1u32, 2, 4, 8] {
        for chaining in [true, false] {
            for tiled in [false, true] {
                let id = format!(
                    "cluster_scaling/{}/c{cores}/{}",
                    if tiled { "tiled" } else { "unbounded" },
                    if chaining { "chaining" } else { "base" }
                );
                cases.push(Case::new(id.clone(), move |mode| {
                    let cfg = CoreConfig::new().with_chaining(chaining);
                    if tiled {
                        let tk = gen(grid, chaining)
                            .build_tiled(cores, TCDM_CAP_BYTES)
                            .expect("grid tiles within 128 KiB");
                        let run = tk
                            .run_scheduled(cfg, DramConfig::new(), MAX_CYCLES, mode)
                            .unwrap_or_else(|e| panic!("{id}: {e}"));
                        Summary::Cluster(run.summary)
                    } else {
                        let ck = gen(grid, chaining).build_cluster(cores);
                        let run = ck
                            .run_scheduled(cfg, MAX_CYCLES, mode)
                            .unwrap_or_else(|e| panic!("{id}: {e}"));
                        Summary::Cluster(run.summary)
                    }
                }));
            }
        }
    }
}

/// `system_scaling`: box3d1r 16x16x24, 1/2/4 clusters x 1/4/8 cores,
/// chaining on/off, unbounded and tiled through the shared L2.
fn system_scaling_cases(cases: &mut Vec<Case>) {
    let grid = Grid3::new(16, 16, 24);
    for clusters in [1u32, 2, 4] {
        for cores in [1u32, 4, 8] {
            for chaining in [true, false] {
                for tiled in [false, true] {
                    let id = format!(
                        "system_scaling/{}/m{clusters}/c{cores}/{}",
                        if tiled { "tiled" } else { "unbounded" },
                        if chaining { "chaining" } else { "base" }
                    );
                    cases.push(Case::new(id.clone(), move |mode| {
                        let cfg = CoreConfig::new().with_chaining(chaining);
                        if tiled {
                            let tk = gen(grid, chaining)
                                .build_system_tiled(clusters, cores, TCDM_CAP_BYTES)
                                .expect("slabs tile within 128 KiB");
                            let run = tk
                                .run_scheduled(
                                    cfg,
                                    L2Config::new(),
                                    DramConfig::new(),
                                    MAX_CYCLES,
                                    mode,
                                )
                                .unwrap_or_else(|e| panic!("{id}: {e}"));
                            Summary::System(run.summary)
                        } else {
                            let sk = gen(grid, chaining).build_system(clusters, cores);
                            let run = sk
                                .run_scheduled(cfg, MAX_CYCLES, mode)
                                .unwrap_or_else(|e| panic!("{id}: {e}"));
                            Summary::System(run.summary)
                        }
                    }));
                }
            }
        }
    }
}

/// `l2_ablation`: box3d1r 16x16x16 on m2xc2 tiled, over/under-fit
/// capacity x ways {2,8} x refill channels {1,4} x chaining.
fn l2_ablation_cases(cases: &mut Vec<Case>) {
    let grid = Grid3::new(16, 16, 16);
    let ws = gen(grid, true)
        .build_system_tiled(2, 2, TCDM_CAP_BYTES)
        .expect("slabs tile within 128 KiB")
        .working_set()
        .clone();
    for (capacity, fit) in [
        (ws.overfit_capacity(CAP_GRANULE), "over"),
        (ws.underfit_capacity(CAP_GRANULE), "under"),
    ] {
        for ways in [2u32, 8] {
            for channels in [1u32, 4] {
                for chaining in [true, false] {
                    let id = format!(
                        "l2_ablation/{fit}/w{ways}/ch{channels}/{}",
                        if chaining { "chaining" } else { "base" }
                    );
                    let l2 = L2Config::new()
                        .with_capacity_bytes(capacity)
                        .with_ways(ways)
                        .with_refill_channels(channels)
                        .with_mshrs(8)
                        .with_write_back(true)
                        .with_refill_latency(64)
                        .with_refill_cycles_per_beat(1)
                        .with_bank_width(8);
                    cases.push(Case::new(id.clone(), move |mode| {
                        let tk = gen(grid, chaining)
                            .build_system_tiled(2, 2, TCDM_CAP_BYTES)
                            .expect("slabs tile within 128 KiB");
                        let run = tk
                            .run_scheduled(
                                CoreConfig::new().with_chaining(chaining),
                                l2,
                                DramConfig::new(),
                                MAX_CYCLES,
                                mode,
                            )
                            .unwrap_or_else(|e| panic!("{id}: {e}"));
                        Summary::System(run.summary)
                    }));
                }
            }
        }
    }
}

/// `weak_scaling`: the grid grows with the cluster count (16x16x8m on
/// 4 cores), chaining on/off, unbounded and tiled with 1 and 4 refill
/// channels.
fn weak_scaling_cases(cases: &mut Vec<Case>) {
    for clusters in [1u32, 2, 4] {
        let grid = Grid3::new(16, 16, 8 * clusters);
        for chaining in [true, false] {
            for channels in [None, Some(1u32), Some(4u32)] {
                let id = format!(
                    "weak_scaling/{}/m{clusters}/{}",
                    channels.map_or("unbounded".to_owned(), |ch| format!("tiled_ch{ch}")),
                    if chaining { "chaining" } else { "base" }
                );
                cases.push(Case::new(id.clone(), move |mode| {
                    let cfg = CoreConfig::new().with_chaining(chaining);
                    match channels {
                        None => {
                            let sk = gen(grid, chaining).build_system(clusters, 4);
                            let run = sk
                                .run_scheduled(cfg, MAX_CYCLES, mode)
                                .unwrap_or_else(|e| panic!("{id}: {e}"));
                            Summary::System(run.summary)
                        }
                        Some(ch) => {
                            let tk = gen(grid, chaining)
                                .build_system_tiled(clusters, 4, TCDM_CAP_BYTES)
                                .expect("slabs tile within 128 KiB");
                            let l2 = L2Config::new()
                                .with_refill_channels(ch)
                                .with_refill_latency(64)
                                .with_refill_cycles_per_beat(1);
                            let run = tk
                                .run_scheduled(cfg, l2, DramConfig::new(), MAX_CYCLES, mode)
                                .unwrap_or_else(|e| panic!("{id}: {e}"));
                            Summary::System(run.summary)
                        }
                    }
                }));
            }
        }
    }
}

/// `prefetch_ablation`: box3d1r 24x24x24, 1/2 clusters x 4 cores,
/// over/under-fit x channels {1,4} x chaining x prefetch
/// {off, (2,8), (2,32), (4,8), (4,32)} through the narrow 3-cycle port.
fn prefetch_ablation_cases(cases: &mut Vec<Case>) {
    let grid = Grid3::new(24, 24, 24);
    for clusters in [1u32, 2] {
        let ws = gen(grid, true)
            .build_system_tiled(clusters, 4, TCDM_CAP_BYTES)
            .expect("slabs tile within the TCDM cap")
            .working_set()
            .clone();
        for (capacity, fit) in [
            (ws.overfit_capacity(CAP_GRANULE), "over"),
            (ws.underfit_capacity(CAP_GRANULE), "under"),
        ] {
            for channels in [1u32, 4] {
                for chaining in [true, false] {
                    for prefetch in std::iter::once(None)
                        .chain([(2u32, 8u32), (2, 32), (4, 8), (4, 32)].map(Some))
                    {
                        let id = format!(
                            "prefetch_ablation/m{clusters}/{fit}/ch{channels}/{}/{}",
                            if chaining { "chaining" } else { "base" },
                            prefetch.map_or("off".to_owned(), |(d, dist)| format!("d{d}D{dist}"))
                        );
                        let base = L2Config::new()
                            .with_capacity_bytes(capacity)
                            .with_ways(8)
                            .with_refill_channels(channels)
                            .with_mshrs(8)
                            .with_write_back(true)
                            .with_refill_latency(64)
                            .with_refill_cycles_per_beat(1)
                            .with_bank_width(8)
                            .with_cycles_per_beat(3);
                        let l2 = match prefetch {
                            None => base,
                            Some((degree, distance)) => base
                                .with_prefetch(true)
                                .with_prefetch_degree(degree)
                                .with_prefetch_distance(distance)
                                .with_prefetch_queue(2 * distance),
                        };
                        cases.push(Case::new(id.clone(), move |mode| {
                            let tk = gen(grid, chaining)
                                .build_system_tiled(clusters, 4, TCDM_CAP_BYTES)
                                .expect("slabs tile within the TCDM cap");
                            let run = tk
                                .run_scheduled(
                                    CoreConfig::new().with_chaining(chaining),
                                    l2,
                                    DramConfig::new(),
                                    MAX_CYCLES,
                                    mode,
                                )
                                .unwrap_or_else(|e| panic!("{id}: {e}"));
                            Summary::System(run.summary)
                        }));
                    }
                }
            }
        }
    }
}

/// The per-point verdict the sweep reports after the comparison passed.
struct Verdict {
    id: String,
    cycles: u64,
}

fn main() {
    let mut cases: Vec<Case> = Vec::new();
    cluster_scaling_cases(&mut cases);
    system_scaling_cases(&mut cases);
    l2_ablation_cases(&mut cases);
    weak_scaling_cases(&mut cases);
    prefetch_ablation_cases(&mut cases);

    println!("=== scheduler identity — event vs dense on every baseline point ===");
    println!("=== {} config points x 2 modes ===\n", cases.len());

    let total = cases.len();
    let (verdicts, timing) = parallel_sweep(cases, |case| {
        let dense = (case.run)(SchedMode::Dense);
        let event = (case.run)(SchedMode::Event);
        let cycles = match (&dense, &event) {
            (Summary::Cluster(d), Summary::Cluster(e)) => {
                assert_cluster_identical(&case.id, d, e);
                d.cycles
            }
            (Summary::System(d), Summary::System(e)) => {
                assert_system_identical(&case.id, d, e);
                d.cycles
            }
            _ => unreachable!("a point always produces the same summary kind"),
        };
        Verdict {
            id: case.id,
            cycles,
        }
    });
    assert_eq!(verdicts.len(), total);

    let mut by_sweep: Vec<(&str, usize)> = Vec::new();
    for v in &verdicts {
        let sweep = v.id.split('/').next().unwrap_or("?");
        match by_sweep.iter_mut().find(|(s, _)| *s == sweep) {
            Some((_, n)) => *n += 1,
            None => by_sweep.push((sweep, 1)),
        }
    }
    for (sweep, n) in &by_sweep {
        println!("{sweep:>20}: {n} points identical");
    }
    println!("\nall {total} baseline points: event == dense");
    println!("{}", timing.report(total));

    let report = Json::obj()
        .set("sweep", "sched_identity")
        .set("points", total as u64)
        .set("all_identical", true)
        .set("attribution_verified", true)
        .set("wall_seconds", timing.wall.as_secs_f64())
        .set("host_thread_speedup", timing.speedup())
        .set(
            "cycles_by_point",
            Json::Arr(
                verdicts
                    .iter()
                    .map(|v| Json::obj().set("id", v.id.as_str()).set("cycles", v.cycles))
                    .collect(),
            ),
        );
    match json::write_report("sched_identity.json", &report) {
        Ok(path) => println!("json report: {}", path.display()),
        Err(e) => eprintln!("could not write json report: {e}"),
    }
}
