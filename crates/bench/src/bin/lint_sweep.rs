//! Static verification sweep: `sc-lint` over **every program the
//! baseline sweeps generate**, plus the seeded-bug fixtures.
//!
//! Two contracts, both hard CI gates:
//!
//! * **Zero false positives** — every config point of the five
//!   baselined sweeps (`cluster_scaling`, `system_scaling`,
//!   `l2_ablation`, `weak_scaling`, `prefetch_ablation`) is rebuilt
//!   (codegen only, no simulation) and every generated program — tile
//!   stages and epilogues included — must lint clean under the
//!   default hardware model (capacity-4 chained FIFO, 128 KiB TCDM).
//! * **Zero false negatives** — every seeded-bug fixture in
//!   [`sc_lint::fixtures`] must trip its rule, and *only* its rule.
//!
//! Any violation panics with the offending point or fixture id.
//! Machine-readable results land in `target/reports/lint_sweep.json`.
//!
//! Run with `cargo run --release -p sc-bench --bin lint_sweep`.

use sc_bench::{json, parallel_sweep, Json};
use sc_isa::Program;
use sc_kernels::{Grid3, Stencil, StencilKernel, Variant, TCDM_CAP_BYTES};
use sc_lint::{lint_harts, LintConfig};

fn variant(chaining: bool) -> Variant {
    if chaining {
        Variant::ChainingPlus
    } else {
        Variant::Base
    }
}

fn gen(grid: Grid3, chaining: bool) -> StencilKernel {
    StencilKernel::new(Stencil::box3d1r(), grid, variant(chaining)).expect("valid combination")
}

/// One sweep point: a display id plus the program sets its kernel
/// build emits (one set per cluster stage; unbounded kernels have one
/// stage per cluster).
struct Case {
    id: String,
    build: Box<dyn Fn() -> Vec<Vec<Program>> + Send + Sync>,
}

impl Case {
    fn new(id: String, build: impl Fn() -> Vec<Vec<Program>> + Send + Sync + 'static) -> Self {
        Case {
            id,
            build: Box::new(build),
        }
    }
}

/// The four kernel shapes the sweeps build, reduced to lintable
/// program sets.
fn cluster_unbounded(grid: Grid3, chaining: bool, cores: u32) -> Vec<Vec<Program>> {
    vec![gen(grid, chaining).build_cluster(cores).programs().to_vec()]
}

fn cluster_tiled(grid: Grid3, chaining: bool, cores: u32) -> Vec<Vec<Program>> {
    gen(grid, chaining)
        .build_tiled(cores, TCDM_CAP_BYTES)
        .expect("grid tiles within the TCDM cap")
        .stages()
}

fn system_unbounded(grid: Grid3, chaining: bool, clusters: u32, cores: u32) -> Vec<Vec<Program>> {
    gen(grid, chaining)
        .build_system(clusters, cores)
        .programs()
        .to_vec()
}

fn system_tiled(grid: Grid3, chaining: bool, clusters: u32, cores: u32) -> Vec<Vec<Program>> {
    gen(grid, chaining)
        .build_system_tiled(clusters, cores, TCDM_CAP_BYTES)
        .expect("slabs tile within the TCDM cap")
        .stages()
        .iter()
        .flat_map(|cluster| cluster.iter().cloned())
        .collect()
}

/// `cluster_scaling`: box3d1r 16x16x24, 1/2/4/8 cores, chaining on/off,
/// unbounded and tiled.
fn cluster_scaling_cases(cases: &mut Vec<Case>) {
    let grid = Grid3::new(16, 16, 24);
    for cores in [1u32, 2, 4, 8] {
        for chaining in [true, false] {
            for tiled in [false, true] {
                let id = format!(
                    "cluster_scaling/{}/c{cores}/{}",
                    if tiled { "tiled" } else { "unbounded" },
                    if chaining { "chaining" } else { "base" }
                );
                cases.push(Case::new(id, move || {
                    if tiled {
                        cluster_tiled(grid, chaining, cores)
                    } else {
                        cluster_unbounded(grid, chaining, cores)
                    }
                }));
            }
        }
    }
}

/// `system_scaling`: box3d1r 16x16x24, 1/2/4 clusters x 1/4/8 cores,
/// chaining on/off, unbounded and tiled.
fn system_scaling_cases(cases: &mut Vec<Case>) {
    let grid = Grid3::new(16, 16, 24);
    for clusters in [1u32, 2, 4] {
        for cores in [1u32, 4, 8] {
            for chaining in [true, false] {
                for tiled in [false, true] {
                    let id = format!(
                        "system_scaling/{}/m{clusters}/c{cores}/{}",
                        if tiled { "tiled" } else { "unbounded" },
                        if chaining { "chaining" } else { "base" }
                    );
                    cases.push(Case::new(id, move || {
                        if tiled {
                            system_tiled(grid, chaining, clusters, cores)
                        } else {
                            system_unbounded(grid, chaining, clusters, cores)
                        }
                    }));
                }
            }
        }
    }
}

/// `l2_ablation`: the L2 knobs don't change codegen, but the sweep's
/// 16 points are the baselined set — each is relinted as built.
fn l2_ablation_cases(cases: &mut Vec<Case>) {
    let grid = Grid3::new(16, 16, 16);
    for fit in ["over", "under"] {
        for ways in [2u32, 8] {
            for channels in [1u32, 4] {
                for chaining in [true, false] {
                    let id = format!(
                        "l2_ablation/{fit}/w{ways}/ch{channels}/{}",
                        if chaining { "chaining" } else { "base" }
                    );
                    cases.push(Case::new(id, move || system_tiled(grid, chaining, 2, 2)));
                }
            }
        }
    }
}

/// `weak_scaling`: the grid grows with the cluster count (16x16x8m on
/// 4 cores), chaining on/off, unbounded and tiled (1/4 refill channels).
fn weak_scaling_cases(cases: &mut Vec<Case>) {
    for clusters in [1u32, 2, 4] {
        let grid = Grid3::new(16, 16, 8 * clusters);
        for chaining in [true, false] {
            for channels in [None, Some(1u32), Some(4u32)] {
                let id = format!(
                    "weak_scaling/{}/m{clusters}/{}",
                    channels.map_or("unbounded".to_owned(), |ch| format!("tiled_ch{ch}")),
                    if chaining { "chaining" } else { "base" }
                );
                cases.push(Case::new(id, move || match channels {
                    None => system_unbounded(grid, chaining, clusters, 4),
                    Some(_) => system_tiled(grid, chaining, clusters, 4),
                }));
            }
        }
    }
}

/// `prefetch_ablation`: box3d1r 24x24x24, 1/2 clusters x 4 cores —
/// prefetch/L2 knobs don't change codegen, the 80 points do.
fn prefetch_ablation_cases(cases: &mut Vec<Case>) {
    let grid = Grid3::new(24, 24, 24);
    for clusters in [1u32, 2] {
        for fit in ["over", "under"] {
            for channels in [1u32, 4] {
                for chaining in [true, false] {
                    for prefetch in std::iter::once(None)
                        .chain([(2u32, 8u32), (2, 32), (4, 8), (4, 32)].map(Some))
                    {
                        let id = format!(
                            "prefetch_ablation/m{clusters}/{fit}/ch{channels}/{}/{}",
                            if chaining { "chaining" } else { "base" },
                            prefetch.map_or("off".to_owned(), |(d, dist)| format!("d{d}D{dist}"))
                        );
                        cases.push(Case::new(id, move || {
                            system_tiled(grid, chaining, clusters, 4)
                        }));
                    }
                }
            }
        }
    }
}

/// One point's verdict after linting every program set it builds.
struct Verdict {
    id: String,
    program_sets: usize,
    diagnostics: usize,
}

fn main() {
    let mut cases: Vec<Case> = Vec::new();
    cluster_scaling_cases(&mut cases);
    system_scaling_cases(&mut cases);
    l2_ablation_cases(&mut cases);
    weak_scaling_cases(&mut cases);
    prefetch_ablation_cases(&mut cases);

    println!("=== static verification — sc-lint over every baseline sweep kernel ===");
    println!(
        "=== {} config points + seeded-bug fixtures ===\n",
        cases.len()
    );

    let total = cases.len();
    let lint_cfg = LintConfig::new();
    let (verdicts, timing) = parallel_sweep(cases, |case| {
        let sets = (case.build)();
        let mut diagnostics = 0;
        for (s, harts) in sets.iter().enumerate() {
            let report = lint_harts(harts, &lint_cfg);
            assert!(
                report.is_clean(),
                "{} stage {s}: shipped kernel is not lint-clean:\n{report}",
                case.id
            );
            diagnostics += report.len();
        }
        Verdict {
            id: case.id,
            program_sets: sets.len(),
            diagnostics,
        }
    });
    assert_eq!(verdicts.len(), total);

    let mut by_sweep: Vec<(&str, usize)> = Vec::new();
    let mut sets_linted = 0usize;
    for v in &verdicts {
        sets_linted += v.program_sets;
        let sweep = v.id.split('/').next().unwrap_or("?");
        match by_sweep.iter_mut().find(|(s, _)| *s == sweep) {
            Some((_, n)) => *n += 1,
            None => by_sweep.push((sweep, 1)),
        }
    }
    for (sweep, n) in &by_sweep {
        println!("{sweep:>20}: {n} points clean");
    }
    println!("\nall {total} baseline points clean ({sets_linted} program sets)");

    // Zero false negatives: every seeded bug trips exactly its rule.
    let fixtures = sc_lint::fixtures::expectations();
    let n_fixtures = fixtures.len();
    for (name, rule_id, programs) in &fixtures {
        let report = lint_harts(programs, &lint_cfg);
        assert!(
            !report.is_clean(),
            "fixture {name}: seeded bug was not detected"
        );
        for d in report.iter() {
            assert_eq!(
                d.rule.id(),
                *rule_id,
                "fixture {name}: tripped {} instead of {rule_id}: {d}",
                d.rule
            );
        }
        println!("fixture {name:>24}: flagged as {rule_id}");
    }
    println!("\nall {n_fixtures} seeded-bug fixtures flagged with their rule");
    println!("{}", timing.report(total));

    let report = Json::obj()
        .set("sweep", "lint_sweep")
        .set("points", total as u64)
        .set("program_sets", sets_linted as u64)
        .set("all_clean", true)
        .set("fixtures", n_fixtures as u64)
        .set("all_fixtures_flagged", true)
        .set("wall_seconds", timing.wall.as_secs_f64())
        .set(
            "points_by_id",
            Json::Arr(
                verdicts
                    .iter()
                    .map(|v| {
                        Json::obj()
                            .set("id", v.id.as_str())
                            .set("program_sets", v.program_sets as u64)
                            .set("diagnostics", v.diagnostics as u64)
                    })
                    .collect(),
            ),
        );
    match json::write_report("lint_sweep.json", &report) {
        Ok(path) => println!("json report: {}", path.display()),
        Err(e) => eprintln!("could not write json report: {e}"),
    }
}
