//! Weak-scaling sweep: the grid grows with the cluster count.
//!
//! Where `system_scaling` holds the problem fixed (strong scaling), this
//! sweep gives every cluster the same per-cluster z-slab — 1/2/4
//! clusters on 8/16/32 planes — so ideal scaling is *constant* cycles
//! and the reported *efficiency* `cycles(1 cluster) / cycles(m)` is 1.0
//! when nothing shared saturates. Three memory regimes:
//!
//! * **unbounded** — per-cluster TCDMs hold everything, no shared level:
//!   the compute-only reference, efficiency ≈ 1;
//! * **tiled, 1 refill channel** — the PR 3 memory wall: every cluster's
//!   compulsory misses serialise on one L2↔Dram channel, so efficiency
//!   falls as clusters are added;
//! * **tiled, 4 refill channels** — the finite L2's multi-channel
//!   refill: miss traffic parallelises across channels and the
//!   efficiency the single channel lost comes back.
//!
//! The validator asserts every efficiency lies in (0, 1.1] and the
//! multi-channel tiled regime meets an efficiency **floor** at the
//! widest point. `efficiency_*` ratios are pinned by the CI perf gate
//! against `baselines/weak_scaling.json`.
//!
//! Run with `cargo run --release -p sc-bench --bin weak_scaling`.

use sc_bench::{json, parallel_sweep, Json};
use sc_core::CoreConfig;
use sc_energy::EnergyModel;
use sc_kernels::{Grid3, Stencil, StencilKernel, Variant, TCDM_CAP_BYTES};
use sc_mem::{DramConfig, L2Config};
use sc_system::SystemSummary;

const CLUSTERS: [u32; 3] = [1, 2, 4];
const CORES: u32 = 4;
const PLANES_PER_CLUSTER: u32 = 8;
const MAX_CYCLES: u64 = 500_000_000;

/// The asserted weak-scaling efficiency floor for the tiled multi-channel
/// regime at the widest cluster count.
const EFFICIENCY_FLOOR: f64 = 0.5;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    Unbounded,
    Tiled { channels: u32 },
}

impl Regime {
    fn label(self) -> String {
        match self {
            Regime::Unbounded => "unbounded".into(),
            Regime::Tiled { channels } => format!("tiled_ch{channels}"),
        }
    }
}

struct Point {
    clusters: u32,
    chaining: bool,
    regime: Regime,
    summary: SystemSummary,
}

impl Point {
    fn id(&self) -> String {
        format!(
            "{}/m{}/{}",
            self.regime.label(),
            self.clusters,
            if self.chaining { "chaining" } else { "base" }
        )
    }
}

fn run_point(clusters: u32, chaining: bool, regime: Regime) -> Point {
    let grid = Grid3::new(16, 16, PLANES_PER_CLUSTER * clusters);
    let variant = if chaining {
        Variant::ChainingPlus
    } else {
        Variant::Base
    };
    let cfg = CoreConfig::new().with_chaining(chaining);
    let gen = StencilKernel::new(Stencil::box3d1r(), grid, variant).expect("valid combination");
    let summary = match regime {
        Regime::Unbounded => {
            let sk = gen.build_system(clusters, CORES);
            sk.run(cfg, MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{}: {e}", sk.name()))
                .summary
        }
        Regime::Tiled { channels } => {
            let tk = gen
                .build_system_tiled(clusters, CORES, TCDM_CAP_BYTES)
                .expect("slabs tile within 128 KiB");
            let l2 = L2Config::new()
                .with_refill_channels(channels)
                .with_refill_latency(64)
                .with_refill_cycles_per_beat(1);
            tk.run(cfg, l2, DramConfig::new(), MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{}: {e}", tk.name()))
                .summary
        }
    };
    Point {
        clusters,
        chaining,
        regime,
        summary,
    }
}

/// Weak-scaling efficiency of `p` against the 1-cluster run of the same
/// regime/variant: 1.0 = perfect (constant cycles as the grid grows).
fn efficiency(points: &[Point], p: &Point) -> f64 {
    let base = points
        .iter()
        .find(|q| q.clusters == 1 && q.chaining == p.chaining && q.regime == p.regime)
        .expect("1-cluster reference point");
    base.summary.cycles as f64 / p.summary.cycles as f64
}

fn validate(points: &[Point]) {
    for p in points {
        let eff = efficiency(points, p);
        assert!(
            0.0 < eff && eff <= 1.1,
            "{}: weak-scaling efficiency {eff:.3} outside (0, 1.1]",
            p.id()
        );
    }
    // The acceptance floor: with parallel refill channels, the widest
    // tiled point keeps at least EFFICIENCY_FLOOR of the 1-cluster
    // throughput per cluster.
    let widest = *CLUSTERS.last().expect("cluster list is non-empty");
    let best = points
        .iter()
        .filter(|p| {
            p.clusters == widest && matches!(p.regime, Regime::Tiled { channels } if channels > 1)
        })
        .map(|p| efficiency(points, p))
        .fold(0.0f64, f64::max);
    assert!(
        best > EFFICIENCY_FLOOR,
        "multi-channel tiled weak scaling peaked at {best:.2} — below the {EFFICIENCY_FLOOR} floor"
    );
}

fn point_json(points: &[Point], p: &Point) -> Json {
    let s = &p.summary;
    let mut j = Json::obj()
        .set("id", p.id())
        .set("clusters", p.clusters)
        .set("cores", CORES)
        .set("chaining", p.chaining)
        .set("regime", p.regime.label())
        .set("cycles_to_last_core_done", s.cycles)
        .set("efficiency", efficiency(points, p))
        .set("tcdm_conflicts", s.aggregate.tcdm_conflicts)
        .set("flops", s.aggregate.flops)
        .set("system_utilization", s.system_utilization())
        .set(
            "attribution",
            json::attribution_json(&s.attribution, total_harts(s), s.cycles),
        );
    if let Some(l2) = &s.l2 {
        j = j
            .set(
                "l2",
                json::l2_stats_json(
                    l2,
                    s.l2_refill_beats,
                    s.l2_writeback_beats,
                    s.l2_prefetch_beats,
                ),
            )
            .set(
                "l2_occupancy",
                json::refill_occupancy_json(&s.refill_occupancy()),
            );
    }
    j
}

/// Harts the system-level attribution aggregates over.
fn total_harts(s: &SystemSummary) -> u64 {
    s.per_cluster.iter().map(|c| c.per_core.len() as u64).sum()
}

fn main() {
    println!(
        "=== Weak scaling — box3d1r 16x16x{PLANES_PER_CLUSTER}z per cluster, {CORES} cores each ===",
    );
    println!("=== 1/2/4 clusters, unbounded vs 128K tiled with 1 or 4 refill channels ===\n");

    let configs: Vec<(u32, bool, Regime)> = CLUSTERS
        .iter()
        .flat_map(|&m| {
            [true, false].into_iter().flat_map(move |chaining| {
                [
                    Regime::Unbounded,
                    Regime::Tiled { channels: 1 },
                    Regime::Tiled { channels: 4 },
                ]
                .map(|regime| (m, chaining, regime))
            })
        })
        .collect();
    let (results, timing) = parallel_sweep(configs, |(m, chaining, regime)| {
        run_point(m, chaining, regime)
    });
    validate(&results);

    println!(
        "{:>9} {:>10} {:>11} {:>11} {:>11} {:>9} {:>9}",
        "clusters", "variant", "regime", "cycles", "efficiency", "refills", "mw"
    );
    for p in &results {
        let (refills, power) = (p.summary.l2.as_ref().map_or(0, |l2| l2.refills()), {
            let per_core: Vec<_> = p
                .summary
                .per_cluster
                .iter()
                .flat_map(|c| c.per_core.iter().map(|r| r.counters))
                .collect();
            EnergyModel::new()
                .system_report(
                    &per_core,
                    p.summary.cycles,
                    p.summary.total_dma_beats(),
                    p.summary.l2_refill_beats,
                    p.summary.l2_writeback_beats,
                )
                .power_mw
        });
        println!(
            "{:>9} {:>10} {:>11} {:>11} {:>10.1}% {:>9} {:>9.1}",
            p.clusters,
            if p.chaining { "Chaining+" } else { "Base" },
            p.regime.label(),
            p.summary.cycles,
            efficiency(&results, p) * 100.0,
            refills,
            power,
        );
    }
    println!("\n{}", timing.report(results.len()));

    let mut report = Json::obj()
        .set("sweep", "weak_scaling")
        .set("stencil", "box3d1r")
        .set("planes_per_cluster", PLANES_PER_CLUSTER)
        .set("cores_per_cluster", CORES)
        .set("tcdm_cap_bytes", u64::from(TCDM_CAP_BYTES))
        .set("wall_seconds", timing.wall.as_secs_f64());
    // Per-config weak-scaling efficiencies at the multi-cluster points —
    // pinned by the perf gate (efficiency_* keys).
    for p in &results {
        if p.clusters > 1 {
            let key = format!(
                "efficiency_m{}_{}_{}",
                p.clusters,
                p.regime.label(),
                if p.chaining { "chaining" } else { "base" }
            );
            report = report.set(&key, efficiency(&results, p));
        }
    }
    report = report.set(
        "points",
        Json::Arr(results.iter().map(|p| point_json(&results, p)).collect()),
    );
    match json::write_report("weak_scaling.json", &report) {
        Ok(path) => println!("json report: {}", path.display()),
        Err(e) => eprintln!("could not write json report: {e}"),
    }

    println!();
    println!("Perfect weak scaling is flat cycles: each cluster brings its own");
    println!("cores, TCDM and DMA engine, so the only thing that can bend the");
    println!("curve is the shared L2 — and the single refill channel does,");
    println!("until parallel channels (or warm lines) restore the efficiency.");
}
