//! Regenerates the paper's Fig. 1: issue-slot traces of the vector
//! operation `a = b * (c + d)` in its baseline, unrolled and chained
//! forms, plus the per-variant utilisation/register trade-off.
//!
//! Run with `cargo run --release -p sc-bench --bin fig1_trace`.

use sc_core::CoreConfig;
use sc_kernels::{VecOpKernel, VecOpVariant};

fn main() {
    let n = 32;
    println!("=== Fig. 1 — a[i] = b * (c[i] + d[i]), n = {n} ===\n");
    for variant in VecOpVariant::ALL {
        let kernel = VecOpKernel::new(n, variant).build();
        let cfg = CoreConfig::new().with_trace(true);
        let run = kernel
            .run(cfg, 1_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
        let m = run.measured();
        println!(
            "--- {} — {} cycles, FPU utilisation {:.1} %, {} extra FP registers ---",
            kernel.name(),
            m.cycles,
            m.fpu_utilization() * 100.0,
            variant.extra_registers(),
        );
        // Show a steady-state window (skip the prologue).
        let from = run.summary.trace.cycles().first().map_or(0, |c| c.cycle);
        let window = run.summary.trace.window(from + 30, from + 55);
        println!("{}", window.render());
    }
    println!("Reading the traces:");
    println!("  baseline : every fmul waits out the 3-stage FPU latency (stall (raw))");
    println!("  unrolled4: full slots, but ft3..ft6 burn four architectural registers");
    println!("  chained  : full slots with ONE register — ft3 has FIFO semantics,");
    println!("             in-flight results live in the FPU pipeline registers");
}
